#include <gtest/gtest.h>

#include <set>

#include "isa/mips/mips.h"
#include "isa/x86/x86.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"
#include "workload/x86_gen.h"

namespace ccomp::workload {
namespace {

TEST(Profiles, AllEighteenPresent) {
  EXPECT_EQ(spec95_profiles().size(), 18u);
  for (const char* name : {"applu", "compress", "gcc", "go", "swim", "xlisp"})
    EXPECT_NE(find_profile(name), nullptr) << name;
  EXPECT_EQ(find_profile("quake"), nullptr);
}

Profile small_profile(const char* name, std::uint32_t kb) {
  const Profile* p = find_profile(name);
  EXPECT_NE(p, nullptr);
  Profile copy = *p;
  copy.code_kb = kb;
  return copy;
}

TEST(MipsGen, DeterministicAndSized) {
  const Profile p = small_profile("compress", 32);
  const auto a = generate_mips(p);
  const auto b = generate_mips(p);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u * 1024 / 4);
}

TEST(MipsGen, AllInstructionsDecode) {
  const Profile p = small_profile("gcc", 48);
  const auto words = generate_mips(p);
  std::size_t undecodable = 0;
  for (const std::uint32_t w : words)
    if (!mips::decode(w)) ++undecodable;
  EXPECT_EQ(undecodable, 0u);
}

TEST(MipsGen, FunctionStartsAreOrderedAndInRange) {
  const Profile p = small_profile("go", 32);
  const auto prog = generate_mips_program(p);
  ASSERT_FALSE(prog.function_starts.empty());
  for (std::size_t i = 1; i < prog.function_starts.size(); ++i)
    EXPECT_LT(prog.function_starts[i - 1], prog.function_starts[i]);
  EXPECT_LT(prog.function_starts.back(), prog.words.size());
}

TEST(MipsGen, FpProfilesEmitFpInstructions) {
  const Profile fp = small_profile("swim", 32);
  const Profile intp = small_profile("gcc", 32);
  auto count_fp = [](const std::vector<std::uint32_t>& words) {
    std::size_t n = 0;
    for (const std::uint32_t w : words) {
      const auto d = mips::decode(w);
      if (!d) continue;
      const std::string_view mn = mips::opcode_table()[d->opcode].mnemonic;
      if (mn.find('.') != std::string_view::npos || mn == "lwc1" || mn == "swc1" ||
          mn == "ldc1" || mn == "sdc1")
        ++n;
    }
    return n;
  };
  const auto fp_count = count_fp(generate_mips(fp));
  const auto int_count = count_fp(generate_mips(intp));
  EXPECT_GT(fp_count, 10 * (int_count + 1));
}

TEST(MipsGen, UsesRealisticOpcodeMix) {
  const Profile p = small_profile("perl", 64);
  const auto words = generate_mips(p);
  std::set<std::uint16_t> distinct;
  for (const std::uint32_t w : words) {
    const auto d = mips::decode(w);
    if (d) distinct.insert(d->opcode);
  }
  // A real program uses a few dozen opcodes, not two and not all.
  EXPECT_GE(distinct.size(), 15u);
  EXPECT_LE(distinct.size(), 60u);
}

TEST(X86Gen, DeterministicAndParsable) {
  const Profile p = small_profile("compress", 24);
  const auto a = generate_x86(p);
  const auto b = generate_x86(p);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  // decode_all throws on any unparsable byte sequence.
  const auto layouts = x86::decode_all(a);
  std::size_t total = 0;
  for (const auto& l : layouts) total += l.total;
  EXPECT_EQ(total, a.size());
}

TEST(X86Gen, SizeIsApproximatelyRequested) {
  const Profile p = small_profile("vortex", 64);
  const auto code = generate_x86(p);
  EXPECT_GE(code.size(), 50u * 1024);
  EXPECT_LE(code.size(), 66u * 1024);
}

TEST(X86Gen, FunctionStartsValid) {
  const Profile p = small_profile("ijpeg", 24);
  const auto prog = generate_x86_program(p);
  ASSERT_FALSE(prog.function_starts.empty());
  for (std::size_t i = 1; i < prog.function_starts.size(); ++i)
    EXPECT_LT(prog.function_starts[i - 1], prog.function_starts[i]);
  // Every function start must be an instruction boundary: prologue push ebp
  // or a clone of one.
  EXPECT_LT(prog.function_starts.back(), prog.bytes.size());
}

TEST(Trace, CoversProgramAndRespectsLength) {
  const Profile p = small_profile("hydro2d", 32);
  const auto prog = generate_mips_program(p);
  TraceOptions opt;
  opt.length = 50000;
  const auto trace = generate_trace(p, prog.function_starts, prog.words.size(), opt);
  EXPECT_EQ(trace.size(), opt.length);
  for (const std::uint32_t addr : trace) {
    EXPECT_EQ(addr % 4, 0u);
    EXPECT_LT(addr / 4, prog.words.size());
  }
}

TEST(Trace, HasTemporalLocality) {
  const Profile p = small_profile("swim", 32);
  const auto prog = generate_mips_program(p);
  TraceOptions opt;
  opt.length = 200000;
  const auto trace = generate_trace(p, prog.function_starts, prog.words.size(), opt);
  // Count distinct 32-byte lines touched: locality means far fewer than
  // trace length.
  std::set<std::uint32_t> lines;
  for (const std::uint32_t addr : trace) lines.insert(addr / 32);
  EXPECT_LT(lines.size(), trace.size() / 20);
}

TEST(Trace, EmptyProgramThrows) {
  const Profile p = small_profile("swim", 32);
  EXPECT_THROW(generate_trace(p, {}, 0, {}), ConfigError);
}

TEST(MipsGen, CloneRateIncreasesRepetition) {
  // Compare gzip-style repetition proxies: count repeated 8-word windows.
  Profile lo = small_profile("gcc", 48);
  lo.clone_rate = 0.0;
  Profile hi = lo;
  hi.clone_rate = 0.5;
  auto repeated_windows = [](const std::vector<std::uint32_t>& words) {
    std::set<std::string> seen;
    std::size_t repeats = 0;
    for (std::size_t i = 0; i + 8 <= words.size(); i += 8) {
      std::string key(reinterpret_cast<const char*>(&words[i]), 32);
      if (!seen.insert(key).second) ++repeats;
    }
    return repeats;
  };
  EXPECT_GT(repeated_windows(generate_mips(hi)), repeated_windows(generate_mips(lo)) * 2);
}

}  // namespace
}  // namespace ccomp::workload
