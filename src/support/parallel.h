// Deterministic parallel execution primitives.
//
// The paper's random-access constraint makes every per-block computation
// independent, so the whole pipeline — block encoding, block verification,
// model-search candidate evaluation, benchmark programs — parallelizes over
// a small shared thread pool. The contract everything here upholds:
//
//   * Results are collected BY INDEX, never by completion order, so every
//     parallel entry point produces output byte-identical to its serial
//     equivalent at any thread count (enforced by tests/test_parallel.cpp).
//   * Scheduling is chunked self-scheduling ("work-stealing-lite"): workers
//     grab contiguous index chunks from an atomic counter, so load imbalance
//     between blocks/candidates is absorbed without per-index overhead.
//   * Nested parallel_for calls (a parallel region invoked from inside a
//     worker) degrade to serial execution — no deadlock, no oversubscription.
//   * `threads == 1` (or n <= 1, or a single-core machine with no override)
//     runs entirely on the calling thread: no pool, no synchronization.
//
// Thread-count resolution, in priority order: an explicit `threads` argument
// to parallel_for/parallel_map, the process-wide set_thread_count() override
// (what `--threads N` sets), the CCOMP_THREADS environment variable, and
// finally std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccomp::par {

/// Hardware thread count (always >= 1).
std::size_t hardware_threads();

/// Effective default parallelism: set_thread_count() override if set, else
/// CCOMP_THREADS, else hardware_threads().
std::size_t thread_count();

/// Process-wide override of the default parallelism (what `--threads N`
/// sets). 0 restores automatic selection.
void set_thread_count(std::size_t threads);

/// A fixed set of worker threads draining a task queue. The destructor
/// finishes every queued task, then joins — a pool can be scoped to a
/// computation and its destruction is the completion barrier.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (parallel_for catches inside its
  /// own task bodies and rethrows on the calling thread).
  void submit(std::function<void()> task);

  /// Spawn additional workers until the pool has at least `threads`
  /// (bounded by an internal cap; used to honor explicit oversubscription
  /// requests like `--threads 8` on a smaller machine).
  void ensure_workers(std::size_t threads);

  std::size_t size() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n). Blocks until all iterations finish; the
/// first exception thrown by any iteration is rethrown on the calling
/// thread (remaining chunks are abandoned). `threads == 0` uses
/// thread_count(). Iterations must be independent; determinism follows from
/// writing results by index.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Ordered parallel map: out[i] = fn(i), with out in index order regardless
/// of execution order. The result type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace ccomp::par
