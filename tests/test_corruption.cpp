// Failure-injection tests: corrupted or truncated containers must never
// crash — every outcome is either a ccomp::Error or a well-formed (if
// wrong) result. This is the robustness contract a boot ROM loader needs.
#include <gtest/gtest.h>

#include "baseline/bytehuff.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> serialized_image(const core::BlockCodec& codec,
                                           std::span<const std::uint8_t> code) {
  const auto image = codec.compress(code);
  ByteSink sink;
  image.serialize(sink);
  return sink.take();
}

// Deserialize + fully decompress; any ccomp::Error is acceptable, crashes
// and non-ccomp exceptions are not. And the loader contract: if decoding
// throws, the static verifier must already have flagged the container —
// a boot loader running ccomp_lint first never hands the refill engine an
// image that makes it crash.
void try_load(const core::BlockCodec& codec, std::span<const std::uint8_t> bytes) {
  bool threw = false;
  try {
    ByteSource src(bytes);
    const auto image = core::CompressedImage::deserialize(src);
    const auto decompressor = codec.make_decompressor(image);
    for (std::size_t b = 0; b < image.block_count(); ++b) (void)decompressor->block(b);
  } catch (const Error&) {
    threw = true;  // Expected for most corruptions.
  }
  if (threw) {
    const verify::VerifyReport report = verify::verify_serialized(bytes);
    EXPECT_GE(report.error_count(), 1u)
        << "decoder rejected a container the static verifier passed";
  }
}

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

class CorruptionTest : public ::testing::Test {
 protected:
  void fuzz(const core::BlockCodec& codec, std::span<const std::uint8_t> code,
            std::uint64_t seed) {
    const auto good = serialized_image(codec, code);
    Rng rng(seed);
    // Single-byte flips all over the container.
    for (int trial = 0; trial < 200; ++trial) {
      auto bad = good;
      const std::size_t at = rng.next_below(bad.size());
      bad[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      try_load(codec, bad);
    }
    // Truncations.
    for (int trial = 0; trial < 50; ++trial) {
      auto bad = good;
      bad.resize(rng.next_below(bad.size()));
      try_load(codec, bad);
    }
    // Multi-byte scrambles.
    for (int trial = 0; trial < 50; ++trial) {
      auto bad = good;
      for (int k = 0; k < 16; ++k)
        bad[rng.next_below(bad.size())] = static_cast<std::uint8_t>(rng.next_below(256));
      try_load(codec, bad);
    }
  }
};

TEST_F(CorruptionTest, SamcSurvivesCorruptImages) {
  fuzz(samc::SamcCodec(samc::mips_defaults()), mips_code(8), 1);
}

TEST_F(CorruptionTest, SamcNibbleModeSurvivesCorruptImages) {
  samc::SamcOptions o = samc::mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  fuzz(samc::SamcCodec(o), mips_code(8), 2);
}

TEST_F(CorruptionTest, SadcMipsSurvivesCorruptImages) {
  fuzz(sadc::SadcMipsCodec(), mips_code(8), 3);
}

TEST_F(CorruptionTest, SadcX86SurvivesCorruptImages) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 8;
  fuzz(sadc::SadcX86Codec(), workload::generate_x86(p), 4);
}

TEST_F(CorruptionTest, ByteHuffmanSurvivesCorruptImages) {
  fuzz(baseline::ByteHuffmanCodec(), mips_code(8), 5);
}

TEST(CorruptionMisc, WrongCodecRejected) {
  const auto code = mips_code(4);
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;
  const auto image = samc_codec.compress(code);
  EXPECT_THROW(sadc_codec.make_decompressor(image), ConfigError);
}

TEST(CorruptionMisc, EmptyContainerRejected) {
  const samc::SamcCodec codec(samc::mips_defaults());
  try_load(codec, {});
  const std::vector<std::uint8_t> tiny = {0x50, 0x4D};
  try_load(codec, tiny);
}

}  // namespace
}  // namespace ccomp
