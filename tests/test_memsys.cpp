#include "memsys/sim.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "memsys/cache.h"
#include "memsys/clb.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace ccomp::memsys {
namespace {

TEST(ICache, SequentialAccessMissesOncePerLine) {
  ICache cache({1024, 32, 1});
  for (std::uint32_t a = 0; a < 1024; a += 4) cache.access(a);
  EXPECT_EQ(cache.stats().accesses, 256u);
  EXPECT_EQ(cache.stats().misses, 32u);
  // Second sweep over the same working set: all hits.
  for (std::uint32_t a = 0; a < 1024; a += 4) cache.access(a);
  EXPECT_EQ(cache.stats().misses, 32u);
}

TEST(ICache, LruEvictsOldest) {
  // 2-way, 1 set (64-byte cache, 32-byte lines): three lines thrash.
  ICache cache({64, 32, 2});
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(32));
  EXPECT_TRUE(cache.access(0));    // refresh line 0
  EXPECT_FALSE(cache.access(64));  // evicts line 32 (LRU)
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(32));
}

TEST(ICache, FlushInvalidates) {
  ICache cache({1024, 32, 2});
  cache.access(0);
  cache.flush();
  EXPECT_FALSE(cache.access(0));
}

TEST(ICache, ConfigValidation) {
  EXPECT_THROW(ICache({1000, 32, 2}), ConfigError);  // not divisible
  EXPECT_THROW(ICache({1024, 24, 2}), ConfigError);  // non-pow2 line
  EXPECT_THROW(ICache({1024, 32, 0}), ConfigError);
}

TEST(Clb, GroupLocalityHits) {
  Clb clb({4, 8});
  EXPECT_FALSE(clb.access(0));
  for (std::uint64_t b = 1; b < 8; ++b) EXPECT_TRUE(clb.access(b));  // same group
  EXPECT_FALSE(clb.access(8));  // next group
  EXPECT_NEAR(clb.stats().hit_rate(), 7.0 / 9.0, 1e-12);
}

TEST(Clb, LruReplacement) {
  Clb clb({2, 1});
  clb.access(0);
  clb.access(1);
  clb.access(0);      // refresh 0
  clb.access(2);      // evicts 1
  EXPECT_TRUE(clb.access(0));
  EXPECT_FALSE(clb.access(1));
}

struct SimSetup {
  std::vector<std::uint32_t> trace;
  core::CompressedImage image;
};

SimSetup make_setup(std::uint32_t cache_kb = 4) {
  (void)cache_kb;
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 64;
  const auto prog = workload::generate_mips_program(p);
  const auto code = mips::words_to_bytes(prog.words);
  const samc::SamcCodec codec(samc::mips_defaults());
  workload::TraceOptions topt;
  topt.length = 200000;
  return {workload::generate_trace(p, prog.function_starts, prog.words.size(), topt),
          codec.compress(code)};
}

TEST(Sim, CompressedIsSlowerButBounded) {
  const SimSetup setup = make_setup();
  SimConfig config;
  config.cache = {4 * 1024, 32, 2};
  const auto base = simulate_uncompressed(config, setup.trace);
  const auto comp = simulate_compressed(config, setup.trace, setup.image);
  EXPECT_EQ(base.accesses, comp.accesses);
  EXPECT_EQ(base.misses, comp.misses);  // same cache, same trace
  EXPECT_GE(comp.fetch_cycles, base.fetch_cycles);
  // Slowdown is tied to the miss ratio; with a sane cache it stays small.
  EXPECT_LT(comp.cycles_per_fetch() / base.cycles_per_fetch(), 2.0);
}

TEST(Sim, BiggerCacheShrinksOverhead) {
  const SimSetup setup = make_setup();
  double overhead[2];
  int i = 0;
  for (const std::uint32_t kb : {1u, 16u}) {
    SimConfig config;
    config.cache = {kb * 1024, 32, 2};
    const auto base = simulate_uncompressed(config, setup.trace);
    const auto comp = simulate_compressed(config, setup.trace, setup.image);
    overhead[i++] = comp.cycles_per_fetch() / base.cycles_per_fetch();
  }
  EXPECT_LT(overhead[1], overhead[0]);
}

TEST(Sim, ClbReducesRefillCycles) {
  const SimSetup setup = make_setup();
  SimConfig with;
  with.cache = {2 * 1024, 32, 2};
  SimConfig without = with;
  without.use_clb = false;
  const auto a = simulate_compressed(with, setup.trace, setup.image);
  const auto b = simulate_compressed(without, setup.trace, setup.image);
  EXPECT_LT(a.fetch_cycles, b.fetch_cycles);
  EXPECT_GT(a.clb_hit_rate(), 0.2);
}

TEST(Sim, MismatchedBlockSizeThrows) {
  const SimSetup setup = make_setup();
  SimConfig config;
  config.cache = {4 * 1024, 64, 2};  // line != image block size
  EXPECT_THROW(simulate_compressed(config, setup.trace, setup.image), ConfigError);
}

TEST(Sim, EnergyAccountingIsConsistent) {
  const SimSetup setup = make_setup();
  SimConfig config;
  config.cache = {4 * 1024, 32, 2};
  const auto base = simulate_uncompressed(config, setup.trace);
  const auto comp = simulate_compressed(config, setup.trace, setup.image);
  EXPECT_GT(base.energy_per_fetch_nj(), 0.0);
  EXPECT_GT(comp.energy_per_fetch_nj(), 0.0);
  // Every fetch pays at least the cache-hit energy.
  EXPECT_GE(base.energy_per_fetch_nj(), config.energy.cache_hit_nj);
  // Compressed refills move fewer memory bytes; with the default decode
  // energy they must not cost dramatically more than uncompressed ones.
  EXPECT_LT(comp.fetch_energy_nj, base.fetch_energy_nj * 1.5);
}

TEST(Sim, ZeroDecodeEnergyMakesCompressionWin) {
  // With free decoding, fewer transferred bytes must mean less energy
  // (modulo CLB-miss transactions, which the CLB keeps rare).
  const SimSetup setup = make_setup();
  SimConfig config;
  config.cache = {4 * 1024, 32, 2};
  config.energy.decode_byte_nj = 0.0;
  const auto base = simulate_uncompressed(config, setup.trace);
  const auto comp = simulate_compressed(config, setup.trace, setup.image);
  EXPECT_LT(comp.fetch_energy_nj, base.fetch_energy_nj);
}

TEST(Sim, MissRateMonotonicInCacheSize) {
  const SimSetup setup = make_setup();
  double prev = 1.1;
  for (const std::uint32_t kb : {1u, 4u, 16u, 64u}) {
    SimConfig config;
    config.cache = {kb * 1024, 32, 2};
    const auto r = simulate_uncompressed(config, setup.trace);
    EXPECT_LE(r.miss_rate(), prev + 0.02);  // allow tiny LRU anomalies
    prev = r.miss_rate();
  }
}

}  // namespace
}  // namespace ccomp::memsys
