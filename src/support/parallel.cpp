#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/obs.h"

namespace ccomp::par {
namespace {

/// Upper bound on pool workers — honors oversubscription requests (tests run
/// 8 threads on small machines) without letting a bad CCOMP_THREADS value
/// spawn thousands of threads.
constexpr std::size_t kMaxPoolThreads = 64;

/// True on pool worker threads; nested parallel regions run serially.
thread_local bool t_in_worker = false;

std::atomic<std::size_t> g_thread_override{0};

std::size_t env_or_hardware_threads() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("CCOMP_THREADS")) {
      const long n = std::atol(env);
      if (n > 0) return std::min<std::size_t>(static_cast<std::size_t>(n), kMaxPoolThreads);
    }
    return hardware_threads();
  }();
  return value;
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);  // workers spawn on demand via ensure_workers
  return pool;
}

}  // namespace

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t thread_count() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  return override != 0 ? override : env_or_hardware_threads();
}

void set_thread_count(std::size_t threads) {
  g_thread_override.store(std::min(threads, kMaxPoolThreads), std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) { ensure_workers(threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    CCOMP_COUNT("pool.tasks_submitted", 1);
    CCOMP_GAUGE_SET("pool.queue_depth", queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::ensure_workers(std::size_t threads) {
  const std::size_t target = std::min(threads, kMaxPoolThreads);
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < target) workers_.emplace_back([this] { worker_loop(); });
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      CCOMP_GAUGE_SET("pool.queue_depth", queue_.size());
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  std::size_t t = threads != 0 ? std::min(threads, kMaxPoolThreads) : thread_count();
  t = std::min(t, n);
  if (t <= 1 || t_in_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked self-scheduling: enough chunks per worker to absorb imbalance,
  // big enough to keep the atomic counter off the critical path.
  const std::size_t chunk = std::max<std::size_t>(1, n / (t * 8));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto body = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      // Each claim past a thread's fair share is work stolen from a slower
      // sibling; the counter makes chunk-level load balancing visible.
      CCOMP_COUNT("pool.chunks_claimed", 1);
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  ThreadPool& pool = shared_pool();
  pool.ensure_workers(t - 1);

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  const std::size_t helpers = t - 1;
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([&] {
      body();
      // Notify while holding the mutex: the waiter owns done_cv on its stack
      // and may destroy it the moment the predicate holds, so the signal must
      // complete before the lock is released.
      std::lock_guard<std::mutex> lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }

  // The calling thread participates; mark it as a worker so parallel
  // regions inside fn fall back to serial here too.
  const bool saved = t_in_worker;
  t_in_worker = true;
  body();
  t_in_worker = saved;

  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == helpers; });
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ccomp::par
