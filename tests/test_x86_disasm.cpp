#include <gtest/gtest.h>

#include "isa/x86/x86.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::x86 {
namespace {

std::string dis(std::initializer_list<std::uint8_t> bytes) {
  const std::vector<std::uint8_t> v(bytes);
  return disassemble(v);
}

TEST(X86Disasm, CommonInstructions) {
  EXPECT_EQ(dis({0x55}), "push ebp");
  EXPECT_EQ(dis({0x89, 0xE5}), "mov ebp, esp");
  EXPECT_EQ(dis({0x8B, 0x45, 0xF8}), "mov eax, [ebp-8]");
  EXPECT_EQ(dis({0x89, 0x45, 0xF8}), "mov [ebp-8], eax");
  EXPECT_EQ(dis({0x83, 0xEC, 0x18}), "sub esp, 24");
  EXPECT_EQ(dis({0xC3}), "ret");
  EXPECT_EQ(dis({0xC9}), "leave");
  EXPECT_EQ(dis({0x90}), "nop");
  EXPECT_EQ(dis({0xB8, 0x01, 0x00, 0x00, 0x00}), "mov eax, 0x1");
  EXPECT_EQ(dis({0xE8, 0xFB, 0xFF, 0xFF, 0xFF}), "call -5");
  EXPECT_EQ(dis({0x74, 0x10}), "je 16");
  EXPECT_EQ(dis({0x75, 0xF0}), "jne -16");
  EXPECT_EQ(dis({0x01, 0xD8}), "add eax, ebx");
  EXPECT_EQ(dis({0x31, 0xC0}), "xor eax, eax");
  EXPECT_EQ(dis({0x85, 0xC0}), "test eax, eax");
  EXPECT_EQ(dis({0x40}), "inc eax");
  EXPECT_EQ(dis({0x4F}), "dec edi");
  EXPECT_EQ(dis({0x6A, 0x03}), "push 3");
}

TEST(X86Disasm, SibAndScaledIndex) {
  EXPECT_EQ(dis({0x8B, 0x04, 0x24}), "mov eax, [esp]");
  EXPECT_EQ(dis({0x8B, 0x44, 0x24, 0x08}), "mov eax, [esp+8]");
  EXPECT_EQ(dis({0x8B, 0x04, 0x8B}), "mov eax, [ebx+ecx*4]");
  EXPECT_EQ(dis({0x8B, 0x05, 0x10, 0x20, 0x00, 0x00}), "mov eax, [8208]");
}

TEST(X86Disasm, TwoByteOpcodes) {
  EXPECT_EQ(dis({0x0F, 0xAF, 0xC1}), "imul eax, ecx");
  EXPECT_EQ(dis({0x0F, 0xB6, 0x45, 0xFF}), "movzx eax, [ebp-1]");
  EXPECT_EQ(dis({0x0F, 0x94, 0xC0}), "sete al");
  EXPECT_EQ(dis({0x0F, 0x45, 0xC2}), "cmovne eax, edx");
  EXPECT_EQ(dis({0x0F, 0x84, 0x00, 0x01, 0x00, 0x00}), "je 256");
}

TEST(X86Disasm, ShiftsAndGroups) {
  EXPECT_EQ(dis({0xC1, 0xE0, 0x04}), "shl eax, 4");
  EXPECT_EQ(dis({0xC1, 0xE8, 0x02}), "shr eax, 2");
  EXPECT_EQ(dis({0xF7, 0xD8}), "neg eax");
  EXPECT_EQ(dis({0xF7, 0xC0, 0x01, 0x00, 0x00, 0x00}), "test eax, 0x1");
  EXPECT_EQ(dis({0xFF, 0x75, 0x08}), "push [ebp+8]");
}

TEST(X86Disasm, X87Instructions) {
  EXPECT_EQ(dis({0xD9, 0x45, 0xF8}), "fld dword [ebp-8]");
  EXPECT_EQ(dis({0xD9, 0x5D, 0xF8}), "fstp dword [ebp-8]");
  EXPECT_EQ(dis({0xD8, 0x45, 0xF4}), "fadd dword [ebp-12]");
  EXPECT_EQ(dis({0xD8, 0x4D, 0xF4}), "fmul dword [ebp-12]");
  EXPECT_EQ(dis({0xDE, 0xC1}), "faddp st(1)");
  EXPECT_EQ(dis({0xDE, 0xC9}), "fmulp st(1)");
}

TEST(X86Disasm, PrefixesRender) {
  EXPECT_EQ(dis({0x66, 0xB8, 0x34, 0x12}), "mov ax, 0x1234");
  EXPECT_EQ(dis({0xF3, 0x90}), "rep nop");  // pause
}

TEST(X86Disasm, ProgramListingCoversGeneratedCode) {
  workload::Profile p = *workload::find_profile("m88ksim");
  p.code_kb = 8;
  const auto code = workload::generate_x86(p);
  const std::string listing = disassemble_program(code, 0x08048000);
  // One line per instruction, none of them a raw-byte fallback.
  std::size_t lines = 0;
  for (const char c : listing) lines += (c == '\n');
  EXPECT_EQ(lines, x86::decode_all(code).size());
  EXPECT_EQ(listing.find(" db 0x"), std::string::npos);
}

TEST(X86Disasm, AssemblerOutputReadsBack) {
  Assembler a;
  a.mov_r_rm(Assembler::EAX, Assembler::EBP, -8);
  a.alu_r_imm(Assembler::ADD, Assembler::EAX, 1);
  a.mov_rm_r(Assembler::EBP, -8, Assembler::EAX);
  const std::string listing = disassemble_program(a.code());
  EXPECT_NE(listing.find("mov eax, [ebp-8]"), std::string::npos);
  EXPECT_NE(listing.find("add eax, 1"), std::string::npos);
  EXPECT_NE(listing.find("mov [ebp-8], eax"), std::string::npos);
}

}  // namespace
}  // namespace ccomp::x86
