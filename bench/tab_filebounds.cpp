// Table T-FB: file-oriented bounds (paper Sec. 1). Finite-context models
// (PPM family) achieve the best ratios but need megabytes of model memory
// and sequential decoding; Ziv-Lempel coders need the whole file prefix.
// Neither fits a cache-line refill engine. This table quantifies the gap
// between those bounds and the block-random-access codecs, including the
// decompressor state each scheme needs.
#include <cstdio>

#include "baseline/filecodecs.h"
#include "bench_common.h"
#include "coding/ppm.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_filebounds", argc, argv);
  std::printf("Table T-FB: file-oriented bounds vs block codecs, MIPS (scale=%.2f)\n", scale);

  core::RatioTable table("ratio (lower = better)",
                         {"compress", "gzip", "PPM", "SAMC", "SADC"});
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;

  std::size_t samc_tables = 0, sadc_tables = 0;
  for (const char* name : {"compress", "gcc", "go", "swim", "vortex", "xlisp"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    const auto ppm = coding::ppm_compress(code);
    const auto samc_image = samc_codec.compress(code);
    const auto sadc_image = sadc_codec.compress(code);
    samc_tables = samc_image.sizes().tables;
    sadc_tables = sadc_image.sizes().tables;
    const double row[] = {
        baseline::unix_compress(code).ratio(), baseline::gzip_like(code).ratio(),
        static_cast<double>(ppm.size()) / static_cast<double>(code.size()),
        samc_image.sizes().ratio(), sadc_image.sizes().ratio()};
    table.add_row(p.name, row);
    json.add(p.name, "compress_ratio", row[0], "ratio");
    json.add(p.name, "gzip_ratio", row[1], "ratio");
    json.add(p.name, "ppm_ratio", row[2], "ratio");
    json.add(p.name, "samc_ratio", row[3], "ratio");
    json.add(p.name, "sadc_ratio", row[4], "ratio");
    std::fflush(stdout);
  }
  table.print();

  std::printf("\nDecompressor state (why the paper rules the bounds out):\n");
  std::printf("  PPM model memory:       %8zu KB, sequential-only\n",
              coding::ppm_model_bytes() / 1024);
  std::printf("  LZW dictionary:         %8u KB, sequential-only\n", 256u);
  std::printf("  gzip window:            %8u KB, sequential-only\n", 32u);
  std::printf("  SAMC probability tables:%8zu B, random access per block\n", samc_tables);
  std::printf("  SADC dict+Huffman:      %8zu B, random access per block\n", sadc_tables);
  return 0;
}
