// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as the integrity trailer of serialized CompressedImage containers:
// a boot-ROM loader verifies the checksum before trusting any table, so a
// single flipped bit anywhere in the image is rejected at load time instead
// of surfacing as a wrong instruction word mid-refill.
#pragma once

#include <cstdint>
#include <span>

namespace ccomp {

/// CRC of `data` continuing from `seed` (pass the previous return value to
/// checksum discontiguous pieces). The default seed is the standard
/// whole-buffer CRC-32.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace ccomp
