// SAMC — Semiadaptive Markov Compression (paper Sec. 3).
//
// ISA-independent: assumes only fixed-size instruction words. Instructions
// are split into bit streams (default: four 8-bit streams for 32-bit RISC
// words; a single 8-bit stream for byte-granular CISC code), a Markov tree
// per stream is trained over the subject program, and each cache block is
// arithmetic-coded independently: the coder interval and the Markov walk
// both reset at every block boundary so the refill engine can start from
// any block (the paper's random-access requirement).
//
// The compressed image stores the probability tables (charged to the
// compression ratio, as the paper does) and the per-block payloads behind a
// LAT. The hardware-motivated variants — probabilities quantized to powers
// of 1/2 so midpoint updates are shift-only, and the 4-bit parallel decode
// organisation of Fig. 5 — are exposed as options / analysis helpers.
#pragma once

#include <memory>

#include "coding/markov.h"
#include "core/codec.h"

namespace ccomp::samc {

/// Which entropy coder backs the per-block bit streams. Both are bit-exact
/// and driven by the same Markov probabilities; they differ in decode-loop
/// shape (the range coder carries low/range/code, rANS is a single integer
/// state — see coding/rans.h) and race each other in bench/tab_decodespeed.
enum class EntropyCoder { kRange, kRans };

struct SamcOptions {
  coding::MarkovConfig markov;
  /// Uncompressed bytes per compression block (= cache line size).
  std::uint32_t block_size = 32;
  core::IsaKind isa = core::IsaKind::kMips;
  /// Use the Fig. 5 parallel-decode arithmetic: nibble-granular interval
  /// renormalization with the decoder evaluating all 15 midpoints of each
  /// 4-bit group. Requires quantized probabilities (max_shift <= 8) and
  /// stream widths divisible by 4 — the hardware's constraints.
  bool parallel_nibble_mode = false;
  /// Number of independent entropy streams per block (1..16). With K > 1 a
  /// block's words are partitioned into K contiguous chunks, each coded by
  /// its own coder + Markov walk, and the decoder round-robins K coder
  /// states in one loop — K independent dependency chains instead of one,
  /// which is what breaks the serial decoder's mispredict/latency floor.
  /// K = 1 keeps the legacy frameless block format byte-identical.
  unsigned entropy_streams = 1;
  /// Entropy coder backend (ignored in parallel_nibble_mode, which has its
  /// own nibble-granular range coder).
  EntropyCoder entropy_coder = EntropyCoder::kRange;
};

/// Defaults the paper found close to optimal for MIPS: 4 adjacent 8-bit
/// streams, connected trees (1 context bit).
SamcOptions mips_defaults();

/// Pentium/byte-granular defaults: one 8-bit stream per code byte,
/// connected trees across bytes.
SamcOptions x86_defaults();

/// Which decode engine make_decompressor builds.
///
/// kPlan (the default) compiles the model into a coding::MarkovDecodePlan —
/// the flattened state machine the refill hot path runs on — and falls back
/// to the cursor automatically when the model is too large to flatten. For
/// images encoded with entropy_streams > 1 it round-robins the K coder
/// states in one interleaved loop.
/// kPlanSerial runs the same plan but decodes the K chunks one after the
/// other — the yardstick the interleaved engine is raced against in the
/// equivalence suite and bench/tab_decodespeed.
/// kCursor forces the original MarkovCursor walk; it exists for the
/// plan-vs-cursor equivalence suite and benchmarks, not for production use.
enum class DecodeEngine { kPlan, kPlanSerial, kCursor };

class SamcCodec final : public core::BlockCodec {
 public:
  explicit SamcCodec(SamcOptions options);

  std::string_view name() const override { return "SAMC"; }

  core::CompressedImage compress(std::span<const std::uint8_t> code) const override;

  /// Compress with a caller-supplied (pre-trained) model instead of the
  /// semiadaptive two-pass scheme. This is the *static model* alternative
  /// the paper's dictionary taxonomy describes (Sec. 4: static tables are
  /// built once for all programs, semiadaptive per program, with the
  /// semiadaptive ones "clearly" compressing better — measured by
  /// bench/tab_static). The model's division must match this codec's.
  core::CompressedImage compress_with_model(std::span<const std::uint8_t> code,
                                            const coding::MarkovModel& model) const;

  /// Train this codec's model on a program without compressing (for the
  /// static-model workflow: train once, ship the table, reuse everywhere).
  coding::MarkovModel train_model(std::span<const std::uint8_t> code) const;

  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image) const override;

  /// Engine-selecting overload (see DecodeEngine). The BlockCodec override
  /// above is equivalent to passing DecodeEngine::kPlan.
  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image, DecodeEngine engine) const;

  const SamcOptions& options() const { return options_; }

  /// Model-only estimate of the compressed payload bits for `code` (no coder
  /// or block-flush overhead) under this codec's configuration. Used by the
  /// stream-division optimizer and by tests that bound coder overhead.
  double estimate_payload_bits(std::span<const std::uint8_t> code) const;

 private:
  std::vector<std::uint32_t> code_to_words(std::span<const std::uint8_t> code) const;

  SamcOptions options_;
};

/// Cost model of the paper's Fig. 5 parallel decoder: decoding d bits per
/// cycle requires 2^d - 1 midpoint units and 2^d - 1 stored probabilities
/// fetched per cycle. Returns the number of midpoint/comparator units.
std::size_t parallel_decode_units(unsigned bits_per_cycle);

/// Cycles to decompress one block of `block_size` bytes with a decoder that
/// resolves `bits_per_cycle` bits per cycle (plus fixed per-block startup).
std::size_t samc_decode_cycles(std::uint32_t block_size, unsigned bits_per_cycle,
                               unsigned startup_cycles = 4);

}  // namespace ccomp::samc
