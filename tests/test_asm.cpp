#include "isa/mips/asm.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"

namespace ccomp::mips {
namespace {

TEST(Assembler, EncodesCanonicalInstructions) {
  const auto words = assemble(R"(
    addiu $sp, $sp, -32
    sw    $ra, 28($sp)
    addu  $t0, $s1, $s2
    jr    $ra
  )");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], 0x27BDFFE0u);
  EXPECT_EQ(words[1], 0xAFBF001Cu);
  EXPECT_EQ(words[2], 0x02324021u);
  EXPECT_EQ(words[3], 0x03E00008u);
}

TEST(Assembler, NumericRegistersAndHexImmediates) {
  const auto words = assemble("ori $8, $0, 0xFF\nlui $9, 0x1000");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(disassemble(words[0]), "ori $t0, $zero, 255");
  const auto d = decode(words[1]);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->imm16, 0x1000);
}

TEST(Assembler, LabelsResolveBranchesAndJumps) {
  const auto words = assemble(R"(
start:
    beq $a0, $zero, done
    nop
    b start
    nop
done:
    jal start
    nop
  )");
  ASSERT_EQ(words.size(), 6u);
  // beq at 0 targets done at 4: offset = 4 - 1 = 3.
  EXPECT_EQ(words[0] & 0xFFFF, 3u);
  // b (beq) at 2 targets start at 0: offset = 0 - 3 = -3.
  EXPECT_EQ(static_cast<std::int16_t>(words[2] & 0xFFFF), -3);
  // jal targets base + 0.
  EXPECT_EQ(words[4] & 0x03FFFFFF, 0x00400000u >> 2);
}

TEST(Assembler, PseudoInstructions) {
  const auto words = assemble("nop\nmove $t0, $s0\nli $v0, 10");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(disassemble(words[1]), "addu $t0, $s0, $zero");
  EXPECT_EQ(disassemble(words[2]), "ori $v0, $zero, 10");
}

TEST(Assembler, NegativeLiRewritesToAddiu) {
  const auto words = assemble("li $t0, -5");
  const auto d = decode(words[0]);
  ASSERT_TRUE(d);
  EXPECT_STREQ(opcode_table()[d->opcode].mnemonic, "addiu");
  EXPECT_EQ(static_cast<std::int16_t>(d->imm16), -5);
}

TEST(Assembler, ShiftAmounts) {
  const auto words = assemble("sll $t0, $t1, 4\nsrl $t2, $t2, 16");
  const auto d = decode(words[0]);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->regs[2], 4);
}

TEST(Assembler, FloatingPointRegisters) {
  const auto words = assemble(R"(
    lwc1 $f2, 8($sp)
    lwc1 $f4, 12($sp)
    add.s $f6, $f2, $f4
    swc1 $f6, 16($sp)
  )");
  ASSERT_EQ(words.size(), 4u);
  const auto d = decode(words[2]);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->regs[0], 6);  // fd
  EXPECT_EQ(d->regs[1], 2);  // fs
  EXPECT_EQ(d->regs[2], 4);  // ft
}

TEST(Assembler, WordDirectiveAndComments) {
  const auto words = assemble(R"(
    .word 0xDEADBEEF   # raw data
    nop                ; other comment style
  )");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], 0xDEADBEEFu);
}

TEST(Assembler, RoundTripsThroughDisassembler) {
  // Assemble, disassemble, re-assemble: the words must be identical.
  const char* source = R"(
    addiu $sp, $sp, -40
    sw    $ra, 36($sp)
    sw    $s0, 32($sp)
    lw    $t0, 0($a1)
    slt   $at, $t0, $a0
    mult  $t0, $a3
    mflo  $t2
    andi  $t3, $t2, 0xFF
    sb    $t3, 4($a2)
    lw    $ra, 36($sp)
    addiu $sp, $sp, 40
    jr    $ra
    nop
  )";
  const auto words = assemble(source);
  std::string listing;
  for (const auto w : words) listing += disassemble(w) + "\n";
  // The disassembler prints "lw $t1, $sp, 44" style (flat operands), which
  // the assembler accepts as reg, reg, imm for I-format rows.
  const auto again = assemble(listing);
  EXPECT_EQ(again, words);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus $t0, $t1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, RejectsBadOperands) {
  EXPECT_THROW(assemble("addu $t0, $t1"), AsmError);          // missing reg
  EXPECT_THROW(assemble("addu $t0, $t1, $t2, $t3"), AsmError);  // extra reg
  EXPECT_THROW(assemble("addiu $t0, $t1, 99999"), AsmError);  // imm range
  EXPECT_THROW(assemble("jr $nosuch"), AsmError);             // bad register
  EXPECT_THROW(assemble("beq $a0, $zero, nowhere"), AsmError);  // undefined label
  EXPECT_THROW(assemble("x: nop\nx: nop"), AsmError);         // duplicate label
  EXPECT_THROW(assemble("sll $t0, $t0, 42"), AsmError);       // shamt range
  EXPECT_THROW(assemble("jr 5"), AsmError);                   // jr takes no imm
}

TEST(Assembler, AssembledProgramDecodesEverywhere) {
  const auto words = assemble(R"(
    f:  addiu $sp, $sp, -16
        sw $ra, 12($sp)
        jal f
        nop
        lw $ra, 12($sp)
        addiu $sp, $sp, 16
        jr $ra
        nop
  )");
  for (const auto w : words) EXPECT_TRUE(decode(w).has_value());
}

}  // namespace
}  // namespace ccomp::mips
