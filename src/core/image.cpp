#include "core/image.h"

#include "support/crc32.h"
#include "support/ecc.h"
#include "support/error.h"

namespace ccomp::core {

namespace {

// Header flags byte (format v2; was the 0/1 "variable blocks" byte in v1,
// so bit 0 keeps the v1 meaning and v1 images parse unchanged).
constexpr std::uint8_t kFlagVariableBlocks = 0x01;
constexpr std::uint8_t kFlagHasEcc = 0x02;
constexpr std::uint8_t kFlagHasCertificate = 0x04;
constexpr std::uint8_t kFlagHasLayout = 0x08;
constexpr std::uint8_t kKnownFlags =
    kFlagVariableBlocks | kFlagHasEcc | kFlagHasCertificate | kFlagHasLayout;

}  // namespace

CompressedImage::CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                                 std::uint64_t original_size, std::vector<std::uint8_t> tables,
                                 std::vector<std::uint32_t> block_offsets,
                                 std::vector<std::uint8_t> payload)
    : CompressedImage(codec, isa, block_size, original_size, std::move(tables),
                      std::move(block_offsets), std::move(payload), {}) {}

CompressedImage::CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                                 std::uint64_t original_size, std::vector<std::uint8_t> tables,
                                 std::vector<std::uint32_t> block_offsets,
                                 std::vector<std::uint8_t> payload,
                                 std::vector<std::uint32_t> block_original_sizes)
    : codec_(codec),
      isa_(isa),
      block_size_(block_size),
      original_size_(original_size),
      tables_(std::move(tables)),
      block_offsets_(std::move(block_offsets)),
      payload_(std::move(payload)),
      block_original_sizes_(std::move(block_original_sizes)) {
  if (block_size_ == 0) throw ConfigError("block_size must be nonzero");
  if (block_offsets_.empty() || block_offsets_.back() != payload_.size())
    throw ConfigError("block offsets must end with a payload-size sentinel");
  for (std::size_t i = 1; i < block_offsets_.size(); ++i)
    if (block_offsets_[i] < block_offsets_[i - 1])
      throw ConfigError("block offsets must be non-decreasing");
  if (block_original_sizes_.empty()) {
    const std::size_t expected_blocks =
        static_cast<std::size_t>((original_size_ + block_size_ - 1) / block_size_);
    if (block_offsets_.size() != expected_blocks + 1)
      throw ConfigError("block count inconsistent with original size");
  } else {
    if (block_original_sizes_.size() + 1 != block_offsets_.size())
      throw ConfigError("per-block size list inconsistent with block count");
    block_original_offsets_.reserve(block_original_sizes_.size() + 1);
    std::uint64_t acc = 0;
    block_original_offsets_.push_back(0);
    for (const std::uint32_t s : block_original_sizes_) {
      acc += s;
      block_original_offsets_.push_back(acc);
    }
    if (acc != original_size_)
      throw ConfigError("per-block sizes do not sum to the original size");
  }
}

std::span<const std::uint8_t> CompressedImage::block_payload(std::size_t index) const {
  if (index + 1 >= block_offsets_.size()) throw ConfigError("block index out of range");
  const std::uint32_t begin = block_offsets_[index];
  const std::uint32_t end = block_offsets_[index + 1];
  // The constructor proves these invariants, but a runtime fault in the
  // stored LAT (mutable_lat_bytes) can break them afterwards — re-check so a
  // damaged offset is a typed error, never an out-of-bounds span.
  if (begin > end || end > payload_.size())
    throw CorruptDataError("LAT offset points outside the payload");
  return std::span<const std::uint8_t>(payload_).subspan(begin, end - begin);
}

std::size_t CompressedImage::block_original_size(std::size_t index) const {
  if (index + 1 >= block_offsets_.size()) throw ConfigError("block index out of range");
  if (!block_original_sizes_.empty()) return block_original_sizes_[index];
  const std::uint64_t begin = static_cast<std::uint64_t>(index) * block_size_;
  const std::uint64_t end = begin + block_size_ < original_size_ ? begin + block_size_
                                                                 : original_size_;
  return static_cast<std::size_t>(end - begin);
}

std::uint64_t CompressedImage::block_original_offset(std::size_t index) const {
  if (index >= block_offsets_.size()) throw ConfigError("block index out of range");
  if (!block_original_offsets_.empty()) return block_original_offsets_[index];
  return static_cast<std::uint64_t>(index) * block_size_;
}

void CompressedImage::attach_ecc() {
  const std::size_t blocks = block_count();
  ecc_offsets_.assign(1, 0);
  ecc_offsets_.reserve(blocks + 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    total += ecc::ecc_bytes_for(block_offsets_[i + 1] - block_offsets_[i]);
    ecc_offsets_.push_back(static_cast<std::uint32_t>(total));
  }
  ecc_.assign(total, 0);
  for (std::size_t i = 0; i < blocks; ++i) {
    ecc::encode_block(block_payload(i),
                      std::span<std::uint8_t>(ecc_).subspan(
                          ecc_offsets_[i], ecc_offsets_[i + 1] - ecc_offsets_[i]));
  }
}

void CompressedImage::attach_ecc(std::vector<std::uint8_t> ecc) {
  const std::size_t blocks = block_count();
  std::vector<std::uint32_t> offsets(1, 0);
  offsets.reserve(blocks + 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    total += ecc::ecc_bytes_for(block_offsets_[i + 1] - block_offsets_[i]);
    offsets.push_back(static_cast<std::uint32_t>(total));
  }
  if (ecc.size() != total)
    throw CorruptDataError("ECC section size inconsistent with block payload sizes");
  ecc_ = std::move(ecc);
  ecc_offsets_ = std::move(offsets);
}

void CompressedImage::attach_certificate(std::vector<std::uint8_t> blob) {
  if (blob.empty()) throw ConfigError("certificate blob must be non-empty");
  certificate_ = std::move(blob);
}

void CompressedImage::attach_layout(std::vector<std::uint8_t> blob) {
  if (blob.empty()) throw ConfigError("layout blob must be non-empty");
  layout_ = std::move(blob);
}

void CompressedImage::drop_ecc() {
  ecc_.clear();
  ecc_offsets_.clear();
}

std::span<const std::uint8_t> CompressedImage::block_ecc(std::size_t index) const {
  if (!has_ecc()) throw ConfigError("image has no ECC section");
  if (index + 1 >= ecc_offsets_.size()) throw ConfigError("block index out of range");
  return std::span<const std::uint8_t>(ecc_).subspan(
      ecc_offsets_[index], ecc_offsets_[index + 1] - ecc_offsets_[index]);
}

std::size_t CompressedImage::lat_bytes() const {
  // Group-anchored LAT: a 4-byte absolute offset every 8 blocks, plus a
  // 1- or 2-byte length per block (2 when any block in the image exceeds
  // 255 compressed bytes). This is the standard way to keep the table small
  // while still allowing one-lookup refills. Variable-block images also
  // store each block's original length alongside (1 byte).
  const std::size_t blocks = block_count();
  if (blocks == 0) return 0;
  std::size_t len_bytes = 1;
  for (std::size_t i = 0; i < blocks; ++i)
    if (block_offsets_[i + 1] - block_offsets_[i] > 0xFF) {
      len_bytes = 2;
      break;
    }
  const std::size_t groups = (blocks + 7) / 8;
  const std::size_t variable_extra = block_original_sizes_.empty() ? 0 : blocks;
  return groups * 4 + blocks * len_bytes + variable_extra;
}

SizeBreakdown CompressedImage::sizes() const {
  SizeBreakdown s;
  s.original = static_cast<std::size_t>(original_size_);
  s.payload = payload_.size();
  s.tables = tables_.size();
  s.lat = lat_bytes();
  s.ecc = ecc_.size();
  s.layout = layout_.size();
  return s;
}

void CompressedImage::serialize(ByteSink& sink) const {
  const std::size_t start = sink.size();
  sink.u32(0x43434D50u);  // 'CCMP'
  sink.u8(static_cast<std::uint8_t>(codec_));
  sink.u8(static_cast<std::uint8_t>(isa_));
  std::uint8_t flags = 0;
  if (!block_original_sizes_.empty()) flags |= kFlagVariableBlocks;
  if (has_ecc()) flags |= kFlagHasEcc;
  if (has_certificate()) flags |= kFlagHasCertificate;
  if (has_layout()) flags |= kFlagHasLayout;
  sink.u8(flags);
  sink.u32(block_size_);
  sink.u64(original_size_);
  sink.sized_bytes(tables_);
  sink.varint(block_offsets_.size());
  std::uint32_t prev = 0;
  for (const std::uint32_t off : block_offsets_) {
    sink.varint(off - prev);  // delta encoding
    prev = off;
  }
  if (!block_original_sizes_.empty()) {
    for (const std::uint32_t s : block_original_sizes_) sink.varint(s);
  }
  sink.sized_bytes(payload_);
  if (has_ecc()) sink.sized_bytes(ecc_);
  if (has_certificate()) sink.sized_bytes(certificate_);
  if (has_layout()) sink.sized_bytes(layout_);
  // Integrity trailer: a loader can reject a flipped bit anywhere in the
  // image before trusting any table or offset.
  sink.u32(crc32(sink.view().subspan(start)));
}

CompressedImage CompressedImage::deserialize(ByteSource& src, bool verify_checksum) {
  const std::size_t start = src.position();
  if (src.u32() != 0x43434D50u) throw CorruptDataError("bad image magic");
  const auto codec = static_cast<CodecKind>(src.u8());
  const auto isa = static_cast<IsaKind>(src.u8());
  const std::uint8_t flags = src.u8();
  if ((flags & ~kKnownFlags) != 0) throw CorruptDataError("unknown image header flags");
  const bool variable = (flags & kFlagVariableBlocks) != 0;
  const bool has_ecc = (flags & kFlagHasEcc) != 0;
  const bool has_certificate = (flags & kFlagHasCertificate) != 0;
  const bool has_layout = (flags & kFlagHasLayout) != 0;
  const std::uint32_t block_size = src.u32();
  const std::uint64_t original_size = src.u64();
  std::vector<std::uint8_t> tables = src.sized_bytes();
  const std::uint64_t offset_count = src.varint();
  // Each delta-encoded offset takes at least one byte, so the count can
  // never exceed the remaining container size — reject before allocating.
  if (offset_count == 0 || offset_count > src.remaining())
    throw CorruptDataError("bad LAT size");
  std::vector<std::uint32_t> offsets;
  offsets.reserve(static_cast<std::size_t>(offset_count));
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < offset_count; ++i) {
    acc += src.varint();
    if (acc > 0xFFFFFFFFull) throw CorruptDataError("LAT offset overflow");
    offsets.push_back(static_cast<std::uint32_t>(acc));
  }
  std::vector<std::uint32_t> original_sizes;
  if (variable) {
    original_sizes.reserve(static_cast<std::size_t>(offset_count - 1));
    for (std::uint64_t i = 0; i + 1 < offset_count; ++i) {
      const std::uint64_t s = src.varint();
      if (s > 0xFFFFFFFFull) throw CorruptDataError("block size overflow");
      original_sizes.push_back(static_cast<std::uint32_t>(s));
    }
  }
  std::vector<std::uint8_t> payload = src.sized_bytes();
  std::vector<std::uint8_t> ecc;
  if (has_ecc) ecc = src.sized_bytes();
  std::vector<std::uint8_t> certificate;
  if (has_certificate) {
    certificate = src.sized_bytes();
    if (certificate.empty()) throw CorruptDataError("empty certificate section");
  }
  std::vector<std::uint8_t> layout;
  if (has_layout) {
    layout = src.sized_bytes();
    if (layout.empty()) throw CorruptDataError("empty layout section");
  }
  const std::size_t end = src.position();
  const std::uint32_t stored_crc = src.u32();
  if (verify_checksum && stored_crc != crc32(src.window(start, end)))
    throw ChecksumError("image CRC mismatch");
  CompressedImage image(codec, isa, block_size, original_size, std::move(tables),
                        std::move(offsets), std::move(payload), std::move(original_sizes));
  if (has_ecc) image.attach_ecc(std::move(ecc));
  if (has_certificate) image.attach_certificate(std::move(certificate));
  if (has_layout) image.attach_layout(std::move(layout));
  return image;
}

}  // namespace ccomp::core
