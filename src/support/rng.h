// Deterministic pseudo-random number generation for workload synthesis.
//
// Everything in the benchmark pipeline must be reproducible from a single
// seed, so we use our own small generators instead of std::mt19937 (whose
// distributions are not guaranteed identical across standard libraries).
#pragma once

#include <cstdint>
#include <span>

namespace ccomp {

/// SplitMix64: used for seeding and cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedc0de5eedc0deull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli(p).
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Pick an index from a discrete distribution given by non-negative weights.
  /// Returns weights.size() if all weights are zero.
  std::size_t pick_weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return weights.size();
    double r = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Geometric-ish skew: picks from [0, n) with probability proportional to
  /// decay^index. Used to model skewed register / opcode usage.
  std::size_t pick_skewed(std::size_t n, double decay) {
    if (n == 0) return 0;
    // Inverse-CDF sampling on the truncated geometric distribution.
    double u = next_double();
    double p = 1.0 - decay;
    double cum = 0.0;
    double w = p;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      cum += w;
      if (u < cum) return i;
      w *= decay;
    }
    return n - 1;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ccomp
