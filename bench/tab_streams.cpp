// Ablation T-SD: stream subdivision. The paper states that dividing 32-bit
// instructions into four 8-bit streams is close to optimal, and describes a
// randomized bit-exchange optimizer. Compare contiguous divisions of
// several widths against the optimizer's output.
//
// Ablation T-EK (second table): entropy-stream interleaving cost. Encoding
// each block as K independent entropy streams (--streams=K) buys decode
// parallelism but costs ratio — K-1 u16 frame lengths per block plus K
// coder terminations instead of one. At the paper's 32-byte (cache-line)
// blocks a termination is a large fraction of the ~18-byte compressed
// block, so the cost is steep and grows linearly in K; the table puts the
// ratio side of tab_decodespeed's throughput/ratio tradeoff on record.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "samc/optimizer.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_streams", argc, argv);
  std::printf("Table T-SD: SAMC stream-division sensitivity (scale=%.2f)\n", scale);

  core::RatioTable table("SAMC ratio vs stream division",
                         {"2x16", "4x8", "8x4", "16x2", "optimized"});

  for (const char* name : {"gcc", "go", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto words = workload::generate_mips(p);
    const auto code = mips::words_to_bytes(words);
    std::vector<double> row;
    for (const unsigned streams : {2u, 4u, 8u, 16u}) {
      samc::SamcOptions o = samc::mips_defaults();
      o.markov.division = coding::StreamDivision::contiguous(32, streams);
      row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
      json.add(name, "samc_ratio_" + std::to_string(streams) + "streams", row.back(),
               "ratio");
    }
    samc::OptimizerOptions opt;
    opt.swap_attempts = 120;
    opt.sample_words = 8192;
    samc::SamcOptions o = samc::mips_defaults();
    o.markov.division = samc::optimize_division(words, opt);
    row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
    json.add(name, "samc_ratio_optimized", row.back(), "ratio");
    table.add_row(name, row);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nPaper expectation: 4x8 close to optimal; optimizer matches or beats it.\n");

  std::printf("\nTable T-EK: SAMC ratio vs entropy streams per block (interleaved decode)\n");
  core::RatioTable ek_table("SAMC ratio vs entropy streams x coder",
                            {"range K=1", "range K=2", "range K=4", "range K=8",
                             "rans K=1", "rans K=4"});
  for (const char* name : {"gcc", "go", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    std::vector<double> row;
    const auto ratio_at = [&](samc::EntropyCoder coder, unsigned k) {
      samc::SamcOptions o = samc::mips_defaults();
      o.entropy_coder = coder;
      o.entropy_streams = k;
      const double r = samc::SamcCodec(o).compress(code).sizes().ratio();
      const char* cname = coder == samc::EntropyCoder::kRans ? "rans" : "range";
      json.add(name, "samc_ratio", r, "ratio", k, cname);
      return r;
    };
    for (const unsigned k : {1u, 2u, 4u, 8u})
      row.push_back(ratio_at(samc::EntropyCoder::kRange, k));
    for (const unsigned k : {1u, 4u})
      row.push_back(ratio_at(samc::EntropyCoder::kRans, k));
    ek_table.add_row(name, row);
    std::fflush(stdout);
  }
  ek_table.print();
  std::printf("\nPer-stream cost is (K-1) * 2 frame bytes plus one coder termination per\n"
              "stream, charged against a ~18-byte compressed block at the paper's\n"
              "32-byte cache-line blocks — so K=4 costs ~0.2 of ratio and K=8 erases\n"
              "the compression win. Interleaving pays only when the block size is\n"
              "raised alongside K (or decode speed is worth more than ratio). The\n"
              "rANS column tracks the range coder's shape but starts ~0.1 higher:\n"
              "its termination flushes a fixed 4-byte final state, where the range\n"
              "coder's zero-fill convention lets it drop trailing bytes.\n");
  return 0;
}
