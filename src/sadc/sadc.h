// SADC — Semiadaptive Dictionary Compression (paper Sec. 4).
//
// ISA-dependent. For MIPS, instructions split into four streams: opcode,
// register, 16-bit immediate, 26-bit immediate. A per-program dictionary of
// up to 256 symbols is grown iteratively: each cycle the builder counts
// adjacent symbol pairs/triples and frequent opcode+register /
// opcode+immediate combinations, computes the paper's gain heuristic for
// every candidate, admits the best one, and re-parses the program (greedy,
// never across cache-block boundaries, so every block stays independently
// decodable). The final streams are canonical-Huffman coded.
//
// For x86 (Pentium), instructions split into three byte streams — opcode
// (incl. prefixes), ModRM+SIB, immediates+displacements — with the same
// sequence dictionary over opcode tokens but no operand specialisation
// (the paper's deliberately crude CISC variant).
#pragma once

#include <memory>

#include "core/codec.h"
#include "sadc/symbols.h"

namespace ccomp::sadc {

/// How each block is segmented into dictionary symbols once the dictionary
/// is fixed. The paper uses greedy parsing ("the most popular due to its
/// simplicity and speed"); optimal parsing solves the same segmentation as
/// a shortest path, trading compression time for a minimal symbol count.
enum class ParseMode : std::uint8_t { kGreedy, kOptimal };

struct SadcOptions {
  std::uint32_t block_size = 32;   // uncompressed bytes per block
  std::size_t max_symbols = kMaxSymbols;
  /// Candidate group sizes scanned each cycle (the paper uses 2 and 3).
  unsigned max_group = 3;
  /// Enable opcode+register / opcode+immediate specialisation (MIPS only).
  bool specialize_operands = true;
  /// Upper bound on dictionary build cycles (safety valve; the gain
  /// heuristic normally terminates the build well before this).
  unsigned max_cycles = 512;
  /// Final segmentation strategy (MIPS codec; the dictionary itself is
  /// always grown with the paper's greedy/iterative procedure).
  ParseMode parse_mode = ParseMode::kGreedy;
};

/// MIPS SADC codec.
class SadcMipsCodec final : public core::BlockCodec {
 public:
  explicit SadcMipsCodec(SadcOptions options = {});

  std::string_view name() const override { return "SADC"; }
  core::CompressedImage compress(std::span<const std::uint8_t> code) const override;
  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image) const override;

  /// Build a dictionary without compressing — the *static dictionary*
  /// workflow of the paper's Sec. 4 taxonomy: build once on a donor
  /// program, reuse for many subjects.
  SymbolTable build_dictionary(std::span<const std::uint8_t> code) const;

  /// Compress against a pre-built (donor) dictionary. Base opcodes the
  /// donor lacks are appended (the extended table travels in the image);
  /// segmentation against the donor's phrases uses the bit-cost DP parser.
  core::CompressedImage compress_with_dictionary(std::span<const std::uint8_t> code,
                                                 const SymbolTable& dictionary) const;

  const SadcOptions& options() const { return options_; }

 private:
  SadcOptions options_;
};

/// x86 (Pentium) SADC codec: three byte streams, sequence dictionary only.
class SadcX86Codec final : public core::BlockCodec {
 public:
  explicit SadcX86Codec(SadcOptions options = {});

  std::string_view name() const override { return "SADC"; }
  core::CompressedImage compress(std::span<const std::uint8_t> code) const override;
  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image) const override;

  const SadcOptions& options() const { return options_; }

 private:
  SadcOptions options_;
};

}  // namespace ccomp::sadc
