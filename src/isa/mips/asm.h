// Two-pass MIPS assembler.
//
// Turns textual assembly into instruction words using the same opcode table
// the rest of the library decodes against, which gives examples and tests a
// way to build real, meaningful programs (with labels, branches, and calls)
// instead of opaque hex. Supported syntax:
//
//   label:                     # labels, one per line or inline
//   addu  $t0, $s1, $s2        # registers by ABI name or $0..$31, $fN
//   addiu $sp, $sp, -32        # decimal or 0x... immediates
//   lw    $ra, 28($sp)         # memory operands off($base)
//   beq   $a0, $zero, done     # branch targets: labels or numeric offsets
//   jal   helper               # jump targets: labels or absolute addresses
//   sll   $t0, $t0, 2
//   nop / move / li / b        # common pseudo-instructions
//   .word 0x0000000c           # raw words
//
// Comments start with '#' or ';'. Errors carry the 1-based line number.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace ccomp::mips {

class AsmError : public Error {
 public:
  AsmError(std::size_t line, const std::string& what)
      : Error("asm line " + std::to_string(line) + ": " + what), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct AssembleOptions {
  /// Address of the first instruction; jal/j targets are encoded from it.
  std::uint32_t base_address = 0x00400000;
};

/// Assemble a program. Throws AsmError on any syntax or semantic problem.
std::vector<std::uint32_t> assemble(std::string_view source,
                                    const AssembleOptions& options = {});

}  // namespace ccomp::mips
