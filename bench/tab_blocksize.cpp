// Ablation T-BS: the paper claims "different cache block sizes have a
// minimal impact on the results presented". Sweep block sizes for SAMC and
// SADC on a representative benchmark subset.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_blocksize", argc, argv);
  std::printf("Table T-BS: block-size sensitivity on MIPS (scale=%.2f)\n", scale);

  const std::uint32_t block_sizes[] = {16, 32, 64, 128};
  core::RatioTable samc_table("SAMC ratio vs block size",
                              {"16B", "32B", "64B", "128B"});
  core::RatioTable sadc_table("SADC ratio vs block size",
                              {"16B", "32B", "64B", "128B"});

  for (const char* name : {"gcc", "go", "m88ksim", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    std::vector<double> samc_row, sadc_row;
    for (const std::uint32_t bs : block_sizes) {
      samc::SamcOptions so = samc::mips_defaults();
      so.block_size = bs;
      samc_row.push_back(samc::SamcCodec(so).compress(code).sizes().ratio());
      sadc::SadcOptions do_;
      do_.block_size = bs;
      sadc_row.push_back(sadc::SadcMipsCodec(do_).compress(code).sizes().ratio());
    }
    samc_table.add_row(name, samc_row);
    sadc_table.add_row(name, sadc_row);
    for (std::size_t k = 0; k < std::size(block_sizes); ++k) {
      std::string suffix = std::to_string(block_sizes[k]);
      suffix += 'b';
      json.add(name, "samc_ratio_" + suffix, samc_row[k], "ratio");
      json.add(name, "sadc_ratio_" + suffix, sadc_row[k], "ratio");
    }
    std::fflush(stdout);
  }
  samc_table.print();
  sadc_table.print();

  const auto samc_means = samc_table.column_means();
  const auto sadc_means = sadc_table.column_means();
  std::printf("\nSpread across block sizes: SAMC %.3f, SADC %.3f (paper: minimal)\n",
              samc_means.front() - samc_means.back(),
              sadc_means.front() - sadc_means.back());
  return 0;
}
