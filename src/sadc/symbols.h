// SADC dictionary symbols (paper Sec. 4).
//
// The semiadaptive dictionary maps one-byte-ish indices to opcodes or
// opcode combinations. Symbols come in five kinds:
//   kBase    — one ISA opcode token (a row of the MIPS opcode table, or a
//              distinct x86 prefix+opcode byte string).
//   kRaw     — an instruction the ISA layer could not tokenize; its bytes
//              travel in the immediate stream.
//   kSeq     — a sequence of existing symbols (the augmented opcodes built
//              from adjacent pairs/triples; nesting yields longer groups).
//   kRegSpec — a base opcode with all of its register operands frozen to
//              specific values (the paper's "jr R31" example).
//   kImmSpec — a base opcode with its 16-bit immediate frozen.
//
// The table serializes into the compressed image; its size is charged to
// the compression ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "support/serialize.h"

namespace ccomp::sadc {

inline constexpr std::size_t kMaxSymbols = 256;  // one-byte dictionary indices

struct Symbol {
  enum class Kind : std::uint8_t { kBase = 0, kRaw = 1, kSeq = 2, kRegSpec = 3, kImmSpec = 4 };
  Kind kind = Kind::kBase;
  std::uint16_t token = 0;                  // kBase/kRegSpec/kImmSpec
  std::vector<std::uint16_t> components;    // kSeq (symbol ids, each < this id)
  std::uint8_t reg_count = 0;               // kRegSpec: number of absorbed registers
  std::uint8_t regs[4] = {};                // kRegSpec: absorbed values
  std::uint16_t imm16 = 0;                  // kImmSpec: absorbed value
};

/// One fully-expanded instruction slot of a symbol: which opcode token it
/// is and which operands the dictionary already supplies.
struct Leaf {
  std::uint16_t token = 0;
  bool raw = false;
  bool regs_absorbed = false;     // all register operands come from the dictionary
  std::uint8_t absorbed_regs[4] = {};
  bool imm_absorbed = false;
  std::uint16_t absorbed_imm16 = 0;
};

class SymbolTable {
 public:
  std::uint16_t add(Symbol symbol);
  const Symbol& at(std::size_t id) const { return symbols_.at(id); }
  std::size_t size() const { return symbols_.size(); }

  /// Number of instructions a symbol expands to.
  std::size_t expanded_length(std::uint16_t id) const;

  /// Expansion of a symbol into instruction leaves (the decompressor's
  /// opcode-extractor + operand-length unit, precomputed).
  const std::vector<Leaf>& leaves(std::uint16_t id) const;

  /// Serialized dictionary size contribution.
  void serialize(ByteSink& sink) const;
  static SymbolTable deserialize(ByteSource& src);

 private:
  void build_leaves(std::uint16_t id);
  std::vector<Symbol> symbols_;
  std::vector<std::vector<Leaf>> leaves_;  // parallel to symbols_
};

}  // namespace ccomp::sadc
