// Binary range coder (arithmetic coding) with byte-wise renormalization.
//
// This is the coding engine behind SAMC. The paper (Sec. 3) sketches a
// 24-bit bit-serial arithmetic decoder; we implement the standard
// carry-correct range-coder formulation (32-bit range, 16-bit probabilities,
// byte renormalization) which has the same interface properties the
// architecture needs — binary, model-driven, resettable at every cache-block
// boundary — and codes within ~0.1% of the entropy bound.
//
// Probabilities are P(bit == 0) in 16-bit fixed point (1 .. 65535). The
// hardware-motivated variant the paper adopts from Witten et al. — the less
// probable symbol's probability constrained to a power of 1/2 so midpoints
// need only shifts — is provided by quantize_prob_pow2() and is exercised by
// the quantization ablation bench.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ccomp::coding {

/// 16-bit fixed-point probability of a zero bit; 0x8000 means 1/2.
using Prob = std::uint16_t;
inline constexpr unsigned kProbBits = 16;
inline constexpr Prob kProbHalf = 0x8000;

/// Clamp an arbitrary probability into the encodable range [1, 65535].
inline Prob clamp_prob(std::uint32_t p) {
  if (p < 1) return 1;
  if (p > 0xFFFF) return 0xFFFF;
  return static_cast<Prob>(p);
}

/// Quantize a probability so that min(p, 1-p) is an exact power of 1/2 with
/// exponent in [1, max_shift]. This is the shift-only-hardware constraint:
/// the midpoint computation reduces to `range >> shift`.
Prob quantize_prob_pow2(Prob p, unsigned max_shift);

/// Encodes a bit sequence against per-bit probabilities.
class RangeEncoder {
 public:
  RangeEncoder() { reset(); }

  /// Restart the coder (block boundary). Discards internal state but not
  /// previously taken output.
  void reset();

  /// Encode one bit with probability `p0` that the bit is 0.
  void encode_bit(unsigned bit, Prob p0);

  /// Flush the interval state; must be called once per block, after which
  /// take() yields the complete block payload.
  void finish();

  /// Return the encoded bytes and clear the buffer.
  std::vector<std::uint8_t> take();

  /// Bytes produced so far (valid after finish()).
  std::size_t size() const { return out_.size(); }

 private:
  void shift_low();

  std::vector<std::uint8_t> out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  std::uint64_t renorms_ = 0;  // batched into the obs registry at finish()
};

/// Decodes a bit sequence produced by RangeEncoder, given the same
/// probability sequence.
class RangeDecoder {
 public:
  /// Attach to one block's payload. Reading past the payload returns zero
  /// bytes, which is safe because callers decode an exact number of bits.
  explicit RangeDecoder(std::span<const std::uint8_t> data) { reset(data); }
  ~RangeDecoder();
  RangeDecoder(const RangeDecoder&) = delete;
  RangeDecoder& operator=(const RangeDecoder&) = delete;

  /// Re-attach (block boundary).
  void reset(std::span<const std::uint8_t> data);

  /// Register-resident decoding state for hot loops.
  ///
  /// A RangeDecoder's members cannot stay in registers across a block
  /// decode: its address escapes (out-of-line reset, metrics flush in the
  /// destructor), so after every store through the caller's output pointer
  /// the compiler must assume the coder state may have been aliased and
  /// reload it. Core is a plain value the caller copies out with core(),
  /// decodes with, and hands back with adopt(); it never has its address
  /// taken, so scalar replacement keeps all of its fields in registers for
  /// the whole block.
  struct Core {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos;
    std::uint32_t range;
    std::uint32_t code;
    std::uint64_t renorms;

    /// Decode one bit given the probability `p0` that it is 0.
    unsigned decode_bit(Prob p0) {
      const std::uint32_t bound = (range >> kProbBits) * p0;
      // Branches, not mask arithmetic, on purpose: a well-modelled stream's
      // bits are highly *predictable* (that is why they compress), so the
      // predictor speculates straight through both the bit resolution and
      // the renormalization check, letting the core run several decode
      // steps ahead. The branchless formulation measures ~45% slower here
      // because it turns that speculation into a serial data-dependency
      // chain.
      unsigned bit = 0;
      if (code < bound) {
        range = bound;
      } else {
        bit = 1;
        code -= bound;
        range -= bound;
      }
      if (range < (1u << 24)) [[unlikely]] {
        // Batched renormalization: the invariants (range >= 2^24 before a
        // decode, p0 in [1, 65535]) keep range >= 2^8 here, so the byte
        // count n is 1 or 2 and falls straight out of the leading-zero
        // count. The next two input bytes are fetched unconditionally
        // (reads past the payload yield zero, reproducing the encoder's
        // stripped trailing zeros) and the shifts consume exactly n of
        // them — no inner loop for the compiler to mangle. [[unlikely]]
        // keeps the ~95% no-renorm case on the fall-through path.
        const unsigned n = static_cast<unsigned>(std::countl_zero(range)) >> 3;
        renorms += n;
        for (unsigned k = 0; k < n; ++k) {
          const std::uint8_t byte = pos < size ? data[pos++] : 0;
          code = (code << 8) | byte;
        }
        range <<= 8 * n;
      }
      return bit;
    }

    /// Branchless bit resolve: mask arithmetic replaces the bit branch.
    /// ~45% slower in a SERIAL decode loop (see decode_bit's comment), but
    /// in the K-way interleaved decoder the other lanes hide the select
    /// latency and the removed mispredicts stop flushing K streams' worth
    /// of in-flight work. Masks rather than ternaries on purpose: GCC's
    /// if-converter turns `bit ? a : b` back into the very branch this
    /// function exists to avoid. Bit-exact with decode_bit; renorm is
    /// unchanged (already branch-light via the batched countl_zero form).
    unsigned decode_bit_branchless(Prob p0) {
      const std::uint32_t bound = (range >> kProbBits) * p0;
      const std::uint32_t bit = code >= bound;
      const std::uint32_t mask = 0u - bit;  // 0 or ~0
      code -= bound & mask;
      // range = bit ? range - bound : bound, mod-2^32 exact.
      range = bound + (mask & (range - 2u * bound));
      if (range < (1u << 24)) [[unlikely]] {
        const unsigned n = static_cast<unsigned>(std::countl_zero(range)) >> 3;
        renorms += n;
        for (unsigned k = 0; k < n; ++k) {
          const std::uint8_t byte = pos < size ? data[pos++] : 0;
          code = (code << 8) | byte;
        }
        range <<= 8 * n;
      }
      return bit;
    }
  };

  /// Build a Core directly attached to one block's payload, bypassing the
  /// RangeDecoder object entirely (hot paths that track their own metrics
  /// use this; it saves the construct/flush round trip per block).
  static Core attach(std::span<const std::uint8_t> data) {
    Core c{data.data(), data.size(), 0, 0xFFFFFFFFu, 0, 0};
    for (int i = 0; i < 4; ++i) {
      const std::uint8_t byte = c.pos < c.size ? c.data[c.pos++] : 0;
      c.code = (c.code << 8) | byte;
    }
    return c;
  }

  /// Snapshot the coder state for a register-resident decode loop.
  Core core() const { return {data_.data(), data_.size(), pos_, range_, code_, renorms_}; }

  /// Write back a Core obtained from core() (consumed() and the renorm
  /// metrics stay accurate).
  void adopt(const Core& c) {
    pos_ = c.pos;
    range_ = c.range;
    code_ = c.code;
    renorms_ = c.renorms;
  }

  /// Decode one bit given the probability `p0` that it is 0. Defined inline
  /// — this is the refill engine's innermost operation, and a call per bit
  /// costs as much as the arithmetic itself. Loops decoding many bits back
  /// to back should hoist a Core instead (see above).
  unsigned decode_bit(Prob p0) {
    Core c = core();
    const unsigned bit = c.decode_bit(p0);
    adopt(c);
    return bit;
  }

  /// Bytes consumed from the input so far (an upper bound on the block's
  /// compressed size).
  std::size_t consumed() const { return pos_; }

 private:
  std::uint8_t next_byte() { return pos_ < data_.size() ? data_[pos_++] : 0; }
  void flush_metrics();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
  std::uint64_t renorms_ = 0;  // batched into the obs registry per block
};

}  // namespace ccomp::coding
