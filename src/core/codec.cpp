#include "core/codec.h"

#include <algorithm>

#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::core {

void BlockDecompressor::block_into(std::size_t index, std::span<std::uint8_t> out) const {
  const std::vector<std::uint8_t> bytes = block(index);
  if (bytes.size() != out.size())
    throw CorruptDataError("block_into destination does not match the block's original size");
  std::copy(bytes.begin(), bytes.end(), out.begin());
}

void BlockDecompressor::block_into(std::size_t index, std::span<std::uint8_t> out,
                                   DecodeScratch&) const {
  block_into(index, out);
}

std::vector<std::uint8_t> BlockCodec::decompress_all(const CompressedImage& image) const {
  const auto decompressor = make_decompressor(image);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(image.original_size()));
  const std::span<std::uint8_t> span(out);
  par::parallel_for(image.block_count(), [&](std::size_t b) {
    // One scratch per worker thread, reused across every block the worker
    // decodes (and across calls — the arenas stay warm at their high-water
    // mark).
    thread_local DecodeScratch scratch;
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    decompressor->block_into(b, span.subspan(begin, image.block_original_size(b)), scratch);
  });
  return out;
}

CompressedImage BlockCodec::compress_verified(std::span<const std::uint8_t> code) const {
  CompressedImage image = compress(code);
  // Forward order.
  const std::vector<std::uint8_t> round = decompress_all(image);
  if (round.size() != code.size() || !std::equal(round.begin(), round.end(), code.begin()))
    throw CorruptDataError("codec round trip failed (sequential order)");
  // Random access: every block independently, out of order. Under the
  // parallel schedule blocks are checked in whatever order workers reach
  // them; the serial fallback keeps the historical back-to-front sweep.
  const auto decompressor = make_decompressor(image);
  const std::size_t blocks = image.block_count();
  par::parallel_for(blocks, [&](std::size_t i) {
    // Per-worker scratch; the block staging buffer is reused across every
    // block this worker checks instead of allocating a fresh vector each.
    thread_local DecodeScratch scratch;
    const std::size_t b = blocks - 1 - i;
    scratch.block.resize(image.block_original_size(b));
    decompressor->block_into(b, scratch.block, scratch);
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    if (!std::equal(scratch.block.begin(), scratch.block.end(),
                    code.begin() + static_cast<std::ptrdiff_t>(begin)))
      throw CorruptDataError("codec round trip failed (random access)");
  });
  return image;
}

}  // namespace ccomp::core
