#include "support/histogram.h"

#include <cmath>

namespace ccomp {

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (auto c : counts_) t += c;
  return t;
}

double Histogram::entropy_bits() const { return ccomp::entropy_bits(counts_); }

std::size_t Histogram::distinct() const {
  std::size_t d = 0;
  for (auto c : counts_)
    if (c != 0) ++d;
  return d;
}

double entropy_bits(std::span<const std::uint64_t> counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  const double inv_total = 1.0 / static_cast<double>(total);
  for (auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) * inv_total;
    h -= p * std::log2(p);
  }
  return h;
}

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double binary_correlation(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  if (n == 0) return 0.0;
  // For binary variables, Pearson correlation reduces to the phi coefficient.
  std::uint64_t n11 = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    na += a[i];
    nb += b[i];
    n11 += static_cast<std::uint64_t>(a[i] & b[i]);
  }
  const double pa = static_cast<double>(na) / static_cast<double>(n);
  const double pb = static_cast<double>(nb) / static_cast<double>(n);
  const double p11 = static_cast<double>(n11) / static_cast<double>(n);
  const double var = pa * (1 - pa) * pb * (1 - pb);
  if (var <= 0.0) return 0.0;
  return (p11 - pa * pb) / std::sqrt(var);
}

std::vector<double> bit_correlation_matrix(std::span<const std::uint32_t> words) {
  std::vector<double> m(32 * 32, 0.0);
  const std::size_t n = words.size();
  if (n == 0) return m;
  // Gather pairwise joint one-counts in a single pass.
  std::uint64_t ones[32] = {};
  std::vector<std::uint64_t> joint(32 * 32, 0);
  for (std::uint32_t w : words) {
    for (int i = 0; i < 32; ++i) {
      if (!((w >> i) & 1u)) continue;
      ++ones[i];
      for (int j = i + 1; j < 32; ++j) {
        if ((w >> j) & 1u) ++joint[static_cast<std::size_t>(i) * 32 + j];
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int i = 0; i < 32; ++i) {
    m[static_cast<std::size_t>(i) * 32 + i] = 1.0;
    const double pi = static_cast<double>(ones[i]) * inv_n;
    for (int j = i + 1; j < 32; ++j) {
      const double pj = static_cast<double>(ones[j]) * inv_n;
      const double pij = static_cast<double>(joint[static_cast<std::size_t>(i) * 32 + j]) * inv_n;
      const double var = pi * (1 - pi) * pj * (1 - pj);
      double corr = 0.0;
      if (var > 0.0) corr = std::fabs((pij - pi * pj) / std::sqrt(var));
      m[static_cast<std::size_t>(i) * 32 + j] = corr;
      m[static_cast<std::size_t>(j) * 32 + i] = corr;
    }
  }
  return m;
}

std::vector<double> bit_one_probability(std::span<const std::uint32_t> words) {
  std::vector<double> p(32, 0.0);
  if (words.empty()) return p;
  std::uint64_t ones[32] = {};
  for (std::uint32_t w : words)
    for (int i = 0; i < 32; ++i) ones[i] += (w >> i) & 1u;
  for (int i = 0; i < 32; ++i) p[i] = static_cast<double>(ones[i]) / static_cast<double>(words.size());
  return p;
}

}  // namespace ccomp
