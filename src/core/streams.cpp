#include "core/streams.h"

#include "support/error.h"

namespace ccomp::core {

std::vector<std::uint8_t> pack_stream_block(
    std::span<const std::vector<std::uint8_t>> streams) {
  if (streams.empty() || streams.size() > kMaxEntropyStreams)
    throw ConfigError("entropy stream count must be in [1, 16]");
  if (streams.size() == 1) return streams[0];  // frameless single-stream form
  std::size_t total = 2 * (streams.size() - 1);
  for (const auto& s : streams) total += s.size();
  std::vector<std::uint8_t> block;
  block.reserve(total);
  for (std::size_t k = 0; k + 1 < streams.size(); ++k) {
    if (streams[k].size() > 0xFFFF)
      throw ConfigError("sub-stream exceeds the 16-bit block frame length");
    block.push_back(static_cast<std::uint8_t>(streams[k].size()));
    block.push_back(static_cast<std::uint8_t>(streams[k].size() >> 8));
  }
  for (const auto& s : streams) block.insert(block.end(), s.begin(), s.end());
  return block;
}

StreamSpans split_stream_block(std::span<const std::uint8_t> payload, unsigned streams) {
  if (streams == 0 || streams > kMaxEntropyStreams)
    throw CorruptDataError("entropy stream count out of range");
  StreamSpans out;
  out.count = streams;
  if (streams == 1) {
    out.spans[0] = payload;
    return out;
  }
  const std::size_t header = 2 * (static_cast<std::size_t>(streams) - 1);
  if (payload.size() < header)
    throw CorruptDataError("block payload shorter than its stream frame");
  std::size_t at = header;
  for (unsigned k = 0; k + 1 < streams; ++k) {
    const std::size_t len = static_cast<std::size_t>(payload[2 * k]) |
                            (static_cast<std::size_t>(payload[2 * k + 1]) << 8);
    if (len > payload.size() - at)
      throw CorruptDataError("sub-stream length overruns the block payload");
    out.spans[k] = payload.subspan(at, len);
    at += len;
  }
  out.spans[streams - 1] = payload.subspan(at);
  return out;
}

}  // namespace ccomp::core
