// Figure 9 reproduction: average compression ratios of the *instruction*
// compression schemes — byte-based Huffman (Kozuch & Wolfe), SAMC, SADC —
// on MIPS and x86, averaged over all SPEC95 benchmarks.
//
// Paper shape: on MIPS, SAMC and SADC substantially beat byte-Huffman
// (~0.73); on x86 the difference is much smaller (SAMC/SADC cannot subdivide
// fields and degenerate toward byte statistics).
#include <cstdio>

#include <array>

#include "baseline/bytehuff.h"
#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/parallel.h"
#include "workload/mips_gen.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  bench::JsonReporter json("fig9_average", argc, argv);
  std::printf("Figure 9: average instruction-compression ratios (scale=%.2f, threads=%zu)\n",
              scale, par::thread_count());

  core::RatioTable table("Fig.9: average ratio per architecture",
                         {"Huffman", "SAMC", "SADC"});
  const std::span<const workload::Profile> profiles = workload::spec95_profiles();

  // One benchmark program per task; per-program ratios come back in figure
  // order, so the averages accumulate in a fixed order (bit-stable sums).
  // MIPS row.
  {
    const baseline::ByteHuffmanCodec huff({32, core::IsaKind::kMips});
    const samc::SamcCodec samc_codec(samc::mips_defaults());
    const sadc::SadcMipsCodec sadc_codec;
    const auto ratios =
        par::parallel_map(profiles.size(), [&](std::size_t i) -> std::array<double, 3> {
          const workload::Profile p = bench::scaled_profile(profiles[i], scale);
          const auto code = mips::words_to_bytes(workload::generate_mips(p));
          return {huff.compress(code).sizes().ratio(),
                  samc_codec.compress(code).sizes().ratio(),
                  sadc_codec.compress(code).sizes().ratio()};
        });
    double sums[3] = {0, 0, 0};
    for (const auto& r : ratios)
      for (int k = 0; k < 3; ++k) sums[k] += r[static_cast<std::size_t>(k)];
    const double n = static_cast<double>(ratios.size());
    const double row[] = {sums[0] / n, sums[1] / n, sums[2] / n};
    table.add_row("MIPS", row);
    json.add("mips", "huffman_ratio", row[0], "ratio");
    json.add("mips", "samc_ratio", row[1], "ratio");
    json.add("mips", "sadc_ratio", row[2], "ratio");
  }

  // x86 row.
  {
    const baseline::ByteHuffmanCodec huff({32, core::IsaKind::kX86});
    const samc::SamcCodec samc_codec(samc::x86_defaults());
    const sadc::SadcX86Codec sadc_codec;
    const auto ratios =
        par::parallel_map(profiles.size(), [&](std::size_t i) -> std::array<double, 3> {
          const workload::Profile p = bench::scaled_profile(profiles[i], scale);
          const auto code = workload::generate_x86(p);
          return {huff.compress(code).sizes().ratio(),
                  samc_codec.compress(code).sizes().ratio(),
                  sadc_codec.compress(code).sizes().ratio()};
        });
    double sums[3] = {0, 0, 0};
    for (const auto& r : ratios)
      for (int k = 0; k < 3; ++k) sums[k] += r[static_cast<std::size_t>(k)];
    const double n = static_cast<double>(ratios.size());
    const double row[] = {sums[0] / n, sums[1] / n, sums[2] / n};
    table.add_row("x86", row);
    json.add("x86", "huffman_ratio", row[0], "ratio");
    json.add("x86", "samc_ratio", row[1], "ratio");
    json.add("x86", "sadc_ratio", row[2], "ratio");
  }

  table.print();
  std::printf("\nPaper expectations: MIPS Huffman ~0.73 with SAMC/SADC well below;\n"
              "x86 gap between Huffman and SAMC/SADC much smaller.\n");
  return 0;
}
