// Firmware-image workflow: the embedded-systems use case the paper's
// introduction motivates. Compress a text segment into a self-contained
// CompressedImage file, then reload it cold (as a boot ROM would) and
// service random "cache miss" requests from it.
//
//   $ ./firmware_image [path-to-binary] [--codec=samc|sadc]
//
// Without a path, a vortex-like MIPS firmware is synthesized. An input file
// must be a multiple of 4 bytes (MIPS text).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace {

std::vector<std::uint8_t> load_or_synthesize(const char* path) {
  using namespace ccomp;
  if (path != nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(1);
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - bytes.size() % 4);  // MIPS alignment
    return bytes;
  }
  workload::Profile p = *workload::find_profile("vortex");
  p.code_kb = 128;
  return mips::words_to_bytes(workload::generate_mips(p));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccomp;
  const char* path = nullptr;
  bool use_sadc = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--codec=samc") == 0) {
      use_sadc = false;
    } else if (std::strcmp(argv[i], "--codec=sadc") == 0) {
      use_sadc = true;
    } else {
      path = argv[i];
    }
  }

  const std::vector<std::uint8_t> firmware = load_or_synthesize(path);
  std::printf("firmware: %zu bytes\n", firmware.size());

  // Compress and serialize, as a firmware build step would.
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;
  const core::CompressedImage image =
      use_sadc ? sadc_codec.compress(firmware) : samc_codec.compress(firmware);
  ByteSink sink;
  image.serialize(sink);
  const std::vector<std::uint8_t> rom = sink.take();

  const auto s = image.sizes();
  std::printf("codec: %s\n", use_sadc ? "SADC" : "SAMC");
  std::printf("ROM image: %zu bytes (container) — payload %zu, tables %zu, LAT %zu\n",
              rom.size(), s.payload, s.tables, s.lat);
  std::printf("compression ratio: %.3f (%.3f counting the LAT)\n", s.ratio(),
              s.ratio_with_lat());
  std::printf("memory saved: %zu bytes (%.1f%%)\n",
              firmware.size() - (s.payload + s.tables + s.lat),
              100.0 * (1.0 - s.ratio_with_lat()));

  const char* rom_path = "firmware.ccmp";
  {
    std::ofstream out(rom_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(rom.data()),
              static_cast<std::streamsize>(rom.size()));
  }
  std::printf("wrote %s\n\n", rom_path);

  // Cold reload, as the target device would at boot.
  std::ifstream in(rom_path, std::ios::binary);
  const std::vector<std::uint8_t> reloaded_bytes((std::istreambuf_iterator<char>(in)),
                                                 std::istreambuf_iterator<char>());
  ByteSource src(reloaded_bytes);
  const core::CompressedImage reloaded = core::CompressedImage::deserialize(src);
  const auto decompressor = use_sadc ? sadc_codec.make_decompressor(reloaded)
                                     : samc_codec.make_decompressor(reloaded);

  // Service 10,000 random cache misses and verify each against the original.
  Rng rng(2024);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t b = rng.next_below(reloaded.block_count());
    const auto line = decompressor->block(b);
    const std::size_t begin = static_cast<std::size_t>(reloaded.block_original_offset(b));
    if (!std::equal(line.begin(), line.end(), firmware.begin() + static_cast<long>(begin))) {
      std::fprintf(stderr, "block %zu mismatch!\n", b);
      return 1;
    }
  }
  std::printf("10000 random block refills served and verified from %s.\n", rom_path);
  return 0;
}
