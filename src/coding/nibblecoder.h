// Nibble-granular range coder — the functional model of the paper's
// parallel decompression engine (Fig. 5).
//
// The paper speeds up bit-serial arithmetic decoding by computing all 15
// midpoints of the next 4 bits in parallel and selecting with comparators;
// to keep the midpoint units shift-only it constrains probabilities to
// powers of 1/2 (Witten et al.). The hardware consequence is that interval
// renormalization happens once per decoded *nibble*, not per bit.
//
// This coder reproduces that arithmetic exactly: a 56-bit interval renormal-
// ized to [2^48, 2^56) at nibble boundaries. Between renormalizations the
// interval can shrink by up to 2^32 (four bits at the coarsest quantized
// probability 2^-8), which the 56-bit window absorbs while keeping every
// midpoint computation exact. Probabilities MUST be quantized with
// max_shift <= 8 (quantize_prob_pow2) — asserting the same constraint the
// hardware imposes. Encoder and decoder agree bit-for-bit, so SAMC can use
// this pair as a drop-in "parallel hardware" mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/rangecoder.h"

namespace ccomp::coding {

class NibbleRangeEncoder {
 public:
  NibbleRangeEncoder() { reset(); }

  void reset();

  /// Encode one bit; `p0` must be power-of-1/2 quantized with shift <= 8.
  /// Renormalization happens after every 4th bit, mirroring the hardware.
  void encode_bit(unsigned bit, Prob p0);

  void finish();
  std::vector<std::uint8_t> take();

 private:
  void shift_low();

  std::vector<std::uint8_t> out_;
  std::uint64_t low_ = 0;       // 56-bit window + carry at bit 56
  std::uint64_t range_ = 0;     // in [2^48, 2^56) at nibble boundaries
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  unsigned bits_in_nibble_ = 0;
};

class NibbleRangeDecoder {
 public:
  explicit NibbleRangeDecoder(std::span<const std::uint8_t> data) { reset(data); }

  void reset(std::span<const std::uint8_t> data);

  /// Decode one bit (the software-serial equivalent of one of the 15
  /// parallel midpoint comparisons; results are identical by construction).
  unsigned decode_bit(Prob p0);

  /// Decode four bits at once through the Fig. 5 organisation: compute the
  /// subinterval bound of every tree path and compare — `probs` supplies the
  /// 15 node probabilities in heap order (root, then level by level).
  /// Returns the nibble (first decoded bit in the MSB).
  unsigned decode_nibble(const Prob probs[15]);

 private:
  std::uint8_t next_byte() { return pos_ < data_.size() ? data_[pos_++] : 0; }
  void renorm();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t range_ = 0;
  std::uint64_t code_ = 0;
  unsigned bits_in_nibble_ = 0;
};

}  // namespace ccomp::coding
