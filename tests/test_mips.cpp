#include "isa/mips/mips.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::mips {
namespace {

std::uint16_t find_op(std::string_view mnemonic) {
  const auto table = opcode_table();
  for (std::size_t i = 0; i < table.size(); ++i)
    if (mnemonic == table[i].mnemonic) return static_cast<std::uint16_t>(i);
  ADD_FAILURE() << "mnemonic not found: " << mnemonic;
  return 0;
}

TEST(MipsTable, HasCanonicalEncodings) {
  // addu $t0, $s1, $s2 = 0x02324021
  Decoded d;
  d.opcode = find_op("addu");
  d.regs[0] = 8;   // rd = t0
  d.regs[1] = 17;  // rs = s1
  d.regs[2] = 18;  // rt = s2
  EXPECT_EQ(encode(d), 0x02324021u);

  // addiu $sp, $sp, -32 = 0x27BDFFE0
  Decoded a;
  a.opcode = find_op("addiu");
  a.regs[0] = 29;
  a.regs[1] = 29;
  a.imm16 = static_cast<std::uint16_t>(-32);
  EXPECT_EQ(encode(a), 0x27BDFFE0u);

  // lw $ra, 28($sp) = 0x8FBF001C
  Decoded l;
  l.opcode = find_op("lw");
  l.regs[0] = 31;
  l.regs[1] = 29;
  l.imm16 = 28;
  EXPECT_EQ(encode(l), 0x8FBF001Cu);

  // jr $ra = 0x03E00008
  Decoded j;
  j.opcode = find_op("jr");
  j.regs[0] = 31;
  EXPECT_EQ(encode(j), 0x03E00008u);

  // jal 0x00400000 -> imm26 = 0x100000 -> 0x0C100000
  Decoded c;
  c.opcode = find_op("jal");
  c.imm26 = 0x100000;
  EXPECT_EQ(encode(c), 0x0C100000u);
}

TEST(MipsDecode, NopIsSll) {
  const auto d = decode(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_STREQ(opcode_table()[d->opcode].mnemonic, "sll");
  EXPECT_EQ(disassemble(0), "nop");
}

TEST(MipsDecode, RoundTripsWholeTable) {
  // Every table row, with pseudo-random operand values, must round-trip
  // word -> decode -> encode -> same word.
  Rng rng(31);
  const auto table = opcode_table();
  for (std::size_t op = 0; op < table.size(); ++op) {
    for (int trial = 0; trial < 20; ++trial) {
      Decoded d;
      d.opcode = static_cast<std::uint16_t>(op);
      for (unsigned k = 0; k < table[op].reg_count; ++k)
        d.regs[k] = static_cast<std::uint8_t>(rng.next_below(32));
      if (table[op].has_imm16) d.imm16 = static_cast<std::uint16_t>(rng.next_below(65536));
      if (table[op].has_imm26) d.imm26 = static_cast<std::uint32_t>(rng.next_below(1u << 26));
      const std::uint32_t word = encode(d);
      const auto back = decode(word);
      ASSERT_TRUE(back.has_value()) << table[op].mnemonic;
      EXPECT_EQ(encode(*back), word) << table[op].mnemonic;
    }
  }
}

TEST(MipsDecode, UnknownWordsRejected) {
  // Primary opcode 0x3F is unassigned in our table.
  EXPECT_FALSE(decode(0xFC000000u).has_value());
  // SPECIAL with unassigned funct 0x3F.
  EXPECT_FALSE(decode(0x0000003Fu).has_value());
}

TEST(MipsOperandLengths, MatchTableRows) {
  const auto j = operand_lengths(find_op("jal"));
  EXPECT_EQ(j.regs, 0u);
  EXPECT_FALSE(j.imm16);
  EXPECT_TRUE(j.imm26);
  const auto b = operand_lengths(find_op("beq"));
  EXPECT_EQ(b.regs, 2u);
  EXPECT_TRUE(b.imm16);
  const auto r = operand_lengths(find_op("addu"));
  EXPECT_EQ(r.regs, 3u);
  EXPECT_FALSE(r.imm16);
}

TEST(MipsBytes, WordsToBytesRoundTrip) {
  const std::vector<std::uint32_t> words = {0x01234567, 0x89ABCDEF, 0};
  const auto bytes = words_to_bytes(words);
  ASSERT_EQ(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 0x67);  // little-endian
  EXPECT_EQ(bytes[3], 0x01);
  EXPECT_EQ(bytes_to_words(bytes), words);
}

TEST(MipsBytes, MisalignedSizeThrows) {
  const std::vector<std::uint8_t> bytes(7, 0);
  EXPECT_THROW(bytes_to_words(bytes), ConfigError);
}

TEST(MipsDisasm, FormatsCommonInstructions) {
  Decoded d;
  d.opcode = find_op("addiu");
  d.regs[0] = 29;
  d.regs[1] = 29;
  d.imm16 = static_cast<std::uint16_t>(-32);
  EXPECT_EQ(disassemble(encode(d)), "addiu $sp, $sp, -32");

  Decoded j;
  j.opcode = find_op("jr");
  j.regs[0] = 31;
  EXPECT_EQ(disassemble(encode(j)), "jr $ra");

  Decoded l;
  l.opcode = find_op("lw");
  l.regs[0] = 31;
  l.regs[1] = 29;
  l.imm16 = 28;
  EXPECT_EQ(disassemble(encode(l)), "lw $ra, 28($sp)");

  Decoded f;
  f.opcode = find_op("swc1");
  f.regs[0] = 4;
  f.regs[1] = 29;
  f.imm16 = static_cast<std::uint16_t>(-8);
  EXPECT_EQ(disassemble(encode(f)), "swc1 $f4, -8($sp)");
}

TEST(MipsDisasm, UnknownWordFormatsAsRaw) {
  EXPECT_EQ(disassemble(0xFC000000u), ".word 0xfc000000");
}

TEST(MipsDisasm, ProgramListingHasOneLinePerWord) {
  const workload::Profile* prof = workload::find_profile("tomcatv");
  ASSERT_NE(prof, nullptr);
  auto program = workload::generate_mips(*prof);
  program.resize(100);
  const std::string listing = disassemble_program(program, 0x00400000);
  std::size_t lines = 0;
  for (const char c : listing) lines += (c == '\n');
  EXPECT_EQ(lines, 100u);
}

TEST(MipsTable, MasksDoNotOverlapOperands) {
  // A row's mask must cover its match and exclude its operand fields.
  for (const auto& row : opcode_table()) {
    EXPECT_EQ(row.match & ~row.mask, 0u) << row.mnemonic;
    for (unsigned k = 0; k < row.reg_count; ++k) {
      const std::uint32_t field = 0x1Fu << row.reg_shifts[k];
      EXPECT_EQ(row.mask & field, 0u) << row.mnemonic << " reg " << k;
    }
    if (row.has_imm16) {
      EXPECT_EQ(row.mask & 0xFFFFu, 0u) << row.mnemonic;
    }
    if (row.has_imm26) {
      EXPECT_EQ(row.mask & 0x03FFFFFFu, 0u) << row.mnemonic;
    }
  }
}

TEST(MipsDecode, RandomWordFuzzIsIdempotent) {
  // For arbitrary 32-bit words: decode either rejects, or encode(decode(w))
  // reproduces a word that decodes to the same row and operands (encode may
  // canonicalize fixed fields the mask zeroes out).
  Rng rng(4096);
  std::size_t accepted = 0;
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t w = rng.next_u32();
    const auto d = decode(w);
    if (!d) continue;
    ++accepted;
    const std::uint32_t w2 = encode(*d);
    const auto d2 = decode(w2);
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->opcode, d->opcode);
    EXPECT_EQ(encode(*d2), w2);  // canonical form is a fixed point
  }
  // Sanity: a decent share of random words hit I-format rows.
  EXPECT_GT(accepted, 50000u);
}

TEST(MipsTable, NoTwoRowsMatchTheSameCanonicalWord) {
  // Encoding a row with zero operands must decode back to that same row.
  const auto table = opcode_table();
  for (std::size_t op = 0; op < table.size(); ++op) {
    Decoded d;
    d.opcode = static_cast<std::uint16_t>(op);
    const auto back = decode(encode(d));
    ASSERT_TRUE(back.has_value()) << table[op].mnemonic;
    EXPECT_EQ(back->opcode, op) << table[op].mnemonic << " collides with "
                                << table[back->opcode].mnemonic;
  }
}

}  // namespace
}  // namespace ccomp::mips
