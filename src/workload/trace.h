// Instruction-address trace synthesis for the memory-system experiments.
//
// The paper's architecture (Wolfe & Chanin) decompresses a cache line on
// every I-cache miss, so run-time cost is governed by the miss stream. We
// synthesize instruction-fetch traces with controllable locality from the
// generated program's function map: a hot subset of functions receives most
// of the control flow, functions execute mostly sequentially, and inner
// loops re-execute short address ranges with profile-controlled intensity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/profile.h"

namespace ccomp::workload {

struct TraceOptions {
  std::size_t length = 1'000'000;  // number of instruction fetches
  double hot_fraction = 0.15;      // fraction of functions that are hot
  std::uint32_t base_address = 0;  // added to every emitted address
};

/// Generate a word-aligned instruction fetch trace over a program laid out
/// as `code_words` 32-bit words with the given function entry points.
std::vector<std::uint32_t> generate_trace(const Profile& profile,
                                          std::span<const std::uint32_t> function_starts,
                                          std::size_t code_words,
                                          const TraceOptions& options = {});

}  // namespace ccomp::workload
