#include "samc/autotune.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::samc {
namespace {

std::vector<std::uint32_t> words_for(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return workload::generate_mips(p);
}

TEST(AutoTune, ReturnsValidConfig) {
  const auto words = words_for("go", 32);
  AutoTuneOptions opt;
  opt.use_division_optimizer = false;
  const AutoTuneResult result = choose_markov_config(words, opt);
  result.config.division.validate();
  EXPECT_GT(result.estimated_bits, 0.0);
  EXPECT_GT(result.estimated_ratio, 0.0);
  EXPECT_LT(result.estimated_ratio, 1.0);
}

TEST(AutoTune, BeatsOrMatchesEveryGridCandidate) {
  const auto words = words_for("perl", 32);
  AutoTuneOptions opt;
  opt.use_division_optimizer = false;
  opt.sample_words = 4096;
  const AutoTuneResult best = choose_markov_config(words, opt);
  const std::span<const std::uint32_t> sample(words.data(), opt.sample_words);
  for (const unsigned streams : {4u, 8u, 16u}) {
    for (const unsigned ctx : {0u, 1u, 2u}) {
      coding::MarkovConfig config;
      config.division = coding::StreamDivision::contiguous(32, streams);
      config.context_bits = ctx;
      config.connect_across_words = ctx > 0;
      const auto model = coding::MarkovModel::train(config, sample, opt.block_words);
      // Same cost the tuner minimizes: sample payload projected to the full
      // program plus the fixed table cost.
      const double scale =
          static_cast<double>(words.size()) / static_cast<double>(sample.size());
      const double bits = model.estimate_bits(sample, opt.block_words) * scale +
                          8.0 * static_cast<double>(model.table_bytes());
      EXPECT_LE(best.estimated_bits, bits + 1e-6) << streams << "x ctx" << ctx;
    }
  }
}

TEST(AutoTune, ChosenConfigCompressesWell) {
  const auto words = words_for("m88ksim", 64);
  const auto code = mips::words_to_bytes(words);
  AutoTuneOptions opt;
  opt.optimizer_swaps = 30;
  const AutoTuneResult tuned = choose_markov_config(words, opt);

  SamcOptions tuned_opts = mips_defaults();
  tuned_opts.markov = tuned.config;
  const double tuned_ratio = SamcCodec(tuned_opts).compress_verified(code).sizes().ratio();
  const double default_ratio =
      SamcCodec(mips_defaults()).compress(code).sizes().ratio();
  // The tuner optimizes a sample estimate; on the full program it must be
  // at least competitive with the paper's default.
  EXPECT_LT(tuned_ratio, default_ratio + 0.02);
}

TEST(AutoTune, EmptyProgramThrows) {
  EXPECT_THROW(choose_markov_config({}, {}), ConfigError);
}

TEST(AutoTune, DeterministicForFixedSeed) {
  const auto words = words_for("swim", 16);
  AutoTuneOptions opt;
  opt.optimizer_swaps = 20;
  const auto a = choose_markov_config(words, opt);
  const auto b = choose_markov_config(words, opt);
  EXPECT_EQ(a.config.division, b.config.division);
  EXPECT_EQ(a.config.context_bits, b.config.context_bits);
  EXPECT_DOUBLE_EQ(a.estimated_bits, b.estimated_bits);
}

}  // namespace
}  // namespace ccomp::samc
