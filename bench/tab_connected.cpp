// Ablation T-CONN: connected Markov trees (paper Fig. 4). "Compression
// performance can be improved by connecting the Markov trees of adjacent
// streams." Sweep the inter-stream context width.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_connected", argc, argv);
  std::printf("Table T-CONN: connected Markov trees (scale=%.2f)\n", scale);

  core::RatioTable table("SAMC ratio vs inter-stream context bits",
                         {"unconnected", "1 bit", "2 bits", "3 bits"});

  for (const char* name : {"gcc", "m88ksim", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    std::vector<double> row;
    for (const unsigned bits : {0u, 1u, 2u, 3u}) {
      samc::SamcOptions o = samc::mips_defaults();
      o.markov.context_bits = bits;
      o.markov.connect_across_words = bits > 0;
      row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
      json.add(name, "samc_ratio_ctx" + std::to_string(bits), row.back(), "ratio");
    }
    table.add_row(name, row);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nExpectation: connecting trees improves ratio; gains taper as the\n"
              "probability tables (charged to the ratio) double per context bit.\n");
  return 0;
}
