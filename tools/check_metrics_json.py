#!/usr/bin/env python3
"""Validate telemetry JSON artifacts against a checked-in schema.

Usage:
    check_metrics_json.py --schema tools/metrics_schema.json file.json [...]
    check_metrics_json.py --schema tools/bench_results_schema.json bench_results/*.json
    check_metrics_json.py --trace trace.json [...]

Standard library only (CI runners have no jsonschema package): implements
exactly the JSON-Schema subset the checked-in schemas use — type, required,
properties, additionalProperties (bool or schema), items, minimum.

Beyond the schema, metrics snapshots get semantic checks: every histogram's
counts array must be one longer than bounds (the +Inf bucket), bucket counts
must sum to `count`, and bounds must be strictly increasing. --trace checks
that a file is a chrome://tracing trace_event JSON with well-formed "X"
events (what chrome://tracing itself would reject otherwise).

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(value, py_type) and not (
            expected in ("number", "integer") and isinstance(value, bool)
        )
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, child in value.items():
            if key in props:
                validate(child, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(child, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, child in enumerate(value):
            validate(child, schema["items"], f"{path}[{i}]", errors)


def check_snapshot_semantics(doc, errors):
    for name, hist in doc.get("histograms", {}).items():
        bounds, counts = hist.get("bounds", []), hist.get("counts", [])
        if len(counts) != len(bounds) + 1:
            errors.append(f"histograms.{name}: {len(counts)} counts for "
                          f"{len(bounds)} bounds (want bounds+1 for +Inf)")
        if sum(counts) != hist.get("count"):
            errors.append(f"histograms.{name}: bucket counts sum to "
                          f"{sum(counts)}, count says {hist.get('count')}")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            errors.append(f"histograms.{name}: bounds not strictly increasing")


def check_trace(doc, errors):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("trace: missing traceEvents array")
        return
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                errors.append(f"traceEvents[{i}]: missing '{key}'")
        if e.get("ph") != "X":
            errors.append(f"traceEvents[{i}]: ph '{e.get('ph')}' != 'X'")
        if e.get("dur", 0) < 0:
            errors.append(f"traceEvents[{i}]: negative duration")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--schema", help="schema JSON to validate against")
    parser.add_argument("--trace", action="store_true",
                        help="validate files as chrome://tracing trace_event JSON")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()
    if bool(args.schema) == args.trace:
        parser.error("pass exactly one of --schema or --trace")

    schema = None
    if args.schema:
        with open(args.schema) as f:
            schema = json.load(f)

    failed = False
    for path in args.files:
        errors = []
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(str(exc))
            doc = None
        if doc is not None:
            if schema is not None:
                validate(doc, schema, "$", errors)
                if isinstance(doc, dict) and "histograms" in doc:
                    check_snapshot_semantics(doc, errors)
            else:
                check_trace(doc, errors)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
