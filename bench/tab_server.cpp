// Table T-SERVER: throughput and coalescing of the concurrent image server.
// Four groups of numbers: the latency of a hot (cached) lookup — the cost
// the lock-free hit index and epoch bookkeeping add over a raw block-cache
// probe — lookup throughput as reader threads scale over many blocks, the
// single-hot-block reader sweep (the lock-free path's scaling headline,
// gated in CI on multi-core runners), and the thundering-herd coalescing
// ratio (misses joined per decode actually run) with a synthetic decode
// delay holding the leader in the decoder.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "server/server.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_server", argc, argv);
  std::printf("Table T-SERVER: concurrent image-server lookups (scale=%.2f)\n\n", scale);

  const workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  const auto blocks = static_cast<std::uint32_t>(image.block_count());

  server::ImageServer srv;
  srv.load("img", codec, image);
  // Reader scaling is bounded by the physical core count — on a 1-core host
  // every sweep is honestly flat, so record the cores with the numbers.
  std::printf("benchmark go: %zu KB text, %u blocks of %u B (%u-core host)\n\n",
              code.size() / 1024, blocks, image.block_size(),
              std::thread::hardware_concurrency());

  // Hot lookup: every block resident after one warming pass.
  for (std::uint32_t b = 0; b < blocks; ++b) (void)srv.fetch("img", b);
  const std::size_t rounds = 50;
  const double hot_ns = bench::time_total_ns(rounds, [&](std::size_t) {
                          for (std::uint32_t b = 0; b < blocks; ++b) (void)srv.fetch("img", b);
                        }) /
                        static_cast<double>(rounds * blocks);
  std::printf("%-26s %10.0f ns\n", "hot lookup (cached)", hot_ns);
  json.add("hot_lookup", "latency", hot_ns, "ns");

  // Throughput as reader threads scale (single shared server, hot cache).
  std::printf("\n%-26s %14s\n", "readers", "lookups/sec");
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const std::size_t per_thread = 20000;
    const double total_ns = bench::time_total_ns(1, [&](std::size_t) {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t i = 0; i < per_thread; ++i)
            (void)srv.fetch("img", static_cast<std::uint32_t>((i + t) % blocks));
        });
      }
      for (std::thread& th : pool) th.join();
    });
    const double per_sec = static_cast<double>(threads) * static_cast<double>(per_thread) /
                           (total_ns / 1e9);
    std::printf("%-26u %14.0f\n", threads, per_sec);
    json.add("threads_" + std::to_string(threads), "lookups_per_sec", per_sec, "1/s");
  }

  // Reader scaling on a SINGLE hot block: the worst case for the old locked
  // hit path (every thread hammering one shard's mutex) and the best case
  // for the lock-free seqlock index — aggregate throughput should grow with
  // reader count up to the core count. CI gates 8-reader/1-reader >= 3x on
  // multi-core runners (.github/workflows/ci.yml perf-smoke).
  (void)srv.fetch("img", 0);  // ensure block 0 is resident
  std::printf("\n%-26s %14s %9s\n", "hot-block readers", "lookups/sec", "scaling");
  double single_rate = 0.0;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const std::size_t per_thread = 200000;
    const double total_ns = bench::time_total_ns(1, [&](std::size_t) {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (std::size_t i = 0; i < per_thread; ++i) (void)srv.fetch("img", 0);
        });
      }
      for (std::thread& th : pool) th.join();
    });
    const double per_sec = static_cast<double>(threads) * static_cast<double>(per_thread) /
                           (total_ns / 1e9);
    if (threads == 1) single_rate = per_sec;
    std::printf("%-26u %14.0f %8.2fx\n", threads, per_sec,
                single_rate > 0 ? per_sec / single_rate : 1.0);
    json.add_readers("hot_block", "lookups_per_sec", per_sec, "1/s", threads);
  }

  // Thundering herd: 8 threads racing to the same cold block, with a decode
  // delay wide enough that followers arrive while the leader is decoding.
  const std::uint32_t herd_threads = 8;
  const std::size_t herd_rounds = 16;
  srv.set_decode_delay(std::chrono::milliseconds(1));
  const std::uint64_t decodes0 = srv.stats().decodes;
  const std::uint64_t joined0 = srv.cache_stats().coalesced + srv.cache_stats().hits;
  for (std::size_t round = 0; round < herd_rounds; ++round) {
    srv.flush_cache();
    const auto block = static_cast<std::uint32_t>(round % blocks);
    std::atomic<std::uint32_t> ready{0};
    std::vector<std::thread> pool;
    pool.reserve(herd_threads);
    for (std::uint32_t t = 0; t < herd_threads; ++t) {
      pool.emplace_back([&] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < herd_threads) std::this_thread::yield();
        (void)srv.fetch("img", block);
      });
    }
    for (std::thread& th : pool) th.join();
  }
  srv.set_decode_delay(std::chrono::microseconds(0));
  const std::uint64_t decodes = srv.stats().decodes - decodes0;
  const std::uint64_t joined = srv.cache_stats().coalesced + srv.cache_stats().hits - joined0;
  const double ratio =
      decodes == 0 ? 0.0 : static_cast<double>(joined) / static_cast<double>(decodes);
  std::printf("\nherd (8 threads x %zu rounds): %llu decode(s), %llu joined, ratio %.2f\n",
              herd_rounds, static_cast<unsigned long long>(decodes),
              static_cast<unsigned long long>(joined), ratio);
  json.add("herd", "coalescing_ratio", ratio, "joins/decode");
  return 0;
}
