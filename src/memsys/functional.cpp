#include "memsys/functional.h"

#include <string>

#include "analysis/certificate.h"
#include "layout/layout.h"
#include "obs/obs.h"
#include "support/error.h"
#include "verify/verify.h"

namespace ccomp::memsys {

namespace {

/// Load-time audit shared by the constructor and reload(). In strict mode
/// the image must carry an embedded certificate with a kCertified verdict,
/// and the ANA/WCB re-verification must come back clean — an image nobody
/// certified (or whose certificate no longer matches its artifacts) is
/// refused before the refill engine ever touches it.
void audit_image(const core::CompressedImage& image, bool verify_on_load,
                 bool require_certificate, const char* when) {
  if (require_certificate) {
    if (!image.has_certificate())
      throw CorruptDataError(std::string("strict mode: image carries no decode certificate (") +
                             when + ")");
    ByteSource src(image.certificate());
    const analysis::DecodeCertificate cert = analysis::DecodeCertificate::deserialize(src);
    if (!cert.certified())
      throw CorruptDataError(
          std::string("strict mode: embedded certificate verdict is ") +
          std::string(analysis::verdict_name(cert.verdict)) + " (" + when + ")");
  }
  if (verify_on_load || require_certificate) {
    verify::VerifyOptions opts;
    opts.certify = require_certificate;
    const verify::VerifyReport report = verify::verify_image(image, opts);
    if (!report.ok())
      throw CorruptDataError(std::string("image rejected at ") + when + " time:\n" +
                             report.to_string());
  }
}

}  // namespace

FunctionalMemorySystem::FunctionalMemorySystem(const CacheConfig& cache_config,
                                               const core::BlockCodec& codec,
                                               const core::CompressedImage& image,
                                               bool verify_on_load, bool require_certificate)
    : image_(&image),
      decompressor_(layout::make_tier_decompressor(codec, image)),
      remap_(layout::remap_table(image)),
      cache_(std::make_unique<ICache>(cache_config)),
      line_bytes_(cache_config.line_bytes),
      ways_(cache_config.associativity) {
  audit_image(image, verify_on_load, require_certificate, "load");
  if (image.has_variable_blocks())
    throw ConfigError("functional memory system needs address-aligned blocks");
  if (image.block_size() != line_bytes_)
    throw ConfigError("image block size must equal the cache line size");
  sets_ = cache_config.size_bytes / (line_bytes_ * ways_);
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

FunctionalMemorySystem::FunctionalMemorySystem(const CacheConfig& cache_config,
                                               const core::BlockCodec& codec,
                                               core::MappedImage mapped, bool verify_on_load,
                                               bool require_certificate)
    : mapping_holder_(std::make_unique<const core::MappedImage>(std::move(mapped))),
      view_holder_(std::make_unique<const core::CompressedImage>(mapping_holder_->view_image())),
      image_(view_holder_.get()),
      decompressor_(layout::make_tier_decompressor(codec, *view_holder_)),
      remap_(layout::remap_table(*view_holder_)),
      cache_(std::make_unique<ICache>(cache_config)),
      line_bytes_(cache_config.line_bytes),
      ways_(cache_config.associativity) {
  audit_image(*image_, verify_on_load, require_certificate, "load");
  if (image_->has_variable_blocks())
    throw ConfigError("functional memory system needs address-aligned blocks");
  if (image_->block_size() != line_bytes_)
    throw ConfigError("image block size must equal the cache line size");
  sets_ = cache_config.size_bytes / (line_bytes_ * ways_);
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

FunctionalMemorySystem::Line& FunctionalMemorySystem::lookup(std::uint32_t address) {
  cache_->access(address);  // keep the stats model in sync
  ++clock_;
  const std::uint64_t line_index = address / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_index) & (sets_ - 1);
  const std::uint64_t tag = line_index / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      return line;
    }
    if (!line.valid) {
      if (victim->valid) victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  // Miss: run the refill engine. Addresses index original blocks; the
  // stored image lives in slot space, so hop through the layout remap.
  if (line_index >= remap_.size()) throw ConfigError("fetch outside the program");
  const std::size_t block = remap_[line_index];
  ++refills_;
  CCOMP_SPAN("memsys.refill");
  CCOMP_TIMER("memsys.refill_ns");
  CCOMP_COUNT("memsys.refills", 1);
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  // Decompress straight into the line's buffer: after warmup every refill
  // reuses the victim line's capacity and the member scratch's arenas, so a
  // steady-state miss touches the heap zero times (tests/test_allocfree.cpp
  // asserts this).
  victim->bytes.resize(image_->block_original_size(block));
  decompressor_->block_into(block, victim->bytes, scratch_);
  return *victim;
}

void FunctionalMemorySystem::reload(const core::BlockCodec& codec,
                                    const core::CompressedImage& image, bool verify_on_load,
                                    bool require_certificate) {
  audit_image(image, verify_on_load, require_certificate, "reload");
  if (image.has_variable_blocks())
    throw ConfigError("functional memory system needs address-aligned blocks");
  if (image.block_size() != line_bytes_)
    throw ConfigError("image block size must equal the cache line size");
  // Build the new decompressor before touching any member so a throwing
  // codec leaves the system on the old image.
  auto decompressor = layout::make_tier_decompressor(codec, image);
  auto remap = layout::remap_table(image);
  image_ = &image;
  decompressor_ = std::move(decompressor);
  remap_ = std::move(remap);
  // The caller now owns the image; any mapping from a mapped-image
  // construction is no longer referenced.
  view_holder_.reset();
  mapping_holder_.reset();
  for (Line& line : lines_) line.valid = false;
  cache_->flush();  // invalidates the stats model's tags; counters survive
}

void FunctionalMemorySystem::reset_stats() {
  cache_->reset_stats();
  refills_ = 0;
}

std::uint32_t FunctionalMemorySystem::fetch(std::uint32_t address) {
  if (address % 4 != 0) throw ConfigError("instruction fetch must be word aligned");
  const Line& line = lookup(address);
  const std::uint32_t offset = address % line_bytes_;
  if (offset + 4 > line.bytes.size()) throw ConfigError("fetch beyond program end");
  std::uint32_t word = 0;
  for (int b = 3; b >= 0; --b) word = (word << 8) | line.bytes[offset + static_cast<unsigned>(b)];
  return word;
}

std::uint8_t FunctionalMemorySystem::fetch_byte(std::uint32_t address) {
  const Line& line = lookup(address);
  const std::uint32_t offset = address % line_bytes_;
  if (offset >= line.bytes.size()) throw ConfigError("fetch beyond program end");
  return line.bytes[offset];
}

}  // namespace ccomp::memsys
