// ccomp::obs — registry aggregation across threads, histogram bucket
// semantics, span nesting and ring wraparound, and exporter golden output.
// The registry is a process-wide singleton, so every test uses its own
// metric names and asserts on deltas (or calls Registry::reset() first).
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "isa/mips/mips.h"
#include "memsys/functional.h"
#include "memsys/selfheal.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::obs {
namespace {

const CounterValue* find_counter(const Snapshot& s, std::string_view name) {
  for (const CounterValue& c : s.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeValue* find_gauge(const Snapshot& s, std::string_view name) {
  for (const GaugeValue& g : s.gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramValue* find_histogram(const Snapshot& s, std::string_view name) {
  for (const HistogramValue& h : s.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

// --- Registry aggregation -------------------------------------------------

TEST(ObsRegistry, CounterAggregatesAcrossThreads) {
  Registry& reg = Registry::instance();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string name = "test.obs.threads" + std::to_string(threads);
    const std::uint32_t id = reg.counter(name);
    constexpr std::uint64_t kAddsPerThread = 10000;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t)
      workers.emplace_back([&reg, id] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) reg.add(id, 1);
      });
    for (std::thread& w : workers) w.join();
    // The worker threads have exited, so their shards have folded into the
    // retired accumulator — the total must still be exact.
    const Snapshot snap = reg.snapshot();
    const CounterValue* c = find_counter(snap, name);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, threads * kAddsPerThread) << threads << " threads";
  }
}

TEST(ObsRegistry, InterningReturnsSameId) {
  Registry& reg = Registry::instance();
  const std::uint32_t a = reg.counter("test.obs.interned");
  const std::uint32_t b = reg.counter("test.obs.interned");
  EXPECT_EQ(a, b);
}

TEST(ObsRegistry, KindMismatchThrows) {
  Registry& reg = Registry::instance();
  (void)reg.counter("test.obs.kind");
  EXPECT_THROW((void)reg.gauge("test.obs.kind"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("test.obs.kind"), std::logic_error);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  Registry& reg = Registry::instance();
  const std::uint32_t id = reg.gauge("test.obs.gauge");
  reg.gauge_set(id, 42);
  reg.gauge_add(id, -50);
  const Snapshot snap = reg.snapshot();
  const GaugeValue* g = find_gauge(snap, "test.obs.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -8);
}

TEST(ObsRegistry, HistogramBucketBoundariesAreInclusive) {
  Registry& reg = Registry::instance();
  const std::uint64_t bounds[] = {10, 100, 1000};
  const std::uint32_t id = reg.histogram("test.obs.hist", bounds);
  for (const std::uint64_t v : {5u, 10u, 11u, 100u, 1000u, 1001u}) reg.record(id, v);
  const Snapshot snap = reg.snapshot();
  const HistogramValue* h = find_histogram(snap, "test.obs.hist");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->bounds.size(), 3u);
  ASSERT_EQ(h->bucket_counts.size(), 4u);  // +Inf bucket appended
  EXPECT_EQ(h->bucket_counts[0], 2u);      // 5, 10 (le is inclusive)
  EXPECT_EQ(h->bucket_counts[1], 2u);      // 11, 100
  EXPECT_EQ(h->bucket_counts[2], 1u);      // 1000
  EXPECT_EQ(h->bucket_counts[3], 1u);      // 1001 overflows to +Inf
  EXPECT_EQ(h->count, 6u);
  EXPECT_EQ(h->sum, 5u + 10 + 11 + 100 + 1000 + 1001);
}

TEST(ObsRegistry, NonIncreasingBoundsThrow) {
  Registry& reg = Registry::instance();
  const std::uint64_t bad[] = {10, 10, 100};
  EXPECT_THROW((void)reg.histogram("test.obs.badbounds", bad), std::logic_error);
}

TEST(ObsRegistry, ResetZeroesButKeepsRegistrations) {
  Registry& reg = Registry::instance();
  const std::uint32_t id = reg.counter("test.obs.reset");
  reg.add(id, 7);
  reg.reset();
  const Snapshot after_reset = reg.snapshot();
  const CounterValue* c = find_counter(after_reset, "test.obs.reset");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 0u);
  reg.add(id, 3);  // the interned id stays live after reset
  const Snapshot after_add = reg.snapshot();
  EXPECT_EQ(find_counter(after_add, "test.obs.reset")->value, 3u);
}

// Guarded tests exercise the *enabled* macro expansion; under cmake
// -DCCOMP_OBS=OFF the whole binary is compiled with CCOMP_OBS_DISABLE and
// only the registry-API and stats tests remain meaningful (the disabled
// expansion itself is covered by test_obs_disabled.cpp in every build).
#if !defined(CCOMP_OBS_DISABLE)

TEST(ObsRegistry, MacrosFeedTheRegistry) {
  Registry& reg = Registry::instance();
  CCOMP_COUNT("test.obs.macro", 5);
  CCOMP_COUNT("test.obs.macro", 2);
  const Snapshot snap = reg.snapshot();
  const CounterValue* c = find_counter(snap, "test.obs.macro");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 7u);
}

// --- Tracing spans --------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    clear_trace();
  }
  void TearDown() override {
    set_trace_enabled(false);
    clear_trace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  { CCOMP_SPAN("test.quiet"); }
  EXPECT_TRUE(trace_events().empty());
}

TEST_F(TraceTest, SpanNestingRecordsDepth) {
  set_trace_enabled(true);
  {
    CCOMP_SPAN("test.outer");
    {
      CCOMP_SPAN("test.inner");
    }
  }
  set_trace_enabled(false);
  const std::vector<SpanEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // The inner span closes first, so it lands in the ring first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
  EXPECT_EQ(events[0].thread, events[1].thread);
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  set_trace_capacity(8);
  set_trace_enabled(true);
  for (int i = 0; i < 20; ++i) {
    CCOMP_SPAN("test.wrap");
  }
  set_trace_enabled(false);
  const std::vector<SpanEvent> events = trace_events();
  ASSERT_EQ(events.size(), 8u);  // 12 oldest overwritten
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns) << "oldest-first order";
  set_trace_capacity(65536);
}

#endif  // !CCOMP_OBS_DISABLE

// --- Exporter goldens (hand-built snapshot: fully deterministic) ----------

Snapshot golden_snapshot() {
  Snapshot s;
  s.counters.push_back({"samc.decode.blocks", "decoded blocks", 12});
  s.gauges.push_back({"pool.queue_depth", "", -3});
  HistogramValue h;
  h.name = "memsys.refill_ns";
  h.bounds = {10, 100};
  h.bucket_counts = {1, 2, 3};  // 3 land beyond the last bound
  h.count = 6;
  h.sum = 123;
  s.histograms.push_back(h);
  return s;
}

TEST(ObsExport, PrometheusGolden) {
  const std::string expected =
      "# HELP ccomp_samc_decode_blocks_total decoded blocks\n"
      "# TYPE ccomp_samc_decode_blocks_total counter\n"
      "ccomp_samc_decode_blocks_total 12\n"
      "# TYPE ccomp_pool_queue_depth gauge\n"
      "ccomp_pool_queue_depth -3\n"
      "# TYPE ccomp_memsys_refill_ns histogram\n"
      "ccomp_memsys_refill_ns_bucket{le=\"10\"} 1\n"
      "ccomp_memsys_refill_ns_bucket{le=\"100\"} 3\n"  // cumulative
      "ccomp_memsys_refill_ns_bucket{le=\"+Inf\"} 6\n"
      "ccomp_memsys_refill_ns_sum 123\n"
      "ccomp_memsys_refill_ns_count 6\n";
  EXPECT_EQ(to_prometheus(golden_snapshot()), expected);
}

TEST(ObsExport, JsonGolden) {
  const std::string expected =
      "{\"counters\":{\"samc.decode.blocks\":12},"
      "\"gauges\":{\"pool.queue_depth\":-3},"
      "\"histograms\":{\"memsys.refill_ns\":{\"bounds\":[10,100],"
      "\"counts\":[1,2,3],\"count\":6,\"sum\":123}}}";
  EXPECT_EQ(to_json(golden_snapshot()), expected);
}

TEST(ObsExport, ChromeTraceGolden) {
  std::vector<SpanEvent> events;
  events.push_back({"samc.decode_block", 0, 0, 1500, 500});
  events.push_back({"memsys.refill", 1, 1, 2000, 250});
  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
      "{\"name\":\"samc.decode_block\",\"cat\":\"ccomp\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":0.500,\"pid\":1,\"tid\":0,\"args\":{\"depth\":0}},"
      "{\"name\":\"memsys.refill\",\"cat\":\"ccomp\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":0.250,\"pid\":1,\"tid\":1,\"args\":{\"depth\":1}}"
      "]}";
  EXPECT_EQ(to_chrome_trace(events), expected);
}

TEST(ObsExport, TableMentionsEverySeries) {
  const std::string table = to_table(golden_snapshot());
  EXPECT_NE(table.find("samc.decode.blocks"), std::string::npos);
  EXPECT_NE(table.find("pool.queue_depth"), std::string::npos);
  EXPECT_NE(table.find("memsys.refill_ns"), std::string::npos);
}

// --- Stats reset / reload across the memory system ------------------------

std::vector<std::uint8_t> small_program(std::uint32_t seed_kb) {
  workload::Profile p = *workload::find_profile("m88ksim");
  p.code_kb = seed_kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

TEST(ObsStats, CacheAndRecoveryStatsReset) {
  memsys::CacheStats cs;
  cs.accesses = 5;
  cs.misses = 2;
  cs.reset();
  EXPECT_EQ(cs.accesses, 0u);
  EXPECT_EQ(cs.misses, 0u);

  memsys::RecoveryStats rs;
  rs.refills = 3;
  rs.ecc_corrected = 1;
  rs.scrubbed = 9;
  rs.reset();
  EXPECT_EQ(rs.refills, 0u);
  EXPECT_EQ(rs.ecc_corrected, 0u);
  EXPECT_EQ(rs.scrubbed, 0u);
}

TEST(ObsStats, FunctionalReloadPreservesStats) {
  const auto code_a = small_program(4);
  const auto code_b = small_program(8);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image_a = codec.compress(code_a);
  const auto image_b = codec.compress(code_b);

  memsys::FunctionalMemorySystem mem({1024, 32, 2}, codec, image_a);
  for (std::uint32_t a = 0; a < code_a.size(); a += 4) (void)mem.fetch(a);
  const std::uint64_t accesses_before = mem.cache_stats().accesses;
  const std::uint64_t refills_before = mem.refills();
  ASSERT_GT(accesses_before, 0u);
  ASSERT_GT(refills_before, 0u);

  mem.reload(codec, image_b);
  // The cache was invalidated, so the first fetch refills from image_b —
  // and the counters keep accumulating across the swap.
  EXPECT_EQ(mem.fetch(0), mips::bytes_to_words(code_b)[0]);
  EXPECT_GT(mem.cache_stats().accesses, accesses_before);
  EXPECT_GT(mem.refills(), refills_before);

  mem.reset_stats();
  EXPECT_EQ(mem.cache_stats().accesses, 0u);
  EXPECT_EQ(mem.refills(), 0u);
}

TEST(ObsStats, SelfHealResetStats) {
  const auto code = small_program(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  memsys::SelfHealingMemorySystem::Options options;
  options.cache.line_bytes = image.block_size();
  options.cache.size_bytes = image.block_size() * 16;
  memsys::SelfHealingMemorySystem heal(options, codec, image);

  (void)heal.fetch(0);  // through the I-cache; read_block bypasses it
  (void)heal.read_block(0);
  (void)heal.scrub(image.block_count());
  ASSERT_GT(heal.stats().refills, 0u);
  ASSERT_GT(heal.stats().scrubbed, 0u);
  ASSERT_GT(heal.cache_stats().accesses, 0u);

  heal.reset_stats();
  EXPECT_EQ(heal.stats().refills, 0u);
  EXPECT_EQ(heal.stats().scrubbed, 0u);
  EXPECT_EQ(heal.cache_stats().accesses, 0u);
}

}  // namespace
}  // namespace ccomp::obs
