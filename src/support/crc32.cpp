#include "support/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace ccomp {
namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table for the
// reflected polynomial; table[k][b] is the CRC of byte b followed by k zero
// bytes. Eight bytes then fold in one round of eight independent lookups
// (no serial table->shift->table chain per byte), which is what keeps the
// self-healing store's per-refill CRC gate off the refill path's critical
// time. All tables are built at compile time from the same polynomial.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      tables[k][i] = tables[0][tables[k - 1][i] & 0xFF] ^ (tables[k - 1][i] >> 8);
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = make_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Slicing-by-8 main loop (little-endian hosts; the byte loop below is the
  // reference form and handles the tail and big-endian machines).
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p, sizeof chunk);
      chunk ^= c;
      c = kTables[7][chunk & 0xFF] ^ kTables[6][(chunk >> 8) & 0xFF] ^
          kTables[5][(chunk >> 16) & 0xFF] ^ kTables[4][(chunk >> 24) & 0xFF] ^
          kTables[3][(chunk >> 32) & 0xFF] ^ kTables[2][(chunk >> 40) & 0xFF] ^
          kTables[1][(chunk >> 48) & 0xFF] ^ kTables[0][chunk >> 56];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p) {
    c = kTables[0][(c ^ *p) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ccomp
