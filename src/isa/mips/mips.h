// MIPS-I instruction set model (integer + FPA subset).
//
// SADC needs a lossless round trip between 32-bit instruction words and
// (opcode token, operand values): the token index identifies a row of the
// opcode table (fixed match/mask bits), and the operands fill the variable
// fields. Register operands are 5-bit fields at one of four shifts (25-21,
// 20-16, 15-11, 10-6); immediates are 16-bit (I-format) or 26-bit (J-format)
// — exactly the four SADC streams the paper uses for MIPS.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace ccomp::mips {

/// Register-field shifts within the instruction word.
inline constexpr unsigned kShiftRs = 21;
inline constexpr unsigned kShiftRt = 16;
inline constexpr unsigned kShiftRd = 11;
inline constexpr unsigned kShiftShamt = 6;

/// One row of the opcode table.
struct OpcodeInfo {
  const char* mnemonic;
  std::uint32_t match;  // value of the fixed bits
  std::uint32_t mask;   // which bits are fixed (operand fields are 0 here)
  std::uint8_t reg_count;       // number of 5-bit register/shamt operands
  std::uint8_t reg_shifts[4];   // shifts of those operands, assembly order
  bool has_imm16;
  bool has_imm26;
  bool is_branch;  // pc-relative 16-bit target (affects disassembly only)
  bool is_jump;    // absolute 26-bit target
  bool is_mem;     // load/store: renders as  op rt, imm(base)
};

/// The instruction table. Index into this table is the SADC "base opcode
/// token". Stable across runs (it is a compile-time constant).
std::span<const OpcodeInfo> opcode_table();

/// Number of base tokens (= opcode_table().size()).
std::size_t opcode_count();

/// Decoded instruction: table row + operand values.
struct Decoded {
  std::uint16_t opcode;          // index into opcode_table()
  std::uint8_t regs[4] = {};     // register/shamt operands, assembly order
  std::uint16_t imm16 = 0;
  std::uint32_t imm26 = 0;
};

/// Match a word against the table. Returns std::nullopt for words no table
/// row matches (the tokenizer treats those as raw literals).
std::optional<Decoded> decode(std::uint32_t word);

/// Reassemble a word from a decoded instruction (exact inverse of decode for
/// any word decode accepted).
std::uint32_t encode(const Decoded& d);

/// Operand-length unit (paper Fig. 6): how many register operands and which
/// immediates a token needs. Used by the SADC decompressor.
struct OperandLengths {
  unsigned regs;
  bool imm16;
  bool imm26;
};
OperandLengths operand_lengths(std::uint16_t opcode);

/// Pack program words to little-endian bytes and back.
std::vector<std::uint8_t> words_to_bytes(std::span<const std::uint32_t> words);
std::vector<std::uint32_t> bytes_to_words(std::span<const std::uint8_t> bytes);

/// Register ABI names ($zero, $at, $v0, ...), for the disassembler.
const char* reg_name(unsigned reg);

/// Human-readable disassembly of one instruction word.
std::string disassemble(std::uint32_t word);

/// Disassemble a whole program with addresses.
std::string disassemble_program(std::span<const std::uint32_t> words,
                                std::uint32_t base_address = 0);

}  // namespace ccomp::mips
