// MSB-first bit-level I/O over byte buffers.
//
// BitWriter accumulates bits into a std::vector<uint8_t>; BitReader consumes
// bits from a read-only span. Both are MSB-first (the first bit written is
// the most significant bit of the first byte), which matches the convention
// used by canonical Huffman codes and makes compressed dumps readable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.h"

namespace ccomp {

/// Writes bits MSB-first into an internal byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `count` bits of `value`, most significant first.
  /// `count` must be in [0, 64].
  void write_bits(std::uint64_t value, unsigned count);

  /// Append a single bit (0 or 1).
  void write_bit(unsigned bit) { write_bits(bit & 1u, 1); }

  /// Append a whole byte (8 bits).
  void write_byte(std::uint8_t byte) { write_bits(byte, 8); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Number of bits written so far.
  std::uint64_t bit_count() const { return bit_count_; }

  /// Finish (pads to byte boundary) and return the buffer.
  std::vector<std::uint8_t> take();

  /// View of the bytes written so far, excluding any partially filled byte.
  std::span<const std::uint8_t> complete_bytes() const {
    return {bytes_.data(), bytes_.size() - (pending_bits_ > 0 ? 1 : 0)};
  }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned pending_bits_ = 0;  // bits used in the last byte of bytes_ (0..7)
  std::uint64_t bit_count_ = 0;
};

/// Reads bits MSB-first from a caller-owned byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `count` bits (0..64) and return them right-aligned.
  /// Throws CorruptDataError past the end of the buffer.
  std::uint64_t read_bits(unsigned count);

  /// Non-consuming lookahead: the next `count` bits left-aligned within
  /// `count` (i.e. as read_bits would return them), with zero padding when
  /// fewer than `count` bits remain. Never throws.
  std::uint64_t peek_bits(unsigned count) const;

  /// Read a single bit.
  unsigned read_bit() { return static_cast<unsigned>(read_bits(1)); }

  /// Read a full byte.
  std::uint8_t read_byte() { return static_cast<std::uint8_t>(read_bits(8)); }

  /// Skip forward to the next byte boundary.
  void align_to_byte();

  /// Reposition to an absolute bit offset.
  void seek_bits(std::uint64_t bit_offset);

  /// Bits consumed so far.
  std::uint64_t bit_position() const { return bit_pos_; }

  /// Total bits available.
  std::uint64_t bit_size() const { return static_cast<std::uint64_t>(data_.size()) * 8; }

  /// Bits remaining.
  std::uint64_t bits_left() const { return bit_size() - bit_pos_; }

  /// Alias of bits_left(): the primitive decoder fuel bounds are written
  /// against. Reading past this count raises CorruptDataError (a typed,
  /// catchable error — never an assert), so hardened decoders can charge
  /// every read against the remaining budget.
  std::uint64_t bits_remaining() const { return bits_left(); }

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t bit_pos_ = 0;
};

}  // namespace ccomp
