#include "samc/optimizer.h"

#include <algorithm>

#include "support/histogram.h"
#include "support/rng.h"

namespace ccomp::samc {

using coding::MarkovConfig;
using coding::MarkovModel;
using coding::StreamDivision;

double division_cost_bits(const StreamDivision& division, std::span<const std::uint32_t> words,
                          unsigned context_bits, std::size_t block_words) {
  MarkovConfig config;
  config.division = division;
  config.context_bits = context_bits;
  const MarkovModel model = MarkovModel::train(config, words, block_words);
  return model.estimate_bits(words, block_words) +
         8.0 * static_cast<double>(model.table_bytes());
}

StreamDivision optimize_division(std::span<const std::uint32_t> words,
                                 const OptimizerOptions& options) {
  if (options.stream_count == 0 || 32 % options.stream_count != 0)
    throw ConfigError("optimizer stream_count must divide 32");
  const unsigned width = 32 / options.stream_count;
  const std::span<const std::uint32_t> sample =
      words.subspan(0, std::min(words.size(), options.sample_words));

  // --- correlation-seeded initial grouping -----------------------------
  const std::vector<double> corr = bit_correlation_matrix(sample);
  std::vector<int> assigned(32, -1);
  StreamDivision division;
  division.word_bits = 32;
  division.streams.assign(options.stream_count, {});

  // Seed stream s with the highest unassigned bit position, then greedily
  // pull in the bits most correlated with the stream's current members.
  for (unsigned s = 0; s < options.stream_count; ++s) {
    int seed_bit = -1;
    for (int b = 31; b >= 0; --b)
      if (assigned[static_cast<std::size_t>(b)] < 0) {
        seed_bit = b;
        break;
      }
    assigned[static_cast<std::size_t>(seed_bit)] = static_cast<int>(s);
    division.streams[s].push_back(static_cast<std::uint8_t>(seed_bit));
    while (division.streams[s].size() < width) {
      int best = -1;
      double best_score = -1.0;
      for (int b = 0; b < 32; ++b) {
        if (assigned[static_cast<std::size_t>(b)] >= 0) continue;
        double score = 0.0;
        for (const std::uint8_t member : division.streams[s])
          score += corr[static_cast<std::size_t>(b) * 32 + member];
        if (score > best_score) {
          best_score = score;
          best = b;
        }
      }
      assigned[static_cast<std::size_t>(best)] = static_cast<int>(s);
      division.streams[s].push_back(static_cast<std::uint8_t>(best));
    }
    // Keep a deterministic MSB-first order inside the stream.
    std::sort(division.streams[s].begin(), division.streams[s].end(),
              std::greater<std::uint8_t>());
  }
  division.validate();

  // --- randomized exchange hill-climbing --------------------------------
  Rng rng(options.seed);
  double best_cost =
      division_cost_bits(division, sample, options.context_bits, options.block_words);
  for (unsigned it = 0; it < options.swap_attempts; ++it) {
    const std::size_t s1 = rng.next_below(options.stream_count);
    std::size_t s2 = rng.next_below(options.stream_count);
    if (s1 == s2) s2 = (s2 + 1) % options.stream_count;
    StreamDivision candidate = division;
    auto& a = candidate.streams[s1];
    auto& b = candidate.streams[s2];
    std::swap(a[rng.next_below(a.size())], b[rng.next_below(b.size())]);
    std::sort(a.begin(), a.end(), std::greater<std::uint8_t>());
    std::sort(b.begin(), b.end(), std::greater<std::uint8_t>());
    const double cost =
        division_cost_bits(candidate, sample, options.context_bits, options.block_words);
    if (cost < best_cost) {
      best_cost = cost;
      division = std::move(candidate);
    }
  }
  return division;
}

}  // namespace ccomp::samc
