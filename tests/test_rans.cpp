// rANS coder: round-trip fuzz against seeded (bit, probability) sequences,
// entropy-efficiency race against the range coder, and the typed-error
// truncation/overrun paths the fault-injection framework relies on.
#include "coding/rans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "coding/rangecoder.h"
#include "core/streams.h"
#include "support/rng.h"

namespace ccomp::coding {
namespace {

// One seeded (probability, bit) sequence: probabilities sweep the encodable
// range including both extremes, bits are drawn from the modelled
// probability most of the time (compressible) with occasional contrarian
// bits (the expensive path).
std::vector<std::uint32_t> make_case(std::uint64_t seed, std::size_t bits) {
  Rng rng(seed);
  std::vector<std::uint32_t> seq;
  seq.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    Prob p0;
    switch (rng.next_below(5)) {
      case 0: p0 = 1; break;                                          // LPS=0 extreme
      case 1: p0 = 0xFFFF; break;                                     // LPS=1 extreme
      case 2: p0 = quantize_prob_pow2(static_cast<Prob>(1 + rng.next_below(0xFFFE)), 8); break;
      default: p0 = static_cast<Prob>(1 + rng.next_below(0xFFFF)); break;
    }
    const bool agree = rng.next_below(100) < 90;
    const unsigned modelled = rng.next_below(0x10000) < p0 ? 0u : 1u;
    const unsigned bit = agree ? modelled : 1u - modelled;
    seq.push_back(static_cast<std::uint32_t>(p0) | (bit << 16));
  }
  return seq;
}

std::vector<std::uint8_t> encode_seq(std::span<const std::uint32_t> seq) {
  RansEncoder enc;
  for (const std::uint32_t rec : seq)
    enc.encode_bit((rec >> 16) & 1u, static_cast<Prob>(rec & 0xFFFFu));
  enc.finish();
  return enc.take();
}

TEST(Rans, RoundTripFuzz10k) {
  // 10k seeded inputs across lengths 0..~200 bits; every stream must decode
  // to the exact bit sequence and consume exactly its payload.
  for (std::uint64_t seed = 0; seed < 10'000; ++seed) {
    const std::size_t bits = static_cast<std::size_t>(seed % 211);
    const auto seq = make_case(seed ^ 0x9E3779B97F4A7C15ull, bits);
    const auto bytes = encode_seq(seq);
    ASSERT_GE(bytes.size(), kRansFlushBytes);
    RansDecoder dec(bytes);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const Prob p0 = static_cast<Prob>(seq[i] & 0xFFFFu);
      const unsigned want = (seq[i] >> 16) & 1u;
      ASSERT_EQ(dec.decode_bit(p0), want) << "seed " << seed << " bit " << i;
    }
    ASSERT_EQ(dec.consumed(), bytes.size()) << "seed " << seed;
  }
}

TEST(Rans, EmptyStreamIsJustTheFlushedState) {
  RansEncoder enc;
  enc.finish();
  const auto bytes = enc.take();
  EXPECT_EQ(bytes.size(), kRansFlushBytes);
  RansDecoder dec(bytes);  // must not throw
  EXPECT_EQ(dec.consumed(), kRansFlushBytes);
}

TEST(Rans, CoreMatchesObjectDecode) {
  const auto seq = make_case(42, 4096);
  const auto bytes = encode_seq(seq);
  RansDecoder dec(bytes);
  RansDecoder::Core core = RansDecoder::attach(bytes);
  for (const std::uint32_t rec : seq) {
    const Prob p0 = static_cast<Prob>(rec & 0xFFFFu);
    ASSERT_EQ(core.decode_bit(p0), dec.decode_bit(p0));
  }
  EXPECT_EQ(core.pos, bytes.size());
}

TEST(Rans, TruncatedPayloadThrowsTypedError) {
  const auto seq = make_case(7, 512);
  const auto bytes = encode_seq(seq);
  // Shorter than a flushed state: rejected at attach.
  for (std::size_t n = 0; n < kRansFlushBytes; ++n) {
    const std::span<const std::uint8_t> cut(bytes.data(), n);
    EXPECT_THROW(RansDecoder dec(cut), CorruptDataError) << "len " << n;
  }
  // Attachable but cut mid-stream: decoding must hit the typed truncation
  // error before producing all bits (never UB / over-read) — unless the cut
  // stream happens to still be self-consistent, in which case bits decode
  // but the full sequence cannot be reproduced from fewer bytes.
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() / 2);
  RansDecoder dec(cut);
  bool threw = false;
  std::size_t decoded = 0;
  try {
    for (const std::uint32_t rec : seq) {
      (void)dec.decode_bit(static_cast<Prob>(rec & 0xFFFFu));
      ++decoded;
    }
  } catch (const CorruptDataError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "decoded " << decoded << " bits from a half stream";
}

TEST(Rans, OverrunDecodeThrowsNotOverreads) {
  // Decoding more bits than were encoded must end in a typed error (the
  // refill runs dry), never a silent over-read of neighbouring memory.
  const auto seq = make_case(11, 64);
  const auto bytes = encode_seq(seq);
  RansDecoder dec(bytes);
  for (const std::uint32_t rec : seq)
    (void)dec.decode_bit(static_cast<Prob>(rec & 0xFFFFu));
  EXPECT_THROW(
      {
        for (int i = 0; i < 100'000; ++i) (void)dec.decode_bit(kProbHalf);
      },
      CorruptDataError);
}

TEST(Rans, CorruptStateByteThrowsOrMisdecodesLoudly) {
  // Zeroing the first byte drives the initial state below the interval —
  // the attach-time typed error the verifier's contract expects.
  auto bytes = encode_seq(make_case(3, 128));
  bytes[0] = 0;
  bytes[1] = 0;
  bytes[2] = 0;
  EXPECT_THROW(RansDecoder dec(bytes), CorruptDataError);
}

double shannon_bytes(std::span<const std::uint32_t> seq) {
  double bits = 0;
  for (const std::uint32_t rec : seq) {
    const double p0 = static_cast<double>(rec & 0xFFFFu) / 65536.0;
    bits -= std::log2((rec >> 16) & 1u ? 1.0 - p0 : p0);
  }
  return bits / 8.0;
}

std::vector<std::uint8_t> encode_seq_range(std::span<const std::uint32_t> seq) {
  RangeEncoder range;
  for (const std::uint32_t rec : seq)
    range.encode_bit((rec >> 16) & 1u, static_cast<Prob>(rec & 0xFFFFu));
  range.finish();
  return range.take();
}

TEST(Rans, EfficiencyWithinHalfPercentOfShannonBound) {
  // rANS with exact division implements the nominal probabilities exactly,
  // so its payload must sit within 0.5% + flush slack of the sequence's
  // Shannon cost — even on the adversarial mix with p0 = 1 / 0xFFFF
  // extremes. (The range coder is NOT a valid yardstick here: its
  // `bound = (range >> 16) * p0` truncation silently donates up to a
  // 2^16-sized remainder to the bit==1 branch, so at extreme probabilities
  // its effective model deviates from nominal and it can undercut the
  // nominal entropy on contrarian-heavy sequences.)
  const auto seq = make_case(1234, 1 << 16);
  const auto rans_bytes = encode_seq(seq);
  EXPECT_LT(static_cast<double>(rans_bytes.size()), shannon_bytes(seq) * 1.005 + 8.0);
}

TEST(Rans, EfficiencyWithinHalfPercentOfRangeCoder) {
  // On moderate probabilities (the regime SAMC's Markov models actually
  // produce) the two coders' effective models agree to high precision, so
  // racing them head-to-head is meaningful: within 0.5% + flush slack.
  std::vector<std::uint32_t> seq;
  for (const std::uint32_t rec : make_case(1234, 1 << 16)) {
    const Prob p0 = static_cast<Prob>(rec & 0xFFFFu);
    if (p0 >= 256 && p0 <= 0xFF00) seq.push_back(rec);
  }
  ASSERT_GT(seq.size(), 20'000u);
  const auto rans_bytes = encode_seq(seq);
  const auto range_bytes = encode_seq_range(seq);
  EXPECT_LT(static_cast<double>(rans_bytes.size()),
            static_cast<double>(range_bytes.size()) * 1.005 + 8.0);
}

// --- Multi-stream block frame (core/streams.h) ---------------------------

TEST(StreamBlock, PackSplitRoundTrip) {
  Rng rng(99);
  for (unsigned k = 1; k <= core::kMaxEntropyStreams; ++k) {
    std::vector<std::vector<std::uint8_t>> streams(k);
    for (auto& s : streams) {
      s.resize(rng.next_below(300));
      for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const auto block = core::pack_stream_block(streams);
    const auto spans = core::split_stream_block(block, k);
    ASSERT_EQ(spans.count, k);
    for (unsigned i = 0; i < k; ++i) {
      ASSERT_EQ(spans[i].size(), streams[i].size());
      EXPECT_TRUE(std::equal(spans[i].begin(), spans[i].end(), streams[i].begin()));
    }
  }
}

TEST(StreamBlock, SingleStreamIsFrameless) {
  const std::vector<std::vector<std::uint8_t>> one{{1, 2, 3}};
  EXPECT_EQ(core::pack_stream_block(one), one[0]);
}

TEST(StreamBlock, ChunkPartitionIsContiguousNearEvenPrefixed) {
  for (std::size_t total : {0u, 1u, 5u, 8u, 17u, 256u}) {
    for (unsigned k_streams : {1u, 2u, 4u, 8u, 16u}) {
      std::size_t sum = 0;
      std::size_t prev = core::chunk_size(total, k_streams, 0);
      for (unsigned k = 0; k < k_streams; ++k) {
        EXPECT_EQ(core::chunk_begin(total, k_streams, k), sum);
        const std::size_t n = core::chunk_size(total, k_streams, k);
        EXPECT_LE(n, prev);  // larger chunks first: active set is a prefix
        EXPECT_GE(n + 1, prev);
        prev = n;
        sum += n;
      }
      EXPECT_EQ(sum, total);
    }
  }
}

TEST(StreamBlock, CorruptFrameThrowsTypedErrors) {
  // Frame longer than payload.
  const std::vector<std::uint8_t> tiny{1};
  EXPECT_THROW(core::split_stream_block(tiny, 4), CorruptDataError);
  // Recorded length overruns the payload.
  std::vector<std::uint8_t> bad{0xFF, 0xFF, 0, 0, 0, 0};
  EXPECT_THROW(core::split_stream_block(bad, 2), CorruptDataError);
  // Stream count out of range.
  EXPECT_THROW(core::split_stream_block(bad, 0), CorruptDataError);
  EXPECT_THROW(core::split_stream_block(bad, 17), CorruptDataError);
}

}  // namespace
}  // namespace ccomp::coding
