// Instruction-cache models for the Wolfe/Chanin organisation.
//
// Two caches live here:
//
//  - ICache: the original set-associative hit/miss *simulation* model. The
//    I-cache holds decompressed lines and acts as the decompression buffer:
//    a hit costs one cycle, a miss triggers the refill engine. Line contents
//    are never stored because the simulator only needs the miss stream and
//    the refill costs. ICache itself is still a single-owner object.
//
//  - ShardedBlockCache: the serving-layer block cache behind ccomp::server.
//    It *does* store decompressed block bytes, is safe for any number of
//    concurrent readers, and coalesces concurrent misses on the same
//    (epoch, block) key into one in-flight decode. A *hit* never takes a
//    mutex: each shard carries an open-addressed seqlock-published hit
//    index probed with atomic loads, and displaced entries are reclaimed
//    through epoch-based deferred frees (memsys/ebr.h) so a reader racing
//    an eviction or invalidation can never observe freed memory. Misses,
//    coalescing, and publication keep the original mutexed leader/joiner
//    protocol. See DESIGN.md §4.20.
//
// CacheStats counters are atomic so a memory system's stats can be read
// while another thread drives it (the TSan suite shares systems across
// threads). Loads/stores are relaxed: individual counters are exact, but a
// snapshot taken mid-run is not a consistent cut across counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "memsys/ebr.h"
#include "support/error.h"

namespace ccomp::memsys {

struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t associativity = 2;
};

struct CacheStats {
  std::atomic<std::uint64_t> accesses{0};
  std::atomic<std::uint64_t> misses{0};

  CacheStats() = default;
  CacheStats(const CacheStats& other) { *this = other; }
  CacheStats& operator=(const CacheStats& other) {
    accesses.store(other.accesses.load(std::memory_order_relaxed), std::memory_order_relaxed);
    misses.store(other.misses.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  double miss_rate() const {
    const std::uint64_t a = accesses.load(std::memory_order_relaxed);
    const std::uint64_t m = misses.load(std::memory_order_relaxed);
    return a == 0 ? 0.0 : static_cast<double>(m) / static_cast<double>(a);
  }
  /// Zero all counters. Nothing else zeroes a CacheStats once it is live —
  /// reloading a memory system preserves its stats unless this is called.
  /// Not atomic as a whole: concurrent increments may land before or after
  /// the per-field stores; call it only while the owner is quiescent.
  void reset() {
    accesses.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
  }
};

class ICache {
 public:
  explicit ICache(const CacheConfig& config);

  /// Access one instruction address. Returns true on hit; on miss the line
  /// is brought in (evicting the set's LRU way).
  bool access(std::uint32_t address);

  /// Invalidate everything (keeps statistics).
  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

  /// Zero the hit/miss counters without touching cache contents.
  void reset_stats() { stats_.reset(); }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
  };
  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;  // sets_ x associativity, row-major
  std::uint32_t sets_ = 1;
  std::uint64_t clock_ = 0;
};

// ---------------------------------------------------------------------------
// ShardedBlockCache
// ---------------------------------------------------------------------------

/// Key of one decompressed block in the serving cache. `epoch` is the serving
/// epoch of the owning image — ccomp::server::ImageServer assigns a fresh
/// epoch on every load and hot-swap, so entries from a replaced image can
/// never alias blocks of its replacement.
struct BlockKey {
  std::uint64_t epoch = 0;
  std::uint32_t block = 0;
  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& key) const {
    std::uint64_t h = key.epoch * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(key.block) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    return static_cast<std::size_t>(h);
  }
};

struct ShardedCacheConfig {
  /// Total decompressed-byte budget across all shards.
  std::size_t capacity_bytes = 4 * 1024 * 1024;
  /// Number of independent lock domains; rounded up to a power of two.
  std::size_t shards = 16;
  /// Total lock-free hit-index slots across all shards (rounded up to a
  /// power of two per shard, minimum 16 each). The index is best-effort:
  /// a key missing from it is still found by the mutexed slow path, so
  /// sizing only affects the fast-hit rate. 0 disables the lock-free path
  /// entirely (every lookup takes the shard mutex, as before v3.1).
  std::size_t hit_slots = 4096;
};

/// Counters for the serving cache. Same atomicity contract as CacheStats —
/// each counter is a relaxed atomic, individually exact, and cross-counter
/// snapshots are not a consistent cut. The hot counters (lookups, hits) are
/// maintained internally on striped per-thread cache lines away from the
/// hit-index slots (a shared-line RMW next to the seqlock slots would put
/// every reader back into one cache-line ping-pong); stats() folds the
/// stripes into this struct. reset() / reset_stats() must only run while
/// the cache is quiescent: striped stripes are zeroed one line at a time,
/// so a racing reader could observe (and fold) a half-reset count.
struct BlockCacheStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  /// Misses that joined an already-in-flight decode instead of starting one.
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> evictions{0};

  BlockCacheStats() = default;
  BlockCacheStats(const BlockCacheStats& other) { *this = other; }
  BlockCacheStats& operator=(const BlockCacheStats& other) {
    lookups.store(other.lookups.load(std::memory_order_relaxed), std::memory_order_relaxed);
    hits.store(other.hits.load(std::memory_order_relaxed), std::memory_order_relaxed);
    misses.store(other.misses.load(std::memory_order_relaxed), std::memory_order_relaxed);
    coalesced.store(other.coalesced.load(std::memory_order_relaxed), std::memory_order_relaxed);
    inserts.store(other.inserts.load(std::memory_order_relaxed), std::memory_order_relaxed);
    evictions.store(other.evictions.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  void reset() {
    lookups.store(0, std::memory_order_relaxed);
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    coalesced.store(0, std::memory_order_relaxed);
    inserts.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
  }
};

/// Thread-safe LRU block cache, sharded by key hash, with request
/// coalescing: the first thread to miss a key becomes the *leader* of an
/// InFlight slot and decodes; later misses on the same key block on the
/// slot and share the leader's result (or its exception). The cache stores
/// immutable shared_ptr payloads, so a reader can keep using bytes after
/// the entry is evicted or invalidated.
///
/// Hits are lock-free: every resident entry is published into a per-shard
/// open-addressed slot table guarded by per-slot seqlock version counters
/// (odd = writer mid-update; readers retry or fall through to the mutexed
/// path). Readers pin an ebr::Guard for the probe, so the HitRecord a slot
/// points at is freed only after every reader that could have seen it has
/// unpinned — a reader racing an LRU eviction, epoch invalidation, or
/// flush gets either the old bytes (a valid pre-invalidation snapshot,
/// keyed by epoch so never stale across a hot-swap) or a miss, never a
/// dangling pointer. All slot writers hold the shard mutex, so slots are
/// single-writer and the authoritative LRU/index state stays exactly as
/// before — the slot table is a best-effort accelerator, not a source of
/// truth.
class ShardedBlockCache {
 public:
  using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// One coalesced decode. The leader fills it via publish()/fail(); joiners
  /// sleep in wait(). `degraded` marks a result that was served from the
  /// golden fallback path (correct bytes, but the store copy is quarantined);
  /// it is valid to read once wait() returns.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Bytes bytes;
    bool degraded = false;
    std::exception_ptr error;
  };
  using Flight = std::shared_ptr<InFlight>;

  /// Result of acquire(). Exactly one of `bytes` (hit) or `flight` (miss) is
  /// set. On a miss, `leader` tells the caller whether it must run the
  /// decode and publish()/fail() the flight, or just wait() on it.
  struct Ticket {
    Bytes bytes;
    Flight flight;
    bool leader = false;
  };

  explicit ShardedBlockCache(const ShardedCacheConfig& config);
  ~ShardedBlockCache();

  ShardedBlockCache(const ShardedBlockCache&) = delete;
  ShardedBlockCache& operator=(const ShardedBlockCache&) = delete;

  /// Lock-free lookup: the bytes when `key` is in the hit index, nullptr
  /// otherwise (including when a concurrent writer made the probe
  /// inconclusive — callers fall through to acquire()'s mutexed path,
  /// which is always authoritative). Never blocks, never throws.
  Bytes try_get(const BlockKey& key);

  Ticket acquire(const BlockKey& key);

  /// Leader-side completion: wake joiners with `bytes` and (when `cacheable`)
  /// insert the entry, evicting LRU tails past the shard budget.
  void publish(const BlockKey& key, const Flight& flight, Bytes bytes, bool degraded,
               bool cacheable);

  /// Leader-side failure: wake joiners with `error`; nothing is cached.
  void fail(const BlockKey& key, const Flight& flight, std::exception_ptr error);

  /// Joiner-side: block until the flight completes; rethrows the leader's
  /// exception, otherwise returns the shared bytes.
  static Bytes wait(InFlight& flight);

  /// Drop every cached entry belonging to `epoch` (after a hot-swap). An
  /// in-flight decode for that epoch may still publish afterwards; the stale
  /// entry is unreachable (the server never asks for a retired epoch again)
  /// and ages out through normal LRU eviction. A lock-free reader racing
  /// this sees either the pre-invalidation bytes (correct for the old
  /// epoch it asked for) or a miss.
  void invalidate_epoch(std::uint64_t epoch);

  /// Drop every cached entry (in-flight slots are untouched).
  void flush();

  /// Folded snapshot of the counters (hot stripes summed in). A snapshot
  /// taken while writers run is per-counter exact but not a consistent cut.
  BlockCacheStats stats() const;
  /// Quiescent-only, like BlockCacheStats::reset().
  void reset_stats();
  std::size_t shard_count() const { return shards_.size(); }

  /// Decompressed bytes currently resident (sum over shards; approximate
  /// while writers are active).
  std::size_t resident_bytes() const;

 private:
  /// Immutable once published (readers copy `bytes` with no lock); freed
  /// only through ebr::retire. `referenced` is the second-chance bit: a
  /// lock-free hit cannot splice the LRU list, so it marks the record and
  /// eviction gives marked entries another round instead of dropping hot
  /// blocks that never visibly "moved". Written at most once per residency
  /// (readers check before storing), so the line stays shared, not owned.
  struct HitRecord {
    Bytes bytes;
    std::atomic<std::uint8_t> referenced{0};
  };

  /// One hit-index slot. All fields are atomics written only under the
  /// shard mutex with the seqlock protocol (version to odd, release fence,
  /// relaxed field stores, version to even with release); readers validate
  /// version-before == version-after == even around relaxed field loads
  /// with an acquire fence before the re-check. That fence pairs with the
  /// writer's release fence: a reader that saw any new field value is
  /// guaranteed to see the odd version and retry, so a torn (key, record)
  /// pair can never validate.
  struct Slot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> block{0};
    std::atomic<HitRecord*> record{nullptr};
  };

  struct Entry {
    BlockKey key;
    Bytes bytes;
    /// Slot index this entry is published at (-1 = not in the hit index,
    /// e.g. displaced by a colliding key) and the record it published.
    std::int32_t slot = -1;
    HitRecord* rec = nullptr;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<BlockKey, std::list<Entry>::iterator, BlockKeyHash> index;
    std::unordered_map<BlockKey, Flight, BlockKeyHash> in_flight;
    std::size_t bytes = 0;
    /// Lock-free hit index (slot_count_ entries), probed by try_get.
    std::unique_ptr<Slot[]> table;
    /// Interned ids of this shard's labelled obs series
    /// ("server.cache.{hits,misses}|shard=N"); the aggregate series stays
    /// unlabelled, so per-shard values sum to it.
    std::uint32_t obs_hits_id = 0;
    std::uint32_t obs_misses_id = 0;
  };

  Shard& shard_for(const BlockKey& key);
  void insert_locked(Shard& shard, const BlockKey& key, const Bytes& bytes);
  /// Publish `entry` into the shard's hit index (shard.mu held). May
  /// displace a colliding entry's slot; the displaced entry stays fully
  /// servable through the mutexed path.
  void publish_slot_locked(Shard& shard, Entry& entry);
  /// Remove `entry` from the hit index and retire its record (shard.mu
  /// held). No-op when not published.
  void unpublish_slot_locked(Shard& shard, Entry& entry);

  ShardedCacheConfig config_;
  std::size_t shard_capacity_ = 0;
  std::size_t slot_count_ = 0;  // per shard, power of two (0 = fast path off)
  std::uint32_t shard_shift_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Slow-path counters (misses/coalesced/inserts/evictions); the hot
  /// lookups/hits fields of this struct stay zero and are folded from the
  /// stripes below in stats().
  BlockCacheStats stats_;
  ebr::StripedCounter lookups_;
  ebr::StripedCounter hits_;
};

}  // namespace ccomp::memsys
