// Decode-certificate engine tests.
//
// Positive direction: every codec's clean output certifies with finite
// bounds that are *sound* — the certified per-block byte bound dominates
// every payload the encoder actually emitted. Adversarial direction:
// hand-crafted images with a zero-bit Markov cycle, an over-deep Huffman
// table, and a truncated rANS tail each produce a failing certificate (a
// verdict, not a crash) — run these under ASan/UBSan to prove the tolerant
// re-parser never reads out of bounds on hostile tables. Plus the wiring:
// blob round-trip, container section round-trip, the ANA/WCB verify layer,
// and the strict memory-system loading mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "baseline/bytehuff.h"
#include "isa/mips/mips.h"
#include "memsys/functional.h"
#include "memsys/sim.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "support/error.h"
#include "support/serialize.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

std::vector<std::uint8_t> x86_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return workload::generate_x86(p);
}

/// Soundness harness: the image certifies, and the model-level byte bound
/// dominates every stored block payload.
void expect_certified_and_sound(const core::CompressedImage& image) {
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_EQ(cert.verdict, analysis::Verdict::kCertified)
      << (cert.failures.empty() ? std::string("no reason") : cert.failures.front());
  EXPECT_TRUE(cert.terminates);
  EXPECT_GT(cert.max_bits_per_byte, 0u);
  EXPECT_GT(cert.max_bits_per_block, 0u);
  EXPECT_GT(cert.model_block_bytes, 0u);
  for (std::size_t b = 0; b < image.block_count(); ++b)
    EXPECT_LE(image.block_payload(b).size(), cert.model_block_bytes) << "block " << b;
  EXPECT_EQ(cert.block_size, image.block_size());
}

TEST(Certify, SamcMipsDefaultsIsCertifiedExhaustively) {
  const auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(4));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  EXPECT_TRUE(cert.exhaustive);
  EXPECT_TRUE(cert.terminates);
  EXPECT_GT(cert.explored_states, 0u);
  EXPECT_EQ(cert.max_fanout, 2u);
  expect_certified_and_sound(image);
}

TEST(Certify, SamcMultiStreamRangeAndRans) {
  for (const samc::EntropyCoder coder :
       {samc::EntropyCoder::kRange, samc::EntropyCoder::kRans}) {
    samc::SamcOptions opts = samc::mips_defaults();
    opts.entropy_streams = 4;
    opts.entropy_coder = coder;
    expect_certified_and_sound(samc::SamcCodec(opts).compress(mips_code(4)));
  }
}

TEST(Certify, SamcX86IsCertified) {
  expect_certified_and_sound(samc::SamcCodec(samc::x86_defaults()).compress(x86_code(4)));
}

TEST(Certify, SamcX86SplitIsCertified) {
  expect_certified_and_sound(samc::SamcX86SplitCodec().compress(x86_code(4)));
}

TEST(Certify, SadcMipsIsCertified) {
  const auto image = sadc::SadcMipsCodec().compress(mips_code(4));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  EXPECT_GT(cert.max_phase1_fuel, 0u);
  EXPECT_LE(cert.max_phase1_fuel, image.block_size() / 4);
  EXPECT_LE(cert.max_decode_depth, 16u);
  expect_certified_and_sound(image);
}

TEST(Certify, SadcX86IsCertified) {
  expect_certified_and_sound(sadc::SadcX86Codec().compress(x86_code(4)));
}

TEST(Certify, ByteHuffmanIsCertified) {
  const auto image = baseline::ByteHuffmanCodec().compress(mips_code(4));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  EXPECT_LE(cert.max_decode_depth, 16u);
  EXPECT_EQ(cert.max_bits_per_byte, cert.max_decode_depth);
  expect_certified_and_sound(image);
}

TEST(Certify, WidenedAboveStateCapStaysSoundButInexhaustive) {
  const auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(4));
  analysis::CertifyOptions opts;
  opts.state_cap = 1;  // force widening
  const analysis::DecodeCertificate cert = analysis::certify(image, opts);
  ASSERT_TRUE(cert.certified());
  EXPECT_FALSE(cert.exhaustive);
  // Widening only loosens: its bound dominates the exhaustive one.
  const analysis::DecodeCertificate exact = analysis::certify(image);
  EXPECT_GE(cert.model_block_bytes, exact.model_block_bytes);
  EXPECT_GE(cert.max_bits_per_block, exact.max_bits_per_block);
}

TEST(Certify, CertifiedCycleBoundDominatesRefillModel) {
  const auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(4));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  const memsys::RefillModel m;
  const std::uint64_t certified = analysis::certified_block_cycles(
      cert, m.memory_latency, m.cycles_per_byte, m.decode_startup, m.decode_bits_per_cycle);
  // The refill model charges latency + payload transfer + decode; the
  // certified bound uses the exact max payload, so it dominates every
  // block's modeled refill.
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    const std::uint64_t observed =
        m.memory_latency + m.cycles_per_byte * image.block_payload(b).size() +
        m.decode_startup +
        (std::uint64_t{8} * image.block_size() + m.decode_bits_per_cycle - 1) /
            m.decode_bits_per_cycle;
    EXPECT_GE(certified, observed) << "block " << b;
  }
  analysis::DecodeCertificate failed = cert;
  failed.verdict = analysis::Verdict::kFailed;
  EXPECT_EQ(analysis::certified_block_cycles(failed, m.memory_latency, m.cycles_per_byte,
                                             m.decode_startup, m.decode_bits_per_cycle),
            0u);
}

// ---------------------------------------------------------------------------
// Adversarial images.

/// Hand-craft a SAMC table blob whose single-stream model gives every node
/// p0 = 0: the TRUE branch is certain everywhere, so the decoder walks the
/// whole state graph without ever consuming a compressed bit — the zero-bit
/// cycle the termination proof must detect.
core::CompressedImage zero_bit_cycle_image() {
  ByteSink tables;
  tables.u8(0);  // coder mode: range
  tables.u8(1);  // one entropy stream
  // StreamDivision: word_bits=8, one stream holding bits 7..0.
  tables.u8(8);
  tables.varint(1);
  tables.varint(8);
  for (int b = 7; b >= 0; --b) tables.u8(static_cast<std::uint8_t>(b));
  tables.u8(0);  // context_bits
  tables.u8(0);  // flags: unquantized, no cross-word context
  tables.u8(0);  // max_shift
  tables.varint(255);  // one context x (2^8 - 1) tree nodes
  for (int i = 0; i < 255; ++i) tables.u16(0);  // p0 = 0 everywhere
  std::vector<std::uint8_t> payload(10, 0xAB);
  const std::uint32_t payload_size = static_cast<std::uint32_t>(payload.size());
  return core::CompressedImage(core::CodecKind::kSamc, core::IsaKind::kRawBytes,
                               /*block_size=*/8, /*original_size=*/8, tables.take(),
                               {0, payload_size}, std::move(payload));
}

TEST(CertifyAdversarial, ZeroBitMarkovCycleIsUnbounded) {
  const analysis::DecodeCertificate cert = analysis::certify(zero_bit_cycle_image());
  EXPECT_EQ(cert.verdict, analysis::Verdict::kUnbounded);
  EXPECT_FALSE(cert.terminates);
  ASSERT_FALSE(cert.failures.empty());
}

TEST(CertifyAdversarial, OverDeepHuffmanTableFailsCleanly) {
  // A 17-bit code length: past the decoder's kMaxCodeLength. The production
  // parser rejects it; the certificate records the rejection as kFailed.
  ByteSink tables;
  tables.varint(2);
  tables.u8(17);
  tables.u8(1);
  std::vector<std::uint8_t> payload(4, 0);
  const std::uint32_t payload_size = static_cast<std::uint32_t>(payload.size());
  const core::CompressedImage image(core::CodecKind::kByteHuffman, core::IsaKind::kRawBytes,
                                    /*block_size=*/32, /*original_size=*/16, tables.take(),
                                    {0, payload_size}, std::move(payload));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  EXPECT_EQ(cert.verdict, analysis::Verdict::kFailed);
  ASSERT_FALSE(cert.failures.empty());
}

TEST(CertifyAdversarial, TruncatedRansTailFailsCleanly) {
  samc::SamcOptions opts = samc::mips_defaults();
  opts.entropy_coder = samc::EntropyCoder::kRans;
  const std::vector<std::uint8_t> code = mips_code(1);
  const auto good = samc::SamcCodec(opts).compress(code);
  // Rebuild a one-block image whose payload is the first block's bytes cut
  // to 3 — too short for the 4-byte rANS attach.
  const std::span<const std::uint8_t> block0 = good.block_payload(0);
  ASSERT_GE(block0.size(), 4u);
  std::vector<std::uint8_t> payload(block0.begin(), block0.begin() + 3);
  const core::CompressedImage truncated(
      core::CodecKind::kSamc, good.isa(), good.block_size(),
      /*original_size=*/good.block_size(),
      std::vector<std::uint8_t>(good.tables().begin(), good.tables().end()), {0, 3},
      std::move(payload));
  const analysis::DecodeCertificate cert = analysis::certify(truncated);
  EXPECT_EQ(cert.verdict, analysis::Verdict::kFailed);
  ASSERT_FALSE(cert.failures.empty());
}

// ---------------------------------------------------------------------------
// Serialization + container wiring.

TEST(CertificateBlob, RoundTripsExactly) {
  const auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(2));
  analysis::DecodeCertificate cert = analysis::certify(image);
  cert.failures.push_back("advisory note");
  ByteSink sink;
  cert.serialize(sink);
  ByteSource src(sink.view());
  const analysis::DecodeCertificate back = analysis::DecodeCertificate::deserialize(src);
  EXPECT_TRUE(src.at_end());
  EXPECT_EQ(cert, back);
}

TEST(CertificateBlob, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0x7F, 0x00, 0x00};
  ByteSource src(junk);
  EXPECT_THROW(analysis::DecodeCertificate::deserialize(src), CorruptDataError);
}

TEST(Container, CertificateSectionRoundTrips) {
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(2));
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  ByteSink blob;
  cert.serialize(blob);
  image.attach_certificate(blob.take());
  ASSERT_TRUE(image.has_certificate());

  ByteSink sink;
  image.serialize(sink);
  ByteSource src(sink.view());
  const core::CompressedImage back = core::CompressedImage::deserialize(src);
  ASSERT_TRUE(back.has_certificate());
  ByteSource cert_src(back.certificate());
  EXPECT_EQ(analysis::DecodeCertificate::deserialize(cert_src), cert);

  // A certified container passes the ANA/WCB verify layer.
  verify::VerifyOptions vopts;
  vopts.certify = true;
  const verify::VerifyReport report = verify::verify_image(back, vopts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.has("WCB002"));
}

TEST(Container, DroppedCertificateSerializesAsBefore) {
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(1));
  ByteSink before;
  image.serialize(before);
  const analysis::DecodeCertificate cert = analysis::certify(image);
  ByteSink blob;
  cert.serialize(blob);
  image.attach_certificate(blob.take());
  image.drop_certificate();
  ByteSink after;
  image.serialize(after);
  EXPECT_EQ(before.view().size(), after.view().size());
}

TEST(VerifyCertify, UnboundedImageFlagsAna002AndWcb003) {
  verify::VerifyOptions vopts;
  vopts.certify = true;
  const verify::VerifyReport report = verify::verify_image(zero_bit_cycle_image(), vopts);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("ANA002"));
  EXPECT_TRUE(report.has("WCB003"));
}

TEST(VerifyCertify, UnderstatingEmbeddedCertificateWarnsAna004) {
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(2));
  analysis::DecodeCertificate lying = analysis::certify(image);
  ASSERT_TRUE(lying.certified());
  lying.model_block_bytes = 1;  // claims a tighter bound than provable
  ByteSink blob;
  lying.serialize(blob);
  image.attach_certificate(blob.take());
  verify::VerifyOptions vopts;
  vopts.certify = true;
  const verify::VerifyReport report = verify::verify_image(image, vopts);
  EXPECT_TRUE(report.has("ANA004"));
}

TEST(VerifyCertify, MalformedEmbeddedCertificateFlagsAna003) {
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(1));
  image.attach_certificate({0x63, 0x61, 0x74});
  verify::VerifyOptions vopts;
  vopts.certify = true;
  const verify::VerifyReport report = verify::verify_image(image, vopts);
  EXPECT_TRUE(report.has("ANA003"));
}

TEST(CatalogueContainsAnaWcbFamily, AllIdsPresent) {
  for (const char* id :
       {"ANA001", "ANA002", "ANA003", "ANA004", "ANA005", "WCB001", "WCB002", "WCB003"}) {
    bool found = false;
    for (const verify::CheckInfo& info : verify::check_catalogue())
      if (std::string(info.id) == id) found = true;
    EXPECT_TRUE(found) << id;
  }
}

// ---------------------------------------------------------------------------
// Strict memory-system loading mode.

TEST(StrictMemsys, RefusesUncertifiedImageAndLoadsCertifiedOne) {
  const std::vector<std::uint8_t> code = mips_code(2);
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(code);
  const memsys::CacheConfig cache{.size_bytes = 1024, .line_bytes = 32, .associativity = 2};
  const samc::SamcCodec codec(samc::mips_defaults());

  EXPECT_THROW(memsys::FunctionalMemorySystem(cache, codec, image, /*verify_on_load=*/true,
                                              /*require_certificate=*/true),
               CorruptDataError);

  const analysis::DecodeCertificate cert = analysis::certify(image);
  ASSERT_TRUE(cert.certified());
  ByteSink blob;
  cert.serialize(blob);
  image.attach_certificate(blob.take());
  memsys::FunctionalMemorySystem mem(cache, codec, image, /*verify_on_load=*/true,
                                     /*require_certificate=*/true);
  for (std::uint32_t addr = 0; addr < 256; addr += 4) {
    const std::uint32_t expect = static_cast<std::uint32_t>(code[addr]) |
                                 (static_cast<std::uint32_t>(code[addr + 1]) << 8) |
                                 (static_cast<std::uint32_t>(code[addr + 2]) << 16) |
                                 (static_cast<std::uint32_t>(code[addr + 3]) << 24);
    EXPECT_EQ(mem.fetch(addr), expect) << "addr " << addr;
  }
}

TEST(StrictMemsys, RefusesFailedEmbeddedVerdict) {
  auto image = samc::SamcCodec(samc::mips_defaults()).compress(mips_code(1));
  analysis::DecodeCertificate cert = analysis::certify(image);
  cert.verdict = analysis::Verdict::kUnbounded;
  ByteSink blob;
  cert.serialize(blob);
  image.attach_certificate(blob.take());
  const memsys::CacheConfig cache{.size_bytes = 1024, .line_bytes = 32, .associativity = 2};
  const samc::SamcCodec codec(samc::mips_defaults());
  EXPECT_THROW(memsys::FunctionalMemorySystem(cache, codec, image, true, true),
               CorruptDataError);
}

}  // namespace
}  // namespace ccomp
