// SECDED Hamming(72,64) error-correcting code over byte buffers.
//
// The self-healing compressed memory system stores one 8-bit check word per
// 8 bytes of compressed block payload: a (72,64) Hamming code (7 syndrome
// bits + 1 overall parity), the standard embedded DRAM/flash SECDED layout.
// Any single flipped bit in the data or check bits is corrected in place;
// any double flip is detected and reported as uncorrectable, never silently
// mis-corrected. The refill engine's recovery ladder (memsys/selfheal.h)
// uses this between the per-block CRC check and the golden-copy re-fetch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ccomp::ecc {

/// Outcome of checking one 72-bit codeword (64 data + 8 check bits).
enum class Status : std::uint8_t {
  kClean = 0,          // syndrome zero, parity even: no error
  kCorrected = 1,      // single-bit error located and flipped back
  kUncorrectable = 2,  // double-bit (or worse) error: detected, not fixable
};

/// Compute the 8 SECDED check bits for a 64-bit data word.
std::uint8_t secded_encode(std::uint64_t data);

/// Check one codeword and correct a single-bit error in place (the error may
/// sit in `data` or in `check` itself). Returns the outcome; on
/// kUncorrectable both values are left untouched.
Status secded_correct(std::uint64_t& data, std::uint8_t& check);

/// Check bytes needed to protect `data_bytes` payload bytes (one per 8-byte
/// chunk, short tails zero-padded).
constexpr std::size_t ecc_bytes_for(std::size_t data_bytes) { return (data_bytes + 7) / 8; }

/// Fill `out` (size ecc_bytes_for(data.size())) with per-chunk check bytes.
void encode_block(std::span<const std::uint8_t> data, std::span<std::uint8_t> out);

/// Tally of a block-level check/correct pass.
struct BlockResult {
  std::size_t corrected_words = 0;      // chunks repaired (data or check bit)
  std::size_t uncorrectable_words = 0;  // chunks with multi-bit damage
  bool clean() const { return corrected_words == 0 && uncorrectable_words == 0; }
  bool recovered() const { return uncorrectable_words == 0; }
};

/// Check every 8-byte chunk of `data` against `check` and repair single-bit
/// errors in place (in the data and the check bytes both). `check` must hold
/// exactly ecc_bytes_for(data.size()) bytes.
BlockResult correct_block(std::span<std::uint8_t> data, std::span<std::uint8_t> check);

}  // namespace ccomp::ecc
