#include "samc/autotune.h"

#include <algorithm>
#include <vector>

#include "support/parallel.h"

namespace ccomp::samc {

using coding::MarkovConfig;
using coding::MarkovModel;
using coding::StreamDivision;

AutoTuneResult choose_markov_config(std::span<const std::uint32_t> words,
                                    const AutoTuneOptions& options) {
  if (words.empty()) throw ConfigError("auto-tune needs a non-empty program");
  const std::span<const std::uint32_t> sample =
      words.subspan(0, std::min(words.size(), options.sample_words));

  std::vector<MarkovConfig> candidates;
  for (const unsigned streams : {4u, 8u, 16u}) {
    for (const unsigned ctx : {0u, 1u, 2u}) {
      MarkovConfig config;
      config.division = StreamDivision::contiguous(32, streams);
      config.context_bits = ctx;
      config.connect_across_words = ctx > 0;
      candidates.push_back(config);
    }
  }
  if (options.use_division_optimizer) {
    OptimizerOptions opt;
    opt.stream_count = 4;
    opt.swap_attempts = options.optimizer_swaps;
    opt.sample_words = options.sample_words;
    opt.block_words = options.block_words;
    opt.seed = options.seed;
    const StreamDivision optimized = optimize_division(words, opt);
    for (const unsigned ctx : {0u, 1u, 2u}) {
      MarkovConfig config;
      config.division = optimized;
      config.context_bits = ctx;
      config.connect_across_words = ctx > 0;
      candidates.push_back(config);
    }
  }

  // Candidates are independent: train and score them concurrently, then
  // pick the winner with an ordered scan (first-best wins on ties), so the
  // chosen config is identical at any thread count.
  const std::vector<double> scores =
      par::parallel_map(candidates.size(), [&](std::size_t i) {
        const MarkovModel model =
            MarkovModel::train(candidates[i], sample, options.block_words);
        // Project the per-word payload cost measured on the sample onto the
        // whole program before adding the (fixed) table cost — otherwise the
        // tables look artificially expensive and the search under-models
        // large programs.
        const double payload_bits = model.estimate_bits(sample, options.block_words) *
                                    (static_cast<double>(words.size()) /
                                     static_cast<double>(sample.size()));
        return payload_bits + 8.0 * static_cast<double>(model.table_bytes());
      });

  AutoTuneResult best;
  bool first = true;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (first || scores[i] < best.estimated_bits) {
      first = false;
      best.config = candidates[i];
      best.estimated_bits = scores[i];
      best.estimated_ratio = scores[i] / (32.0 * static_cast<double>(words.size()));
    }
  }
  return best;
}

}  // namespace ccomp::samc
