#include "sadc/sadc.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "sadc/symbols.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::sadc {
namespace {

std::vector<std::uint8_t> small_mips_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

TEST(SymbolTable, SequenceExpansionIsRecursive) {
  SymbolTable t;
  Symbol base;
  base.kind = Symbol::Kind::kBase;
  base.token = 7;
  const auto a = t.add(base);
  base.token = 9;
  const auto b = t.add(base);
  Symbol pair;
  pair.kind = Symbol::Kind::kSeq;
  pair.components = {a, b};
  const auto ab = t.add(pair);
  Symbol triple;
  triple.kind = Symbol::Kind::kSeq;
  triple.components = {ab, a};
  const auto aba = t.add(triple);
  EXPECT_EQ(t.expanded_length(aba), 3u);
  EXPECT_EQ(t.leaves(aba)[0].token, 7);
  EXPECT_EQ(t.leaves(aba)[1].token, 9);
  EXPECT_EQ(t.leaves(aba)[2].token, 7);
}

TEST(SymbolTable, ForwardReferencesRejected) {
  SymbolTable t;
  Symbol seq;
  seq.kind = Symbol::Kind::kSeq;
  seq.components = {0, 1};
  EXPECT_THROW(t.add(seq), ConfigError);
}

TEST(SymbolTable, SerializeRoundTrip) {
  SymbolTable t;
  Symbol base;
  base.kind = Symbol::Kind::kBase;
  base.token = 3;
  const auto a = t.add(base);
  Symbol spec;
  spec.kind = Symbol::Kind::kRegSpec;
  spec.token = 3;
  spec.reg_count = 2;
  spec.regs[0] = 29;
  spec.regs[1] = 31;
  t.add(spec);
  Symbol imm;
  imm.kind = Symbol::Kind::kImmSpec;
  imm.token = 3;
  imm.imm16 = 0xFFE0;
  t.add(imm);
  Symbol seq;
  seq.kind = Symbol::Kind::kSeq;
  seq.components = {a, a};
  t.add(seq);
  ByteSink sink;
  t.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const SymbolTable r = SymbolTable::deserialize(src);
  ASSERT_EQ(r.size(), t.size());
  EXPECT_EQ(r.at(1).regs[1], 31);
  EXPECT_EQ(r.at(2).imm16, 0xFFE0);
  EXPECT_EQ(r.expanded_length(3), 2u);
}

TEST(SadcMips, RoundTripsGeneratedCode) {
  const auto code = small_mips_code("compress", 16);
  const SadcMipsCodec codec;
  const auto image = codec.compress_verified(code);
  EXPECT_EQ(image.original_size(), code.size());
}

TEST(SadcMips, CompressesBetterThanSamcAccounting) {
  const auto code = small_mips_code("gcc", 64);
  const SadcMipsCodec codec;
  const double ratio = codec.compress(code).sizes().ratio();
  EXPECT_LT(ratio, 0.70);
  EXPECT_GT(ratio, 0.15);
}

TEST(SadcMips, DictionaryStaysWithinBudget) {
  // The base alphabet (distinct opcodes, < 90 on MIPS) always fits; the
  // budget caps how many sequence/specialisation entries are added on top.
  const auto code = small_mips_code("vortex", 48);
  SadcOptions opt;
  opt.max_symbols = 120;
  const SadcMipsCodec codec(opt);
  const auto image = codec.compress_verified(code);
  ByteSource src(image.tables());
  const SymbolTable table = SymbolTable::deserialize(src);
  EXPECT_LE(table.size(), 120u);
}

TEST(SadcMips, SpecializationHelps) {
  const auto code = small_mips_code("m88ksim", 48);
  SadcOptions with;
  SadcOptions without;
  without.specialize_operands = false;
  const double r_with = SadcMipsCodec(with).compress(code).sizes().ratio();
  const double r_without = SadcMipsCodec(without).compress(code).sizes().ratio();
  EXPECT_LT(r_with, r_without + 1e-9);
}

TEST(SadcMips, OptimalParsingRoundTripsAndNeverLoses) {
  const auto code = small_mips_code("gcc", 48);
  SadcOptions greedy;
  SadcOptions optimal;
  optimal.parse_mode = ParseMode::kOptimal;
  const auto greedy_image = SadcMipsCodec(greedy).compress(code);
  const auto optimal_image = SadcMipsCodec(optimal).compress_verified(code);
  // Optimal segmentation can only reduce the number of opcode symbols; the
  // Huffman-coded payload tracks that closely.
  EXPECT_LE(optimal_image.sizes().ratio(), greedy_image.sizes().ratio() + 0.002);
}

TEST(SadcMips, StaticDictionaryRoundTripsAndIsWorse) {
  // Paper Sec. 4: semiadaptive dictionaries "clearly" beat static ones on
  // the program they were built for. A donor dictionary must still decode
  // correctly (it travels in the image, extended with missing opcodes).
  const auto donor = small_mips_code("gcc", 32);
  const auto subject = small_mips_code("swim", 32);
  const SadcMipsCodec codec;
  const SymbolTable dictionary = codec.build_dictionary(donor);

  const auto static_image = codec.compress_with_dictionary(subject, dictionary);
  EXPECT_EQ(codec.decompress_all(static_image), subject);
  const auto own_image = codec.compress(subject);
  EXPECT_GT(static_image.sizes().total(), own_image.sizes().total() * 95 / 100);
}

TEST(SadcMips, StaticDictionaryOnOwnProgramIsClose) {
  // Feeding a program its own dictionary through the static path must be
  // roughly as good as the normal pipeline (the DP parser may even shave a
  // little off the greedy parse).
  const auto code = small_mips_code("go", 24);
  const SadcMipsCodec codec;
  const auto dict = codec.build_dictionary(code);
  const double r_static = codec.compress_with_dictionary(code, dict).sizes().ratio();
  const double r_normal = codec.compress(code).sizes().ratio();
  EXPECT_NEAR(r_static, r_normal, 0.02);
}

TEST(SadcMips, OptimalParsingHandlesRawWords) {
  auto code = small_mips_code("go", 8);
  Rng rng(73);
  for (int i = 0; i < 100; ++i) code[rng.next_below(code.size() / 4) * 4 + 3] = 0xFC;
  SadcOptions optimal;
  optimal.parse_mode = ParseMode::kOptimal;
  SadcMipsCodec(optimal).compress_verified(code);
}

TEST(SadcMips, HandlesUndecodableWords) {
  // Mix valid instructions with raw garbage words; the kRaw path must
  // round-trip them exactly.
  auto code = small_mips_code("xlisp", 4);
  Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    const std::size_t w = rng.next_below(code.size() / 4);
    code[w * 4 + 3] = 0xFC;  // unassigned primary opcode
    code[w * 4] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const SadcMipsCodec codec;
  codec.compress_verified(code);
}

TEST(SadcMips, RandomBlockAccess) {
  const auto code = small_mips_code("go", 12);
  const SadcMipsCodec codec;
  const auto image = codec.compress(code);
  const auto dec = codec.make_decompressor(image);
  Rng rng(72);
  for (int i = 0; i < 50; ++i) {
    const std::size_t b = rng.next_below(image.block_count());
    const auto block = dec->block(b);
    EXPECT_TRUE(std::equal(block.begin(), block.end(),
                           code.begin() + static_cast<long>(b * 32)));
  }
}

TEST(SadcMips, EmptyAndTinyPrograms) {
  const SadcMipsCodec codec;
  EXPECT_TRUE(codec.decompress_all(codec.compress({})).empty());
  const auto one = small_mips_code("swim", 4);
  const std::vector<std::uint8_t> tiny(one.begin(), one.begin() + 4);
  codec.compress_verified(tiny);
}

TEST(SadcMips, RejectsMisalignedCode) {
  const std::vector<std::uint8_t> code(10, 0);
  const SadcMipsCodec codec;
  EXPECT_THROW(codec.compress(code), ConfigError);
}

TEST(SadcX86, RoundTripsGeneratedCode) {
  workload::Profile p = *workload::find_profile("perl");
  p.code_kb = 16;
  const auto code = workload::generate_x86(p);
  const SadcX86Codec codec;
  const auto image = codec.compress_verified(code);
  EXPECT_EQ(image.original_size(), code.size());
  EXPECT_TRUE(image.has_variable_blocks());
}

TEST(SadcX86, BlocksApproximateRequestedSize) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 16;
  const auto code = workload::generate_x86(p);
  SadcOptions opt;
  opt.block_size = 32;
  const SadcX86Codec codec(opt);
  const auto image = codec.compress(code);
  for (std::size_t b = 0; b + 1 < image.block_count(); ++b) {
    EXPECT_GE(image.block_original_size(b), 32u);
    EXPECT_LE(image.block_original_size(b), 32u + 16u);  // one instruction of slack
  }
}

TEST(SadcX86, CompressesGeneratedCode) {
  workload::Profile p = *workload::find_profile("gcc");
  p.code_kb = 64;
  const auto code = workload::generate_x86(p);
  const SadcX86Codec codec;
  const double ratio = codec.compress(code).sizes().ratio();
  EXPECT_LT(ratio, 0.9);
  EXPECT_GT(ratio, 0.3);
}

class SadcBlockSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SadcBlockSweep, MipsRoundTripsAtEveryBlockSize) {
  const auto code = small_mips_code("tomcatv", 8);
  SadcOptions opt;
  opt.block_size = GetParam();
  const SadcMipsCodec codec(opt);
  codec.compress_verified(code);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, SadcBlockSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

class SadcDictSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SadcDictSweep, RoundTripsAtEveryDictionarySize) {
  const auto code = small_mips_code("mgrid", 8);
  SadcOptions opt;
  opt.max_symbols = GetParam();
  const SadcMipsCodec codec(opt);
  codec.compress_verified(code);
}

INSTANTIATE_TEST_SUITE_P(DictSizes, SadcDictSweep,
                         ::testing::Values(std::size_t{64}, std::size_t{96},
                                           std::size_t{128}, std::size_t{256}));

}  // namespace
}  // namespace ccomp::sadc
