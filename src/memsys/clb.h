// CLB — Cache Line Address Lookaside Buffer (paper Sec. 2).
//
// The LAT lives in main memory next to the compressed code; reading it on
// every miss would add a memory access to the refill path. The CLB caches
// recently used LAT entries exactly like a TLB caches page-table entries:
// fully associative, LRU. Each entry covers one LAT *group* (8 consecutive
// blocks — the granularity at which the serialized LAT stores an absolute
// anchor), so sequential misses hit the CLB.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace ccomp::memsys {

struct ClbConfig {
  std::uint32_t entries = 16;
  std::uint32_t blocks_per_entry = 8;  // LAT group size
};

struct ClbStats {
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : 1.0 - static_cast<double>(misses) / static_cast<double>(lookups);
  }
};

class Clb {
 public:
  explicit Clb(const ClbConfig& config);

  /// Look up the LAT group covering `block_index`; inserts on miss.
  /// Returns true on hit.
  bool access(std::uint64_t block_index);

  void flush();
  const ClbStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t group = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
  };
  ClbConfig config_;
  ClbStats stats_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
};

}  // namespace ccomp::memsys
