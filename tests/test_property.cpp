// Property-based sweeps: every block codec must round-trip arbitrary
// (well-formed) inputs across block sizes and content classes, and the
// container invariants must hold for whatever the codecs emit.
#include <gtest/gtest.h>

#include "baseline/bytehuff.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp {
namespace {

enum class Content { kZeros, kRandom, kSkewed, kGenerated, kRepeats };

std::vector<std::uint8_t> make_content(Content kind, std::size_t words, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> w;
  w.reserve(words);
  switch (kind) {
    case Content::kZeros:
      w.assign(words, 0);
      break;
    case Content::kRandom:
      for (std::size_t i = 0; i < words; ++i) w.push_back(rng.next_u32());
      break;
    case Content::kSkewed:
      for (std::size_t i = 0; i < words; ++i)
        w.push_back(static_cast<std::uint32_t>(rng.pick_skewed(4096, 0.9)) << 2);
      break;
    case Content::kGenerated: {
      workload::Profile p = *workload::find_profile("xlisp");
      p.code_kb = 8;
      p.seed = seed;
      w = workload::generate_mips(p);
      w.resize(std::min(w.size(), words));
      break;
    }
    case Content::kRepeats: {
      std::vector<std::uint32_t> unit;
      for (int i = 0; i < 12; ++i) unit.push_back(rng.next_u32());
      while (w.size() < words) w.insert(w.end(), unit.begin(), unit.end());
      w.resize(words);
      break;
    }
  }
  return mips::words_to_bytes(w);
}

struct PropertyParam {
  Content content;
  std::size_t words;
  std::uint32_t block_size;
};

class CodecProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(CodecProperty, SamcRoundTrips) {
  const auto param = GetParam();
  const auto code = make_content(param.content, param.words, param.words * 31 + 7);
  samc::SamcOptions o = samc::mips_defaults();
  o.block_size = param.block_size;
  samc::SamcCodec(o).compress_verified(code);
}

TEST_P(CodecProperty, SamcNibbleModeRoundTrips) {
  const auto param = GetParam();
  const auto code = make_content(param.content, param.words, param.words * 37 + 11);
  samc::SamcOptions o = samc::mips_defaults();
  o.block_size = param.block_size;
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  samc::SamcCodec(o).compress_verified(code);
}

TEST_P(CodecProperty, SadcRoundTrips) {
  const auto param = GetParam();
  const auto code = make_content(param.content, param.words, param.words * 41 + 13);
  sadc::SadcOptions o;
  o.block_size = param.block_size;
  sadc::SadcMipsCodec(o).compress_verified(code);
}

TEST_P(CodecProperty, ByteHuffmanRoundTrips) {
  const auto param = GetParam();
  const auto code = make_content(param.content, param.words, param.words * 43 + 17);
  baseline::ByteHuffmanOptions o;
  o.block_size = param.block_size;
  baseline::ByteHuffmanCodec(o).compress_verified(code);
}

TEST_P(CodecProperty, ImageInvariantsHold) {
  const auto param = GetParam();
  const auto code = make_content(param.content, param.words, param.words * 47 + 19);
  samc::SamcOptions o = samc::mips_defaults();
  o.block_size = param.block_size;
  const auto image = samc::SamcCodec(o).compress(code);
  // Offsets are monotone and the payload partitions exactly.
  std::size_t total = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    total += image.block_payload(b).size();
    EXPECT_EQ(image.block_original_offset(b), b * param.block_size);
  }
  EXPECT_EQ(total, image.sizes().payload);
  // Serialization is lossless.
  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto reloaded = core::CompressedImage::deserialize(src);
  EXPECT_EQ(reloaded.block_count(), image.block_count());
  EXPECT_EQ(reloaded.sizes().payload, image.sizes().payload);
}

INSTANTIATE_TEST_SUITE_P(
    ContentAndGeometry, CodecProperty,
    ::testing::Values(
        PropertyParam{Content::kZeros, 64, 32}, PropertyParam{Content::kZeros, 512, 16},
        PropertyParam{Content::kRandom, 64, 32}, PropertyParam{Content::kRandom, 1000, 64},
        PropertyParam{Content::kSkewed, 256, 32}, PropertyParam{Content::kSkewed, 2048, 128},
        PropertyParam{Content::kGenerated, 2048, 32},
        PropertyParam{Content::kGenerated, 1024, 8},
        PropertyParam{Content::kRepeats, 512, 32}, PropertyParam{Content::kRepeats, 96, 64},
        PropertyParam{Content::kRandom, 1, 32}, PropertyParam{Content::kGenerated, 7, 32}));

}  // namespace
}  // namespace ccomp
