#include "isa/mips/asm.h"

#include <cctype>
#include <optional>
#include <unordered_map>

#include "isa/mips/mips.h"

namespace ccomp::mips {
namespace {

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string_view strip_comment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i)
    if (line[i] == '#' || line[i] == ';') return line.substr(0, i);
  return line;
}

std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      const std::string_view tok = trim(s.substr(start, i - start));
      if (!tok.empty()) out.push_back(tok);
      start = i + 1;
    }
  }
  return out;
}

const std::unordered_map<std::string_view, unsigned>& reg_names() {
  static const std::unordered_map<std::string_view, unsigned> names = [] {
    std::unordered_map<std::string_view, unsigned> m;
    static const char* kAbi[32] = {"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
                                   "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
                                   "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
                                   "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};
    for (unsigned i = 0; i < 32; ++i) m.emplace(kAbi[i], i);
    m.emplace("s8", 30);  // alias for fp
    return m;
  }();
  return names;
}

std::optional<unsigned> parse_register(std::string_view tok) {
  if (tok.size() < 2 || tok.front() != '$') return std::nullopt;
  tok.remove_prefix(1);
  // FP registers: $f0..$f31.
  if (tok.size() >= 2 && tok.front() == 'f' &&
      std::isdigit(static_cast<unsigned char>(tok[1]))) {
    unsigned n = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
      n = n * 10 + static_cast<unsigned>(tok[i] - '0');
    }
    return n < 32 ? std::optional<unsigned>(n) : std::nullopt;
  }
  // Numeric: $0..$31.
  if (std::isdigit(static_cast<unsigned char>(tok.front()))) {
    unsigned n = 0;
    for (const char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      n = n * 10 + static_cast<unsigned>(c - '0');
    }
    return n < 32 ? std::optional<unsigned>(n) : std::nullopt;
  }
  const auto it = reg_names().find(tok);
  if (it == reg_names().end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> parse_number(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  bool negative = false;
  if (tok.front() == '-' || tok.front() == '+') {
    negative = tok.front() == '-';
    tok.remove_prefix(1);
  }
  if (tok.empty()) return std::nullopt;
  std::int64_t value = 0;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    for (std::size_t i = 2; i < tok.size(); ++i) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(tok[i])));
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else return std::nullopt;
      value = value * 16 + digit;
    }
  } else {
    for (const char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 10 + (c - '0');
    }
  }
  return negative ? -value : value;
}

// Memory operand "off($base)" or "($base)".
struct MemOperand {
  std::int64_t offset;
  unsigned base;
};

std::optional<MemOperand> parse_mem(std::string_view tok) {
  const std::size_t open = tok.find('(');
  if (open == std::string_view::npos || tok.back() != ')') return std::nullopt;
  const std::string_view off = trim(tok.substr(0, open));
  const std::string_view reg = trim(tok.substr(open + 1, tok.size() - open - 2));
  const auto base = parse_register(reg);
  if (!base) return std::nullopt;
  std::int64_t offset = 0;
  if (!off.empty()) {
    const auto n = parse_number(off);
    if (!n) return std::nullopt;
    offset = *n;
  }
  return MemOperand{offset, *base};
}

const std::unordered_map<std::string_view, std::uint16_t>& mnemonic_index() {
  static const std::unordered_map<std::string_view, std::uint16_t> index = [] {
    std::unordered_map<std::string_view, std::uint16_t> m;
    const auto table = opcode_table();
    for (std::size_t i = 0; i < table.size(); ++i)
      m.emplace(table[i].mnemonic, static_cast<std::uint16_t>(i));
    return m;
  }();
  return index;
}

// One parsed source statement awaiting encoding.
struct Statement {
  std::size_t line;
  std::string mnemonic;
  std::vector<std::string> operands;
  bool is_word_directive = false;
  std::uint32_t literal = 0;
};

}  // namespace

std::vector<std::uint32_t> assemble(std::string_view source, const AssembleOptions& options) {
  // Pass 1: strip comments/labels, collect statements and label addresses.
  std::unordered_map<std::string, std::size_t> labels;  // name -> instr index
  std::vector<Statement> statements;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    line = trim(strip_comment(line));
    // Peel leading labels (possibly several).
    while (true) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view name = trim(line.substr(0, colon));
      if (name.empty() || name.find(' ') != std::string_view::npos)
        throw AsmError(line_no, "malformed label");
      if (!labels.emplace(std::string(name), statements.size()).second)
        throw AsmError(line_no, "duplicate label '" + std::string(name) + "'");
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    Statement stmt;
    stmt.line = line_no;
    const std::size_t space = line.find_first_of(" \t");
    const std::string_view head =
        space == std::string_view::npos ? line : line.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : trim(line.substr(space + 1));

    if (head == ".word") {
      const auto value = parse_number(rest);
      if (!value) throw AsmError(line_no, "bad .word value");
      stmt.is_word_directive = true;
      stmt.literal = static_cast<std::uint32_t>(*value);
    } else {
      stmt.mnemonic = std::string(head);
      for (const auto& op : split_operands(rest)) stmt.operands.emplace_back(op);
    }
    statements.push_back(std::move(stmt));
  }

  // Pass 2: encode.
  std::vector<std::uint32_t> words;
  words.reserve(statements.size());
  for (std::size_t index = 0; index < statements.size(); ++index) {
    const Statement& stmt = statements[index];
    if (stmt.is_word_directive) {
      words.push_back(stmt.literal);
      continue;
    }

    // Pseudo-instructions rewrite to table rows.
    std::string mnemonic = stmt.mnemonic;
    std::vector<std::string> operands = stmt.operands;
    if (mnemonic == "nop") {
      mnemonic = "sll";
      operands = {"$zero", "$zero", "0"};
    } else if (mnemonic == "move") {
      if (operands.size() != 2) throw AsmError(stmt.line, "move needs 2 operands");
      mnemonic = "addu";
      operands = {operands[0], operands[1], "$zero"};
    } else if (mnemonic == "li") {
      if (operands.size() != 2) throw AsmError(stmt.line, "li needs 2 operands");
      const auto value = parse_number(operands[1]);
      if (!value || *value < -32768 || *value > 65535)
        throw AsmError(stmt.line, "li immediate out of 16-bit range");
      if (*value >= 0) {
        mnemonic = "ori";
        operands = {operands[0], "$zero", operands[1]};
      } else {
        mnemonic = "addiu";
        operands = {operands[0], "$zero", operands[1]};
      }
    } else if (mnemonic == "b") {
      if (operands.size() != 1) throw AsmError(stmt.line, "b needs 1 operand");
      mnemonic = "beq";
      operands = {"$zero", "$zero", operands[0]};
    }

    const auto it = mnemonic_index().find(mnemonic);
    if (it == mnemonic_index().end())
      throw AsmError(stmt.line, "unknown mnemonic '" + mnemonic + "'");
    const std::uint16_t opcode = it->second;
    const OpcodeInfo& info = opcode_table()[opcode];

    Decoded d;
    d.opcode = opcode;
    unsigned reg_slot = 0;
    bool have_imm = false;
    auto put_reg = [&](unsigned value) {
      if (reg_slot >= info.reg_count)
        throw AsmError(stmt.line, "too many register operands for " + mnemonic);
      d.regs[reg_slot++] = static_cast<std::uint8_t>(value);
    };

    for (const std::string& op : operands) {
      if (const auto reg = parse_register(op)) {
        put_reg(*reg);
        continue;
      }
      if (const auto mem = parse_mem(op)) {
        if (!info.has_imm16) throw AsmError(stmt.line, mnemonic + " takes no memory operand");
        if (mem->offset < -32768 || mem->offset > 32767)
          throw AsmError(stmt.line, "memory offset out of range");
        d.imm16 = static_cast<std::uint16_t>(mem->offset);
        have_imm = true;
        put_reg(mem->base);
        continue;
      }
      if (const auto num = parse_number(op)) {
        // A bare number fills, in priority order: a shamt-style register
        // slot (shift amounts), then the immediate field.
        if (reg_slot < info.reg_count && info.reg_shifts[reg_slot] == 6 &&
            !info.has_imm16 && !info.has_imm26) {
          if (*num < 0 || *num > 31) throw AsmError(stmt.line, "shift amount out of range");
          put_reg(static_cast<unsigned>(*num));
        } else if (info.has_imm16) {
          if (*num < -32768 || *num > 65535)
            throw AsmError(stmt.line, "immediate out of 16-bit range");
          d.imm16 = static_cast<std::uint16_t>(*num);
          have_imm = true;
        } else if (info.has_imm26) {
          // Absolute byte address.
          d.imm26 = (static_cast<std::uint32_t>(*num) >> 2) & 0x03FFFFFF;
          have_imm = true;
        } else {
          throw AsmError(stmt.line, mnemonic + " takes no immediate");
        }
        continue;
      }
      // Label reference: branches use a relative word offset, jumps an
      // absolute target.
      const auto label = labels.find(op);
      if (label == labels.end())
        throw AsmError(stmt.line, "undefined symbol '" + op + "'");
      if (info.is_branch) {
        const std::int64_t offset = static_cast<std::int64_t>(label->second) -
                                    (static_cast<std::int64_t>(index) + 1);
        if (offset < -32768 || offset > 32767)
          throw AsmError(stmt.line, "branch target out of range");
        d.imm16 = static_cast<std::uint16_t>(offset);
        have_imm = true;
      } else if (info.has_imm26) {
        const std::uint32_t address =
            options.base_address + static_cast<std::uint32_t>(label->second) * 4;
        d.imm26 = (address >> 2) & 0x03FFFFFF;
        have_imm = true;
      } else {
        throw AsmError(stmt.line, mnemonic + " cannot take a label");
      }
    }

    if (reg_slot != info.reg_count)
      throw AsmError(stmt.line, "expected " + std::to_string(info.reg_count) +
                                    " register operands for " + mnemonic);
    if ((info.has_imm16 || info.has_imm26) && !have_imm)
      throw AsmError(stmt.line, mnemonic + " needs an immediate or target");
    words.push_back(encode(d));
  }
  return words;
}

}  // namespace ccomp::mips
