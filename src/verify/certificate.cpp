// Certificate-layer checks (ANA/WCB): recompute the image's decode
// certificate with ccomp::analysis and turn its verdict into findings, then
// cross-check any certificate embedded in the container against the fresh
// one — an embedded certificate is a claim, not a proof, until re-derived.
#include <string>

#include "analysis/certificate.h"
#include "support/error.h"
#include "verify/internal.h"
#include "verify/verify.h"

namespace ccomp::verify::detail {

namespace {

/// True when `embedded` claims any bound tighter than `fresh` proves, or a
/// better verdict than the artifacts support. A stale certificate (image
/// re-linked after certification) must not launder a tighter WCET.
bool understates(const analysis::DecodeCertificate& embedded,
                 const analysis::DecodeCertificate& fresh) {
  if (embedded.certified() && !fresh.certified()) return true;
  if (!fresh.certified()) return false;  // fresh failure already an error
  return embedded.max_bits_per_byte < fresh.max_bits_per_byte ||
         embedded.max_bits_per_block < fresh.max_bits_per_block ||
         embedded.model_block_bytes < fresh.model_block_bytes ||
         embedded.max_decode_depth < fresh.max_decode_depth ||
         embedded.max_phase1_fuel < fresh.max_phase1_fuel ||
         embedded.max_block_payload_bytes < fresh.max_block_payload_bytes;
}

}  // namespace

void check_certificate(const core::CompressedImage& image, const VerifyOptions& opts,
                       VerifyReport& report) {
  analysis::CertifyOptions copts;
  copts.state_cap = opts.certify_state_cap;
  const analysis::DecodeCertificate cert = analysis::certify(image, copts);

  switch (cert.verdict) {
    case analysis::Verdict::kCertified:
      break;
    case analysis::Verdict::kFailed:
      for (const std::string& reason : cert.failures) emit(report, "ANA001", reason);
      if (cert.failures.empty()) emit(report, "ANA001", "certification failed (no reason recorded)");
      break;
    case analysis::Verdict::kUnbounded:
      for (const std::string& reason : cert.failures) emit(report, "ANA002", reason);
      if (cert.failures.empty())
        emit(report, "ANA002", "no finite decode-cost bound exists for this image");
      break;
  }
  if (!cert.exhaustive)
    emit(report, "ANA005",
         "model state space exceeds the exploration cap; interval widening used");

  if (!cert.terminates)
    emit(report, "WCB003",
         "decode termination unproved: a certified WCET cannot be derived");

  if (cert.certified()) {
    // Every stored block payload must fit under the model-level byte bound;
    // one that does not means the bound (or the image) is wrong.
    for (std::size_t b = 0; b < image.block_count(); ++b) {
      const std::size_t actual = image.block_payload(b).size();
      if (actual > cert.model_block_bytes)
        emit(report, "WCB001",
             "block " + std::to_string(b) + " holds " + std::to_string(actual) +
                 " payload byte(s), over the certified model bound of " +
                 std::to_string(cert.model_block_bytes));
    }
    emit(report, "WCB002",
         "certified per-block worst case: " + std::to_string(cert.max_bits_per_block) +
             " bits (" + std::to_string(cert.model_block_bytes) + " model bytes, " +
             std::to_string(cert.max_block_payload_bytes) + " observed max payload bytes)");
  }

  if (image.has_certificate()) {
    analysis::DecodeCertificate embedded;
    try {
      ByteSource src(image.certificate());
      embedded = analysis::DecodeCertificate::deserialize(src);
      if (!src.at_end())
        throw CorruptDataError("trailing bytes after the certificate blob");
    } catch (const Error& e) {
      emit(report, "ANA003", std::string("embedded certificate: ") + e.what());
      return;
    }
    if (understates(embedded, cert))
      emit(report, "ANA004",
           "embedded certificate claims tighter bounds than re-analysis proves "
           "(verdict " +
               std::string(analysis::verdict_name(embedded.verdict)) + " vs recomputed " +
               std::string(analysis::verdict_name(cert.verdict)) + ")");
  }
}

}  // namespace ccomp::verify::detail
