// Engineering micro-benchmarks (google-benchmark): compression and
// decompression throughput of every codec, plus the range coder and
// Huffman primitives. Not a paper artifact — used to keep the
// implementation honest about the decompressor's speed, which is the
// quantity the refill-engine latency model abstracts.
#include <benchmark/benchmark.h>

#include "baseline/bytehuff.h"
#include "baseline/filecodecs.h"
#include "coding/rangecoder.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/crc32.h"
#include "support/parallel.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace {

using namespace ccomp;

const std::vector<std::uint8_t>& test_code() {
  static const std::vector<std::uint8_t> code = [] {
    workload::Profile p = *workload::find_profile("go");
    p.code_kb = 64;
    return mips::words_to_bytes(workload::generate_mips(p));
  }();
  return code;
}

const std::vector<std::uint8_t>& test_code_x86() {
  static const std::vector<std::uint8_t> code = [] {
    workload::Profile p = *workload::find_profile("go");
    p.code_kb = 64;
    return workload::generate_x86(p);
  }();
  return code;
}

// Pins the parallel layer to state.range(0) threads for the duration of one
// benchmark run, restoring the default (env / hardware) on scope exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(std::int64_t threads) {
    par::set_thread_count(static_cast<std::size_t>(threads));
  }
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

void BM_SamcCompress(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SamcCompress)->Unit(benchmark::kMillisecond);

void BM_SamcDecompressBlock(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcDecompressBlock);

// Same decode through the forced MarkovCursor engine: the plan-vs-cursor
// delta is the flattened-table speedup (tab_decodespeed records it).
void BM_SamcDecompressBlockCursor(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image, samc::DecodeEngine::kCursor);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcDecompressBlockCursor);

// The refill engine's actual call shape: block_into with caller-owned
// scratch and a reused output buffer — zero heap allocations per block
// (tests/test_allocfree.cpp proves it), so this is pure decode time.
void BM_SamcDecompressBlockInto(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  core::DecodeScratch scratch;
  std::vector<std::uint8_t> out(32);
  std::size_t b = 0;
  for (auto _ : state) {
    out.resize(image.block_original_size(b));
    dec->block_into(b, out, scratch);
    benchmark::DoNotOptimize(out.data());
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcDecompressBlockInto);

void BM_SamcNibbleDecompressBlock(benchmark::State& state) {
  samc::SamcOptions o = samc::mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const samc::SamcCodec codec(o);
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcNibbleDecompressBlock);

void BM_SamcNibbleDecompressBlockCursor(benchmark::State& state) {
  samc::SamcOptions o = samc::mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const samc::SamcCodec codec(o);
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image, samc::DecodeEngine::kCursor);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcNibbleDecompressBlockCursor);

void BM_SadcCompress(benchmark::State& state) {
  const sadc::SadcMipsCodec codec;
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SadcCompress)->Unit(benchmark::kMillisecond);

void BM_SadcDecompressBlock(benchmark::State& state) {
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SadcDecompressBlock);

void BM_SadcX86DecompressBlock(benchmark::State& state) {
  const sadc::SadcX86Codec codec;
  const auto image = codec.compress(test_code_x86());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    bytes += static_cast<std::int64_t>(image.block_original_size(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SadcX86DecompressBlock);

// --- Thread sweeps (arg = thread count). UseRealTime so the sweep measures
// wall clock across the pool, not the calling thread's CPU time. ---

void BM_SamcCompressThreads(benchmark::State& state) {
  const ThreadCountGuard guard(state.range(0));
  const samc::SamcCodec codec(samc::mips_defaults());
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SamcCompressThreads)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SadcCompressThreads(benchmark::State& state) {
  const ThreadCountGuard guard(state.range(0));
  const sadc::SadcMipsCodec codec;
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SadcCompressThreads)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SamcDecompressAllThreads(benchmark::State& state) {
  const ThreadCountGuard guard(state.range(0));
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(test_code());
  for (auto _ : state) benchmark::DoNotOptimize(codec.decompress_all(image));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SamcDecompressAllThreads)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SadcDecompressAllThreads(benchmark::State& state) {
  const ThreadCountGuard guard(state.range(0));
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(test_code());
  for (auto _ : state) benchmark::DoNotOptimize(codec.decompress_all(image));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SadcDecompressAllThreads)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ByteHuffmanCompress(benchmark::State& state) {
  const baseline::ByteHuffmanCodec codec;
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_ByteHuffmanCompress)->Unit(benchmark::kMillisecond);

void BM_GzipLike(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(baseline::gzip_like_bytes(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_GzipLike)->Unit(benchmark::kMillisecond);

void BM_UnixCompress(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(baseline::unix_compress_bytes(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_UnixCompress)->Unit(benchmark::kMillisecond);

void BM_RangeCoderEncodeBit(benchmark::State& state) {
  coding::RangeEncoder enc;
  std::uint32_t x = 123456789;
  for (auto _ : state) {
    x = x * 1664525 + 1013904223;
    enc.encode_bit(x >> 31, static_cast<coding::Prob>((x & 0x7FFF) + 0x4000));
    if (enc.size() > (1u << 20)) {
      enc.finish();
      benchmark::DoNotOptimize(enc.take());
    }
  }
}
BENCHMARK(BM_RangeCoderEncodeBit);

// CRC-32 throughput (slicing-by-8): the self-healing store runs this over
// every refilled block, so it must stay far off the refill critical path.
void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  std::uint32_t x = 0x12345678;
  for (auto& byte : buf) {
    x = x * 1664525 + 1013904223;
    byte = static_cast<std::uint8_t>(x >> 24);
  }
  for (auto _ : state) benchmark::DoNotOptimize(crc32(buf));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_Crc32)->Arg(32)->Arg(4096)->Arg(1 << 20);

}  // namespace
