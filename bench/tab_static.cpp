// Table T-ST: static vs semiadaptive models. The paper's taxonomy (Sec. 4,
// after Bell/Cleary/Witten): static tables are built once and shipped for
// all programs; semiadaptive tables are rebuilt per program and "clearly"
// compress better. Quantify the gap for SAMC by training the Markov model
// on one donor program (gcc) and applying it to every other benchmark.
#include <cstdio>

#include "bench_common.h"
#include "coding/markov.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_static", argc, argv);
  std::printf("Table T-ST: SAMC semiadaptive vs static (gcc-trained) model (scale=%.2f)\n",
              scale);

  const samc::SamcCodec codec(samc::mips_defaults());
  const workload::Profile donor =
      bench::scaled_profile(*workload::find_profile("gcc"), scale);
  const coding::MarkovModel static_model =
      codec.train_model(mips::words_to_bytes(workload::generate_mips(donor)));

  // A static model ships once inside the decompressor, so its fair
  // accounting is payload-only; the third column charges it per program
  // anyway, as an upper bound.
  core::RatioTable table("SAMC ratio by model provenance",
                         {"semiadaptive", "static", "static+tbl"});
  for (const char* name : {"compress", "go", "m88ksim", "perl", "swim", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    const auto static_image = codec.compress_with_model(code, static_model);
    const double row[] = {
        codec.compress(code).sizes().ratio(),
        static_cast<double>(static_image.sizes().payload) / static_cast<double>(code.size()),
        static_image.sizes().ratio()};
    table.add_row(p.name, row);
    json.add(p.name, "samc_ratio_semiadaptive", row[0], "ratio");
    json.add(p.name, "samc_ratio_static", row[1], "ratio");
    json.add(p.name, "samc_ratio_static_tbl", row[2], "ratio");
    std::fflush(stdout);
  }
  table.print();

  // Same study for SADC's dictionary (the construct Sec. 4 actually
  // classifies as static/semiadaptive/dynamic).
  const sadc::SadcMipsCodec sadc_codec;
  const sadc::SymbolTable static_dict =
      sadc_codec.build_dictionary(mips::words_to_bytes(workload::generate_mips(donor)));
  core::RatioTable sadc_table("SADC ratio by dictionary provenance",
                              {"semiadaptive", "static", "static+tbl"});
  for (const char* name : {"compress", "go", "m88ksim", "perl", "swim", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    const auto static_image = sadc_codec.compress_with_dictionary(code, static_dict);
    const double row[] = {
        sadc_codec.compress(code).sizes().ratio(),
        static_cast<double>(static_image.sizes().payload) / static_cast<double>(code.size()),
        static_image.sizes().ratio()};
    sadc_table.add_row(p.name, row);
    json.add(p.name, "sadc_ratio_semiadaptive", row[0], "ratio");
    json.add(p.name, "sadc_ratio_static", row[1], "ratio");
    json.add(p.name, "sadc_ratio_static_tbl", row[2], "ratio");
    std::fflush(stdout);
  }
  sadc_table.print();

  std::printf("\nThe semiadaptive model always predicts its own program better (its\n"
              "payload is smaller than the static column plus the ~4 KB tables it\n"
              "charges), which is the paper's 'clearly better'. But at these\n"
              "program sizes the per-program table cost can flip the total — a\n"
              "static same-compiler model with tables amortized into the\n"
              "decompressor ROM is the better *system* choice for small programs.\n");
  return 0;
}
