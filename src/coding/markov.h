// Semiadaptive Markov bit models over instruction "streams" (SAMC, Sec. 3).
//
// An instruction word of `word_bits` bits is split into k streams; a stream
// is an ordered list of bit positions (not necessarily adjacent — the
// paper's stream-division optimizer shuffles bits between streams). For each
// stream the model holds a complete binary Markov tree: node q stores
// P(next bit = 0 | bits seen so far within the stream). Trees of adjacent
// streams can be *connected* (Fig. 4): the last `context_bits` bits of the
// previous stream select among 2^context_bits copies of the next stream's
// tree, giving the model limited memory across stream boundaries (and, when
// `connect_across_words` is set, across instruction boundaries).
//
// Everything is semiadaptive: probabilities are gathered in a first pass
// over the subject program and then frozen; the tables are part of the
// compressed image and their size is charged to the compression ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/rangecoder.h"
#include "support/serialize.h"

namespace ccomp::coding {

/// Partition of a word's bit positions into ordered streams.
struct StreamDivision {
  unsigned word_bits = 32;
  /// streams[s] lists bit positions (0 = LSB of the word) in encode order.
  std::vector<std::vector<std::uint8_t>> streams;

  /// k streams of adjacent bits, encoded MSB-first (the paper's default:
  /// 4 streams x 8 bits for 32-bit RISC words).
  static StreamDivision contiguous(unsigned word_bits, unsigned stream_count);

  /// One stream covering the whole word MSB-first (used for x86 bytes).
  static StreamDivision single(unsigned word_bits) { return contiguous(word_bits, 1); }

  std::size_t stream_count() const { return streams.size(); }

  /// Throws ConfigError unless the streams form a permutation of
  /// [0, word_bits) and every stream is non-empty and at most 16 bits wide
  /// (the Markov tree for a w-bit stream has 2^w - 1 probability nodes).
  void validate() const;

  void serialize(ByteSink& sink) const;
  static StreamDivision deserialize(ByteSource& src);

  bool operator==(const StreamDivision&) const = default;
};

struct MarkovConfig {
  StreamDivision division;
  /// Trailing bits of the previous stream used to select the next stream's
  /// tree copy (0 = independent trees, the paper's unconnected variant).
  unsigned context_bits = 1;
  /// Restrict the less probable symbol's probability to a power of 1/2
  /// (shift-only decoder hardware; Witten et al. constraint).
  bool quantized = false;
  unsigned max_shift = 8;
  /// Carry context from the last stream of word i into the first stream of
  /// word i+1 (inter-instruction dependency). Context always resets at
  /// block boundaries so blocks stay independently decodable.
  bool connect_across_words = true;
};

class MarkovModel {
 public:
  /// Gather statistics over `words` (each holding `word_bits` significant
  /// bits). `block_words` = number of words per compression block; the
  /// training walk resets its context at every block boundary exactly as
  /// compression will (0 means no resets).
  static MarkovModel train(const MarkovConfig& config, std::span<const std::uint32_t> words,
                           std::size_t block_words = 0);

  const MarkovConfig& config() const { return cfg_; }

  /// P(bit = 0) at (stream, context, tree node). Nodes are heap-ordered:
  /// root 0, children of q are 2q+1 (after a 0) and 2q+2 (after a 1).
  Prob prob0(std::size_t stream, std::size_t ctx, std::size_t node) const {
    return trees_[stream][ctx * tree_nodes_[stream] + node];
  }

  std::size_t context_count() const { return std::size_t{1} << cfg_.context_bits; }
  std::size_t tree_node_count(std::size_t stream) const { return tree_nodes_[stream]; }

  /// Bytes an embedded image needs for the probability tables (1 byte per
  /// probability when quantized — 4-bit shift + LPS flag — else 2 bytes),
  /// plus the stream-division description.
  std::size_t table_bytes() const;

  /// Model cross-entropy estimate: exact number of arithmetic-coded bits
  /// needed for `words` under this model (without coder overhead), resetting
  /// per block. This is what the stream-division optimizer minimizes.
  double estimate_bits(std::span<const std::uint32_t> words, std::size_t block_words = 0) const;

  void serialize(ByteSink& sink) const;
  static MarkovModel deserialize(ByteSource& src);

 private:
  friend class MarkovCursor;
  MarkovConfig cfg_;
  std::vector<std::size_t> tree_nodes_;       // per stream: 2^width - 1
  std::vector<std::vector<Prob>> trees_;      // per stream: ctx-major flattened
};

/// Walks a MarkovModel bit by bit; shared by the SAMC compressor and
/// decompressor so both sides see identical probabilities.
class MarkovCursor {
 public:
  explicit MarkovCursor(const MarkovModel& model);

  /// Return to the start-of-block state (root of stream 0, zero context).
  void reset();

  /// Probability that the *next* bit is 0.
  Prob prob() const { return model_->prob0(stream_, ctx_, node_); }

  /// Bit position (within the word) the next bit corresponds to.
  unsigned next_bit_position() const {
    return model_->cfg_.division.streams[stream_][bit_index_];
  }

  /// Consume one bit and move the model state.
  void advance(unsigned bit);

  /// True when positioned at the start of a word.
  bool at_word_start() const { return stream_ == 0 && bit_index_ == 0; }

  /// Model coordinates of the next bit — used by the parallel (Fig. 5)
  /// decoder to prefetch the probability subtree of the coming nibble.
  std::size_t stream() const { return stream_; }
  std::size_t context() const { return ctx_; }
  std::size_t node() const { return node_; }

 private:
  const MarkovModel* model_;
  std::size_t stream_ = 0;
  std::size_t bit_index_ = 0;  // bits consumed within current stream
  std::size_t node_ = 0;       // heap index within current tree
  std::size_t ctx_ = 0;        // selected tree copy
  std::uint32_t recent_bits_ = 0;  // rolling history for context extraction
};

}  // namespace ccomp::coding
