// Tests for the parallel execution layer (support/parallel.h): pool
// lifecycle, parallel_for/parallel_map semantics, exception propagation, and
// the headline guarantee — codec and optimizer output is byte-identical at
// any thread count.
#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/optimizer.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp {
namespace {

// Restores the default thread count even if a test fails mid-way.
struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

TEST(Parallel, ThreadPoolRunsSubmittedTasksAndJoinsOnDestruction) {
  std::atomic<int> count{0};
  {
    par::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor must drain the queue and join
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, ParallelForMatchesSerial) {
  const std::size_t n = 1000;
  std::vector<int> serial(n), parallel(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = static_cast<int>(i * i % 97);
  par::parallel_for(n, [&](std::size_t i) { parallel[i] = static_cast<int>(i * i % 97); }, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, ParallelForHandlesEdgeSizes) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    std::atomic<std::size_t> hits{0};
    par::parallel_for(n, [&](std::size_t) { hits.fetch_add(1); }, 8);
    EXPECT_EQ(hits.load(), n);
  }
}

TEST(Parallel, ParallelMapPreservesIndexOrder) {
  const auto out = par::parallel_map(257, [](std::size_t i) { return 3 * i + 1; }, 8);
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(Parallel, PropagatesExceptionFromTask) {
  EXPECT_THROW(par::parallel_for(
                   1000,
                   [](std::size_t i) {
                     if (i == 371) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  // The pool must still be usable after a failed region.
  std::atomic<std::size_t> hits{0};
  par::parallel_for(100, [&](std::size_t) { hits.fetch_add(1); }, 4);
  EXPECT_EQ(hits.load(), 100u);
}

TEST(Parallel, NestedRegionsRunSerially) {
  // A parallel_for inside a worker must degrade to serial instead of
  // deadlocking on the shared pool.
  std::atomic<std::size_t> hits{0};
  par::parallel_for(
      8,
      [&](std::size_t) {
        par::parallel_for(16, [&](std::size_t) { hits.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(hits.load(), 8u * 16u);
}

TEST(Parallel, SetThreadCountOverridesDefault) {
  const ThreadCountGuard guard;
  par::set_thread_count(3);
  EXPECT_EQ(par::thread_count(), 3u);
  par::set_thread_count(0);
  EXPECT_GE(par::thread_count(), 1u);
}

// --- Determinism: the tentpole guarantee. Same input, any thread count,
// byte-identical artifacts. ---

std::vector<std::uint8_t> serialize(const core::CompressedImage& image) {
  ByteSink sink;
  image.serialize(sink);
  return sink.take();
}

std::vector<std::uint8_t> test_program() {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 32;
  return mips::words_to_bytes(workload::generate_mips(p));
}

TEST(Parallel, SamcCompressIsByteIdenticalAtAnyThreadCount) {
  const ThreadCountGuard guard;
  const auto code = test_program();
  const samc::SamcCodec codec(samc::mips_defaults());
  par::set_thread_count(1);
  const auto serial = serialize(codec.compress(code));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    par::set_thread_count(threads);
    EXPECT_EQ(serialize(codec.compress(code)), serial) << "threads=" << threads;
  }
}

TEST(Parallel, SadcCompressIsByteIdenticalAtAnyThreadCount) {
  const ThreadCountGuard guard;
  const auto code = test_program();
  const sadc::SadcMipsCodec codec;
  par::set_thread_count(1);
  const auto serial = serialize(codec.compress(code));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    par::set_thread_count(threads);
    EXPECT_EQ(serialize(codec.compress(code)), serial) << "threads=" << threads;
  }
}

TEST(Parallel, DecompressAllMatchesInputAtAnyThreadCount) {
  const ThreadCountGuard guard;
  const auto code = test_program();
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    par::set_thread_count(threads);
    EXPECT_EQ(codec.decompress_all(image), code) << "threads=" << threads;
  }
}

TEST(Parallel, OptimizeDivisionIsIdenticalAtAnyThreadCount) {
  const ThreadCountGuard guard;
  Rng rng(64);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4000; ++i) words.push_back(rng.next_u32());
  samc::OptimizerOptions opt;
  opt.swap_attempts = 40;
  par::set_thread_count(1);
  const auto serial = samc::optimize_division(words, opt);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    par::set_thread_count(threads);
    EXPECT_EQ(samc::optimize_division(words, opt), serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ccomp
