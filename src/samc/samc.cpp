#include "samc/samc.h"

#include <algorithm>
#include <tuple>
#include <type_traits>
#include <utility>

#include "coding/markovplan.h"
#include "coding/nibblecoder.h"
#include "coding/rangecoder.h"
#include "coding/rans.h"
#include "core/streams.h"
#include "obs/obs.h"
#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::samc {

using coding::MarkovCursor;
using coding::MarkovDecodePlan;
using coding::MarkovModel;
using coding::RangeDecoder;
using coding::RangeEncoder;
using coding::StreamDivision;

SamcOptions mips_defaults() {
  SamcOptions o;
  o.markov.division = StreamDivision::contiguous(32, 4);
  o.markov.context_bits = 1;
  o.markov.connect_across_words = true;
  o.block_size = 32;
  o.isa = core::IsaKind::kMips;
  return o;
}

SamcOptions x86_defaults() {
  SamcOptions o;
  o.markov.division = StreamDivision::single(8);
  o.markov.context_bits = 1;
  o.markov.connect_across_words = true;  // connect byte to byte
  o.block_size = 32;
  o.isa = core::IsaKind::kX86;
  return o;
}

SamcCodec::SamcCodec(SamcOptions options) : options_(std::move(options)) {
  options_.markov.division.validate();
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  if (options_.markov.division.word_bits % 8 != 0)
    throw ConfigError("SAMC word width must be a whole number of bytes");
  if (options_.block_size == 0 || options_.block_size % word_bytes != 0)
    throw ConfigError("block size must be a multiple of the word size");
  if (options_.parallel_nibble_mode) {
    if (!options_.markov.quantized || options_.markov.max_shift > 8)
      throw ConfigError("parallel nibble mode requires quantized probabilities (shift <= 8)");
    for (const auto& stream : options_.markov.division.streams)
      if (stream.size() % 4 != 0)
        throw ConfigError("parallel nibble mode requires stream widths divisible by 4");
    if (options_.entropy_coder == EntropyCoder::kRans)
      throw ConfigError("parallel nibble mode uses its own nibble coder; rANS does not apply");
  }
  if (options_.entropy_streams < 1 || options_.entropy_streams > core::kMaxEntropyStreams)
    throw ConfigError("entropy stream count must be in [1, 16]");
  if (options_.entropy_streams > options_.block_size / word_bytes)
    throw ConfigError("entropy stream count exceeds the words per block");
}

std::vector<std::uint32_t> SamcCodec::code_to_words(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  if (code.size() % word_bytes != 0)
    throw ConfigError("code size is not a multiple of the instruction word size");
  std::vector<std::uint32_t> words;
  words.reserve(code.size() / word_bytes);
  for (std::size_t i = 0; i < code.size(); i += word_bytes) {
    std::uint32_t w = 0;
    for (unsigned b = word_bytes; b-- > 0;) w = (w << 8) | code[i + b];  // little-endian
    words.push_back(w);
  }
  return words;
}

coding::MarkovModel SamcCodec::train_model(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  // Gather statistics exactly as the per-block coder will see them.
  return MarkovModel::train(options_.markov, words, options_.block_size / word_bytes);
}

core::CompressedImage SamcCodec::compress(std::span<const std::uint8_t> code) const {
  return compress_with_model(code, train_model(code));
}

core::CompressedImage SamcCodec::compress_with_model(std::span<const std::uint8_t> code,
                                                     const MarkovModel& model) const {
  CCOMP_SPAN("samc.compress");
  if (!(model.config().division == options_.markov.division))
    throw ConfigError("supplied model's stream division does not match the codec");
  if (options_.parallel_nibble_mode && !model.config().quantized)
    throw ConfigError("parallel nibble mode needs a quantized model");
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  const std::size_t words_per_block = options_.block_size / word_bytes;

  // Pass 2: arithmetic-code each block independently. The coder interval
  // and the Markov walk both reset at every block boundary (the paper's
  // random-access requirement), so blocks are encoded in parallel — each
  // task carries its own encoder and cursor over the shared frozen model —
  // and concatenated in index order, making the payload byte-identical to a
  // serial encode at any thread count.
  const std::size_t block_count =
      words.empty() ? 0 : (words.size() + words_per_block - 1) / words_per_block;
  // With entropy_streams = K > 1 a block's words are further partitioned
  // into K contiguous near-even chunks, each coded by its OWN coder and
  // Markov walk (both reset at the chunk boundary) and framed by
  // core::pack_stream_block so the decoder can attach all K coders up
  // front and round-robin them. K = 1 stays frameless and byte-identical
  // to the single-stream format.
  const unsigned n_streams = options_.entropy_streams;
  auto encode_block = [&]<typename Encoder>(std::size_t b, Encoder*) {
    CCOMP_SPAN("samc.encode_block");
    CCOMP_TIMER("samc.encode.block_ns");
    const std::size_t begin = b * words_per_block;
    const std::size_t end = std::min(begin + words_per_block, words.size());
    const std::size_t block_words = end - begin;
    CCOMP_COUNT("samc.encode.blocks", 1);
    CCOMP_COUNT("samc.encode.words", block_words);
    std::vector<std::vector<std::uint8_t>> streams(n_streams);
    for (unsigned k = 0; k < n_streams; ++k) {
      const std::size_t chunk = core::chunk_size(block_words, n_streams, k);
      if (chunk == 0) continue;  // short final block: trailing streams stay empty
      const std::size_t first = begin + core::chunk_begin(block_words, n_streams, k);
      Encoder encoder;
      MarkovCursor cursor(model);
      for (std::size_t i = first; i < first + chunk; ++i) {
        const std::uint32_t word = words[i];
        for (unsigned bit_no = 0; bit_no < options_.markov.division.word_bits; ++bit_no) {
          const unsigned bit = (word >> cursor.next_bit_position()) & 1u;
          encoder.encode_bit(bit, cursor.prob());
          cursor.advance(bit);
        }
      }
      encoder.finish();
      streams[k] = encoder.take();
    }
    return core::pack_stream_block(streams);
  };
  std::vector<std::vector<std::uint8_t>> blocks;
  if (options_.parallel_nibble_mode) {
    blocks = par::parallel_map(block_count, [&](std::size_t b) {
      return encode_block(b, static_cast<coding::NibbleRangeEncoder*>(nullptr));
    });
  } else if (options_.entropy_coder == EntropyCoder::kRans) {
    blocks = par::parallel_map(block_count, [&](std::size_t b) {
      return encode_block(b, static_cast<coding::RansEncoder*>(nullptr));
    });
  } else {
    blocks = par::parallel_map(block_count, [&](std::size_t b) {
      return encode_block(b, static_cast<RangeEncoder*>(nullptr));
    });
  }

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(block_count + 1);
  for (const std::vector<std::uint8_t>& block : blocks) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    payload.insert(payload.end(), block.begin(), block.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  if (words.empty()) {
    // Degenerate empty program: single sentinel only.
    offsets.assign(1, 0);
  }

  ByteSink tables;
  // Layout: [u8 coder mode][u8 entropy streams][model]. Mode 0 is the
  // bitwise range coder, 1 the Fig. 5 nibble range coder, 2 rANS.
  const std::uint8_t mode = options_.parallel_nibble_mode                   ? 1
                            : options_.entropy_coder == EntropyCoder::kRans ? 2
                                                                            : 0;
  tables.u8(mode);
  tables.u8(static_cast<std::uint8_t>(n_streams));
  model.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSamc, options_.isa, options_.block_size,
                               code.size(), tables.take(), std::move(offsets),
                               std::move(payload));
}

namespace {

// Bitwise decompressor: one coder bit per Markov step. The Markov walk
// either runs on the flattened decode plan (one table row per decoded bit)
// or, when the plan is not viable or the cursor engine was requested, on
// the original MarkovCursor. For images encoded with K > 1 entropy streams
// the plan engine round-robins the K coder states in ONE loop (the
// interleaved fast path); kPlanSerial and kCursor decode the K chunks one
// after another. Every path produces byte-identical output.
class SamcDecompressor final : public core::BlockDecompressor {
 public:
  SamcDecompressor(const core::CompressedImage& image, MarkovModel model, DecodeEngine engine,
                   unsigned streams, EntropyCoder coder)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        model_(std::move(model)),
        plan_(model_),
        streams_(streams),
        coder_(coder) {
    use_plan_ = engine != DecodeEngine::kCursor && plan_.viable();
    interleave_ = use_plan_ && engine == DecodeEngine::kPlan && streams_ > 1;
    // The order bit positions are decoded in is a fixed property of the
    // stream division (streams in sequence, each MSB-to-LSB of its position
    // list), so the hot loop shifts every bit into a decode-order
    // accumulator and the scatter to word-bit positions happens once per
    // word, over maximal descending runs precomputed here. The default
    // contiguous divisions collapse to a single run (the accumulator *is*
    // the word); a pathological division degrades to one run per bit, which
    // still only costs what the old per-bit scatter did.
    std::vector<std::uint8_t> positions;
    for (const auto& stream : model_.config().division.streams)
      for (const std::uint8_t pos : stream) positions.push_back(pos);
    const unsigned word_bits = model_.config().division.word_bits;
    std::size_t i = 0;
    while (i < positions.size()) {
      std::size_t j = i + 1;
      while (j < positions.size() && positions[j] + 1 == positions[j - 1]) ++j;
      const unsigned width = static_cast<unsigned>(j - i);
      OutputRun run;
      run.rshift = static_cast<std::uint8_t>(word_bits - j);
      run.lshift = positions[j - 1];
      run.mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
      runs_.push_back(run);
      i = j;
    }
  }

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out);
    return out;
  }

  using BlockDecompressor::block_into;

  void block_into(std::size_t index, std::span<std::uint8_t> out) const override {
    CCOMP_SPAN("samc.decode_block");
    CCOMP_TIMER("samc.decode.block_ns");
    const unsigned word_bytes = model_.config().division.word_bits / 8;
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    const std::size_t word_count = out.size() / word_bytes;
    CCOMP_COUNT("samc.decode.blocks", 1);
    CCOMP_COUNT("samc.decode.words", word_count);
    const core::StreamSpans spans =
        core::split_stream_block(image_->block_payload(index), streams_);
    if (coder_ == EntropyCoder::kRans)
      decode_with<coding::RansDecoder>(spans, out, word_count);
    else
      decode_with<RangeDecoder>(spans, out, word_count);
  }

 private:
  /// One maximal descending run of the division's flattened bit-position
  /// sequence: decoded chunk `(acc >> rshift) & mask` lands at `<< lshift`.
  struct OutputRun {
    std::uint8_t rshift;
    std::uint8_t lshift;
    std::uint32_t mask;
  };

  template <typename Decoder>
  static void count_renorms(std::uint64_t n) {
    if constexpr (std::is_same_v<Decoder, coding::RansDecoder>) {
      CCOMP_COUNT("coder.rans.decode_renorms", n);
    } else {
      CCOMP_COUNT("coder.range.decode_renorms", n);
    }
  }

  template <typename Decoder>
  void decode_with(const core::StreamSpans& spans, std::span<std::uint8_t> out,
                   std::size_t word_count) const {
    if (interleave_) {
      // Fixed-K instantiations expand the lanes at compile time (the common
      // CLI/bench values); anything else runs the runtime-K body.
      switch (streams_) {
        case 2: return interleaved_fixed<Decoder, 2>(spans, out, word_count);
        case 4: return interleaved_fixed<Decoder, 4>(spans, out, word_count);
        case 8: return interleaved_fixed<Decoder, 8>(spans, out, word_count);
        default: return interleaved_generic<Decoder>(spans, out, word_count);
      }
    }
    if (use_plan_) return plan_serial<Decoder>(spans, out, word_count);
    cursor_serial<Decoder>(spans, out, word_count);
  }

  /// The tentpole hot loop: KF register-resident coder states decoded
  /// round-robin. Each round resolves ONE word on every lane; the KF
  /// coder/model dependency chains are independent, so the superscalar
  /// core overlaps their compare/table-load/renorm latencies where the
  /// serial loop stalls on a single chain between mispredicts.
  ///
  /// Two things make this fast where the obvious array-of-lanes loop is
  /// actually SLOWER than serial (measured 0.74x at K = 4):
  ///   * the lanes live in a std::tuple touched only through compile-time
  ///     indices (index_sequence folds), so scalar replacement splits every
  ///     lane into registers — an array indexed by a runtime loop variable
  ///     pins all lane state in L1 and every chain step round-trips through
  ///     a load/store;
  ///   * bits resolve with the coders' branchless variant. Serially that
  ///     loses ~45% (it trades speculation for a data dependency), but here
  ///     the other lanes hide the select latency, and one mispredicted bit
  ///     no longer flushes KF streams' worth of in-flight work.
  /// The chunk partition puts larger chunks first, so the lanes still
  /// active in the final partial round are exactly the prefix
  /// [0, word_count % KF); the tail round guards each lane with a
  /// constant-index compare.
  template <typename Decoder, unsigned KF>
  void interleaved_fixed(const core::StreamSpans& spans, std::span<std::uint8_t> out,
                         std::size_t word_count) const {
    // A block shorter than KF words leaves trailing chunks empty (nothing
    // to attach a coder to); such blocks are tiny, so chunk-serial decode
    // is both correct and free.
    if (word_count < KF) return plan_serial<Decoder>(spans, out, word_count);
    const MarkovDecodePlan& plan = plan_;
    const OutputRun* const runs = runs_.data();
    const std::size_t run_count = runs_.size();
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    struct Lane {
      typename Decoder::Core rc;
      std::uint32_t state;
      std::uint32_t acc;
      std::size_t at;
    };
    auto lanes = [&]<std::size_t... I>(std::index_sequence<I...>) {
      return std::tuple{Lane{Decoder::attach(spans[static_cast<unsigned>(I)]),
                             MarkovDecodePlan::kStartState, 0,
                             core::chunk_begin(word_count, KF, static_cast<unsigned>(I)) *
                                 word_bytes}...};
    }(std::make_index_sequence<KF>{});
    // Apply fn(lane, integral_constant<index>) to every lane — a fold, not
    // a loop, so each application has its own compile-time index. Every
    // lambda in this nest is always_inline: the whole point is one flat
    // loop body with all lane state in registers, and at K = 8 the body is
    // big enough that the inliner otherwise outlines the per-bit step —
    // which puts a call (and the Lane back in memory) on the hottest path.
    auto for_lanes = [&](auto&& fn) __attribute__((always_inline)) {
      [&]<std::size_t... I>(std::index_sequence<I...>) __attribute__((always_inline)) {
        (fn(std::get<I>(lanes), std::integral_constant<std::size_t, I>{}), ...);
      }(std::make_index_sequence<KF>{});
    };
    auto step = [&](Lane& l) __attribute__((always_inline)) {
      // One fused table load supplies the probability and both candidate
      // successors (see MarkovDecodePlan::fused): with K lanes in flight
      // the load ports, not one chain's latency, are the scarce resource.
      // The successor extraction is a variable shift off the decoded bit —
      // branch-free, so a hard-to-predict bit costs latency (hidden by the
      // other lanes), never a pipeline flush.
      const std::uint64_t f = plan.fused(l.state);
      const unsigned bit = l.rc.decode_bit_branchless(MarkovDecodePlan::fused_prob0(f));
      l.acc = (l.acc << 1) | bit;
      l.state = MarkovDecodePlan::fused_next(f, bit);
    };
    auto flush = [&](Lane& l) __attribute__((always_inline)) {
      std::uint32_t word = 0;
      for (std::size_t r = 0; r < run_count; ++r)
        word |= ((l.acc >> runs[r].rshift) & runs[r].mask) << runs[r].lshift;
      for (unsigned b = 0; b < word_bytes; ++b)
        out[l.at++] = static_cast<std::uint8_t>(word >> (8 * b));
      l.acc = 0;
    };
    const std::size_t full_rounds = word_count / KF;
    const unsigned tail = static_cast<unsigned>(word_count % KF);
    for (std::size_t r = 0; r < full_rounds; ++r) {
      for (unsigned b = 0; b < word_bits; ++b)
        for_lanes([&](Lane& l, auto) __attribute__((always_inline)) { step(l); });
      for_lanes([&](Lane& l, auto) __attribute__((always_inline)) { flush(l); });
    }
    if (tail) {
      for (unsigned b = 0; b < word_bits; ++b)
        for_lanes([&](Lane& l, auto idx) __attribute__((always_inline)) {
          if (idx() < tail) step(l);
        });
      for_lanes([&](Lane& l, auto idx) __attribute__((always_inline)) {
        if (idx() < tail) flush(l);
      });
    }
    std::uint64_t renorms = 0;
    for_lanes([&](Lane& l, auto) __attribute__((always_inline)) { renorms += l.rc.renorms; });
    count_renorms<Decoder>(renorms);
  }

  /// Runtime-K interleave for stream counts without a fixed instantiation
  /// (K = 3, 5, 6, ...). Correct but array-based — lane state lives in L1,
  /// so expect chunk-serial-like speed; the fixed-K sweet spots are 2/4/8.
  template <typename Decoder>
  void interleaved_generic(const core::StreamSpans& spans, std::span<std::uint8_t> out,
                           std::size_t word_count) const {
    using Core = typename Decoder::Core;
    const unsigned K = streams_;
    const MarkovDecodePlan& plan = plan_;
    const OutputRun* const runs = runs_.data();
    const std::size_t run_count = runs_.size();
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    Core rc[core::kMaxEntropyStreams];
    std::uint32_t state[core::kMaxEntropyStreams];
    std::size_t at[core::kMaxEntropyStreams];
    const unsigned attached = static_cast<unsigned>(std::min<std::size_t>(K, word_count));
    for (unsigned k = 0; k < attached; ++k) {
      rc[k] = Decoder::attach(spans[k]);
      state[k] = MarkovDecodePlan::kStartState;
      at[k] = core::chunk_begin(word_count, K, k) * word_bytes;
    }
    const std::size_t full_rounds = word_count / K;
    const unsigned tail = static_cast<unsigned>(word_count % K);
    auto round = [&](unsigned active) {
      std::uint32_t acc[core::kMaxEntropyStreams];
      for (unsigned k = 0; k < active; ++k) acc[k] = 0;
      for (unsigned b = 0; b < word_bits; ++b) {
        for (unsigned k = 0; k < active; ++k) {
          // Same pair-prefetch + branch-on-bit shape as the serial plan
          // loop (see plan_serial); what changes is that the NEXT decode
          // step in program order belongs to a DIFFERENT stream, so the
          // machine always has independent work in flight.
          const std::uint64_t pair = plan.next_pair(state[k]);
          if (rc[k].decode_bit(plan.prob0(state[k]))) {
            acc[k] = (acc[k] << 1) | 1u;
            state[k] = static_cast<std::uint32_t>(pair >> 32);
          } else {
            acc[k] <<= 1;
            state[k] = static_cast<std::uint32_t>(pair);
          }
        }
      }
      for (unsigned k = 0; k < active; ++k) {
        std::uint32_t word = 0;
        for (std::size_t r = 0; r < run_count; ++r)
          word |= ((acc[k] >> runs[r].rshift) & runs[r].mask) << runs[r].lshift;
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at[k]++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    };
    for (std::size_t r = 0; r < full_rounds; ++r) round(K);
    if (tail) round(tail);
    std::uint64_t renorms = 0;
    for (unsigned k = 0; k < attached; ++k) renorms += rc[k].renorms;
    count_renorms<Decoder>(renorms);
  }

  /// Chunk-serial plan decode (kPlanSerial, and kPlan for K = 1): the
  /// original register-resident hot loop, run once per stream chunk.
  template <typename Decoder>
  void plan_serial(const core::StreamSpans& spans, std::span<std::uint8_t> out,
                   std::size_t word_count) const {
    const MarkovDecodePlan& plan = plan_;
    const OutputRun* const runs = runs_.data();
    const std::size_t run_count = runs_.size();
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    std::uint64_t renorms = 0;
    std::size_t at = 0;
    for (unsigned k = 0; k < streams_; ++k) {
      const std::size_t chunk = core::chunk_size(word_count, streams_, k);
      if (chunk == 0) break;  // trailing streams of a short final block are empty
      // Register-resident coder state attached straight to the payload: no
      // decoder object, so no out-of-line construct/flush per block and
      // nothing whose address could force the state out of registers.
      typename Decoder::Core rc = Decoder::attach(spans[k]);
      std::uint32_t state = MarkovDecodePlan::kStartState;
      for (std::size_t w = 0; w < chunk; ++w) {
        std::uint32_t acc = 0;
#pragma GCC unroll 8
        for (unsigned b = 0; b < word_bits; ++b) {
          // One 64-bit fetch loads both candidate successors before the bit
          // resolves, so the table access overlaps the coder's compare
          // instead of waiting on it (the walk is otherwise one long
          // dependency chain). Bits land in decode order; the scatter to
          // word positions runs once per word, below.
          const std::uint64_t pair = plan.next_pair(state);
          // Branch (not select) on the decoded bit: bits are predictable
          // (that is why they compress), so the predictor speculates the
          // state update and the next probability load instead of waiting
          // for the coder's compare to retire. After inlining this threads
          // straight onto decode_bit's own compare.
          if (rc.decode_bit(plan.prob0(state))) {
            acc = (acc << 1) | 1u;
            state = static_cast<std::uint32_t>(pair >> 32);
          } else {
            acc <<= 1;
            state = static_cast<std::uint32_t>(pair);
          }
        }
        std::uint32_t word = 0;
        for (std::size_t r = 0; r < run_count; ++r)
          word |= ((acc >> runs[r].rshift) & runs[r].mask) << runs[r].lshift;
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
      renorms += rc.renorms;
    }
    count_renorms<Decoder>(renorms);
  }

  /// MarkovCursor fallback (kCursor, or a non-viable plan at any K).
  template <typename Decoder>
  void cursor_serial(const core::StreamSpans& spans, std::span<std::uint8_t> out,
                     std::size_t word_count) const {
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    std::size_t at = 0;
    for (unsigned k = 0; k < streams_; ++k) {
      const std::size_t chunk = core::chunk_size(word_count, streams_, k);
      if (chunk == 0) break;
      Decoder decoder(spans[k]);
      MarkovCursor cursor(model_);
      for (std::size_t w = 0; w < chunk; ++w) {
        std::uint32_t word = 0;
        for (unsigned b = 0; b < word_bits; ++b) {
          const unsigned pos = cursor.next_bit_position();
          const unsigned bit = decoder.decode_bit(cursor.prob());
          word |= static_cast<std::uint32_t>(bit) << pos;
          cursor.advance(bit);
        }
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
  }

  const core::CompressedImage* image_;
  MarkovModel model_;
  MarkovDecodePlan plan_;
  unsigned streams_;
  EntropyCoder coder_;
  bool use_plan_ = false;
  bool interleave_ = false;
  std::vector<OutputRun> runs_;
};

// Parallel (Fig. 5) decompressor: prefetches the 15 probabilities of the
// coming nibble's subtree and resolves 4 bits per decode_nibble call.
class NibbleSamcDecompressor final : public core::BlockDecompressor {
 public:
  NibbleSamcDecompressor(const core::CompressedImage& image, MarkovModel model,
                         DecodeEngine engine, unsigned streams)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        model_(std::move(model)),
        plan_(model_),
        streams_(streams) {
    use_plan_ = engine != DecodeEngine::kCursor && plan_.viable();
  }

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out);
    return out;
  }

  using BlockDecompressor::block_into;

  void block_into(std::size_t index, std::span<std::uint8_t> out) const override {
    CCOMP_SPAN("samc.decode_block");
    CCOMP_TIMER("samc.decode.block_ns");
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    const std::size_t word_count = out.size() / word_bytes;
    CCOMP_COUNT("samc.decode.blocks", 1);
    CCOMP_COUNT("samc.decode.words", word_count);

    // Multi-stream nibble blocks decode chunk-serially (the nibble coder's
    // 15-midpoint evaluation already packs the ILP the interleave would
    // otherwise add); the K > 1 payoff here is format parity with the
    // bitwise modes so the equivalence suite covers every combination.
    const core::StreamSpans spans =
        core::split_stream_block(image_->block_payload(index), streams_);
    std::size_t at = 0;
    for (unsigned k = 0; k < streams_; ++k) {
      const std::size_t chunk = core::chunk_size(word_count, streams_, k);
      if (chunk == 0) break;  // trailing streams of a short final block are empty
      coding::NibbleRangeDecoder decoder(spans[k]);
      if (use_plan_) {
        // The nibble-mode constraint (stream widths divisible by 4) means a
        // nibble never crosses a stream boundary, so the subtree gather can
        // walk the plan's next-pointers directly.
        const MarkovDecodePlan& plan = plan_;
        std::uint32_t state = MarkovDecodePlan::kStartState;
        for (std::size_t w = 0; w < chunk; ++w) {
          std::uint32_t word = 0;
          for (unsigned group = 0; group < word_bits / 4; ++group) {
            coding::Prob probs[15];
            plan.gather_nibble(state, probs);
            const unsigned nibble = decoder.decode_nibble(probs);
            for (int b = 3; b >= 0; --b) {
              const unsigned bit = (nibble >> b) & 1u;
              word |= static_cast<std::uint32_t>(bit) << plan.bit_pos(state);
              state = plan.next(state, bit);
            }
          }
          for (unsigned b = 0; b < word_bytes; ++b)
            out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
        }
        continue;
      }
      MarkovCursor cursor(model_);
      for (std::size_t w = 0; w < chunk; ++w) {
        std::uint32_t word = 0;
        for (unsigned group = 0; group < word_bits / 4; ++group) {
          // Gather the probability subtree rooted at the cursor's node — this
          // is the "probability memory" fetch feeding the 15 midpoint units.
          coding::Prob probs[15];
          std::size_t tree_nodes[15];
          tree_nodes[0] = cursor.node();
          const std::size_t stream = cursor.stream();
          const std::size_t ctx = cursor.context();
          for (std::size_t i = 0; i < 7; ++i) {
            tree_nodes[2 * i + 1] = 2 * tree_nodes[i] + 1;
            tree_nodes[2 * i + 2] = 2 * tree_nodes[i] + 2;
          }
          for (std::size_t i = 0; i < 15; ++i)
            probs[i] = model_.prob0(stream, ctx, tree_nodes[i]);

          const unsigned nibble = decoder.decode_nibble(probs);
          for (int b = 3; b >= 0; --b) {
            const unsigned bit = (nibble >> b) & 1u;
            word |= static_cast<std::uint32_t>(bit) << cursor.next_bit_position();
            cursor.advance(bit);
          }
        }
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
  }

 private:
  const core::CompressedImage* image_;
  MarkovModel model_;
  MarkovDecodePlan plan_;
  unsigned streams_;
  bool use_plan_ = false;
};

}  // namespace

std::unique_ptr<core::BlockDecompressor> SamcCodec::make_decompressor(
    const core::CompressedImage& image) const {
  return make_decompressor(image, DecodeEngine::kPlan);
}

std::unique_ptr<core::BlockDecompressor> SamcCodec::make_decompressor(
    const core::CompressedImage& image, DecodeEngine engine) const {
  if (image.codec() != core::CodecKind::kSamc)
    throw ConfigError("image was not produced by SAMC");
  ByteSource src(image.tables());
  const std::uint8_t mode = src.u8();
  if (mode > 2) throw CorruptDataError("unknown SAMC coder mode byte");
  const unsigned streams = src.u8();
  if (streams < 1 || streams > core::kMaxEntropyStreams)
    throw CorruptDataError("SAMC entropy stream count out of range");
  MarkovModel model = MarkovModel::deserialize(src);
  if (mode == 1)
    return std::make_unique<NibbleSamcDecompressor>(image, std::move(model), engine, streams);
  return std::make_unique<SamcDecompressor>(
      image, std::move(model), engine, streams,
      mode == 2 ? EntropyCoder::kRans : EntropyCoder::kRange);
}

double SamcCodec::estimate_payload_bits(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  const std::size_t words_per_block = options_.block_size / word_bytes;
  const MarkovModel model = MarkovModel::train(options_.markov, words, words_per_block);
  return model.estimate_bits(words, words_per_block);
}

std::size_t parallel_decode_units(unsigned bits_per_cycle) {
  if (bits_per_cycle == 0 || bits_per_cycle > 8)
    throw ConfigError("parallel decode width must be 1..8");
  return (std::size_t{1} << bits_per_cycle) - 1;
}

std::size_t samc_decode_cycles(std::uint32_t block_size, unsigned bits_per_cycle,
                               unsigned startup_cycles) {
  const std::size_t bits = static_cast<std::size_t>(block_size) * 8;
  return startup_cycles + (bits + bits_per_cycle - 1) / bits_per_cycle;
}

}  // namespace ccomp::samc
