// Table T-LAYOUT: profile-guided block layout and tiering (src/layout).
// Three claims, each measured against the monolithic SAMC build of the same
// program:
//
//   1. Clustering is free: the all-cold clustered image has *identical*
//      compressed size (same blocks, same payload bytes, new order) yet
//      lower cycles/fetch, because hot blocks share CLB entries.
//   2. Tiering trades ratio for speed on a smooth curve: the hot-percent
//      sweep shows cycles/fetch falling as ratio rises toward 1.
//   3. The trace-trained predictor actually predicts: replaying a loop
//      trace against an ImageServer with prefetch enabled, most demand
//      fetches land on a block the prefetcher already decoded.
//
// Every tiered variant is also decoded back to the original byte order and
// compared against the source program — a mismatch exits nonzero.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "isa/mips/mips.h"
#include "layout/layout.h"
#include "memsys/sim.h"
#include "samc/samc.h"
#include "server/server.h"
#include "workload/mips_gen.h"
#include "workload/trace.h"

namespace {

using namespace ccomp;

struct SimPoint {
  double ratio = 0.0;
  double cycles_per_fetch = 0.0;
  double clb_hit_rate = 0.0;
};

SimPoint simulate(const core::CompressedImage& image,
                  const std::vector<std::uint32_t>& trace) {
  memsys::SimConfig config;
  config.cache = {4 * 1024, 32, 2};
  const memsys::SimResult r = memsys::simulate_compressed(config, trace, image);
  return {image.sizes().ratio(), r.cycles_per_fetch(), r.clb_hit_rate()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_layout", argc, argv);
  std::printf("Table T-LAYOUT: profile-guided layout & tiering (scale=%.2f)\n\n", scale);

  const workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto prog = workload::generate_mips_program(p);
  const auto code = mips::words_to_bytes(prog.words);
  const samc::SamcCodec codec(samc::mips_defaults());
  const std::uint32_t block_size = samc::mips_defaults().block_size;

  workload::TraceOptions topt;
  topt.length = 1'000'000;
  const auto trace = workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);
  const std::size_t blocks = (code.size() + block_size - 1) / block_size;
  const layout::AccessProfile access = layout::AccessProfile::from_trace(trace, block_size, blocks);

  // --- baseline: monolithic SAMC, original block order --------------------
  const auto baseline_img = codec.compress(code);
  const SimPoint baseline = simulate(baseline_img, trace);
  std::printf("benchmark go: %zu KB text, %zu block(s), %zu-entry trace, 4 KB cache\n\n",
              code.size() / 1024, blocks, trace.size());
  std::printf("%-14s %8s %12s %10s\n", "layout", "ratio", "cycles/fetch", "CLB hit");
  std::printf("%-14s %8.3f %12.3f %9.3f\n", "monolithic", baseline.ratio,
              baseline.cycles_per_fetch, baseline.clb_hit_rate);
  json.add("baseline", "ratio", baseline.ratio, "ratio");
  json.add("baseline", "cycles_per_fetch", baseline.cycles_per_fetch, "cycles");

  // --- claim 1: all-cold clustering at identical image size ---------------
  {
    layout::LayoutOptions opt;
    opt.hot_fraction = 0.0;
    opt.warm_fraction = 0.0;
    const auto img = layout::build_tiered_image(
        codec, code, layout::optimize_layout(access, code.size(), block_size, opt));
    if (layout::decompress_image(codec, img) != code) {
      std::fprintf(stderr, "FAIL: all-cold clustered image did not round-trip\n");
      return 1;
    }
    const SimPoint pt = simulate(img, trace);
    std::printf("%-14s %8.3f %12.3f %9.3f   (same blocks, reordered)\n", "all_cold",
                pt.ratio, pt.cycles_per_fetch, pt.clb_hit_rate);
    json.add("all_cold", "ratio", pt.ratio, "ratio");
    json.add("all_cold", "cycles_per_fetch", pt.cycles_per_fetch, "cycles");
  }

  // --- claim 2: hot-percent sweep (warm tier fixed at 10%) -----------------
  for (const double hot_pct : {2.5, 5.0, 10.0, 20.0}) {
    layout::LayoutOptions opt;
    opt.hot_fraction = hot_pct / 100.0;
    opt.warm_fraction = 0.10;
    const auto img = layout::build_tiered_image(
        codec, code, layout::optimize_layout(access, code.size(), block_size, opt));
    if (layout::decompress_image(codec, img) != code) {
      std::fprintf(stderr, "FAIL: hot=%.1f%% tiered image did not round-trip\n", hot_pct);
      return 1;
    }
    const SimPoint pt = simulate(img, trace);
    char name[32];
    std::snprintf(name, sizeof name, "hot_%.1fpct", hot_pct);
    std::printf("%-14s %8.3f %12.3f %9.3f\n", name, pt.ratio, pt.cycles_per_fetch,
                pt.clb_hit_rate);
    json.add(name, "ratio", pt.ratio, "ratio");
    json.add(name, "cycles_per_fetch", pt.cycles_per_fetch, "cycles");
  }

  // --- claim 3: prefetch hit rate on a loop trace --------------------------
  // A synthetic trace that loops over the first few blocks in order is the
  // predictor's best case: the top-1 successor of every block is simply the
  // next one. Replaying the loop against a live ImageServer (paced so the
  // async worker can stay ahead) should turn almost every demand fetch
  // after the first into a prefetch hit.
  {
    const std::size_t loop_blocks = blocks < 24 ? blocks : 24;
    std::vector<std::uint32_t> loop;
    for (int pass = 0; pass < 6; ++pass)
      for (std::size_t b = 0; b < loop_blocks; ++b)
        loop.push_back(static_cast<std::uint32_t>(b) * block_size);
    const layout::AccessProfile loop_access =
        layout::AccessProfile::from_trace(loop, block_size, blocks);
    layout::LayoutOptions opt;
    opt.hot_fraction = 0.05;
    opt.warm_fraction = 0.10;
    opt.predictor_k = 1;
    const layout::PlacementPlan plan =
        layout::optimize_layout(loop_access, code.size(), block_size, opt);
    const std::vector<std::uint32_t> slot_of = plan.slot_of;
    const auto img = layout::build_tiered_image(codec, code, plan);

    server::ImageServer srv{server::ImageServer::Options{}};
    srv.load("loop", codec, img);
    for (int pass = 0; pass < 4; ++pass) {
      for (std::size_t b = 0; b < loop_blocks; ++b) {
        (void)srv.fetch("loop", slot_of[b]);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    const std::uint64_t issued = srv.stats().prefetch_issued;
    const std::uint64_t hits = srv.stats().prefetch_hits;
    const double hit_rate =
        issued == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(issued);
    std::printf("\nPrefetch on a %zu-block loop trace (k=1, paced demand fetches):\n"
                "  %llu issued, %llu hit(s) -> hit rate %.2f\n",
                loop_blocks, static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(hits), hit_rate);
    json.add("prefetch", "issued", static_cast<double>(issued), "count");
    json.add("prefetch", "hit_rate", hit_rate, "ratio");
  }

  std::printf("\nPaper expectation: clustering buys CLB locality at zero size cost;\n"
              "raw hot blocks cut refill latency roughly in proportion to their\n"
              "share of refills; the loop predictor approaches a perfect hit rate.\n");
  return 0;
}
