// Table T-PERF: run-time cost of the compressed-code memory system. The
// paper (Secs. 1-2) argues the performance loss depends on the I-cache hit
// ratio and introduces the CLB to hide LAT lookups. Reproduce both effects
// with the trace-driven simulator: slowdown vs cache size, with and without
// a CLB, plus the decompression-width ablation of Fig. 5.
#include <cstdio>
#include <string>

#include "analysis/certificate.h"
#include "bench_common.h"
#include "isa/mips/mips.h"
#include "memsys/sim.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_perf", argc, argv);
  std::printf("Table T-PERF: memory-system cost of compressed code (scale=%.2f)\n\n", scale);

  const workload::Profile p =
      bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto prog = workload::generate_mips_program(p);
  const auto code = mips::words_to_bytes(prog.words);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  workload::TraceOptions topt;
  topt.length = 1'000'000;
  const auto trace =
      workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);

  std::printf("benchmark go: %zu KB text, SAMC ratio %.3f, %zu-entry trace\n\n",
              code.size() / 1024, image.sizes().ratio(), trace.size());
  std::printf("%-10s %10s %12s %12s %12s %10s\n", "cache", "missrate", "base cyc/f",
              "comp cyc/f", "slowdown", "CLB hit");
  for (const std::uint32_t kb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    memsys::SimConfig config;
    config.cache = {kb * 1024, 32, 2};
    const auto base = memsys::simulate_uncompressed(config, trace);
    const auto comp = memsys::simulate_compressed(config, trace, image);
    std::printf("%6u KB %9.4f %12.3f %12.3f %11.3fx %9.3f\n", kb, base.miss_rate(),
                base.cycles_per_fetch(), comp.cycles_per_fetch(),
                comp.cycles_per_fetch() / base.cycles_per_fetch(), comp.clb_hit_rate());
    const std::string cache = std::to_string(kb) + "kb";
    json.add(cache, "slowdown", comp.cycles_per_fetch() / base.cycles_per_fetch(), "x");
    json.add(cache, "clb_hit_rate", comp.clb_hit_rate(), "ratio");
  }

  std::printf("\nCLB ablation (4 KB cache):\n");
  for (const bool use_clb : {true, false}) {
    memsys::SimConfig config;
    config.cache = {4 * 1024, 32, 2};
    config.use_clb = use_clb;
    const auto comp = memsys::simulate_compressed(config, trace, image);
    std::printf("  CLB %-3s: %.3f cycles/fetch\n", use_clb ? "on" : "off",
                comp.cycles_per_fetch());
    json.add(use_clb ? "clb_on" : "clb_off", "cycles_per_fetch",
             comp.cycles_per_fetch(), "cycles");
  }

  std::printf("\nDecoder width ablation (Fig. 5 parallel midpoints, 4 KB cache):\n");
  for (const unsigned bits : {1u, 2u, 4u, 8u}) {
    memsys::SimConfig config;
    config.cache = {4 * 1024, 32, 2};
    config.refill.decode_bits_per_cycle = bits;
    const auto comp = memsys::simulate_compressed(config, trace, image);
    std::printf("  %u bit/cycle (%3zu midpoint units): %.3f cycles/fetch\n", bits,
                samc::parallel_decode_units(bits), comp.cycles_per_fetch());
    json.add("decode_" + std::to_string(bits) + "bit", "cycles_per_fetch",
             comp.cycles_per_fetch(), "cycles");
  }
  // Certified WCET next to the measured means above: the decode
  // certificate (src/analysis) proves a per-block payload bound, and
  // feeding it through the same RefillModel yields the worst-case refill
  // cycle count a real-time scheduler can budget — a number no trace can
  // produce, only bound from below.
  {
    const analysis::DecodeCertificate cert = analysis::certify(image);
    const memsys::RefillModel refill{};
    const std::uint64_t wcet = analysis::certified_block_cycles(
        cert, refill.memory_latency, refill.cycles_per_byte, refill.decode_startup,
        refill.decode_bits_per_cycle);
    std::printf("\nCertified worst-case refill (decode certificate, default refill model):\n"
                "  %llu cycles/block (verdict: %s; bench/tab_wcet has the full matrix)\n",
                static_cast<unsigned long long>(wcet),
                std::string(analysis::verdict_name(cert.verdict)).c_str());
    json.add("certified", "wcet_cycles_per_block", static_cast<double>(wcet), "cycles");
  }
  std::printf("\nPaper expectation: slowdown shrinks as the I-cache hit ratio rises;\n"
              "the CLB removes most LAT-lookup cost; wider decode helps linearly.\n");
  return 0;
}
