// Layout-section checks (LAY001..LAY005): the placement plan carried by a
// tiered image must be a usable map of the physical payload. The plan is
// parsed structurally first (a parse failure is LAY001); the semantic
// invariants — bijection, tier/payload agreement, predictor range, warm
// code-table soundness — are then proved piecewise so each violation gets
// its own stable finding instead of a generic "bad plan".
#include <string>
#include <vector>

#include "coding/huffman.h"
#include "layout/layout.h"
#include "support/error.h"
#include "verify/internal.h"
#include "verify/verify.h"

namespace ccomp::verify {

namespace detail {

using layout::PlacementPlan;
using layout::Tier;

void check_layout(const core::CompressedImage& image, VerifyReport& report) {
  if (!image.has_layout()) return;
  PlacementPlan plan;
  try {
    plan = PlacementPlan::from_blob(image.layout());
  } catch (const Error& e) {
    emit(report, "LAY001", std::string("layout section failed to parse: ") + e.what());
    return;
  }
  if (plan.block_count != image.block_count()) {
    emit(report, "LAY001",
         "plan covers " + std::to_string(plan.block_count) + " block(s), image has " +
             std::to_string(image.block_count()));
    return;
  }

  // LAY002: the permutation must be a bijection, so every branch target's
  // original block resolves through the remapped LAT to exactly one slot.
  bool bijective = plan.slot_of.size() == plan.block_count;
  if (bijective) {
    std::vector<bool> seen(plan.block_count, false);
    for (const std::uint32_t s : plan.slot_of) {
      if (s >= plan.block_count || seen[s]) {
        bijective = false;
        break;
      }
      seen[s] = true;
    }
  }
  if (!bijective)
    emit(report, "LAY002",
         "slot_of is not a bijection over " + std::to_string(plan.block_count) + " block(s)");

  // LAY004: predictor entries must name real slots (or the sentinel).
  std::size_t bad_successors = 0;
  for (const std::uint32_t s : plan.successors)
    if (s != PlacementPlan::kNoSuccessor && s >= plan.block_count) ++bad_successors;
  if (plan.successors.size() !=
      static_cast<std::size_t>(plan.block_count) * plan.predictor_k)
    emit(report, "LAY004",
         "predictor table holds " + std::to_string(plan.successors.size()) +
             " entries, expected " +
             std::to_string(static_cast<std::size_t>(plan.block_count) * plan.predictor_k));
  else if (bad_successors != 0)
    emit(report, "LAY004",
         std::to_string(bad_successors) + " predictor successor(s) name slots past " +
             std::to_string(plan.block_count));

  // LAY005: a warm tier without a decodable shared code is unservable.
  const bool any_warm = [&] {
    for (const Tier t : plan.tiers)
      if (t == Tier::kWarm) return true;
    return false;
  }();
  if (any_warm) {
    if (plan.warm_lengths.size() != 256) {
      emit(report, "LAY005",
           "warm tier in use but the code table holds " +
               std::to_string(plan.warm_lengths.size()) + " length(s), expected 256");
    } else {
      try {
        (void)coding::HuffmanCode::from_lengths(plan.warm_lengths);
      } catch (const Error& e) {
        emit(report, "LAY005", std::string("warm code table is not decodable: ") + e.what());
      }
    }
  }

  // LAY003: each slot's payload must be plausible for its declared tier.
  // Raw slots must hold exactly their original bytes' worth; and since a
  // uniform image derives a slot's original size from its index, the
  // permutation may not move a short block off the last slot.
  if (bijective && plan.tiers.size() == plan.block_count) {
    std::size_t tier_mismatch = 0;
    std::size_t size_mismatch = 0;
    for (std::uint32_t b = 0; b < plan.block_count; ++b) {
      const std::uint32_t s = plan.slot_of[b];
      if (image.block_original_size(b) != image.block_original_size(s)) ++size_mismatch;
      if (plan.tiers[s] == Tier::kHot &&
          image.block_payload(s).size() != image.block_original_size(s))
        ++tier_mismatch;
    }
    if (size_mismatch != 0)
      emit(report, "LAY003",
           std::to_string(size_mismatch) +
               " block(s) permuted onto slots of a different original size");
    if (tier_mismatch != 0)
      emit(report, "LAY003",
           std::to_string(tier_mismatch) +
               " raw-tier slot(s) whose payload size differs from the original block size");
  }
}

}  // namespace detail

}  // namespace ccomp::verify
