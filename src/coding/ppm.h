// PPM-style adaptive context modelling (binary-decomposition variant).
//
// The paper's related-work discussion (Sec. 1) notes that finite-context
// models such as PPM achieve the best compression ratios but "require large
// amounts of memory both for compression and decompression, making them
// unsuitable for program compression" — and, being adaptive, they cannot
// decode from an arbitrary cache block either. This module implements such
// a model as the file-oriented *upper bound* for the comparison benches:
// each byte is coded bit by bit through the range coder, with an adaptive
// probability selected by a hash of the previous `order` bytes plus the
// bit-prefix of the current byte (a standard binary decomposition of PPM;
// same modelling power class, much simpler than escape handling).
//
// The model table's size is reported so the benches can show exactly the
// memory cost the paper objects to.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccomp::coding {

struct PpmOptions {
  unsigned order = 2;           // context bytes
  unsigned hash_bits = 22;      // model table = 2^hash_bits probabilities
  unsigned adapt_shift = 5;     // probability update rate
};

/// Model memory required (bytes) — what an embedded decompressor would need.
std::size_t ppm_model_bytes(const PpmOptions& options = {});

std::vector<std::uint8_t> ppm_compress(std::span<const std::uint8_t> input,
                                       const PpmOptions& options = {});

std::vector<std::uint8_t> ppm_decompress(std::span<const std::uint8_t> compressed,
                                         std::size_t original_size,
                                         const PpmOptions& options = {});

}  // namespace ccomp::coding
