// End-to-end functional tests: a CPU fetching through the compressed
// memory system must observe exactly the original program, in any order.
#include "memsys/functional.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace ccomp::memsys {
namespace {

struct ProgramSetup {
  std::vector<std::uint32_t> words;
  std::vector<std::uint32_t> function_starts;
  std::vector<std::uint8_t> code;
};

ProgramSetup make_setup(std::uint32_t kb = 16) {
  workload::Profile p = *workload::find_profile("m88ksim");
  p.code_kb = kb;
  ProgramSetup s;
  auto prog = workload::generate_mips_program(p);
  s.words = std::move(prog.words);
  s.function_starts = std::move(prog.function_starts);
  s.code = mips::words_to_bytes(s.words);
  return s;
}

TEST(Functional, SequentialFetchReturnsProgram) {
  const ProgramSetup s = make_setup();
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(s.code);
  FunctionalMemorySystem mem({2 * 1024, 32, 2}, codec, image);
  for (std::size_t i = 0; i < s.words.size(); ++i)
    ASSERT_EQ(mem.fetch(static_cast<std::uint32_t>(i * 4)), s.words[i]) << "word " << i;
  EXPECT_GT(mem.refills(), 0u);
}

TEST(Functional, RandomFetchOrderStillCorrect) {
  const ProgramSetup s = make_setup();
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(s.code);
  FunctionalMemorySystem mem({1024, 32, 1}, codec, image);  // tiny, thrashy cache
  Rng rng(7331);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t w = static_cast<std::uint32_t>(rng.next_below(s.words.size()));
    ASSERT_EQ(mem.fetch(w * 4), s.words[w]);
  }
  // A 1 KiB direct-mapped cache over 16 KiB of code must have evicted and
  // re-refilled lines many times.
  EXPECT_GT(mem.refills(), 1000u);
}

TEST(Functional, TraceReplayMatchesProgram) {
  const ProgramSetup s = make_setup();
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(s.code);
  FunctionalMemorySystem mem({4 * 1024, 32, 2}, codec, image);
  workload::TraceOptions topt;
  topt.length = 100000;
  workload::Profile p = *workload::find_profile("m88ksim");
  const auto trace = workload::generate_trace(p, s.function_starts, s.words.size(), topt);
  for (const std::uint32_t addr : trace)
    ASSERT_EQ(mem.fetch(addr), s.words[addr / 4]);
  // Locality means hit rate should be high.
  EXPECT_LT(mem.cache_stats().miss_rate(), 0.05);
}

TEST(Functional, ByteFetchesWork) {
  const ProgramSetup s = make_setup(8);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(s.code);
  FunctionalMemorySystem mem({2 * 1024, 32, 2}, codec, image);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(s.code.size()));
    ASSERT_EQ(mem.fetch_byte(a), s.code[a]);
  }
}

TEST(Functional, RefillCountMatchesStatsModel) {
  const ProgramSetup s = make_setup(8);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(s.code);
  FunctionalMemorySystem mem({1024, 32, 2}, codec, image);
  for (std::size_t i = 0; i < s.words.size(); ++i)
    mem.fetch(static_cast<std::uint32_t>(i * 4));
  EXPECT_EQ(mem.refills(), mem.cache_stats().misses);
}

TEST(Functional, RejectsBadGeometry) {
  const ProgramSetup s = make_setup(8);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(s.code);
  EXPECT_THROW(FunctionalMemorySystem({1024, 64, 2}, codec, image), ConfigError);
  FunctionalMemorySystem mem({1024, 32, 2}, codec, image);
  EXPECT_THROW(mem.fetch(2), ConfigError);  // misaligned
  EXPECT_THROW(mem.fetch(static_cast<std::uint32_t>(s.code.size()) + 64), ConfigError);
}

TEST(Functional, WorksWithEveryBlockCodec) {
  const ProgramSetup s = make_setup(8);
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  samc::SamcOptions nib = samc::mips_defaults();
  nib.markov.quantized = true;
  nib.parallel_nibble_mode = true;
  const samc::SamcCodec nibble_codec(nib);
  const sadc::SadcMipsCodec sadc_codec;
  for (const core::BlockCodec* codec :
       {static_cast<const core::BlockCodec*>(&samc_codec),
        static_cast<const core::BlockCodec*>(&nibble_codec),
        static_cast<const core::BlockCodec*>(&sadc_codec)}) {
    const auto image = codec->compress(s.code);
    FunctionalMemorySystem mem({2 * 1024, 32, 2}, *codec, image);
    Rng rng(13);
    for (int i = 0; i < 3000; ++i) {
      const std::uint32_t w = static_cast<std::uint32_t>(rng.next_below(s.words.size()));
      ASSERT_EQ(mem.fetch(w * 4), s.words[w]);
    }
  }
}

}  // namespace
}  // namespace ccomp::memsys
