// Shared helpers for the figure/table harnesses.
//
// Every harness accepts an optional `--scale=<float>` argument that scales
// the generated benchmark sizes (default 1.0, the DESIGN.md sizes). Use
// smaller scales for quick smoke runs; the ratio *ordering* is stable under
// scaling, absolute ratios move slightly.
//
// Harnesses print their human-readable table to stdout (redirected into
// bench_results/<name>.txt when regenerating the committed artifacts) and
// additionally emit the same numbers machine-readably through JsonReporter
// as bench_results/<name>.json — rows of {name, metric, value, unit} — so CI
// can diff runs without parsing the tables. `--json=<path>` overrides the
// output path.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "workload/profile.h"

namespace ccomp::bench {

inline double parse_scale(int argc, char** argv, double fallback = 1.0) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) return std::atof(argv[i] + 8);
  }
  if (const char* env = std::getenv("CCOMP_BENCH_SCALE")) return std::atof(env);
  return fallback;
}

inline workload::Profile scaled_profile(const workload::Profile& p, double scale) {
  workload::Profile copy = p;
  const double kb = static_cast<double>(p.code_kb) * scale;
  copy.code_kb = kb < 8.0 ? 8u : static_cast<std::uint32_t>(kb);
  return copy;
}

// --- Wall-clock timing ----------------------------------------------------

/// Total wall-clock nanoseconds for `rounds` calls of `body(round)` in one
/// timed region. Divide by the per-round work count for amortized latency.
template <typename Fn>
double time_total_ns(std::size_t rounds, Fn&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) body(r);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count();
}

/// Median wall-clock nanoseconds of `samples` independently timed runs of
/// `body()` — robust to a stray slow run on a noisy machine.
template <typename Fn>
double median_time_ns(std::size_t samples, Fn&& body) {
  std::vector<double> ns(samples == 0 ? 1 : samples);
  for (double& sample : ns) sample = time_total_ns(1, [&](std::size_t) { body(); });
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

// --- Machine-readable results ---------------------------------------------

/// Collects {name, metric, value, unit} rows and writes them as a JSON array
/// on destruction (or an explicit write()). Default output path is
/// bench_results/<bench>.json next to the committed .txt artifacts; --json=
/// anywhere in argv overrides it. An unwritable path warns on stderr but
/// never fails the bench — the stdout table is the primary artifact.
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, int argc, char** argv)
      : path_("bench_results/" + bench_name + ".json") {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) path_ = argv[i] + 7;
    }
  }
  ~JsonReporter() { write(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  void add(const std::string& name, const std::string& metric, double value,
           const std::string& unit) {
    rows_.push_back(row_prefix(name, metric, value, unit) + "}");
  }

  /// Row tagged with the decode-speed sweep dimensions: `streams` > 0 emits
  /// an integer "streams" field, a non-empty `codec` emits "codec". Both are
  /// optional in tools/bench_results_schema.json, so consumers that only
  /// know {name, metric, value, unit} keep validating.
  void add(const std::string& name, const std::string& metric, double value,
           const std::string& unit, unsigned streams, const std::string& codec) {
    std::string row = row_prefix(name, metric, value, unit);
    if (streams > 0) row += ",\"streams\":" + std::to_string(streams);
    if (!codec.empty()) row += ",\"codec\":\"" + codec + "\"";
    rows_.push_back(row + "}");
  }

  /// Row tagged with the reader-thread count of a concurrency sweep (emits
  /// an integer "readers" field; optional in tools/bench_results_schema.json
  /// like the streams/codec tags).
  void add_readers(const std::string& name, const std::string& metric, double value,
                   const std::string& unit, unsigned readers) {
    rows_.push_back(row_prefix(name, metric, value, unit) +
                    ",\"readers\":" + std::to_string(readers) + "}");
  }

  void write() {
    if (written_) return;
    written_ = true;
    std::ofstream out(path_, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "note: cannot write %s (run from the repo root or pass --json=)\n",
                   path_.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << "  " << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "]\n";
  }

 private:
  static std::string row_prefix(const std::string& name, const std::string& metric,
                                double value, const std::string& unit) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return "{\"name\":\"" + name + "\",\"metric\":\"" + metric + "\",\"value\":" + buf +
           ",\"unit\":\"" + unit + "\"";
  }

  std::string path_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

}  // namespace ccomp::bench
