#include "coding/markov.h"

#include <cmath>

namespace ccomp::coding {

StreamDivision StreamDivision::contiguous(unsigned word_bits, unsigned stream_count) {
  if (stream_count == 0 || word_bits == 0 || word_bits % stream_count != 0)
    throw ConfigError("contiguous division requires stream_count dividing word_bits");
  StreamDivision d;
  d.word_bits = word_bits;
  const unsigned width = word_bits / stream_count;
  for (unsigned s = 0; s < stream_count; ++s) {
    std::vector<std::uint8_t> positions;
    positions.reserve(width);
    // MSB-first: stream 0 carries the top bits of the word.
    const unsigned top = word_bits - s * width - 1;
    for (unsigned b = 0; b < width; ++b)
      positions.push_back(static_cast<std::uint8_t>(top - b));
    d.streams.push_back(std::move(positions));
  }
  d.validate();
  return d;
}

void StreamDivision::validate() const {
  if (word_bits == 0 || word_bits > 32) throw ConfigError("word_bits must be in [1,32]");
  std::vector<bool> seen(word_bits, false);
  std::size_t total = 0;
  for (const auto& stream : streams) {
    if (stream.empty()) throw ConfigError("empty stream in division");
    if (stream.size() > 16) throw ConfigError("stream wider than 16 bits");
    for (auto pos : stream) {
      if (pos >= word_bits) throw ConfigError("stream bit position out of range");
      if (seen[pos]) throw ConfigError("bit position appears in two streams");
      seen[pos] = true;
      ++total;
    }
  }
  if (total != word_bits) throw ConfigError("streams do not cover the word");
}

void StreamDivision::serialize(ByteSink& sink) const {
  sink.u8(static_cast<std::uint8_t>(word_bits));
  sink.varint(streams.size());
  for (const auto& stream : streams) {
    sink.varint(stream.size());
    for (auto pos : stream) sink.u8(pos);
  }
}

StreamDivision StreamDivision::deserialize(ByteSource& src) {
  StreamDivision d;
  d.word_bits = src.u8();
  const std::uint64_t count = src.varint();
  if (count > 32) throw CorruptDataError("too many streams");
  for (std::uint64_t s = 0; s < count; ++s) {
    const std::uint64_t width = src.varint();
    if (width > 32) throw CorruptDataError("stream too wide");
    std::vector<std::uint8_t> positions;
    positions.reserve(static_cast<std::size_t>(width));
    for (std::uint64_t b = 0; b < width; ++b) positions.push_back(src.u8());
    d.streams.push_back(std::move(positions));
  }
  d.validate();
  return d;
}

namespace {

Prob prob_from_counts(std::uint64_t c0, std::uint64_t c1, const MarkovConfig& cfg) {
  // Krichevsky-Trofimov estimator: well-behaved at unseen nodes (1/2) and
  // never exactly 0 or 1.
  const double p0 = (static_cast<double>(c0) + 0.5) / (static_cast<double>(c0 + c1) + 1.0);
  Prob p = clamp_prob(static_cast<std::uint32_t>(p0 * 65536.0 + 0.5));
  if (cfg.quantized) p = quantize_prob_pow2(p, cfg.max_shift);
  return p;
}

}  // namespace

MarkovModel MarkovModel::train(const MarkovConfig& config, std::span<const std::uint32_t> words,
                               std::size_t block_words) {
  config.division.validate();
  if (config.context_bits > 8) throw ConfigError("context_bits must be <= 8");

  MarkovModel m;
  m.cfg_ = config;
  const std::size_t stream_count = config.division.stream_count();
  const std::size_t ctx_count = std::size_t{1} << config.context_bits;
  m.tree_nodes_.resize(stream_count);
  std::vector<std::vector<std::uint64_t>> counts0(stream_count), counts1(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    const std::size_t width = config.division.streams[s].size();
    m.tree_nodes_[s] = (std::size_t{1} << width) - 1;
    counts0[s].assign(ctx_count * m.tree_nodes_[s], 0);
    counts1[s].assign(ctx_count * m.tree_nodes_[s], 0);
  }

  // Walk the program exactly as the compressor will.
  const std::uint32_t ctx_mask = static_cast<std::uint32_t>(ctx_count - 1);
  std::size_t ctx = 0;
  std::uint32_t recent = 0;
  std::size_t words_in_block = 0;
  for (const std::uint32_t word : words) {
    if (block_words != 0 && words_in_block == block_words) {
      ctx = 0;
      recent = 0;
      words_in_block = 0;
    }
    for (std::size_t s = 0; s < stream_count; ++s) {
      std::size_t node = 0;
      for (const std::uint8_t pos : config.division.streams[s]) {
        const unsigned bit = (word >> pos) & 1u;
        const std::size_t slot = ctx * m.tree_nodes_[s] + node;
        if (bit) {
          ++counts1[s][slot];
        } else {
          ++counts0[s][slot];
        }
        node = 2 * node + 1 + bit;
        recent = (recent << 1) | bit;
      }
      ctx = config.context_bits == 0 ? 0 : (recent & ctx_mask);
    }
    if (!config.connect_across_words) {
      ctx = 0;
      recent = 0;
    }
    ++words_in_block;
  }

  m.trees_.resize(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    m.trees_[s].resize(ctx_count * m.tree_nodes_[s]);
    for (std::size_t i = 0; i < m.trees_[s].size(); ++i)
      m.trees_[s][i] = prob_from_counts(counts0[s][i], counts1[s][i], config);
  }
  return m;
}

std::size_t MarkovModel::table_bytes() const {
  const std::size_t bytes_per_prob = cfg_.quantized ? 1 : 2;
  std::size_t probs = 0;
  for (std::size_t s = 0; s < trees_.size(); ++s) probs += trees_[s].size();
  ByteSink division;
  cfg_.division.serialize(division);
  return probs * bytes_per_prob + division.size() + 2;  // +2: context/flags header
}

double MarkovModel::estimate_bits(std::span<const std::uint32_t> words,
                                  std::size_t block_words) const {
  MarkovCursor cursor(*this);
  double bits = 0.0;
  std::size_t words_in_block = 0;
  for (const std::uint32_t word : words) {
    if (block_words != 0 && words_in_block == block_words) {
      cursor.reset();
      words_in_block = 0;
    }
    for (std::size_t s = 0; s < cfg_.division.stream_count(); ++s) {
      for (std::size_t b = 0; b < cfg_.division.streams[s].size(); ++b) {
        const unsigned bit = (word >> cursor.next_bit_position()) & 1u;
        const double p0 = static_cast<double>(cursor.prob()) / 65536.0;
        bits -= std::log2(bit ? (1.0 - p0) : p0);
        cursor.advance(bit);
      }
    }
    ++words_in_block;
  }
  return bits;
}

void MarkovModel::serialize(ByteSink& sink) const {
  cfg_.division.serialize(sink);
  sink.u8(static_cast<std::uint8_t>(cfg_.context_bits));
  std::uint8_t flags = 0;
  if (cfg_.quantized) flags |= 1;
  if (cfg_.connect_across_words) flags |= 2;
  sink.u8(flags);
  sink.u8(static_cast<std::uint8_t>(cfg_.max_shift));
  for (const auto& tree : trees_) {
    sink.varint(tree.size());
    if (cfg_.quantized) {
      // Hardware representation: one byte per probability — LPS flag in
      // bit 7, shift s in the low bits (LPS probability = 2^-s).
      for (const Prob p : tree) {
        const bool zero_is_lps = p <= kProbHalf;
        const std::uint32_t lps = zero_is_lps ? p : 0x10000u - p;
        unsigned shift = 1;
        while (shift < 16 && (0x10000u >> shift) != lps) ++shift;
        if (shift >= 16) throw ConfigError("quantized model holds a non-power-of-1/2");
        sink.u8(static_cast<std::uint8_t>((zero_is_lps ? 0x80 : 0) | shift));
      }
    } else {
      for (const Prob p : tree) sink.u16(p);
    }
  }
}

MarkovModel MarkovModel::deserialize(ByteSource& src) {
  MarkovModel m;
  m.cfg_.division = StreamDivision::deserialize(src);
  m.cfg_.context_bits = src.u8();
  const std::uint8_t flags = src.u8();
  m.cfg_.quantized = (flags & 1) != 0;
  m.cfg_.connect_across_words = (flags & 2) != 0;
  m.cfg_.max_shift = src.u8();
  if (m.cfg_.context_bits > 8) throw CorruptDataError("context_bits out of range");
  const std::size_t stream_count = m.cfg_.division.stream_count();
  const std::size_t ctx_count = std::size_t{1} << m.cfg_.context_bits;
  m.tree_nodes_.resize(stream_count);
  m.trees_.resize(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    m.tree_nodes_[s] = (std::size_t{1} << m.cfg_.division.streams[s].size()) - 1;
    const std::uint64_t n = src.varint();
    if (n != ctx_count * m.tree_nodes_[s]) throw CorruptDataError("Markov tree size mismatch");
    m.trees_[s].resize(static_cast<std::size_t>(n));
    for (auto& p : m.trees_[s]) {
      if (m.cfg_.quantized) {
        const std::uint8_t packed = src.u8();
        const unsigned shift = packed & 0x0F;
        if (shift == 0) throw CorruptDataError("bad quantized probability shift");
        const std::uint32_t lps = 0x10000u >> shift;
        p = (packed & 0x80) ? static_cast<Prob>(lps)
                            : static_cast<Prob>(0x10000u - lps);
      } else {
        p = src.u16();
      }
      if (p == 0) throw CorruptDataError("zero probability in Markov table");
    }
  }
  return m;
}

MarkovCursor::MarkovCursor(const MarkovModel& model) : model_(&model) { reset(); }

void MarkovCursor::reset() {
  stream_ = 0;
  bit_index_ = 0;
  node_ = 0;
  ctx_ = 0;
  recent_bits_ = 0;
}

void MarkovCursor::advance(unsigned bit) {
  const auto& cfg = model_->cfg_;
  recent_bits_ = (recent_bits_ << 1) | (bit & 1u);
  node_ = 2 * node_ + 1 + (bit & 1u);
  ++bit_index_;
  if (bit_index_ == cfg.division.streams[stream_].size()) {
    // Stream finished: pick the next tree copy from the trailing bits.
    ctx_ = cfg.context_bits == 0
               ? 0
               : (recent_bits_ & ((std::uint32_t{1} << cfg.context_bits) - 1));
    bit_index_ = 0;
    node_ = 0;
    ++stream_;
    if (stream_ == cfg.division.stream_count()) {
      stream_ = 0;
      if (!cfg.connect_across_words) {
        ctx_ = 0;
        recent_bits_ = 0;
      }
    }
  }
}

}  // namespace ccomp::coding
