#include "core/codec.h"

#include <algorithm>

#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::core {

void BlockDecompressor::block_into(std::size_t index, std::span<std::uint8_t> out) const {
  const std::vector<std::uint8_t> bytes = block(index);
  if (bytes.size() != out.size())
    throw CorruptDataError("block_into destination does not match the block's original size");
  std::copy(bytes.begin(), bytes.end(), out.begin());
}

std::vector<std::uint8_t> BlockCodec::decompress_all(const CompressedImage& image) const {
  const auto decompressor = make_decompressor(image);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(image.original_size()));
  const std::span<std::uint8_t> span(out);
  par::parallel_for(image.block_count(), [&](std::size_t b) {
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    decompressor->block_into(b, span.subspan(begin, image.block_original_size(b)));
  });
  return out;
}

CompressedImage BlockCodec::compress_verified(std::span<const std::uint8_t> code) const {
  CompressedImage image = compress(code);
  // Forward order.
  const std::vector<std::uint8_t> round = decompress_all(image);
  if (round.size() != code.size() || !std::equal(round.begin(), round.end(), code.begin()))
    throw CorruptDataError("codec round trip failed (sequential order)");
  // Random access: every block independently, out of order. Under the
  // parallel schedule blocks are checked in whatever order workers reach
  // them; the serial fallback keeps the historical back-to-front sweep.
  const auto decompressor = make_decompressor(image);
  const std::size_t blocks = image.block_count();
  par::parallel_for(blocks, [&](std::size_t i) {
    const std::size_t b = blocks - 1 - i;
    const std::vector<std::uint8_t> block = decompressor->block(b);
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    if (block.size() != image.block_original_size(b) ||
        !std::equal(block.begin(), block.end(), code.begin() + static_cast<std::ptrdiff_t>(begin)))
      throw CorruptDataError("codec round trip failed (random access)");
  });
  return image;
}

}  // namespace ccomp::core
