#include <algorithm>
#include <unordered_map>

#include "coding/huffman.h"
#include "isa/mips/mips.h"
#include "obs/obs.h"
#include "sadc/sadc.h"
#include "support/bitio.h"
#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::sadc {
namespace {

using coding::HuffmanCode;

struct Instr {
  bool raw = false;
  std::uint16_t token = 0;
  std::uint8_t regs[4] = {};
  std::uint16_t imm16 = 0;
  std::uint32_t imm26 = 0;
  std::uint32_t raw_word = 0;
};

struct Item {
  std::uint16_t symbol;
  std::uint32_t first_instr;  // global instruction index
  std::uint32_t length;       // instructions covered
};

Instr decode_instr(std::uint32_t word) {
  Instr instr;
  if (const auto d = mips::decode(word)) {
    instr.token = d->opcode;
    for (int i = 0; i < 4; ++i) instr.regs[i] = d->regs[i];
    instr.imm16 = d->imm16;
    instr.imm26 = d->imm26;
  } else {
    instr.raw = true;
    instr.raw_word = word;
  }
  return instr;
}

// ---------------------------------------------------------------------------
// Dictionary builder
// ---------------------------------------------------------------------------

struct Candidate {
  enum class Kind { kNone, kPair, kTriple, kRegSpec, kImmSpec } kind = Kind::kNone;
  double gain = 0.0;
  std::uint16_t syms[3] = {};   // pair/triple components
  std::uint16_t token = 0;      // spec target token
  std::uint8_t regs[4] = {};    // regspec values
  std::uint8_t reg_count = 0;
  std::uint16_t imm16 = 0;      // immspec value
};

class Builder {
 public:
  Builder(const SadcOptions& options, std::vector<Instr> instrs, std::size_t block_instrs)
      : options_(options), instrs_(std::move(instrs)) {
    // Initial alphabet: one base symbol per distinct opcode token, in first-
    // appearance order; plus one raw symbol if needed.
    token_to_symbol_.assign(mips::opcode_count(), kNoSymbol);
    for (const Instr& in : instrs_) {
      if (in.raw) {
        if (raw_symbol_ == kNoSymbol) {
          Symbol s;
          s.kind = Symbol::Kind::kRaw;
          raw_symbol_ = table_.add(std::move(s));
        }
      } else if (token_to_symbol_[in.token] == kNoSymbol) {
        Symbol s;
        s.kind = Symbol::Kind::kBase;
        s.token = in.token;
        token_to_symbol_[in.token] = table_.add(std::move(s));
      }
    }
    // Initial parse: one item per instruction, blocked.
    const std::size_t blocks = (instrs_.size() + block_instrs - 1) / block_instrs;
    blocks_.resize(blocks);
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
      const Instr& in = instrs_[i];
      const std::uint16_t sym = in.raw ? raw_symbol_ : token_to_symbol_[in.token];
      blocks_[i / block_instrs].push_back(
          {sym, static_cast<std::uint32_t>(i), 1});
    }
  }

  void run() {
    for (unsigned cycle = 0; cycle < options_.max_cycles; ++cycle) {
      if (table_.size() >= options_.max_symbols) break;
      const Candidate best = find_best_candidate();
      if (best.kind == Candidate::Kind::kNone || best.gain <= 0.0) break;
      apply(best);
    }
  }

  SymbolTable take_table() { return std::move(table_); }
  const std::vector<std::vector<Item>>& blocks() const { return blocks_; }
  const std::vector<Instr>& instrs() const { return instrs_; }

 private:
  static constexpr std::uint16_t kNoSymbol = 0xFFFF;

  bool is_plain_base(std::uint16_t sym) const {
    return table_.at(sym).kind == Symbol::Kind::kBase;
  }

  Candidate find_best_candidate() const {
    // Non-overlapping counts: remember where the previous accepted
    // occurrence of each key ended (global item position).
    std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> pairs, triples;
    std::unordered_map<std::uint64_t, std::uint32_t> regspecs, immspecs;

    std::uint32_t pos = 0;
    for (const auto& block : blocks_) {
      for (std::size_t i = 0; i < block.size(); ++i, ++pos) {
        if (i + 1 < block.size()) {
          const std::uint64_t key = (std::uint64_t{block[i].symbol} << 16) | block[i + 1].symbol;
          auto& [count, next_free] = pairs[key];
          if (pos >= next_free) {
            ++count;
            next_free = pos + 2;
          }
        }
        if (options_.max_group >= 3 && i + 2 < block.size()) {
          const std::uint64_t key = (std::uint64_t{block[i].symbol} << 32) |
                                    (std::uint64_t{block[i + 1].symbol} << 16) |
                                    block[i + 2].symbol;
          auto& [count, next_free] = triples[key];
          if (pos >= next_free) {
            ++count;
            next_free = pos + 3;
          }
        }
        if (options_.specialize_operands && block[i].length == 1 &&
            is_plain_base(block[i].symbol)) {
          const Instr& in = instrs_[block[i].first_instr];
          const auto lengths = mips::operand_lengths(in.token);
          if (lengths.regs > 0) {
            std::uint64_t key = in.token;
            for (unsigned k = 0; k < lengths.regs; ++k)
              key = (key << 5) | in.regs[k];
            key |= std::uint64_t{lengths.regs} << 40;
            ++regspecs[key];
          }
          if (lengths.imm16) ++immspecs[(std::uint64_t{in.imm16} << 16) | in.token];
        }
      }
    }

    Candidate best;
    // Gains in bits. Sequence: each occurrence saves (n-1) opcode-stream
    // symbols (~8 bits each, the paper's accounting); the dictionary entry
    // costs ~8 bits per component plus a header.
    auto consider_seq = [&](std::uint64_t key, std::uint32_t f, unsigned n) {
      if (f < 2) return;
      const double gain = 8.0 * (static_cast<double>(f) * (n - 1)) -
                          (8.0 * n + 16.0);
      if (gain > best.gain) {
        best.kind = n == 2 ? Candidate::Kind::kPair : Candidate::Kind::kTriple;
        best.gain = gain;
        for (unsigned k = 0; k < n; ++k)
          best.syms[n - 1 - k] = static_cast<std::uint16_t>((key >> (16 * k)) & 0xFFFF);
      }
    };
    for (const auto& [key, cf] : pairs) consider_seq(key, cf.first, 2);
    for (const auto& [key, cf] : triples) consider_seq(key, cf.first, 3);

    for (const auto& [key, f] : regspecs) {
      if (f < 2) continue;
      const unsigned n_regs = static_cast<unsigned>(key >> 40);
      // Each occurrence saves n_regs 5-bit register-stream entries; the
      // entry costs token + values + header.
      const double gain =
          5.0 * n_regs * static_cast<double>(f) - (24.0 + 5.0 * n_regs + 8.0);
      if (gain > best.gain) {
        best.kind = Candidate::Kind::kRegSpec;
        best.gain = gain;
        best.reg_count = static_cast<std::uint8_t>(n_regs);
        std::uint64_t k = key & ((std::uint64_t{1} << 40) - 1);
        for (unsigned i = n_regs; i-- > 0;) {
          best.regs[i] = static_cast<std::uint8_t>(k & 0x1F);
          k >>= 5;
        }
        best.token = static_cast<std::uint16_t>(k);
      }
    }
    for (const auto& [key, f] : immspecs) {
      if (f < 2) continue;
      const double gain = 16.0 * static_cast<double>(f) - 48.0;
      if (gain > best.gain) {
        best.kind = Candidate::Kind::kImmSpec;
        best.gain = gain;
        best.token = static_cast<std::uint16_t>(key & 0xFFFF);
        best.imm16 = static_cast<std::uint16_t>(key >> 16);
      }
    }
    return best;
  }

  void apply(const Candidate& c) {
    switch (c.kind) {
      case Candidate::Kind::kPair:
      case Candidate::Kind::kTriple: {
        const unsigned n = c.kind == Candidate::Kind::kPair ? 2 : 3;
        Symbol s;
        s.kind = Symbol::Kind::kSeq;
        s.components.assign(c.syms, c.syms + n);
        const std::uint16_t id = table_.add(std::move(s));
        for (auto& block : blocks_) {
          std::vector<Item> merged;
          merged.reserve(block.size());
          std::size_t i = 0;
          while (i < block.size()) {
            bool match = i + n <= block.size();
            for (unsigned k = 0; match && k < n; ++k)
              match = block[i + k].symbol == c.syms[k];
            if (match) {
              std::uint32_t len = 0;
              for (unsigned k = 0; k < n; ++k) len += block[i + k].length;
              merged.push_back({id, block[i].first_instr, len});
              i += n;
            } else {
              merged.push_back(block[i]);
              ++i;
            }
          }
          block = std::move(merged);
        }
        break;
      }
      case Candidate::Kind::kRegSpec: {
        Symbol s;
        s.kind = Symbol::Kind::kRegSpec;
        s.token = c.token;
        s.reg_count = c.reg_count;
        for (int i = 0; i < 4; ++i) s.regs[i] = c.regs[i];
        const std::uint16_t id = table_.add(std::move(s));
        for (auto& block : blocks_) {
          for (Item& item : block) {
            if (item.length != 1 || !is_plain_base(item.symbol)) continue;
            const Instr& in = instrs_[item.first_instr];
            if (in.raw || in.token != c.token) continue;
            bool match = true;
            for (unsigned k = 0; match && k < c.reg_count; ++k)
              match = in.regs[k] == c.regs[k];
            if (match) item.symbol = id;
          }
        }
        break;
      }
      case Candidate::Kind::kImmSpec: {
        Symbol s;
        s.kind = Symbol::Kind::kImmSpec;
        s.token = c.token;
        s.imm16 = c.imm16;
        const std::uint16_t id = table_.add(std::move(s));
        for (auto& block : blocks_) {
          for (Item& item : block) {
            if (item.length != 1 || !is_plain_base(item.symbol)) continue;
            const Instr& in = instrs_[item.first_instr];
            if (in.raw || in.token != c.token || in.imm16 != c.imm16) continue;
            item.symbol = id;
          }
        }
        break;
      }
      case Candidate::Kind::kNone:
        break;
    }
  }

  const SadcOptions& options_;
  std::vector<Instr> instrs_;
  SymbolTable table_;
  std::vector<std::uint16_t> token_to_symbol_;
  std::uint16_t raw_symbol_ = kNoSymbol;
  std::vector<std::vector<Item>> blocks_;
};

// Walk the unabsorbed operands of instruction `in`, as seen through `leaf`.
template <typename RegFn, typename ImmFn>
void for_each_operand(const Instr& in, const Leaf& leaf, RegFn&& on_reg, ImmFn&& on_imm_byte) {
  if (leaf.raw) {
    for (int b = 0; b < 4; ++b)
      on_imm_byte(static_cast<std::uint8_t>(in.raw_word >> (8 * b)));
    return;
  }
  const auto lengths = mips::operand_lengths(leaf.token);
  if (!leaf.regs_absorbed)
    for (unsigned k = 0; k < lengths.regs; ++k) on_reg(in.regs[k]);
  if (lengths.imm16 && !leaf.imm_absorbed) {
    on_imm_byte(static_cast<std::uint8_t>(in.imm16));
    on_imm_byte(static_cast<std::uint8_t>(in.imm16 >> 8));
  }
  if (lengths.imm26) {
    for (int b = 0; b < 4; ++b)
      on_imm_byte(static_cast<std::uint8_t>(in.imm26 >> (8 * b)));
  }
}

// ---------------------------------------------------------------------------
// Optimal re-parse (shortest-path segmentation against the final dictionary)
// ---------------------------------------------------------------------------

// Does `symbol`'s expansion match the instructions starting at instrs[at]?
bool symbol_matches(const SymbolTable& table, std::uint16_t symbol,
                    const std::vector<Instr>& instrs, std::size_t at, std::size_t limit) {
  const auto& leaves = table.leaves(symbol);
  if (at + leaves.size() > limit) return false;
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    const Leaf& leaf = leaves[j];
    const Instr& in = instrs[at + j];
    if (leaf.raw != in.raw) return false;
    if (leaf.raw) continue;
    if (leaf.token != in.token) return false;
    if (leaf.regs_absorbed) {
      const auto lengths = mips::operand_lengths(leaf.token);
      for (unsigned k = 0; k < lengths.regs; ++k)
        if (leaf.absorbed_regs[k] != in.regs[k]) return false;
    }
    if (leaf.imm_absorbed && leaf.absorbed_imm16 != in.imm16) return false;
  }
  return true;
}

// Bit cost of emitting `symbol` for the instructions at instrs[at..): the
// symbol's own Huffman length plus the Huffman-coded operands its leaves do
// NOT absorb. Minimizing symbol *count* alone would be wrong twice over: it
// forfeits operand absorption (a sequence of plain bases beats a specialised
// symbol on count but loses its absorbed registers) and it ignores the
// Huffman skew greedy parsing produces.
double symbol_cost_bits(const SymbolTable& table, std::uint16_t symbol,
                        const std::vector<Instr>& instrs, std::size_t at,
                        std::span<const double> sym_cost, std::span<const double> reg_cost,
                        std::span<const double> imm_cost) {
  double bits = sym_cost[symbol];
  const auto& leaves = table.leaves(symbol);
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    const Instr& in = instrs[at + j];
    for_each_operand(
        in, leaves[j], [&](std::uint8_t reg) { bits += reg_cost[reg]; },
        [&](std::uint8_t byte) { bits += imm_cost[byte]; });
  }
  return bits;
}

// Re-segment every block with dynamic programming, minimizing estimated
// encoded bits against per-symbol / per-operand costs taken from a first
// (greedy) parse. Candidate symbols are indexed by their first base token
// to keep the inner loop small.
void optimal_reparse(const SymbolTable& table, const std::vector<Instr>& instrs,
                     std::vector<std::vector<Item>>& blocks,
                     std::span<const double> sym_cost, std::span<const double> reg_cost,
                     std::span<const double> imm_cost) {
  constexpr double kInfinity = 1e30;
  // Index: first-token -> candidate symbols; raw-leading symbols separate.
  std::vector<std::vector<std::uint16_t>> by_first_token(mips::opcode_count());
  std::vector<std::uint16_t> raw_leading;
  for (std::size_t s = 0; s < table.size(); ++s) {
    const auto& leaves = table.leaves(static_cast<std::uint16_t>(s));
    if (leaves.front().raw) {
      raw_leading.push_back(static_cast<std::uint16_t>(s));
    } else {
      by_first_token[leaves.front().token].push_back(static_cast<std::uint16_t>(s));
    }
  }

  // Each block's shortest-path segmentation is independent (the candidate
  // index and costs are shared read-only), so blocks re-parse in parallel.
  par::parallel_for(blocks.size(), [&](std::size_t block_index) {
    auto& block = blocks[block_index];
    if (block.empty()) return;
    const std::size_t begin = block.front().first_instr;
    std::size_t end = begin;
    for (const Item& item : block) end += item.length;
    const std::size_t n = end - begin;

    std::vector<double> cost(n + 1, kInfinity);
    std::vector<std::uint16_t> choice(n + 1, 0);
    cost[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cost[i] >= kInfinity) continue;
      const Instr& in = instrs[begin + i];
      const auto& candidates = in.raw ? raw_leading : by_first_token[in.token];
      for (const std::uint16_t sym : candidates) {
        if (!symbol_matches(table, sym, instrs, begin + i, end)) continue;
        const std::size_t next = i + table.expanded_length(sym);
        const double c = cost[i] + symbol_cost_bits(table, sym, instrs, begin + i, sym_cost,
                                                    reg_cost, imm_cost);
        if (c < cost[next]) {
          cost[next] = c;
          choice[next] = sym;
        }
      }
    }
    if (cost[n] >= kInfinity) return;  // keep the greedy parse (shouldn't happen)

    // Reconstruct the segmentation back to front.
    std::vector<Item> parsed;
    std::size_t at = n;
    while (at > 0) {
      const std::uint16_t sym = choice[at];
      const std::uint32_t len = static_cast<std::uint32_t>(table.expanded_length(sym));
      at -= len;
      parsed.push_back({sym, static_cast<std::uint32_t>(begin + at), len});
    }
    block.assign(parsed.rbegin(), parsed.rend());
  });
}

// ---------------------------------------------------------------------------
// Stream encoding
// ---------------------------------------------------------------------------

class SadcMipsDecompressor final : public core::BlockDecompressor {
 public:
  SadcMipsDecompressor(const core::CompressedImage& image, SymbolTable table,
                       HuffmanCode sym_code, HuffmanCode reg_code, HuffmanCode imm_code)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        table_(std::move(table)),
        sym_code_(std::move(sym_code)),
        reg_code_(std::move(reg_code)),
        imm_code_(std::move(imm_code)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    core::DecodeScratch scratch;
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out, scratch);
    return out;
  }

  using BlockDecompressor::block_into;

  // Scratch use: ptrs0 = dictionary leaf pointers (phase 1), bytes0 = the
  // register stream, bytes1 = the immediate stream. Each operand stream is
  // sized by one pass over the leaves and decoded with one decode_run, so a
  // steady-state refill does no per-block allocation and the Huffman
  // multi-symbol table amortizes across the whole stream.
  void block_into(std::size_t index, std::span<std::uint8_t> out,
                  core::DecodeScratch& scratch) const override {
    CCOMP_SPAN("sadc.decode_block");
    CCOMP_TIMER("sadc.decode.block_ns");
    const std::size_t bytes = image_->block_original_size(index);
    if (out.size() != bytes)
      throw CorruptDataError("block_into destination does not match the block's original size");
    const std::size_t instr_count = bytes / 4;
    BitReader in(image_->block_payload(index));

    // Phase 1: opcode stream — symbols until the block's instructions are
    // covered.
    std::vector<const void*>& leaves = scratch.ptrs0;
    leaves.clear();
    leaves.reserve(instr_count);
    // Fuel bound: every valid symbol yields at least one instruction, so a
    // well-formed stream converges within instr_count symbols. Malformed
    // input (e.g. a symbol expanding to nothing) burns fuel instead of
    // looping.
    std::size_t fuel = instr_count;
    while (leaves.size() < instr_count) {
      if (fuel == 0)
        throw FuelExhaustedError("SADC opcode stream does not cover the block");
      --fuel;
      const std::uint16_t sym = static_cast<std::uint16_t>(sym_code_.decode(in));
      if (sym >= table_.size()) throw CorruptDataError("symbol id out of range");
      const auto& expansion = table_.leaves(sym);
      if (expansion.empty()) throw CorruptDataError("SADC symbol expands to no instructions");
      for (const Leaf& leaf : expansion) leaves.push_back(&leaf);
      if (leaves.size() > instr_count)
        throw CorruptDataError("SADC symbol overruns block boundary");
    }
    CCOMP_COUNT("sadc.decode.blocks", 1);
    CCOMP_COUNT("sadc.decode.symbols", instr_count - fuel);
    CCOMP_COUNT("sadc.decode.instructions", leaves.size());

    // Size both operand streams up front (the leaf walk is cheap and
    // memory-local), then decode each with a single multi-symbol run.
    std::size_t reg_total = 0, imm_total = 0;
    for (const void* p : leaves) {
      const Leaf* leaf = static_cast<const Leaf*>(p);
      if (leaf->raw) {
        imm_total += 4;
        continue;
      }
      const auto lengths = mips::operand_lengths(leaf->token);
      if (!leaf->regs_absorbed) reg_total += lengths.regs;
      if (lengths.imm16 && !leaf->imm_absorbed) imm_total += 2;
      if (lengths.imm26) imm_total += 4;
    }

    // Phase 2: register stream.
    std::vector<std::uint8_t>& regs = scratch.bytes0;
    regs.resize(reg_total);
    reg_code_.decode_run(in, regs.data(), reg_total);

    // Phase 3: immediate stream.
    std::vector<std::uint8_t>& imm_bytes = scratch.bytes1;
    imm_bytes.resize(imm_total);
    imm_code_.decode_run(in, imm_bytes.data(), imm_total);

    // Instruction generation (paper Fig. 6): reassemble 32-bit words.
    std::size_t at = 0, ri = 0, ii = 0;
    for (const void* p : leaves) {
      const Leaf* leaf = static_cast<const Leaf*>(p);
      std::uint32_t word;
      if (leaf->raw) {
        word = 0;
        for (int b = 0; b < 4; ++b) word |= static_cast<std::uint32_t>(imm_bytes[ii++]) << (8 * b);
      } else {
        mips::Decoded d;
        d.opcode = leaf->token;
        const auto lengths = mips::operand_lengths(leaf->token);
        const unsigned nregs = lengths.regs < 4 ? lengths.regs : 4;
        if (leaf->regs_absorbed) {
          for (unsigned k = 0; k < nregs; ++k) d.regs[k] = leaf->absorbed_regs[k];
        } else {
          for (unsigned k = 0; k < nregs; ++k) d.regs[k] = regs[ri++];
        }
        if (lengths.imm16) {
          if (leaf->imm_absorbed) {
            d.imm16 = leaf->absorbed_imm16;
          } else {
            const std::uint8_t lo = imm_bytes[ii++];
            const std::uint8_t hi = imm_bytes[ii++];
            d.imm16 = static_cast<std::uint16_t>(lo | (hi << 8));
          }
        }
        if (lengths.imm26) {
          std::uint32_t v = 0;
          for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(imm_bytes[ii++]) << (8 * b);
          d.imm26 = v;
        }
        word = mips::encode(d);
      }
      for (int b = 0; b < 4; ++b) out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }

 private:
  const core::CompressedImage* image_;
  SymbolTable table_;
  HuffmanCode sym_code_;
  HuffmanCode reg_code_;
  HuffmanCode imm_code_;
};

}  // namespace

SadcMipsCodec::SadcMipsCodec(SadcOptions options) : options_(options) {
  if (options_.block_size == 0 || options_.block_size % 4 != 0)
    throw ConfigError("SADC/MIPS block size must be a multiple of 4");
  if (options_.max_symbols > kMaxSymbols)
    throw ConfigError("SADC dictionary limited to 256 symbols");
}

namespace {

// Shared back half of compression: (optionally) re-segment, build the
// Huffman post-coder, encode every block, and assemble the image.
core::CompressedImage encode_streams(const SadcOptions& options, const SymbolTable& table,
                                     std::vector<std::vector<Item>> blocks,
                                     const std::vector<Instr>& final_instrs,
                                     std::size_t code_size, bool force_reparse) {
  // Gather stream statistics for the Huffman post-coder.
  auto gather = [&](std::vector<std::uint64_t>& sym_freq, std::vector<std::uint64_t>& reg_freq,
                    std::vector<std::uint64_t>& imm_freq) {
    sym_freq.assign(table.size(), 0);
    reg_freq.assign(32, 0);
    imm_freq.assign(256, 0);
    for (const auto& block : blocks) {
      for (const Item& item : block) {
        ++sym_freq[item.symbol];
        const auto& leaves = table.leaves(item.symbol);
        for (std::size_t j = 0; j < leaves.size(); ++j) {
          for_each_operand(
              final_instrs[item.first_instr + j], leaves[j],
              [&](std::uint8_t reg) { ++reg_freq[reg]; },
              [&](std::uint8_t byte) { ++imm_freq[byte]; });
        }
      }
    }
  };
  std::vector<std::uint64_t> sym_freq, reg_freq, imm_freq;
  gather(sym_freq, reg_freq, imm_freq);

  if (force_reparse) {
    // The incoming parse is trivial (one base symbol per instruction), so
    // first-pass Huffman costs would price every dictionary phrase at the
    // unseen-symbol penalty and the DP would never pick them. Run one
    // neutral-cost round (8 bits per symbol, raw operand widths) so the
    // donor's phrases compete, then let the cost-based round refine.
    optimal_reparse(table, final_instrs, blocks, std::vector<double>(table.size(), 8.0),
                    std::vector<double>(32, 5.0), std::vector<double>(256, 8.0));
    gather(sym_freq, reg_freq, imm_freq);
  }

  if (options.parse_mode == ParseMode::kOptimal || force_reparse) {
    // Derive bit costs from the greedy parse's codes, re-segment, and
    // rebuild the statistics from the improved parse.
    const HuffmanCode pass1_sym = HuffmanCode::from_frequencies(sym_freq);
    const HuffmanCode pass1_reg = HuffmanCode::from_frequencies(reg_freq);
    const HuffmanCode pass1_imm = HuffmanCode::from_frequencies(imm_freq);
    auto costs_of = [](const HuffmanCode& code, std::size_t n) {
      std::vector<double> costs(n);
      for (std::size_t s = 0; s < n; ++s) {
        const unsigned len = code.length_of(s);
        costs[s] = len == 0 ? 18.0 : static_cast<double>(len);  // unseen: pessimistic
      }
      return costs;
    };
    optimal_reparse(table, final_instrs, blocks, costs_of(pass1_sym, table.size()),
                    costs_of(pass1_reg, 32), costs_of(pass1_imm, 256));
    gather(sym_freq, reg_freq, imm_freq);
  }

  const HuffmanCode sym_code = HuffmanCode::from_frequencies(sym_freq);
  const HuffmanCode reg_code = HuffmanCode::from_frequencies(reg_freq);
  const HuffmanCode imm_code = HuffmanCode::from_frequencies(imm_freq);

  // Encode each block independently — in parallel (blocks share only the
  // frozen dictionary and Huffman codes), concatenated in index order so
  // the payload matches a serial encode byte for byte.
  const std::vector<std::vector<std::uint8_t>> encoded =
      par::parallel_map(blocks.size(), [&](std::size_t bi) {
        CCOMP_SPAN("sadc.encode_block");
        CCOMP_TIMER("sadc.encode.block_ns");
        const auto& block = blocks[bi];
        CCOMP_COUNT("sadc.encode.blocks", 1);
        CCOMP_COUNT("sadc.encode.symbols", block.size());
        BitWriter bits;
        for (const Item& item : block) sym_code.encode(bits, item.symbol);
        for (const Item& item : block) {
          const auto& leaves = table.leaves(item.symbol);
          for (std::size_t j = 0; j < leaves.size(); ++j)
            for_each_operand(
                final_instrs[item.first_instr + j], leaves[j],
                [&](std::uint8_t reg) { reg_code.encode(bits, reg); }, [](std::uint8_t) {});
        }
        for (const Item& item : block) {
          const auto& leaves = table.leaves(item.symbol);
          for (std::size_t j = 0; j < leaves.size(); ++j)
            for_each_operand(
                final_instrs[item.first_instr + j], leaves[j], [](std::uint8_t) {},
                [&](std::uint8_t byte) { imm_code.encode(bits, byte); });
        }
        return bits.take();
      });
  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(encoded.size() + 1);
  for (const std::vector<std::uint8_t>& block_bytes : encoded) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    payload.insert(payload.end(), block_bytes.begin(), block_bytes.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));

  ByteSink tables;
  table.serialize(tables);
  sym_code.serialize(tables);
  reg_code.serialize(tables);
  imm_code.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSadc, core::IsaKind::kMips,
                               options.block_size, code_size, tables.take(),
                               std::move(offsets), std::move(payload));
}

}  // namespace

SymbolTable SadcMipsCodec::build_dictionary(std::span<const std::uint8_t> code) const {
  const std::vector<std::uint32_t> words = mips::bytes_to_words(code);
  std::vector<Instr> instrs;
  instrs.reserve(words.size());
  for (const std::uint32_t w : words) instrs.push_back(decode_instr(w));
  Builder builder(options_, std::move(instrs), options_.block_size / 4);
  builder.run();
  return builder.take_table();
}

core::CompressedImage SadcMipsCodec::compress(std::span<const std::uint8_t> code) const {
  CCOMP_SPAN("sadc.compress");
  const std::vector<std::uint32_t> words = mips::bytes_to_words(code);
  std::vector<Instr> instrs;
  instrs.reserve(words.size());
  for (const std::uint32_t w : words) instrs.push_back(decode_instr(w));

  const std::size_t block_instrs = options_.block_size / 4;
  Builder builder(options_, std::move(instrs), block_instrs);
  builder.run();
  std::vector<std::vector<Item>> blocks = builder.blocks();
  SymbolTable table = builder.take_table();
  return encode_streams(options_, table, std::move(blocks), builder.instrs(), code.size(),
                        /*force_reparse=*/false);
}

core::CompressedImage SadcMipsCodec::compress_with_dictionary(
    std::span<const std::uint8_t> code, const SymbolTable& dictionary) const {
  const std::vector<std::uint32_t> words = mips::bytes_to_words(code);
  std::vector<Instr> instrs;
  instrs.reserve(words.size());
  for (const std::uint32_t w : words) instrs.push_back(decode_instr(w));

  // Extend the donor dictionary with any base tokens (or the raw escape)
  // the subject program needs but the donor never saw. The extended table
  // travels in the image, so decoding is self-contained.
  SymbolTable table = dictionary;
  std::vector<std::uint16_t> token_symbol(mips::opcode_count(), 0xFFFF);
  std::uint16_t raw_symbol = 0xFFFF;
  for (std::size_t s = 0; s < table.size(); ++s) {
    const Symbol& sym = table.at(s);
    if (sym.kind == Symbol::Kind::kBase && token_symbol[sym.token] == 0xFFFF)
      token_symbol[sym.token] = static_cast<std::uint16_t>(s);
    if (sym.kind == Symbol::Kind::kRaw && raw_symbol == 0xFFFF)
      raw_symbol = static_cast<std::uint16_t>(s);
  }
  for (const Instr& in : instrs) {
    if (in.raw) {
      if (raw_symbol == 0xFFFF) {
        Symbol s;
        s.kind = Symbol::Kind::kRaw;
        raw_symbol = table.add(std::move(s));
      }
    } else if (token_symbol[in.token] == 0xFFFF) {
      Symbol s;
      s.kind = Symbol::Kind::kBase;
      s.token = in.token;
      token_symbol[in.token] = table.add(std::move(s));
    }
  }
  if (table.size() > kMaxSymbols)
    throw ConfigError("donor dictionary leaves no room for the subject's base opcodes");

  // Trivial initial parse; the forced re-segmentation inside encode_streams
  // is what actually applies the donor's phrases to this program.
  const std::size_t block_instrs = options_.block_size / 4;
  std::vector<std::vector<Item>> blocks((instrs.size() + block_instrs - 1) / block_instrs);
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const std::uint16_t sym = instrs[i].raw ? raw_symbol : token_symbol[instrs[i].token];
    blocks[i / block_instrs].push_back({sym, static_cast<std::uint32_t>(i), 1});
  }
  return encode_streams(options_, table, std::move(blocks), instrs, code.size(),
                        /*force_reparse=*/true);
}

std::unique_ptr<core::BlockDecompressor> SadcMipsCodec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kSadc || image.isa() != core::IsaKind::kMips)
    throw ConfigError("image was not produced by SADC/MIPS");
  ByteSource src(image.tables());
  SymbolTable table = SymbolTable::deserialize(src);
  HuffmanCode sym_code = HuffmanCode::deserialize(src);
  HuffmanCode reg_code = HuffmanCode::deserialize(src);
  HuffmanCode imm_code = HuffmanCode::deserialize(src);
  return std::make_unique<SadcMipsDecompressor>(image, std::move(table), std::move(sym_code),
                                                std::move(reg_code), std::move(imm_code));
}

}  // namespace ccomp::sadc
