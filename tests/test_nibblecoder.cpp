#include "coding/nibblecoder.h"

#include <gtest/gtest.h>

#include <array>

#include "support/error.h"
#include "support/rng.h"

namespace ccomp::coding {
namespace {

Prob random_quantized(Rng& rng, unsigned max_shift = 8) {
  return quantize_prob_pow2(
      clamp_prob(1 + static_cast<std::uint32_t>(rng.next_below(65535))), max_shift);
}

TEST(NibbleCoder, RoundTripsBitSerial) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 * (1 + rng.next_below(2000));
    std::vector<unsigned> bits;
    std::vector<Prob> probs;
    for (std::size_t i = 0; i < n; ++i) {
      bits.push_back(static_cast<unsigned>(rng.next_below(2)));
      probs.push_back(random_quantized(rng));
    }
    NibbleRangeEncoder enc;
    for (std::size_t i = 0; i < n; ++i) enc.encode_bit(bits[i], probs[i]);
    enc.finish();
    const auto payload = enc.take();
    NibbleRangeDecoder dec(payload);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(dec.decode_bit(probs[i]), bits[i]) << "trial " << trial << " bit " << i;
  }
}

TEST(NibbleCoder, DecodeNibbleMatchesBitSerial) {
  // Decode the same payload once bit-serially and once through the Fig. 5
  // 15-midpoint path: results must be identical.
  Rng rng(102);
  const std::size_t nibbles = 3000;
  // Build a per-nibble probability tree (15 heap-ordered probs each).
  std::vector<std::array<Prob, 15>> trees(nibbles);
  for (auto& tree : trees)
    for (auto& p : tree) p = random_quantized(rng);

  std::vector<unsigned> bits;
  NibbleRangeEncoder enc;
  for (const auto& tree : trees) {
    std::size_t node = 0;
    for (int level = 0; level < 4; ++level) {
      const unsigned bit = static_cast<unsigned>(rng.next_below(2));
      bits.push_back(bit);
      enc.encode_bit(bit, tree[node]);
      node = 2 * node + 1 + bit;
    }
  }
  enc.finish();
  const auto payload = enc.take();

  NibbleRangeDecoder serial(payload);
  NibbleRangeDecoder parallel(payload);
  std::size_t bit_index = 0;
  for (const auto& tree : trees) {
    unsigned serial_nibble = 0;
    std::size_t node = 0;
    for (int level = 0; level < 4; ++level) {
      const unsigned bit = serial.decode_bit(tree[node]);
      serial_nibble = (serial_nibble << 1) | bit;
      node = 2 * node + 1 + bit;
    }
    const unsigned parallel_nibble = parallel.decode_nibble(tree.data());
    ASSERT_EQ(parallel_nibble, serial_nibble);
    for (int level = 3; level >= 0; --level)
      ASSERT_EQ((parallel_nibble >> level) & 1u, bits[bit_index++]);
  }
}

TEST(NibbleCoder, RejectsUnquantizedProbabilities) {
  NibbleRangeEncoder enc;
  EXPECT_THROW(enc.encode_bit(0, 12345), ConfigError);  // not a power of 1/2
}

TEST(NibbleCoder, DecodeNibbleRequiresAlignment) {
  NibbleRangeEncoder enc;
  for (int i = 0; i < 8; ++i) enc.encode_bit(0, kProbHalf);
  enc.finish();
  const auto payload = enc.take();
  NibbleRangeDecoder dec(payload);
  dec.decode_bit(kProbHalf);
  Prob tree[15];
  for (auto& p : tree) p = kProbHalf;
  EXPECT_THROW(dec.decode_nibble(tree), ConfigError);
}

TEST(NibbleCoder, ExtremeQuantizedRuns) {
  // Long runs at the coarsest allowed probability (2^-8) stress the 56-bit
  // window's worst-case shrink.
  const Prob likely0 = quantize_prob_pow2(65535, 8);   // LPS(1) = 2^-8
  const Prob likely1 = quantize_prob_pow2(1, 8);       // LPS(0) = 2^-8
  std::vector<unsigned> bits;
  std::vector<Prob> probs;
  for (int i = 0; i < 4000; ++i) {
    bits.push_back(i % 997 == 0 ? 1u : 0u);  // rare surprises
    probs.push_back(likely0);
  }
  for (int i = 0; i < 4000; ++i) {
    bits.push_back(i % 991 == 0 ? 0u : 1u);
    probs.push_back(likely1);
  }
  NibbleRangeEncoder enc;
  for (std::size_t i = 0; i < bits.size(); ++i) enc.encode_bit(bits[i], probs[i]);
  enc.finish();
  const auto payload = enc.take();
  NibbleRangeDecoder dec(payload);
  for (std::size_t i = 0; i < bits.size(); ++i) ASSERT_EQ(dec.decode_bit(probs[i]), bits[i]);
}

TEST(NibbleCoder, CompressionMatchesSerialCoderClosely) {
  // Same quantized probabilities through both engines: sizes should agree
  // within a few bytes (renorm granularity does not change the entropy).
  Rng rng(103);
  const std::size_t n = 40000;
  std::vector<unsigned> bits;
  std::vector<Prob> probs;
  for (std::size_t i = 0; i < n; ++i) {
    const Prob p = random_quantized(rng, 6);
    probs.push_back(p);
    bits.push_back(rng.next_double() < (1.0 - p / 65536.0) ? 1u : 0u);
  }
  RangeEncoder serial;
  NibbleRangeEncoder nibble;
  for (std::size_t i = 0; i < n; ++i) {
    serial.encode_bit(bits[i], probs[i]);
    nibble.encode_bit(bits[i], probs[i]);
  }
  serial.finish();
  nibble.finish();
  const auto a = serial.take();
  const auto b = nibble.take();
  EXPECT_NEAR(static_cast<double>(a.size()), static_cast<double>(b.size()),
              0.01 * static_cast<double>(a.size()) + 16.0);
}

TEST(NibbleCoder, EmptyBlock) {
  NibbleRangeEncoder enc;
  enc.finish();
  EXPECT_LE(enc.take().size(), 1u);
}

}  // namespace
}  // namespace ccomp::coding
