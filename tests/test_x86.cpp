#include "isa/x86/x86.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::x86 {
namespace {

InstrLayout layout_of(std::initializer_list<std::uint8_t> bytes) {
  const std::vector<std::uint8_t> v(bytes);
  return decode_layout(v);
}

TEST(X86Length, KnownEncodings) {
  // push ebp
  EXPECT_EQ(layout_of({0x55}).total, 1);
  // mov ebp, esp (89 E5)
  EXPECT_EQ(layout_of({0x89, 0xE5}).total, 2);
  // sub esp, 0x18 (83 EC 18)
  EXPECT_EQ(layout_of({0x83, 0xEC, 0x18}).total, 3);
  // mov eax, [ebp-8] (8B 45 F8)
  EXPECT_EQ(layout_of({0x8B, 0x45, 0xF8}).total, 3);
  // mov eax, [ebp+0x100] (8B 85 00 01 00 00)
  EXPECT_EQ(layout_of({0x8B, 0x85, 0x00, 0x01, 0x00, 0x00}).total, 6);
  // mov eax, imm32 (B8 xx xx xx xx)
  EXPECT_EQ(layout_of({0xB8, 1, 2, 3, 4}).total, 5);
  // call rel32 (E8 ...)
  EXPECT_EQ(layout_of({0xE8, 0, 0, 0, 0}).total, 5);
  // ret
  EXPECT_EQ(layout_of({0xC3}).total, 1);
  // jcc rel8
  EXPECT_EQ(layout_of({0x74, 0x10}).total, 2);
  // two-byte jcc rel32 (0F 84 ...)
  EXPECT_EQ(layout_of({0x0F, 0x84, 0, 0, 0, 0}).total, 6);
  // movzx eax, byte [ebp-1] (0F B6 45 FF)
  EXPECT_EQ(layout_of({0x0F, 0xB6, 0x45, 0xFF}).total, 4);
  // imul eax, ecx (0F AF C1)
  EXPECT_EQ(layout_of({0x0F, 0xAF, 0xC1}).total, 3);
}

TEST(X86Length, SibAndDispForms) {
  // mov eax, [esp] needs SIB: 8B 04 24
  const auto l1 = layout_of({0x8B, 0x04, 0x24});
  EXPECT_EQ(l1.total, 3);
  EXPECT_EQ(l1.modrm_len, 2);
  // mov eax, [esp+8]: 8B 44 24 08
  const auto l2 = layout_of({0x8B, 0x44, 0x24, 0x08});
  EXPECT_EQ(l2.total, 4);
  EXPECT_EQ(l2.disp_len, 1);
  // mov eax, [disp32]: 8B 05 xx xx xx xx (mod=00 rm=101)
  const auto l3 = layout_of({0x8B, 0x05, 0, 0, 0, 0});
  EXPECT_EQ(l3.total, 6);
  EXPECT_EQ(l3.disp_len, 4);
  // SIB with base=EBP & mod=00 -> disp32: 8B 04 2D xx xx xx xx
  const auto l4 = layout_of({0x8B, 0x04, 0x2D, 0, 0, 0, 0});
  EXPECT_EQ(l4.total, 7);
}

TEST(X86Length, OperandSizePrefixShrinksImmZ) {
  // mov ax, imm16: 66 B8 xx xx
  const auto l = layout_of({0x66, 0xB8, 0x34, 0x12});
  EXPECT_EQ(l.total, 4);
  EXPECT_EQ(l.prefix_len, 1);
  EXPECT_EQ(l.imm_len, 2);
  // cmp eax, imm32 under no prefix: 3D xx xx xx xx
  EXPECT_EQ(layout_of({0x3D, 0, 0, 0, 0}).total, 5);
}

TEST(X86Length, Group3ImmediateDependsOnModRmReg) {
  // test eax, imm32: F7 /0 -> F7 C0 xx xx xx xx
  EXPECT_EQ(layout_of({0xF7, 0xC0, 0, 0, 0, 0}).total, 6);
  // not eax: F7 /2 -> F7 D0 (no immediate)
  EXPECT_EQ(layout_of({0xF7, 0xD0}).total, 2);
  // test byte [ebp-1], 5: F6 /0 -> F6 45 FF 05
  EXPECT_EQ(layout_of({0xF6, 0x45, 0xFF, 0x05}).total, 4);
}

TEST(X86Length, UnsupportedOpcodesThrow) {
  EXPECT_THROW(layout_of({0x67, 0x8B, 0x45, 0xF8}), DecodeError);  // addr-size prefix
  EXPECT_THROW(layout_of({0x9A, 0, 0, 0, 0, 0, 0}), DecodeError);  // far call
  EXPECT_THROW(layout_of({0x0F, 0x01, 0xC0}), DecodeError);        // unhandled 0F op
}

TEST(X86Length, TruncationThrows) {
  EXPECT_THROW(layout_of({0x8B}), DecodeError);
  EXPECT_THROW(layout_of({0xB8, 1, 2}), DecodeError);
  EXPECT_THROW(layout_of({0x0F}), DecodeError);
}

TEST(X86Assembler, EmitsDecodableCode) {
  Assembler a;
  a.push_r(Assembler::EBP);
  a.mov_r_r(Assembler::EBP, Assembler::ESP);
  a.alu_r_imm(Assembler::SUB, Assembler::ESP, 0x18);
  a.mov_r_rm(Assembler::EAX, Assembler::EBP, -8);
  a.alu_r_r(Assembler::ADD, Assembler::EAX, Assembler::ECX);
  a.mov_rm_r(Assembler::EBP, -12, Assembler::EAX);
  a.alu_r_imm(Assembler::CMP, Assembler::EAX, 1000);  // forces 81 /7 id
  a.jcc8(0x5, -10);
  a.mov_r_rm(Assembler::EDX, Assembler::ESP, 4);  // SIB path
  a.movzx_r_rm8(Assembler::ECX, Assembler::EBP, -1);
  a.setcc(0x4, Assembler::EAX);
  a.cmov(0x5, Assembler::EAX, Assembler::EDX);
  a.imul_r_r(Assembler::EAX, Assembler::EDX);
  a.shift_r_imm(true, Assembler::EAX, 4);
  a.push_imm8(3);
  a.call_rel32(-100);
  a.leave();
  a.ret();
  const auto code = a.code();
  const auto layouts = decode_all(code);
  std::size_t total = 0;
  for (const auto& l : layouts) total += l.total;
  EXPECT_EQ(total, code.size());
  EXPECT_EQ(layouts.size(), 18u);
}

TEST(X86Streams, SplitAndMergeAreInverse) {
  const workload::Profile* prof = workload::find_profile("compress");
  ASSERT_NE(prof, nullptr);
  workload::Profile small = *prof;
  small.code_kb = 16;
  const auto code = workload::generate_x86(small);
  ASSERT_FALSE(code.empty());
  const StreamSplit split = split_streams(code);
  EXPECT_EQ(merge_streams(split), code);
  // Stream sizes partition the code.
  EXPECT_EQ(split.opcode.size() + split.modrm.size() + split.imm.size(), code.size());
  EXPECT_FALSE(split.opcode.empty());
  EXPECT_FALSE(split.modrm.empty());
  EXPECT_FALSE(split.imm.empty());
}

TEST(X86Classify, AgreesWithDecodeLayout) {
  const workload::Profile* prof = workload::find_profile("xlisp");
  ASSERT_NE(prof, nullptr);
  workload::Profile small = *prof;
  small.code_kb = 8;
  const auto code = workload::generate_x86(small);
  std::size_t pos = 0;
  while (pos < code.size()) {
    const InstrLayout l = decode_layout(std::span<const std::uint8_t>(code).subspan(pos));
    const std::size_t op_len = static_cast<std::size_t>(l.prefix_len) + l.opcode_len;
    const OpcodeClass cls =
        classify_opcode(std::span<const std::uint8_t>(code).subspan(pos, op_len));
    EXPECT_EQ(cls.has_modrm, l.modrm_len > 0);
    if (cls.has_modrm) {
      const std::uint8_t modrm = code[pos + op_len];
      EXPECT_EQ(modrm_has_sib(modrm), l.modrm_len == 2);
      const std::uint8_t sib = l.modrm_len == 2 ? code[pos + op_len + 1] : 0;
      EXPECT_EQ(modrm_disp_bytes(modrm, sib), l.disp_len);
      unsigned imm = cls.imm_bytes;
      if (cls.group3 && ((modrm >> 3) & 7) <= 1) imm += cls.group3_imm_bytes;
      EXPECT_EQ(imm, l.imm_len);
    } else {
      EXPECT_EQ(cls.imm_bytes, l.imm_len);
    }
    pos += l.total;
  }
}

TEST(X86Length, RandomByteFuzzNeverCrashes) {
  // Arbitrary byte windows either parse to a bounded-length instruction or
  // throw DecodeError — no other exception, no hang, no overread.
  Rng rng(86);
  std::vector<std::uint8_t> pool(4096);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (int i = 0; i < 20000; ++i) {
    const std::size_t at = rng.next_below(pool.size() - 16);
    const std::size_t len = 1 + rng.next_below(16);
    try {
      const InstrLayout l =
          decode_layout(std::span<const std::uint8_t>(pool).subspan(at, len));
      EXPECT_LE(l.total, len);
      EXPECT_EQ(l.total, static_cast<unsigned>(l.prefix_len) + l.opcode_len + l.modrm_len +
                             l.disp_len + l.imm_len);
    } catch (const DecodeError&) {
      // fine
    }
  }
}

TEST(X86Disasm, RandomValidInstructionsDisassembleWithoutCrashing) {
  Rng rng(87);
  std::vector<std::uint8_t> pool(4096);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (int i = 0; i < 5000; ++i) {
    const std::size_t at = rng.next_below(pool.size() - 16);
    try {
      const std::string text =
          disassemble(std::span<const std::uint8_t>(pool).subspan(at, 16));
      EXPECT_FALSE(text.empty());
    } catch (const DecodeError&) {
      // fine
    }
  }
}

TEST(X86Length, PrefixRunTooLongThrows) {
  std::vector<std::uint8_t> bytes(12, 0x66);
  bytes.push_back(0x90);
  EXPECT_THROW(decode_layout(bytes), DecodeError);
}

}  // namespace
}  // namespace ccomp::x86
