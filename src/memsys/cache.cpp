#include "memsys/cache.h"

#include <iterator>

#include "obs/obs.h"

namespace ccomp::memsys {
namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint32_t log2_pow2(std::size_t v) {
  std::uint32_t bits = 0;
  while ((std::size_t{1} << bits) < v) ++bits;
  return bits;
}

}  // namespace

ICache::ICache(const CacheConfig& config) : config_(config) {
  if (!is_pow2(config_.line_bytes) || config_.line_bytes < 4)
    throw ConfigError("cache line size must be a power of two >= 4");
  if (config_.associativity == 0) throw ConfigError("associativity must be nonzero");
  if (config_.size_bytes % (config_.line_bytes * config_.associativity) != 0)
    throw ConfigError("cache size must be divisible by line_bytes * associativity");
  sets_ = config_.size_bytes / (config_.line_bytes * config_.associativity);
  if (!is_pow2(sets_)) throw ConfigError("number of sets must be a power of two");
  ways_.assign(static_cast<std::size_t>(sets_) * config_.associativity, Way{});
}

bool ICache::access(std::uint32_t address) {
  stats_.accesses.fetch_add(1, std::memory_order_relaxed);
  ++clock_;
  const std::uint64_t line = address / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line) & (sets_ - 1);
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.associativity];
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      CCOMP_COUNT("memsys.cache.hits", 1);
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("memsys.cache.misses", 1);
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

void ICache::flush() {
  for (Way& way : ways_) way.valid = false;
}

// ---------------------------------------------------------------------------
// ShardedBlockCache
// ---------------------------------------------------------------------------

namespace {

/// Probe window for the open-addressed hit index: a lookup or publish
/// touches at most this many consecutive slots. Small and fixed so the
/// lock-free probe is bounded-time; collisions past the window just fall
/// back to the mutexed path.
constexpr std::size_t kProbeWindow = 8;

}  // namespace

ShardedBlockCache::ShardedBlockCache(const ShardedCacheConfig& config) : config_(config) {
  if (config_.capacity_bytes == 0) throw ConfigError("block cache capacity must be nonzero");
  const std::size_t n = round_up_pow2(config_.shards == 0 ? 1 : config_.shards);
  shard_shift_ = log2_pow2(n);
  if (config_.hit_slots > 0) {
    std::size_t per_shard = config_.hit_slots / n;
    if (per_shard < 16) per_shard = 16;
    slot_count_ = round_up_pow2(per_shard);
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    if (slot_count_ > 0) shard->table = std::make_unique<Slot[]>(slot_count_);
#if !defined(CCOMP_OBS_DISABLE)
    // Labelled per-shard series alongside the aggregate counters: the
    // Prometheus exporter renders the `|shard=N` suffix as a label, and the
    // per-shard values always sum to the unlabelled aggregate.
    const std::string suffix = "|shard=" + std::to_string(i);
    shard->obs_hits_id = obs::Registry::instance().counter("server.cache.hits" + suffix);
    shard->obs_misses_id = obs::Registry::instance().counter("server.cache.misses" + suffix);
#endif
    shards_.push_back(std::move(shard));
  }
  shard_capacity_ = config_.capacity_bytes / n;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
}

ShardedBlockCache::~ShardedBlockCache() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Entry& entry : shard.lru) unpublish_slot_locked(shard, entry);
  }
  // Readers must be gone before the cache is destroyed (standard
  // destruction contract); drain the deferred frees now so records
  // retired above (and any predating them) do not outlive the process'
  // leak accounting.
  ebr::synchronize();
}

ShardedBlockCache::Shard& ShardedBlockCache::shard_for(const BlockKey& key) {
  return *shards_[BlockKeyHash{}(key) & (shards_.size() - 1)];
}

ShardedBlockCache::Bytes ShardedBlockCache::try_get(const BlockKey& key) {
  if (slot_count_ == 0) return nullptr;
  // The guard pins the reclamation epoch: any HitRecord a slot points at
  // while we are pinned is freed only after we unpin, so dereferencing
  // `rec` below is safe even against a concurrent eviction that retires it.
  ebr::Guard guard;
  if (!guard.active()) return nullptr;  // reader slots exhausted: locked path
  const std::size_t h = BlockKeyHash{}(key);
  Shard& shard = *shards_[h & (shards_.size() - 1)];
  const std::size_t base = h >> shard_shift_;
  Slot* table = shard.table.get();
  const std::size_t mask = slot_count_ - 1;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = table[(base + i) & mask];
    // One retry per slot on a torn read; a second tear means a writer is
    // actively churning this slot and the mutexed path is cheaper than
    // spinning.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) {  // writer mid-publish
        CCOMP_COUNT("server.cache.fast_retries", 1);
        continue;
      }
      const std::uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
      const std::uint32_t block = slot.block.load(std::memory_order_relaxed);
      HitRecord* rec = slot.record.load(std::memory_order_relaxed);
      // Acquire fence before the version re-check: pairs with the writer's
      // release fence after its odd store, so if any field load above saw
      // a new value, the re-check is guaranteed to see the odd version.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) {
        CCOMP_COUNT("server.cache.fast_retries", 1);
        continue;
      }
      if (rec == nullptr || epoch != key.epoch || block != key.block) break;  // next slot
      // Second-chance bit for the evictor; load-before-store keeps the
      // record's line in shared state once the bit sticks.
      if (rec->referenced.load(std::memory_order_relaxed) == 0)
        rec->referenced.store(1, std::memory_order_relaxed);
      return rec->bytes;
    }
  }
  return nullptr;
}

ShardedBlockCache::Ticket ShardedBlockCache::acquire(const BlockKey& key) {
  lookups_.add();
  if (Bytes fast = try_get(key)) {
    hits_.add();
    CCOMP_COUNT("server.cache.hits", 1);
#if !defined(CCOMP_OBS_DISABLE)
    obs::Registry::instance().add(shard_for(key).obs_hits_id, 1);
#endif
    return Ticket{std::move(fast), nullptr, false};
  }
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto hit = shard.index.find(key); hit != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
    // Re-publish so the next lookup hits lock-free (the entry may have
    // been displaced from its slot by a colliding key).
    publish_slot_locked(shard, *hit->second);
    hits_.add();
    CCOMP_COUNT("server.cache.hits", 1);
#if !defined(CCOMP_OBS_DISABLE)
    obs::Registry::instance().add(shard.obs_hits_id, 1);
#endif
    return Ticket{hit->second->bytes, nullptr, false};
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.cache.misses", 1);
#if !defined(CCOMP_OBS_DISABLE)
  obs::Registry::instance().add(shard.obs_misses_id, 1);
#endif
  if (auto flying = shard.in_flight.find(key); flying != shard.in_flight.end()) {
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.cache.coalesced", 1);
    return Ticket{nullptr, flying->second, false};
  }
  auto flight = std::make_shared<InFlight>();
  shard.in_flight.emplace(key, flight);
  return Ticket{nullptr, std::move(flight), true};
}

void ShardedBlockCache::publish_slot_locked(Shard& shard, Entry& entry) {
  if (slot_count_ == 0) return;
  if (entry.slot >= 0 && entry.rec != nullptr && entry.rec->bytes.get() == entry.bytes.get())
    return;  // already published with the current bytes
  const std::size_t h = BlockKeyHash{}(entry.key);
  const std::size_t base = h >> shard_shift_;
  Slot* table = shard.table.get();
  const std::size_t mask = slot_count_ - 1;
  // Slot choice under the shard mutex: reuse this entry's slot, else the
  // first empty slot in the window, else steal the window's base slot.
  std::size_t idx;
  if (entry.slot >= 0) {
    idx = static_cast<std::size_t>(entry.slot);
  } else {
    idx = base & mask;  // default: steal
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      const std::size_t probe = (base + i) & mask;
      if (table[probe].record.load(std::memory_order_relaxed) == nullptr) {
        idx = probe;
        break;
      }
    }
  }
  Slot& slot = table[idx];
  HitRecord* old = slot.record.load(std::memory_order_relaxed);
  if (old != nullptr && entry.rec != old) {
    // Stealing an occupied slot: detach the displaced entry so a later
    // touch can re-publish it somewhere else.
    const BlockKey displaced{slot.epoch.load(std::memory_order_relaxed),
                             slot.block.load(std::memory_order_relaxed)};
    if (auto it = shard.index.find(displaced); it != shard.index.end() &&
                                               it->second->slot == static_cast<std::int32_t>(idx)) {
      it->second->slot = -1;
      it->second->rec = nullptr;
    }
  }
  auto* rec = new HitRecord{entry.bytes};
  // Seqlock publication (single writer per slot: we hold shard.mu).
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.epoch.store(entry.key.epoch, std::memory_order_relaxed);
  slot.block.store(entry.key.block, std::memory_order_relaxed);
  slot.record.store(rec, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
  entry.slot = static_cast<std::int32_t>(idx);
  entry.rec = rec;
  // The old record is unlinked (no slot points at it) but a pinned reader
  // may still be copying out of it; EBR defers the delete past them.
  if (old != nullptr) ebr::retire(old);
}

void ShardedBlockCache::unpublish_slot_locked(Shard& shard, Entry& entry) {
  if (entry.slot < 0) return;
  Slot& slot = shard.table[static_cast<std::size_t>(entry.slot)];
  HitRecord* old = slot.record.load(std::memory_order_relaxed);
  if (old == entry.rec && old != nullptr) {
    const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
    slot.version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.record.store(nullptr, std::memory_order_relaxed);
    slot.version.store(v + 2, std::memory_order_release);
    ebr::retire(old);
  }
  entry.slot = -1;
  entry.rec = nullptr;
}

void ShardedBlockCache::insert_locked(Shard& shard, const BlockKey& key, const Bytes& bytes) {
  if (auto existing = shard.index.find(key); existing != shard.index.end()) {
    shard.bytes -= existing->second->bytes->size();
    shard.bytes += bytes->size();
    existing->second->bytes = bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, existing->second);
    publish_slot_locked(shard, *existing->second);
  } else {
    shard.lru.push_front(Entry{key, bytes, -1, nullptr});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes->size();
    stats_.inserts.fetch_add(1, std::memory_order_relaxed);
    publish_slot_locked(shard, shard.lru.front());
  }
  // Evict LRU tails past the shard budget, but never the entry just
  // touched: a single over-budget block must still be servable. Lock-free
  // hits cannot splice the list, so honour their second-chance bit once
  // per pass — a marked tail is rotated to the front instead of dropped.
  // `scanned` bounds the rotation: once every resident entry had its
  // chance, the tail goes regardless, so the loop always terminates even
  // with readers re-marking concurrently.
  std::size_t scanned = 0;
  const std::size_t max_scan = shard.lru.size();
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    if (scanned < max_scan && victim.rec != nullptr &&
        victim.rec->referenced.exchange(0, std::memory_order_relaxed) != 0) {
      ++scanned;
      shard.lru.splice(shard.lru.begin(), shard.lru, std::prev(shard.lru.end()));
      continue;
    }
    unpublish_slot_locked(shard, victim);
    shard.bytes -= victim.bytes->size();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.cache.evictions", 1);
  }
}

void ShardedBlockCache::publish(const BlockKey& key, const Flight& flight, Bytes bytes,
                                bool degraded, bool cacheable) {
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->bytes = bytes;
    flight->degraded = degraded;
    flight->done = true;
  }
  flight->cv.notify_all();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto flying = shard.in_flight.find(key);
      flying != shard.in_flight.end() && flying->second == flight)
    shard.in_flight.erase(flying);
  if (cacheable && bytes) insert_locked(shard, key, bytes);
}

void ShardedBlockCache::fail(const BlockKey& key, const Flight& flight, std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->error = std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto flying = shard.in_flight.find(key);
      flying != shard.in_flight.end() && flying->second == flight)
    shard.in_flight.erase(flying);
}

ShardedBlockCache::Bytes ShardedBlockCache::wait(InFlight& flight) {
  std::unique_lock<std::mutex> lock(flight.mu);
  flight.cv.wait(lock, [&] { return flight.done; });
  if (flight.error) std::rethrow_exception(flight.error);
  return flight.bytes;
}

void ShardedBlockCache::invalidate_epoch(std::uint64_t epoch) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.epoch == epoch) {
        unpublish_slot_locked(shard, *it);
        shard.bytes -= it->bytes->size();
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ShardedBlockCache::flush() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Entry& entry : shard.lru) unpublish_slot_locked(shard, entry);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

BlockCacheStats ShardedBlockCache::stats() const {
  BlockCacheStats s = stats_;
  s.lookups.store(lookups_.load(), std::memory_order_relaxed);
  s.hits.store(hits_.load(), std::memory_order_relaxed);
  return s;
}

void ShardedBlockCache::reset_stats() {
  stats_.reset();
  lookups_.reset();
  hits_.reset();
}

std::size_t ShardedBlockCache::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace ccomp::memsys
