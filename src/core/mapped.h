// MappedImage: the mmap-ready page-aligned container (format v3.1).
//
// The classic serialized container (core/image.h) is a byte stream: sections
// are length-prefixed and packed back to back, so loading it means copying
// every byte through ByteSource into owned vectors. That is the right shape
// for a boot ROM squeezing flash, but a serving host wants the opposite
// trade: keep the compressed image file mapped read-only and decode blocks
// straight out of the page cache, sharing one physical copy across
// processes.
//
// The aligned layout makes that possible:
//
//   [ header | section table | header CRC-32 | pad ]  [ section ] [ pad ] ...
//
//   header         magic 'CCMA' (u32), codec (u8), isa (u8), flags (u8, same
//                  bit meanings as the v1 header), reserved (u8 = 0),
//                  block_size (u32), original_size (u64), alignment (u32),
//                  section_count (u32) — all little-endian.
//   section table  32 bytes per section: id (u32), reserved (u32 = 0),
//                  absolute offset (u64, multiple of `alignment`), size
//                  (u64), CRC-32 of the section bytes (u32), reserved
//                  (u32 = 0). Entries are sorted by offset and ids are
//                  unique.
//   header CRC     CRC-32 over every preceding byte (header + table), so a
//                  loader rejects a damaged table before trusting any
//                  offset.
//
// Every section starts at a multiple of `alignment` (4 KiB by default — one
// page), so a decoder's payload pointer is page-aligned and the kernel can
// fault sections independently. Gaps are zero padding.
//
// Section ids (a file stores only the sections it has; flags gate the
// optional ones exactly like the v1 container):
//
//   1  LAT       (block_count + 1) raw little-endian u32 payload offsets
//   2  SIZES     block_count raw u32 original sizes (variable-block only)
//   3  TABLES    codec tables, byte-identical to the v1 section
//   4  PAYLOAD   concatenated compressed blocks
//   5  ECC       per-block SECDED check bytes
//   6  CERT      serialized DecodeCertificate blob
//   7  LAYOUT    serialized PlacementPlan blob
//
// Integrity is checked lazily: construction validates the header and the
// table CRC only; each section's CRC is verified on first access (and never
// again), so opening a multi-megabyte image costs a few header pages and a
// section you never touch is never read. section()/view_image() throw
// ChecksumError on a mismatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/image.h"

namespace ccomp::core {

/// Section ids of the aligned container.
enum class SectionId : std::uint32_t {
  kLat = 1,
  kSizes = 2,
  kTables = 3,
  kPayload = 4,
  kEcc = 5,
  kCert = 6,
  kLayout = 7,
};

/// Magic of the aligned container ('CCMA'; the classic container is 'CCMP').
inline constexpr std::uint32_t kAlignedMagic = 0x43434D41u;

/// Cheap sniff: does `data` start like an aligned container? (Magic check
/// only — use MappedImage to actually validate.)
bool is_aligned_container(std::span<const std::uint8_t> data);

/// Serialize `image` in the aligned layout. `alignment` must be a power of
/// two in [16, 1 MiB]; 4096 (one page) is the serving default.
void serialize_aligned(const CompressedImage& image, ByteSink& sink,
                       std::uint32_t alignment = 4096);

/// A validated read-only view of an aligned container, backed either by an
/// mmap'd file (open()) or by caller-owned bytes (the span constructor).
///
/// Move-only: moving transfers the mapping. The backing bytes must stay
/// valid and unmodified for the lifetime of the MappedImage AND of every
/// CompressedImage view obtained from view_image() — callers that share
/// views across threads wrap the MappedImage in a shared_ptr and keep it
/// alive alongside the views (ImageServer does exactly this).
class MappedImage {
 public:
  struct Section {
    SectionId id;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
  };

  /// Map `path` read-only (falls back to a heap read when mmap is
  /// unavailable). Validates the header and section table; throws
  /// CorruptDataError / ChecksumError on a bad container and ccomp::Error
  /// when the file cannot be read.
  static MappedImage open(const std::string& path);

  /// View over caller-owned bytes (no copy). The caller keeps `data` alive.
  explicit MappedImage(std::span<const std::uint8_t> data);

  ~MappedImage();
  MappedImage(MappedImage&& other) noexcept;
  MappedImage& operator=(MappedImage&& other) noexcept;
  MappedImage(const MappedImage&) = delete;
  MappedImage& operator=(const MappedImage&) = delete;

  CodecKind codec() const { return codec_; }
  IsaKind isa() const { return isa_; }
  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t original_size() const { return original_size_; }
  std::uint32_t alignment() const { return alignment_; }
  std::span<const Section> sections() const { return sections_; }
  std::span<const std::uint8_t> data() const { return data_; }
  bool backed_by_mmap() const { return map_base_ != nullptr; }

  bool has_section(SectionId id) const;

  /// Bytes of one section, CRC-verified on first access (ChecksumError on
  /// mismatch, ConfigError when the section is absent). Thread-safe: the
  /// verified flag is an atomic, concurrent first accesses may both verify.
  std::span<const std::uint8_t> section(SectionId id) const;

  /// Zero-copy CompressedImage over the mapped sections (LAT and per-block
  /// sizes are parsed into owned vectors; everything else aliases the
  /// mapping). Verifies the CRC of every section it includes.
  CompressedImage view_image() const;

  /// Fully owned copy (view_image().to_owned()).
  CompressedImage materialize() const { return view_image().to_owned(); }

 private:
  MappedImage() = default;
  void parse();  // header + section-table validation over data_

  std::span<const std::uint8_t> data_;
  std::vector<std::uint8_t> owned_;  // heap fallback backing
  void* map_base_ = nullptr;         // mmap backing (munmap'd in dtor)
  std::size_t map_len_ = 0;

  CodecKind codec_ = CodecKind::kSamc;
  IsaKind isa_ = IsaKind::kRawBytes;
  std::uint8_t flags_ = 0;
  std::uint32_t block_size_ = 0;
  std::uint64_t original_size_ = 0;
  std::uint32_t alignment_ = 0;
  std::vector<Section> sections_;
  /// One flag per section: 1 after its CRC verified. unique_ptr so the
  /// object stays movable.
  std::unique_ptr<std::atomic<std::uint8_t>[]> verified_;
};

}  // namespace ccomp::core
