// Aligned-container (v3.1) tests: serialize_aligned layout invariants,
// MappedImage parsing and lazy per-section CRC, zero-copy view images and
// their immutability contract, FunctionalMemorySystem parity over a mapped
// image, file-backed open(), and the verifier's SER005/006/007 findings.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/image.h"
#include "core/mapped.h"
#include "isa/mips/mips.h"
#include "memsys/functional.h"
#include "samc/samc.h"
#include "support/crc32.h"
#include "support/error.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

const samc::SamcCodec& test_codec() {
  static const samc::SamcCodec codec(samc::mips_defaults());
  return codec;
}

core::CompressedImage make_image(std::uint32_t kb = 2, bool with_ecc = true) {
  core::CompressedImage img = test_codec().compress(mips_code(kb));
  if (with_ecc) img.attach_ecc();
  return img;
}

std::vector<std::uint8_t> aligned_bytes(const core::CompressedImage& img,
                                        std::uint32_t alignment = 4096) {
  ByteSink sink;
  core::serialize_aligned(img, sink, alignment);
  return sink.take();
}

std::vector<std::uint8_t> classic_bytes(const core::CompressedImage& img) {
  ByteSink sink;
  img.serialize(sink);
  return sink.take();
}

// Header layout constants mirrored from mapped.cpp, used to patch containers
// into specific invalid states (the header CRC must be recomputed after any
// patch or the scan stops at SER002 before reaching the targeted check).
constexpr std::size_t kHeaderBytes = 28;
constexpr std::size_t kSectionEntryBytes = 32;

void fix_header_crc(std::vector<std::uint8_t>& bytes) {
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 24, 4);
  const std::size_t crc_at = kHeaderBytes + count * kSectionEntryBytes;
  const std::uint32_t crc = crc32(std::span(bytes).subspan(0, crc_at));
  std::memcpy(bytes.data() + crc_at, &crc, 4);
}

TEST(MappedImage, RoundTripPreservesImageExactly) {
  const core::CompressedImage img = make_image();
  const auto bytes = aligned_bytes(img);
  ASSERT_TRUE(core::is_aligned_container(bytes));
  EXPECT_FALSE(core::is_aligned_container(classic_bytes(img)));

  const core::MappedImage mapped{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(mapped.codec(), img.codec());
  EXPECT_EQ(mapped.isa(), img.isa());
  EXPECT_EQ(mapped.block_size(), img.block_size());
  EXPECT_EQ(mapped.original_size(), img.original_size());
  EXPECT_EQ(mapped.alignment(), 4096u);
  EXPECT_FALSE(mapped.backed_by_mmap());
  EXPECT_TRUE(mapped.has_section(core::SectionId::kPayload));
  EXPECT_TRUE(mapped.has_section(core::SectionId::kEcc));
  EXPECT_FALSE(mapped.has_section(core::SectionId::kCert));
  EXPECT_THROW((void)mapped.section(core::SectionId::kCert), ConfigError);

  // The zero-copy view serializes byte-identically to the original image —
  // the strongest equivalence the classic container can express.
  const core::CompressedImage view = mapped.view_image();
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(img.is_view());
  EXPECT_EQ(classic_bytes(view), classic_bytes(img));
  // And the payload view genuinely aliases the mapping (zero copy).
  EXPECT_EQ(view.payload().data(),
            mapped.section(core::SectionId::kPayload).data());

  // Decoded blocks match the owned image's blocks.
  const auto dec_owned = test_codec().make_decompressor(img);
  const auto dec_view = test_codec().make_decompressor(view);
  ASSERT_EQ(view.block_count(), img.block_count());
  for (std::size_t b = 0; b < img.block_count(); ++b)
    EXPECT_EQ(dec_view->block(b), dec_owned->block(b));

  // materialize() is a fully owned deep copy, again byte-identical.
  const core::CompressedImage owned = mapped.materialize();
  EXPECT_FALSE(owned.is_view());
  EXPECT_EQ(classic_bytes(owned), classic_bytes(img));
}

TEST(MappedImage, SectionsHonorTheRequestedAlignment) {
  const core::CompressedImage img = make_image();
  for (const std::uint32_t alignment : {16u, 64u, 4096u}) {
    const auto bytes = aligned_bytes(img, alignment);
    const core::MappedImage mapped{std::span<const std::uint8_t>(bytes)};
    EXPECT_EQ(mapped.alignment(), alignment);
    std::uint64_t prev_end = 0;
    for (const core::MappedImage::Section& s : mapped.sections()) {
      EXPECT_EQ(s.offset % alignment, 0u) << "section " << static_cast<unsigned>(s.id);
      EXPECT_GE(s.offset, prev_end);
      prev_end = s.offset + s.size;
    }
    EXPECT_LE(prev_end, bytes.size());
  }
  // Invalid alignments are a configuration error, not a silent clamp.
  ByteSink sink;
  EXPECT_THROW(core::serialize_aligned(img, sink, 24), ConfigError);
  EXPECT_THROW(core::serialize_aligned(img, sink, 8), ConfigError);
  EXPECT_THROW(core::serialize_aligned(img, sink, 2u << 20), ConfigError);
}

TEST(MappedImage, SectionCrcIsLazyAndPerSection) {
  const core::CompressedImage img = make_image();
  auto bytes = aligned_bytes(img);
  const core::MappedImage clean{std::span<const std::uint8_t>(bytes)};
  std::uint64_t payload_at = 0;
  for (const auto& s : clean.sections())
    if (s.id == core::SectionId::kPayload) payload_at = s.offset;
  ASSERT_GT(payload_at, 0u);

  auto corrupt = bytes;
  corrupt[static_cast<std::size_t>(payload_at)] ^= 0x01;
  // Construction only validates header + table, so a payload flip passes...
  const core::MappedImage damaged{std::span<const std::uint8_t>(corrupt)};
  // ...an untouched section still verifies and serves...
  EXPECT_FALSE(damaged.section(core::SectionId::kTables).empty());
  // ...but first access to the damaged section (directly or through
  // view_image, which includes it) throws the typed checksum error.
  EXPECT_THROW((void)damaged.section(core::SectionId::kPayload), ChecksumError);
  const core::MappedImage damaged2{std::span<const std::uint8_t>(corrupt)};
  EXPECT_THROW((void)damaged2.view_image(), ChecksumError);
}

TEST(MappedImage, HeaderAndTableDamageRejectedAtConstruction) {
  const core::CompressedImage img = make_image();
  const auto bytes = aligned_bytes(img);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(core::MappedImage{std::span<const std::uint8_t>(bad_magic)}, CorruptDataError);

  auto bad_table = bytes;
  bad_table[kHeaderBytes + 8] ^= 0xFF;  // first section's offset field
  EXPECT_THROW(core::MappedImage{std::span<const std::uint8_t>(bad_table)}, ChecksumError);

  const auto truncated = std::span<const std::uint8_t>(bytes).subspan(0, 20);
  EXPECT_THROW(core::MappedImage{truncated}, CorruptDataError);

  auto short_file = bytes;
  short_file.resize(short_file.size() - 1);  // last section extends past EOF
  EXPECT_THROW(core::MappedImage{std::span<const std::uint8_t>(short_file)}, CorruptDataError);
}

TEST(MappedImage, ViewsAreImmutableUntilMaterialized) {
  const core::CompressedImage img = make_image();
  const auto bytes = aligned_bytes(img);
  const core::MappedImage mapped{std::span<const std::uint8_t>(bytes)};
  core::CompressedImage view = mapped.view_image();

  EXPECT_THROW(view.mutable_payload(), ConfigError);
  EXPECT_THROW(view.mutable_tables(), ConfigError);
  EXPECT_THROW(view.mutable_ecc(), ConfigError);
  EXPECT_THROW(view.attach_ecc(), ConfigError);
  EXPECT_THROW(view.attach_certificate({0x01}), ConfigError);
  EXPECT_THROW(view.attach_layout({0x01}), ConfigError);
  EXPECT_THROW(view.drop_ecc(), ConfigError);
  // The LAT is always parsed into owned storage, so the fault-campaign's
  // corrupt-a-copy pattern keeps working even on (copies of) views.
  EXPECT_FALSE(view.mutable_lat_bytes().empty());

  core::CompressedImage owned = view.to_owned();
  EXPECT_FALSE(owned.is_view());
  owned.mutable_payload()[0] ^= 0x01;  // mutation allowed after to_owned()
  owned.mutable_payload()[0] ^= 0x01;
  EXPECT_EQ(classic_bytes(owned), classic_bytes(img));
}

TEST(MappedImage, FunctionalMemorySystemParityOverTheMapping) {
  const auto code = mips_code(2);
  core::CompressedImage img = test_codec().compress(code);
  img.attach_ecc();
  const auto bytes = aligned_bytes(img);

  memsys::CacheConfig cache;
  memsys::FunctionalMemorySystem owned_mem(cache, test_codec(), img);
  memsys::FunctionalMemorySystem mapped_mem(
      cache, test_codec(), core::MappedImage{std::span<const std::uint8_t>(bytes)});

  for (std::uint32_t addr = 0; addr + 4 <= code.size(); addr += 4) {
    const std::uint32_t want = owned_mem.fetch(addr);
    EXPECT_EQ(mapped_mem.fetch(addr), want);
  }
}

TEST(MappedImage, OpenServesTheFileAndRejectsMissingPaths) {
  const core::CompressedImage img = make_image();
  const auto bytes = aligned_bytes(img);
  const std::string path = "test_mapped_tmp.ccma";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  {
    const core::MappedImage mapped = core::MappedImage::open(path);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(mapped.backed_by_mmap());
#endif
    EXPECT_EQ(classic_bytes(mapped.view_image()), classic_bytes(img));
  }
  std::remove(path.c_str());
  EXPECT_THROW((void)core::MappedImage::open(path), Error);
}

// --- Verifier coverage of the aligned container (SER005/006/007) ----------

TEST(MappedImage, VerifierAcceptsACleanAlignedContainer) {
  const auto report = verify::verify_serialized(aligned_bytes(make_image()));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(MappedImage, VerifierFlagsMalformedSectionTable) {
  auto bytes = aligned_bytes(make_image());
  // Section count zero is outside [1, 64]: SER005, with a valid header CRC
  // so the scan provably reached the table check rather than SER002.
  std::uint32_t zero = 0;
  std::memcpy(bytes.data() + 24, &zero, 4);
  fix_header_crc(bytes);
  const auto report = verify::verify_serialized(bytes);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER005")) << report.to_string();
}

TEST(MappedImage, VerifierFlagsMisalignedSectionOffset) {
  auto bytes = aligned_bytes(make_image(), 4096);
  // Nudge the first section's offset off the alignment grid (still inside
  // the file, CRC refreshed so only the alignment invariant is violated).
  std::uint64_t offset = 0;
  std::memcpy(&offset, bytes.data() + kHeaderBytes + 8, 8);
  offset += 8;
  std::memcpy(bytes.data() + kHeaderBytes + 8, &offset, 8);
  fix_header_crc(bytes);
  const auto report = verify::verify_serialized(bytes);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER006")) << report.to_string();
}

TEST(MappedImage, VerifierFlagsSectionCrcMismatch) {
  const core::CompressedImage img = make_image();
  auto bytes = aligned_bytes(img);
  const core::MappedImage clean{std::span<const std::uint8_t>(bytes)};
  for (const auto& s : clean.sections()) {
    if (s.id != core::SectionId::kPayload) continue;
    bytes[static_cast<std::size_t>(s.offset)] ^= 0x40;
  }
  const auto report = verify::verify_serialized(bytes);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER007")) << report.to_string();
}

}  // namespace
}  // namespace ccomp
