// Zero-allocation refill path (the acceptance criterion for the flattened
// decode engine): after warm-up, a steady-state FunctionalMemorySystem
// fetch — including the misses that run the refill engine — must perform
// zero heap allocations. The decoders decode into the victim line's
// retained buffer through DecodeScratch arenas that reach their high-water
// capacity during warm-up, so a warm miss is pure compute.
//
// The counting hook replaces global operator new/delete for this test
// binary only and counts every allocation on any thread. Tests warm the
// system (populating line buffers, scratch arenas, obs metric shards, and
// gtest internals), snapshot the counter, run a steady-state access sweep,
// and demand the counter did not move.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "isa/mips/mips.h"
#include "memsys/functional.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ccomp::memsys {
namespace {

std::vector<std::uint8_t> small_mips_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

// Sweep every word of the program twice through a cache much smaller than
// the program, so the sweep is dominated by misses (refills), then measure
// a third identical sweep. Returns allocations observed in that sweep.
std::uint64_t steady_state_allocations(const core::BlockCodec& codec,
                                       const core::CompressedImage& image,
                                       std::size_t code_bytes) {
  // 1 KB direct-mapped cache over a >=16 KB program: ~97% miss rate on a
  // linear sweep, so the measured window is refill after refill.
  FunctionalMemorySystem sys({1024, 32, 1}, codec, image);
  const std::uint32_t end = static_cast<std::uint32_t>(code_bytes);
  for (int warm = 0; warm < 2; ++warm)
    for (std::uint32_t a = 0; a + 4 <= end; a += 4) (void)sys.fetch(a);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint32_t a = 0; a + 4 <= end; a += 4) (void)sys.fetch(a);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(sys.refills(), image.block_count());  // the window really refilled
  return after - before;
}

TEST(AllocFree, SamcSteadyStateFetchDoesNotAllocate) {
  const auto code = small_mips_code("go", 16);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  EXPECT_EQ(steady_state_allocations(codec, image, code.size()), 0u);
}

TEST(AllocFree, SamcNibbleSteadyStateFetchDoesNotAllocate) {
  const auto code = small_mips_code("go", 16);
  samc::SamcOptions opt = samc::mips_defaults();
  opt.parallel_nibble_mode = true;
  opt.markov.quantized = true;
  const samc::SamcCodec codec(opt);
  const auto image = codec.compress(code);
  EXPECT_EQ(steady_state_allocations(codec, image, code.size()), 0u);
}

TEST(AllocFree, SadcSteadyStateFetchDoesNotAllocate) {
  const auto code = small_mips_code("gcc", 16);
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(code);
  EXPECT_EQ(steady_state_allocations(codec, image, code.size()), 0u);
}

TEST(AllocFree, CountingHookIsLive) {
  // Guard against the hook silently not linking (which would make every
  // other test here pass vacuously).
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(64);
  delete p;
  EXPECT_GT(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace ccomp::memsys
