#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/obs.h"

namespace ccomp::obs {
namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Internal names use
/// dotted paths ("memsys.cache.misses"); map everything else to '_' and
/// namespace with "ccomp_".
std::string prom_name(std::string_view name) {
  std::string out = "ccomp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const CounterValue& c : snapshot.counters) {
    const std::string name = prom_name(c.name) + "_total";
    if (!c.help.empty()) out += "# HELP " + name + " " + c.help + "\n";
    out += "# TYPE " + name + " counter\n" + name + " ";
    append_u64(out, c.value);
    out += "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    if (!g.help.empty()) out += "# HELP " + name + " " + g.help + "\n";
    out += "# TYPE " + name + " gauge\n" + name + " ";
    append_i64(out, g.value);
    out += "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    if (!h.help.empty()) out += "# HELP " + name + " " + h.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out += name + "_bucket{le=\"";
      append_u64(out, h.bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + name + "_sum ";
    append_u64(out, h.sum);
    out += "\n" + name + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(snapshot.counters[i].name);
    out += "\":";
    append_u64(out, snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(snapshot.gauges[i].name);
    out += "\":";
    append_i64(out, snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += "\"";
    out += json_escape(h.name);
    out += "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ",";
      append_u64(out, h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) out += ",";
      append_u64(out, h.bucket_counts[b]);
    }
    out += "],\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string to_table(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  std::size_t width = 24;
  for (const CounterValue& c : snapshot.counters) width = std::max(width, c.name.size());
  for (const GaugeValue& g : snapshot.gauges) width = std::max(width, g.name.size());
  for (const HistogramValue& h : snapshot.histograms) width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);

  if (!snapshot.counters.empty()) out += "counters:\n";
  for (const CounterValue& c : snapshot.counters) {
    std::snprintf(line, sizeof line, "  %-*s %16" PRIu64 "\n", w, c.name.c_str(), c.value);
    out += line;
  }
  if (!snapshot.gauges.empty()) out += "gauges:\n";
  for (const GaugeValue& g : snapshot.gauges) {
    std::snprintf(line, sizeof line, "  %-*s %16" PRId64 "\n", w, g.name.c_str(), g.value);
    out += line;
  }
  if (!snapshot.histograms.empty()) out += "histograms:\n";
  for (const HistogramValue& h : snapshot.histograms) {
    const double mean = h.count == 0 ? 0.0 : static_cast<double>(h.sum) / static_cast<double>(h.count);
    // p50/p99 from the bucket counts: the upper bound of the bucket where
    // the cumulative count crosses the quantile (conservative estimate).
    auto quantile = [&](double q) -> double {
      if (h.count == 0) return 0.0;
      const double target = q * static_cast<double>(h.count);
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
        cumulative += h.bucket_counts[b];
        if (static_cast<double>(cumulative) >= target)
          return b < h.bounds.size() ? static_cast<double>(h.bounds[b])
                                     : static_cast<double>(h.bounds.empty() ? 0 : h.bounds.back());
      }
      return h.bounds.empty() ? 0.0 : static_cast<double>(h.bounds.back());
    };
    std::snprintf(line, sizeof line,
                  "  %-*s count=%-10" PRIu64 " mean=%-12.0f p50<=%-12.0f p99<=%-12.0f\n", w,
                  h.name.c_str(), h.count, mean, quantile(0.5), quantile(0.99));
    out += line;
  }
  return out;
}

std::string to_chrome_trace(std::span<const SpanEvent> events) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (e.name == nullptr) continue;  // unwritten ring slot
    if (!first) out += ",";
    first = false;
    char buf[192];
    // trace_event timestamps are microseconds; keep ns precision in the
    // fraction. "X" = complete event (begin + duration in one record).
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"ccomp\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
                  json_escape(e.name).c_str(), static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.thread, e.depth);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace ccomp::obs
