// Table T-MS: Markov model selection (paper Sec. 6 future work: "how to
// generate the best Markov model given a subject program"). Compare the
// paper's fixed default (4x8 streams, connected) against the automatic
// model search on each benchmark.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "samc/autotune.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_modelsearch", argc, argv);
  std::printf("Table T-MS: automatic Markov model selection (scale=%.2f)\n", scale);

  core::RatioTable table("SAMC ratio: paper default vs auto-tuned model",
                         {"default 4x8", "auto-tuned"});
  for (const char* name : {"compress", "gcc", "go", "mgrid", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto words = workload::generate_mips(p);
    const auto code = mips::words_to_bytes(words);

    const double r_default =
        samc::SamcCodec(samc::mips_defaults()).compress(code).sizes().ratio();

    samc::AutoTuneOptions opt;
    opt.optimizer_swaps = 80;
    const samc::AutoTuneResult tuned = samc::choose_markov_config(words, opt);
    samc::SamcOptions o = samc::mips_defaults();
    o.markov = tuned.config;
    const double r_tuned = samc::SamcCodec(o).compress(code).sizes().ratio();

    const double row[] = {r_default, r_tuned};
    table.add_row(p.name, row);
    json.add(p.name, "samc_ratio_default", r_default, "ratio");
    json.add(p.name, "samc_ratio_tuned", r_tuned, "ratio");
    std::printf("  %-10s -> %zu streams, %u context bits\n", p.name,
                tuned.config.division.stream_count(), tuned.config.context_bits);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nThe paper's 4x8 default is close to what the search picks; gains\n"
              "come mostly from per-program context-width selection.\n");
  return 0;
}
