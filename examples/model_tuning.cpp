// Model tuning walkthrough: the knobs SAMC exposes and what each is worth
// on one program — stream division (contiguous vs the paper's randomized
// bit-exchange search), inter-stream context, probability quantization
// (shift-only hardware), and the automatic model search.
//
//   $ ./model_tuning [benchmark-name]
#include <algorithm>
#include <cstdio>

#include "isa/mips/mips.h"
#include "samc/autotune.h"
#include "samc/optimizer.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace {

double ratio_of(const ccomp::samc::SamcOptions& options,
                std::span<const std::uint8_t> code) {
  return ccomp::samc::SamcCodec(options).compress(code).sizes().ratio();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccomp;
  const char* name = argc > 1 ? argv[1] : "go";
  const workload::Profile* profile = workload::find_profile(name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  workload::Profile p = *profile;
  p.code_kb = std::min(p.code_kb, 192u);
  const auto words = workload::generate_mips(p);
  const auto code = mips::words_to_bytes(words);
  std::printf("%s-like program, %zu KB\n\n", p.name, code.size() / 1024);

  // 1. The paper's default: 4 contiguous 8-bit streams, connected trees.
  samc::SamcOptions base = samc::mips_defaults();
  std::printf("paper default (4x8, 1 context bit):      %.4f\n", ratio_of(base, code));

  // 2. Unconnect the trees (Fig. 4 ablation).
  {
    samc::SamcOptions o = base;
    o.markov.context_bits = 0;
    o.markov.connect_across_words = false;
    std::printf("unconnected trees:                        %.4f\n", ratio_of(o, code));
  }

  // 3. The randomized bit-exchange division search (paper Sec. 3).
  {
    samc::OptimizerOptions opt;
    opt.swap_attempts = 150;
    samc::SamcOptions o = base;
    o.markov.division = samc::optimize_division(words, opt);
    std::printf("optimized stream division:                %.4f\n", ratio_of(o, code));
    std::printf("  streams:");
    for (const auto& stream : o.markov.division.streams) {
      std::printf(" [");
      for (std::size_t i = 0; i < stream.size(); ++i)
        std::printf("%s%u", i ? "," : "", stream[i]);
      std::printf("]");
    }
    std::printf("\n");
  }

  // 4. Shift-only hardware probabilities (Witten et al. constraint).
  {
    samc::SamcOptions o = base;
    o.markov.quantized = true;
    std::printf("power-of-1/2 probabilities:               %.4f\n", ratio_of(o, code));
    o.parallel_nibble_mode = true;
    std::printf("  + Fig.5 parallel-nibble engine:         %.4f\n", ratio_of(o, code));
  }

  // 5. The automatic model search (paper Sec. 6 future work).
  {
    const samc::AutoTuneResult tuned = samc::choose_markov_config(words);
    samc::SamcOptions o = base;
    o.markov = tuned.config;
    std::printf("auto-tuned model (%zu streams, %u ctx):     %.4f  (predicted %.4f)\n",
                tuned.config.division.stream_count(), tuned.config.context_bits,
                ratio_of(o, code), tuned.estimated_ratio);
  }
  return 0;
}
