// Functional model of the Wolfe/Chanin compressed-code memory system.
//
// Where sim.h only accounts cycles/energy, this model actually *runs*: the
// I-cache stores decompressed line bytes, and a miss invokes the real
// BlockDecompressor (the refill engine) on the real CompressedImage. A
// fetch returns the instruction word the CPU would see, so tests can prove
// end-to-end that a processor executing from the compressed system observes
// exactly the original program, fetch by fetch, in any access order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/codec.h"
#include "core/mapped.h"
#include "memsys/cache.h"

namespace ccomp::memsys {

class FunctionalMemorySystem {
 public:
  /// `image` must use uniform blocks equal to the cache line size and must
  /// outlive this object. `codec` builds the refill engine's decompressor.
  /// With `verify_on_load` set (the default), the static verifier audits the
  /// image's structure and tables first and the constructor throws
  /// CorruptDataError on any error-severity finding — the memory system
  /// rejects a bad image at load time instead of failing mid-refill.
  /// With `require_certificate` set, the image must additionally carry an
  /// embedded decode certificate whose verdict is kCertified *and* whose
  /// bounds re-verify against the artifacts (ANA/WCB layer): the strict
  /// loading mode for systems that refuse uncertified images.
  FunctionalMemorySystem(const CacheConfig& cache_config, const core::BlockCodec& codec,
                         const core::CompressedImage& image, bool verify_on_load = true,
                         bool require_certificate = false);

  /// Same semantics over an mmap-ready aligned container (core/mapped.h):
  /// takes ownership of the mapping and refills decode straight out of the
  /// mapped payload — no owned copy of the compressed bytes is ever made.
  FunctionalMemorySystem(const CacheConfig& cache_config, const core::BlockCodec& codec,
                         core::MappedImage mapped, bool verify_on_load = true,
                         bool require_certificate = false);

  /// Fetch the 32-bit instruction word at `address` (must be word-aligned
  /// and inside the program). Refills through the decompressor on a miss.
  std::uint32_t fetch(std::uint32_t address);

  /// Fetch a single code byte.
  std::uint8_t fetch_byte(std::uint32_t address);

  /// Swap in a new image (and decompressor) without losing statistics: the
  /// cache contents are invalidated — they belong to the old image — but
  /// cache_stats() and refills() keep accumulating across the reload. Call
  /// reset_stats() explicitly for a fresh measurement window. The new image
  /// must satisfy the same constraints as the constructor's (same block
  /// size, address-aligned blocks) and must outlive this object.
  void reload(const core::BlockCodec& codec, const core::CompressedImage& image,
              bool verify_on_load = true, bool require_certificate = false);

  /// Zero cache_stats() and refills(). Cache contents are untouched.
  void reset_stats();

  const CacheStats& cache_stats() const { return cache_->stats(); }
  std::uint64_t refills() const { return refills_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;
    std::vector<std::uint8_t> bytes;
  };

  Line& lookup(std::uint32_t address);

  /// Own the mmap backing and its zero-copy view when constructed over a
  /// MappedImage; null when the caller owns the image. Declared before
  /// image_ so the view outlives every member that references it.
  std::unique_ptr<const core::MappedImage> mapping_holder_;
  std::unique_ptr<const core::CompressedImage> view_holder_;

  const core::CompressedImage* image_;
  std::unique_ptr<core::BlockDecompressor> decompressor_;
  /// Original block index -> physical slot (identity without a layout
  /// section). The cache is tagged by original line index; only the refill
  /// engine's block fetch goes through the remap.
  std::vector<std::uint32_t> remap_;
  std::unique_ptr<ICache> cache_;  // hit/miss bookkeeping (stats only)
  core::DecodeScratch scratch_;    // refill-engine arenas, reused every miss
  std::vector<Line> lines_;        // actual decompressed contents
  std::uint32_t line_bytes_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::uint64_t refills_ = 0;
};

}  // namespace ccomp::memsys
