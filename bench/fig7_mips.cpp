// Figure 7 reproduction: compression ratios on MIPS for all 18 SPEC95
// benchmarks under UNIX compress, gzip, SAMC, and SADC.
//
// Paper shape: gzip best on most benchmarks; SAMC comparable to compress;
// SADC 4-6% (absolute) better than SAMC and close to gzip on some
// benchmarks. Short bar = good compression.
#include <cstdio>

#include "baseline/filecodecs.h"
#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  std::printf("Figure 7: compression ratios on MIPS (scale=%.2f)\n", scale);

  core::RatioTable table("Fig.7 MIPS: compressed/original",
                         {"compress", "gzip", "SAMC", "SADC"});
  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;

  for (const workload::Profile& profile : workload::spec95_profiles()) {
    const workload::Profile p = bench::scaled_profile(profile, scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    const double r_compress = baseline::unix_compress(code).ratio();
    const double r_gzip = baseline::gzip_like(code).ratio();
    const double r_samc = samc_codec.compress(code).sizes().ratio();
    const double r_sadc = sadc_codec.compress(code).sizes().ratio();
    const double row[] = {r_compress, r_gzip, r_samc, r_sadc};
    table.add_row(p.name, row);
    std::fflush(stdout);
  }
  table.print();

  const auto means = table.column_means();
  std::printf("\nShape checks (paper expectations):\n");
  std::printf("  SADC better than SAMC by %.1f%% absolute (paper: 4-6%%)\n",
              (means[2] - means[3]) * 100.0);
  std::printf("  gzip best overall: %s\n",
              (means[1] < means[0] && means[1] < means[2] && means[1] < means[3]) ? "yes"
                                                                                  : "NO");
  std::printf("  SAMC ~ compress: |delta| = %.3f\n", means[2] - means[0]);
  return 0;
}
