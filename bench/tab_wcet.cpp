// Table T-WCET: certified vs. observed worst-case block decode cost.
//
// For every codec x ISA x stream-count configuration the analysis engine
// (src/analysis) proves a per-block payload bound and, through the memory
// system's RefillModel calibration, a certified worst-case block-decode
// cycle count. This table puts the proof next to reality: the observed
// worst case is the cycle cost of the *largest block actually emitted* for
// the synthetic SPEC95 suite, computed with the same RefillModel. The
// certified/observed ratio is the soundness-and-usefulness headline —
// soundness requires ratio >= 1 for every row (the proof may never
// understate), usefulness wants it small (a loose proof certifies nothing
// interesting). CI's certify-suite job gates on both, diffing this bench's
// JSON against the committed bench_results/tab_wcet.json baseline so bound
// regressions (a looser cost model, a codec emitting fatter blocks) are
// caught at review time.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "baseline/bytehuff.h"
#include "bench_common.h"
#include "core/codec.h"
#include "isa/mips/mips.h"
#include "memsys/sim.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  bench::JsonReporter json("tab_wcet", argc, argv);
  std::printf("Table T-WCET: certified vs observed worst-case block decode (scale=%.2f)\n\n",
              scale);

  // The refill calibration every number runs through — identical to the
  // memsys simulator defaults, so certified cycles are directly comparable
  // to sim traces.
  const memsys::RefillModel refill{};
  std::printf(
      "refill model: latency=%u cycles, %u cycle(s)/byte, startup=%u, decode=%u bits/cycle\n\n",
      refill.memory_latency, refill.cycles_per_byte, refill.decode_startup,
      refill.decode_bits_per_cycle);

  struct Config {
    const char* name;
    std::unique_ptr<core::BlockCodec> codec;
    bool x86;
    unsigned streams;
  };
  const auto samc = [](unsigned streams, samc::EntropyCoder coder, bool x86) {
    samc::SamcOptions o = x86 ? samc::x86_defaults() : samc::mips_defaults();
    o.entropy_streams = streams;
    o.entropy_coder = coder;
    return std::make_unique<samc::SamcCodec>(o);
  };
  std::vector<Config> configs;
  configs.push_back({"samc_mips_k1", samc(1, samc::EntropyCoder::kRange, false), false, 1});
  configs.push_back({"samc_mips_k4_range", samc(4, samc::EntropyCoder::kRange, false), false, 4});
  configs.push_back({"samc_mips_k4_rans", samc(4, samc::EntropyCoder::kRans, false), false, 4});
  configs.push_back({"samc_x86_k1", samc(1, samc::EntropyCoder::kRange, true), true, 1});
  configs.push_back({"sadc_mips", std::make_unique<sadc::SadcMipsCodec>(), false, 1});
  configs.push_back({"sadc_x86", std::make_unique<sadc::SadcX86Codec>(), true, 1});
  configs.push_back({"samc_split_x86", std::make_unique<samc::SamcX86SplitCodec>(), true, 1});
  configs.push_back(
      {"bytehuff_mips", std::make_unique<baseline::ByteHuffmanCodec>(), false, 1});

  // One representative workload per ISA — big enough that the worst block
  // is a stable statistic, small enough to keep the bench quick.
  workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto mips_code = mips::words_to_bytes(workload::generate_mips(p));
  const auto x86_code = workload::generate_x86(p);

  std::printf("%-20s %10s %10s %12s %12s %7s\n", "config", "cert B/blk", "obs B/blk",
              "model cyc", "obs cyc", "ratio");
  bool sound = true;
  for (const Config& cfg : configs) {
    const auto& code = cfg.x86 ? x86_code : mips_code;
    const core::CompressedImage image = cfg.codec->compress(code);
    const analysis::DecodeCertificate cert = analysis::certify(image);
    if (!cert.certified()) {
      std::printf("%-20s NOT CERTIFIED (%s)\n", cfg.name,
                  std::string(analysis::verdict_name(cert.verdict)).c_str());
      for (const std::string& why : cert.failures) std::printf("    %s\n", why.c_str());
      sound = false;
      continue;
    }

    // Observed worst case: the fattest block the codec actually produced,
    // costed through the same refill model the certificate uses.
    std::size_t worst_payload = 0;
    for (std::size_t b = 0; b < image.block_count(); ++b)
      worst_payload = std::max(worst_payload, image.block_payload(b).size());
    const std::uint64_t decode_cycles =
        (8u * image.block_size() + refill.decode_bits_per_cycle - 1) /
        refill.decode_bits_per_cycle;
    const std::uint64_t observed_cycles =
        refill.memory_latency + refill.cycles_per_byte * worst_payload + refill.decode_startup +
        decode_cycles;
    // Two certified numbers: certified_cycles uses the image's statically
    // known worst payload (exact for this image, the number a scheduler
    // budgets), model_cycles uses the model-level bound model_block_bytes —
    // the cost any block *could* have under these tables, i.e. the bound
    // that survives re-encoding with the same model. The ratio column
    // reports model vs observed: >= 1 proves soundness, and how far above 1
    // measures how loose the abstract interpretation is.
    const std::uint64_t certified_cycles = analysis::certified_block_cycles(
        cert, refill.memory_latency, refill.cycles_per_byte, refill.decode_startup,
        refill.decode_bits_per_cycle);
    const std::uint64_t model_cycles = refill.memory_latency +
                                       refill.cycles_per_byte * cert.model_block_bytes +
                                       refill.decode_startup + decode_cycles;
    const double ratio = static_cast<double>(model_cycles) / static_cast<double>(observed_cycles);
    if (certified_cycles < observed_cycles || cert.model_block_bytes < worst_payload)
      sound = false;

    std::printf("%-20s %10llu %10zu %12llu %12llu %6.2fx\n", cfg.name,
                static_cast<unsigned long long>(cert.model_block_bytes), worst_payload,
                static_cast<unsigned long long>(model_cycles),
                static_cast<unsigned long long>(observed_cycles), ratio);
    json.add(cfg.name, "certified_block_bytes", static_cast<double>(cert.model_block_bytes),
             "bytes", cfg.streams, "");
    json.add(cfg.name, "observed_block_bytes", static_cast<double>(worst_payload), "bytes",
             cfg.streams, "");
    json.add(cfg.name, "certified_cycles", static_cast<double>(certified_cycles), "cycles",
             cfg.streams, "");
    json.add(cfg.name, "model_cycles", static_cast<double>(model_cycles), "cycles", cfg.streams,
             "");
    json.add(cfg.name, "observed_cycles", static_cast<double>(observed_cycles), "cycles",
             cfg.streams, "");
    json.add(cfg.name, "cert_over_observed", ratio, "ratio", cfg.streams, "");
  }
  std::printf("\nsoundness: certified >= observed for %s\n",
              sound ? "every config" : "SOME CONFIGS VIOLATED — analysis bug");
  return sound ? 0 : 1;
}
