// Cache explorer: the architecture-side question of the paper — what does
// running compressed code cost at run time? Sweeps I-cache size for one
// benchmark and prints miss rate, slowdown, and CLB effectiveness, for both
// SAMC and SADC refill engines.
//
//   $ ./cache_explorer [benchmark-name] [trace-length] [--threads=N]
//                      [--streams=K] [--readers=N] [--mmap]
//
// --threads=N sets the worker count for the parallel compressors (default:
// hardware concurrency; CCOMP_THREADS overrides the default). Results are
// byte-identical at any thread count. --streams=K encodes the SAMC image
// with K independent entropy streams per block (1..16; out-of-range K is
// rejected with a typed ConfigError) — the compression-ratio cost of the
// interleaved-decode format shows up directly in the SAMC ratio column.
// --readers=N appends a serving-side demo: the SAMC image behind an
// ImageServer with 1..N threads hammering one hot cached block, showing the
// lock-free hit path's reader scaling. --mmap serves that image from an
// mmap'd page-aligned (v3.1) container instead of an owned copy.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/mapped.h"
#include "isa/mips/mips.h"
#include "memsys/sim.h"
#include "obs_flags.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "server/server.h"
#include "support/parallel.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  examples::ObsFlags obs_flags;
  argc = examples::strip_obs_flags(argc, argv, obs_flags);
  // Peel off --threads / --streams / --help before the positional arguments.
  int args = 1;
  long streams = 1;
  long readers = 0;
  bool use_mmap = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      par::set_thread_count(static_cast<std::size_t>(std::atoi(argv[i] + 10)));
    } else if (std::strncmp(argv[i], "--streams=", 10) == 0) {
      streams = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = std::atol(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      use_mmap = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [benchmark-name] [trace-length] [--threads=N] [--streams=K]\n"
                  "          [--readers=N] [--mmap]\n"
                  "  --threads=N  worker threads for the parallel compressors\n"
                  "               (default: hardware concurrency, %zu here;\n"
                  "               CCOMP_THREADS overrides the default)\n"
                  "  --streams=K  SAMC entropy streams per block (1..16; K>1\n"
                  "               decodes interleaved and costs some ratio)\n"
                  "  --readers=N  serving demo: sweep 1..N threads over one hot\n"
                  "               cached block of an ImageServer and print the\n"
                  "               lock-free hit path's lookups/s scaling\n"
                  "  --mmap       back the serving demo's image with an mmap'd\n"
                  "               page-aligned (v3.1) container\n"
                  "  --metrics=F  write the telemetry registry at exit\n"
                  "               (Prometheus text; JSON when F ends in .json)\n"
                  "  --trace=F    record spans; write chrome://tracing JSON to F\n",
                  argv[0], par::hardware_threads());
      return 0;
    } else {
      argv[args++] = argv[i];
    }
  }
  argc = args;
  const char* name = argc > 1 ? argv[1] : "ijpeg";
  const std::size_t trace_len = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;
  const workload::Profile* profile = workload::find_profile(name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  workload::Profile p = *profile;
  p.code_kb = std::min(p.code_kb, 128u);

  const auto prog = workload::generate_mips_program(p);
  const auto code = mips::words_to_bytes(prog.words);
  workload::TraceOptions topt;
  topt.length = trace_len;
  const auto trace =
      workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);

  // No clamping: an out-of-range K must surface as the codec's own typed
  // ConfigError (negative values map to 0, which is rejected the same way).
  samc::SamcOptions samc_opts = samc::mips_defaults();
  samc_opts.entropy_streams = streams < 0 ? 0u : static_cast<unsigned>(streams);
  const auto samc_codec_ptr = [&]() -> std::unique_ptr<samc::SamcCodec> {
    try {
      return std::make_unique<samc::SamcCodec>(samc_opts);
    } catch (const ccomp::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();
  const samc::SamcCodec& samc_codec = *samc_codec_ptr;
  const sadc::SadcMipsCodec sadc_codec;
  const auto samc_image = samc_codec.compress(code);
  const auto sadc_image = sadc_codec.compress(code);

  std::printf("%s-like: %zu KB text, trace %zu fetches\n", p.name, code.size() / 1024,
              trace.size());
  std::printf("SAMC ratio %.3f | SADC ratio %.3f\n\n", samc_image.sizes().ratio(),
              sadc_image.sizes().ratio());
  std::printf("%-9s %9s | %21s | %21s\n", "", "", "SAMC refill (4 b/cyc)",
              "SADC refill (16 b/cyc)");
  std::printf("%-9s %9s | %10s %10s | %10s %10s\n", "cache", "missrate", "cyc/fetch",
              "slowdown", "cyc/fetch", "slowdown");

  for (const std::uint32_t kb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    memsys::SimConfig base_cfg;
    base_cfg.cache = {kb * 1024, 32, 2};
    const auto base = memsys::simulate_uncompressed(base_cfg, trace);

    memsys::SimConfig samc_cfg = base_cfg;
    samc_cfg.refill.decode_bits_per_cycle = 4;  // Fig. 5 parallel decoder
    const auto samc_run = memsys::simulate_compressed(samc_cfg, trace, samc_image);

    memsys::SimConfig sadc_cfg = base_cfg;
    sadc_cfg.refill.decode_bits_per_cycle = 16;  // dictionary lookups are fast
    const auto sadc_run = memsys::simulate_compressed(sadc_cfg, trace, sadc_image);

    std::printf("%6u KB %9.4f | %10.3f %9.3fx | %10.3f %9.3fx\n", kb, base.miss_rate(),
                samc_run.cycles_per_fetch(),
                samc_run.cycles_per_fetch() / base.cycles_per_fetch(),
                sadc_run.cycles_per_fetch(),
                sadc_run.cycles_per_fetch() / base.cycles_per_fetch());
  }
  std::printf("\nAs the paper argues, the loss tracks the I-cache miss ratio: with a\n"
              "reasonable cache the compressed system runs within a few percent of\n"
              "the uncompressed one while storing far less code.\n");

  if (readers > 0) {
    // Serving-side demo: every thread hits the same cached block, so the
    // whole sweep exercises the lock-free seqlock hit path — no decodes, no
    // shard mutex. Scaling tops out at the machine's core count.
    server::ImageServer srv;
    std::string tmp_path;
    if (use_mmap) {
      ByteSink sink;
      core::serialize_aligned(samc_image, sink);
      tmp_path = "cache_explorer_mmap.ccma";
      std::ofstream out(tmp_path, std::ios::binary);
      const auto bytes = sink.view();
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      out.close();
      srv.load("demo", samc_codec, core::MappedImage::open(tmp_path));
    } else {
      srv.load("demo", samc_codec, samc_image);
    }
    srv.fetch("demo", 0);  // warm the hot block into the cache
    std::printf("\nserving one hot block (%s-backed golden copy), %zu-core host:\n",
                use_mmap ? "mmap" : "owned", par::hardware_threads());
    double base_rate = 0.0;
    for (long n = 1; n <= readers; n *= 2) {
      std::atomic<bool> stop{false};
      std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
      std::vector<std::thread> threads;
      for (long t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
          std::uint64_t local = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            (void)srv.fetch("demo", 0);
            ++local;
          }
          counts[static_cast<std::size_t>(t)] = local;
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      stop.store(true, std::memory_order_relaxed);
      for (auto& th : threads) th.join();
      std::uint64_t total = 0;
      for (const std::uint64_t c : counts) total += c;
      const double rate = static_cast<double>(total) / 0.2;
      if (n == 1) base_rate = rate;
      std::printf("  %2ld reader(s): %12.0f lookups/s  (%.2fx)\n", n, rate,
                  base_rate > 0 ? rate / base_rate : 1.0);
    }
    if (!tmp_path.empty()) std::remove(tmp_path.c_str());
  }
  return examples::finish_obs(obs_flags, 0);
}
