// Table T-DECODESPEED: software decode throughput of every refill engine,
// measured on the memory system's actual call shape (block_into with
// caller-owned scratch, zero allocations per block). For SAMC this pits the
// flattened MarkovDecodePlan against the original MarkovCursor walk — the
// ratio is the speedup the precompiled tables buy — and derives a
// bits-per-cycle estimate comparable to memsys/sim.h's
// decode_bits_per_cycle knob: compressed payload bits consumed per CPU
// cycle, with the cycle time calibrated from a dependent-add chain (1
// add/cycle on any recent core). The estimate is for *this software
// decoder on this host*; the sim's default of 4 bits/cycle models the
// paper's parallel hardware decoder, which resolves a full 4-bit group per
// cycle — see the calibration note the table prints.
#include <cstdio>
#include <memory>

#include "baseline/bytehuff.h"
#include "bench_common.h"
#include "core/codec.h"
#include "isa/mips/mips.h"
#include "isa/x86/x86.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv);
  bench::JsonReporter json("tab_decodespeed", argc, argv);
  std::printf("Table T-DECODESPEED: refill-engine decode throughput (scale=%.2f)\n\n", scale);

  workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  p.code_kb = p.code_kb < 64 ? 64 : p.code_kb;  // enough blocks to defeat the L2
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  const auto code_x86 = workload::generate_x86(p);
  // Instruction counts for the ns/instruction column: MIPS is fixed 4-byte
  // words; x86 is variable-length, so count via the real decoder.
  const std::size_t mips_instrs = code.size() / 4;
  const std::size_t x86_instrs = x86::decode_all(code_x86).size();

  // Cycle-time calibration: a dependent add chain retires one add per cycle
  // on every core this runs on, so ns/add ~ ns/cycle.
  const double cycle_ns = [] {
    const std::size_t adds = 200'000'000;
    const double total = bench::median_time_ns(3, [&] {
      std::uint64_t acc = 1;
      for (std::size_t i = 0; i < adds; ++i) {
        acc += i;                      // 1-cycle add, serialized on acc
        asm volatile("" : "+r"(acc));  // keep the chain in a register, un-elided
      }
    });
    return total / static_cast<double>(adds);
  }();
  std::printf("calibration: %.3f ns/cycle (~%.2f GHz, dependent-add chain)\n\n", cycle_ns,
              1.0 / cycle_ns);
  json.add("host", "cycle_ns", cycle_ns, "ns");

  // Measure one decoder: median wall time of a full image sweep through
  // block_into with reused scratch/output, amortized per block.
  struct Measurement {
    double ns_per_block;
    double mb_per_s;
    double bits_per_cycle;
    double ns_per_instr;
  };
  const auto measure = [&](const core::BlockDecompressor& dec,
                           const core::CompressedImage& image,
                           std::size_t instr_count) -> Measurement {
    core::DecodeScratch scratch;
    std::vector<std::uint8_t> out;
    std::size_t payload_bytes = 0;
    for (std::size_t b = 0; b < image.block_count(); ++b)
      payload_bytes += image.block_payload(b).size();
    const auto sweep = [&] {
      for (std::size_t b = 0; b < image.block_count(); ++b) {
        out.resize(image.block_original_size(b));
        dec.block_into(b, out, scratch);
      }
    };
    sweep();  // warm scratch arenas and tables before timing
    const double ns = bench::median_time_ns(5, sweep);
    const double ns_per_block = ns / static_cast<double>(image.block_count());
    const double mb_per_s =
        static_cast<double>(image.original_size()) / (ns / 1e9) / (1024.0 * 1024.0);
    const double bits_per_cycle = static_cast<double>(payload_bytes) * 8.0 / (ns / cycle_ns);
    const double ns_per_instr = ns / static_cast<double>(instr_count);
    return {ns_per_block, mb_per_s, bits_per_cycle, ns_per_instr};
  };

  std::printf("%-24s %12s %10s %12s %10s\n", "decoder", "ns/block", "MB/s", "bits/cycle",
              "ns/instr");
  // streams == 0 / codec == "" leave the optional JSON tags off (legacy rows
  // keep the exact shape earlier CI runs diff against).
  const auto report = [&](const char* name, const Measurement& m, unsigned streams = 0,
                          const char* codec = "") {
    std::printf("%-24s %12.0f %10.2f %12.3f %10.2f\n", name, m.ns_per_block, m.mb_per_s,
                m.bits_per_cycle, m.ns_per_instr);
    json.add(name, "ns_per_block", m.ns_per_block, "ns", streams, codec);
    json.add(name, "mb_per_s", m.mb_per_s, "MB/s", streams, codec);
    json.add(name, "bits_per_cycle", m.bits_per_cycle, "bits", streams, codec);
    json.add(name, "ns_per_instr", m.ns_per_instr, "ns", streams, codec);
  };

  {
    const samc::SamcCodec codec(samc::mips_defaults());
    const auto image = codec.compress(code);
    const auto plan = codec.make_decompressor(image, samc::DecodeEngine::kPlan);
    const auto cursor = codec.make_decompressor(image, samc::DecodeEngine::kCursor);
    const auto mp = measure(*plan, image, mips_instrs);
    const auto mc = measure(*cursor, image, mips_instrs);
    report("samc_plan", mp);
    report("samc_cursor", mc);
    json.add("samc", "plan_speedup", mc.ns_per_block / mp.ns_per_block, "x");
    std::printf("%-24s %12s %10s %11.2fx\n", "  plan speedup", "", "",
                mc.ns_per_block / mp.ns_per_block);
  }
  {
    samc::SamcOptions o = samc::mips_defaults();
    o.markov.quantized = true;
    o.parallel_nibble_mode = true;
    const samc::SamcCodec codec(o);
    const auto image = codec.compress(code);
    const auto plan = codec.make_decompressor(image, samc::DecodeEngine::kPlan);
    const auto cursor = codec.make_decompressor(image, samc::DecodeEngine::kCursor);
    report("samc_nibble_plan", measure(*plan, image, mips_instrs));
    report("samc_nibble_cursor", measure(*cursor, image, mips_instrs));
  }
  {
    const sadc::SadcMipsCodec codec;
    const auto image = codec.compress(code);
    report("sadc_mips", measure(*codec.make_decompressor(image), image, mips_instrs));
  }
  {
    const sadc::SadcX86Codec codec;
    const auto image = codec.compress(code_x86);
    report("sadc_x86", measure(*codec.make_decompressor(image), image, x86_instrs));
  }
  {
    const baseline::ByteHuffmanCodec codec;
    const auto image = codec.compress(code);
    report("bytehuff", measure(*codec.make_decompressor(image), image, mips_instrs));
  }

  // --- Interleaved multi-stream sweep --------------------------------------
  // K independent entropy streams per block, decoded by one round-robin
  // loop (DecodeEngine::kPlan) vs the same plan run chunk-after-chunk
  // (kPlanSerial). The interleave_speedup row is the payoff of breaking the
  // serial decoder's dependency/mispredict floor; the sweep races both
  // entropy coders because their decode-loop shapes differ (DESIGN.md
  // decision 16). K=1 is the sanity row: frameless format, both engines run
  // the identical serial loop, ratio ~1.0.
  std::printf("\ninterleaved sweep: kPlan (round-robin) vs kPlanSerial, per coder x K\n");
  std::printf("%-24s %12s %10s %12s %10s\n", "decoder", "ns/block", "MB/s", "bits/cycle",
              "ns/instr");
  for (const samc::EntropyCoder coder : {samc::EntropyCoder::kRange, samc::EntropyCoder::kRans}) {
    const char* cname = coder == samc::EntropyCoder::kRans ? "rans" : "range";
    for (const unsigned k : {1u, 2u, 4u, 8u}) {
      samc::SamcOptions o = samc::mips_defaults();
      o.entropy_streams = k;
      o.entropy_coder = coder;
      const samc::SamcCodec codec(o);
      const auto image = codec.compress(code);
      const auto inter = codec.make_decompressor(image, samc::DecodeEngine::kPlan);
      const auto serial = codec.make_decompressor(image, samc::DecodeEngine::kPlanSerial);
      const auto mi = measure(*inter, image, mips_instrs);
      const auto ms = measure(*serial, image, mips_instrs);
      char name[48];
      std::snprintf(name, sizeof name, "samc_%s_k%u", cname, k);
      char serial_name[56];
      std::snprintf(serial_name, sizeof serial_name, "%s_serial", name);
      report(name, mi, k, cname);
      report(serial_name, ms, k, cname);
      json.add(name, "interleave_speedup", ms.ns_per_block / mi.ns_per_block, "x", k, cname);
      std::printf("%-24s %12s %10s %11.2fx\n", "  interleave speedup", "", "",
                  ms.ns_per_block / mi.ns_per_block);
    }
  }

  std::printf(
      "\nCalibration note: memsys/sim.h decode_bits_per_cycle models the\n"
      "paper's *hardware* decoder (Fig. 5 resolves 4 bits per cycle from\n"
      "dedicated midpoint units). The software plan decoder above spends a\n"
      "pipeline's worth of instructions per bit, so its bits/cycle is ~20x\n"
      "lower; use this table to sanity-check relative codec speeds, not to\n"
      "re-tune the sim's hardware constant.\n");
  return 0;
}
