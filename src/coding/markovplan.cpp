#include "coding/markovplan.h"

#include <bit>

namespace ccomp::coding {

MarkovDecodePlan::MarkovDecodePlan(const MarkovModel& model) {
  const MarkovConfig& cfg = model.config();
  const std::size_t stream_count = cfg.division.stream_count();
  const std::size_t ctx_count = model.context_count();
  const std::uint32_t ctx_mask = static_cast<std::uint32_t>(ctx_count - 1);

  // State numbering mirrors the model's own table layout: per stream a
  // ctx-major block of tree nodes, streams concatenated.
  std::vector<std::size_t> stream_base(stream_count + 1, 0);
  for (std::size_t s = 0; s < stream_count; ++s)
    stream_base[s + 1] = stream_base[s] + ctx_count * model.tree_node_count(s);
  const std::size_t states = stream_base[stream_count];
  if (states == 0 || states > kMaxStates) return;  // not viable

  prob0_.resize(states);
  bit_pos_.resize(states);
  next_.resize(2 * states);

  for (std::size_t s = 0; s < stream_count; ++s) {
    const std::vector<std::uint8_t>& positions = cfg.division.streams[s];
    const std::size_t width = positions.size();
    const std::size_t tree_nodes = model.tree_node_count(s);
    const std::size_t next_stream = s + 1 == stream_count ? 0 : s + 1;
    const std::size_t next_tree_nodes = model.tree_node_count(next_stream);
    for (std::size_t c = 0; c < ctx_count; ++c) {
      for (std::size_t n = 0; n < tree_nodes; ++n) {
        const std::size_t state = stream_base[s] + c * tree_nodes + n;
        // Heap depth of node n is floor(log2(n + 1)): the number of bits of
        // this stream already consumed, i.e. the index of the bit position
        // this state decodes.
        const unsigned depth = static_cast<unsigned>(std::bit_width(n + 1)) - 1u;
        prob0_[state] = model.prob0(s, c, n);
        bit_pos_[state] = positions[depth];
        for (unsigned bit = 0; bit < 2; ++bit) {
          const std::size_t child = 2 * n + 1 + bit;
          std::size_t succ;
          if (child < tree_nodes) {
            // Still inside this stream's tree.
            succ = stream_base[s] + c * tree_nodes + child;
          } else {
            // Leaf transition: the stream is complete. Reconstruct its
            // decoded value v from the heap index (a depth-d node encodes
            // the d bits walked to reach it) and roll it into the context
            // exactly as MarkovCursor rolls recent_bits_.
            const std::uint32_t path =
                static_cast<std::uint32_t>(n) - ((1u << depth) - 1);
            const std::uint32_t v = (path << 1) | bit;
            std::uint32_t ctx_next =
                cfg.context_bits == 0
                    ? 0
                    : ((static_cast<std::uint32_t>(c) << width) | v) & ctx_mask;
            if (next_stream == 0 && !cfg.connect_across_words) ctx_next = 0;
            succ = stream_base[next_stream] + ctx_next * next_tree_nodes;
          }
          next_[2 * state + bit] = static_cast<std::uint32_t>(succ);
        }
      }
    }
  }
  fused_.resize(states);
  for (std::size_t st = 0; st < states; ++st)
    fused_[st] = static_cast<std::uint64_t>(prob0_[st]) |
                 (static_cast<std::uint64_t>(next_[2 * st]) << 16) |
                 (static_cast<std::uint64_t>(next_[2 * st + 1]) << 40);
  viable_ = true;
}

}  // namespace ccomp::coding
