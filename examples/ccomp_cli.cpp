// ccomp_cli — command-line front end for the library, the tool a firmware
// build system would invoke.
//
//   ccomp_cli compress   <in> <out.ccmp> [--codec=samc|sadc|huffman]
//                                        [--isa=mips|x86|bytes] [--block=N]
//                                        [--streams=K] [--coder=range|rans]
//   ccomp_cli decompress <in.ccmp> <out>
//   ccomp_cli info       <in.ccmp>
//   ccomp_cli asm        <in.s> <out.bin>   # assemble MIPS source
//   ccomp_cli disasm     <in.bin>           # disassemble MIPS binary
//
// The global `--threads=N` flag (any position) sets the worker count for the
// parallel block encoders and verification; see --help.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "baseline/bytehuff.h"
#include "core/mapped.h"
#include "isa/mips/asm.h"
#include "isa/mips/mips.h"
#include "layout/layout.h"
#include "obs_flags.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "support/error.h"
#include "support/parallel.h"
#include "verify/verify.h"

namespace {

using namespace ccomp;

std::vector<std::uint8_t> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const char* path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::unique_ptr<core::BlockCodec> make_codec(const std::string& codec, const std::string& isa,
                                             std::uint32_t block, unsigned streams,
                                             const std::string& coder) {
  if (coder != "range" && coder != "rans")
    throw ConfigError("unknown entropy coder '" + coder + "' (range|rans)");
  if (codec == "samc") {
    samc::SamcOptions o = isa == "mips" ? samc::mips_defaults() : samc::x86_defaults();
    o.block_size = block;
    o.entropy_streams = streams;  // SamcCodec rejects out-of-range K with ConfigError
    o.entropy_coder = coder == "rans" ? samc::EntropyCoder::kRans : samc::EntropyCoder::kRange;
    if (isa == "bytes") o.isa = core::IsaKind::kRawBytes;
    return std::make_unique<samc::SamcCodec>(o);
  }
  if (codec == "sadc") {
    if (streams != 1)
      throw ConfigError("--streams applies to the SAMC codecs only (sadc is sequential)");
    sadc::SadcOptions o;
    o.block_size = block;
    if (isa == "x86") return std::make_unique<sadc::SadcX86Codec>(o);
    return std::make_unique<sadc::SadcMipsCodec>(o);
  }
  if (codec == "samc-split") {
    if (coder == "rans")
      throw ConfigError("samc-split uses the range coder (its phases share one stream format)");
    samc::SamcX86SplitOptions o;
    o.block_size = block;
    o.entropy_streams = streams;
    return std::make_unique<samc::SamcX86SplitCodec>(o);
  }
  if (streams != 1 || coder == "rans")
    throw ConfigError("--streams/--coder apply to the SAMC codecs only");
  if (codec == "huffman") {
    baseline::ByteHuffmanOptions o;
    o.block_size = block;
    o.isa = isa == "mips"  ? core::IsaKind::kMips
            : isa == "x86" ? core::IsaKind::kX86
                           : core::IsaKind::kRawBytes;
    return std::make_unique<baseline::ByteHuffmanCodec>(o);
  }
  std::fprintf(stderr, "unknown codec '%s' (samc|sadc|huffman)\n", codec.c_str());
  std::exit(1);
}

std::unique_ptr<core::BlockCodec> codec_for_image(const core::CompressedImage& image) {
  switch (image.codec()) {
    case core::CodecKind::kSamc: {
      // The decompressor reads everything it needs from the image tables;
      // options here only need the right ISA/block for validation.
      samc::SamcOptions o =
          image.isa() == core::IsaKind::kX86 ? samc::x86_defaults() : samc::mips_defaults();
      o.block_size = image.block_size();
      o.isa = image.isa();
      return std::make_unique<samc::SamcCodec>(o);
    }
    case core::CodecKind::kSadc:
      if (image.isa() == core::IsaKind::kX86) {
        sadc::SadcOptions o;
        o.block_size = image.block_size();
        return std::make_unique<sadc::SadcX86Codec>(o);
      } else {
        sadc::SadcOptions o;
        o.block_size = image.block_size();
        return std::make_unique<sadc::SadcMipsCodec>(o);
      }
    case core::CodecKind::kByteHuffman: {
      baseline::ByteHuffmanOptions o;
      o.block_size = image.block_size();
      o.isa = image.isa();
      return std::make_unique<baseline::ByteHuffmanCodec>(o);
    }
    case core::CodecKind::kSamcX86Split: {
      samc::SamcX86SplitOptions o;
      o.block_size = image.block_size();
      return std::make_unique<samc::SamcX86SplitCodec>(o);
    }
  }
  std::fprintf(stderr, "unknown codec id in image\n");
  std::exit(1);
}

const char* codec_name(core::CodecKind k) {
  switch (k) {
    case core::CodecKind::kSamc: return "SAMC";
    case core::CodecKind::kSadc: return "SADC";
    case core::CodecKind::kByteHuffman: return "byte-Huffman";
    case core::CodecKind::kSamcX86Split: return "SAMC-split";
  }
  return "?";
}

const char* isa_name(core::IsaKind k) {
  switch (k) {
    case core::IsaKind::kMips: return "MIPS";
    case core::IsaKind::kX86: return "x86";
    case core::IsaKind::kRawBytes: return "raw bytes";
  }
  return "?";
}

/// An input container plus whatever owns its backing bytes: the classic
/// stream container is deserialized out of `bytes`; the aligned (v3.1)
/// container stays mmap'd behind `mapped` with `image` a zero-copy view.
/// Keep the struct alive as long as the image is used.
struct LoadedContainer {
  std::vector<std::uint8_t> bytes;
  std::unique_ptr<core::MappedImage> mapped;
  core::CompressedImage image;
};

LoadedContainer load_container(const char* path, bool require_mmap) {
  LoadedContainer lc;
  std::uint8_t sniff[4] = {0, 0, 0, 0};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(1);
    }
    in.read(reinterpret_cast<char*>(sniff), 4);
  }
  if (core::is_aligned_container(sniff)) {
    lc.mapped = std::make_unique<core::MappedImage>(core::MappedImage::open(path));
    lc.image = lc.mapped->view_image();
  } else {
    if (require_mmap) {
      std::fprintf(stderr,
                   "--mmap needs an aligned container (compress with --aligned); "
                   "%s is a classic stream container\n",
                   path);
      std::exit(1);
    }
    lc.bytes = read_file(path);
    ByteSource src(lc.bytes);
    lc.image = core::CompressedImage::deserialize(src);
  }
  return lc;
}

const char* section_name(core::SectionId id) {
  switch (id) {
    case core::SectionId::kLat: return "LAT";
    case core::SectionId::kSizes: return "SIZES";
    case core::SectionId::kTables: return "TABLES";
    case core::SectionId::kPayload: return "PAYLOAD";
    case core::SectionId::kEcc: return "ECC";
    case core::SectionId::kCert: return "CERT";
    case core::SectionId::kLayout: return "LAYOUT";
  }
  return "?";
}

/// A trace file is a flat array of little-endian 32-bit byte addresses —
/// the dump format of workload::generate_trace and of the simulator.
std::vector<std::uint32_t> read_trace(const char* path) {
  const std::vector<std::uint8_t> raw = read_file(path);
  if (raw.size() % 4 != 0) {
    std::fprintf(stderr, "trace %s is not a whole number of 32-bit addresses\n", path);
    std::exit(1);
  }
  std::vector<std::uint32_t> addresses(raw.size() / 4);
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    addresses[i] = static_cast<std::uint32_t>(raw[4 * i]) |
                   (static_cast<std::uint32_t>(raw[4 * i + 1]) << 8) |
                   (static_cast<std::uint32_t>(raw[4 * i + 2]) << 16) |
                   (static_cast<std::uint32_t>(raw[4 * i + 3]) << 24);
  }
  return addresses;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) return 1;
  std::string codec = "sadc", isa = "mips", coder = "range";
  std::uint32_t block = 32;
  long streams = 1;
  bool verify_static = false;
  bool certify = false;
  std::uint32_t aligned = 0;  // 0 = classic stream container
  std::string layout_trace;
  double hot_pct = 5.0, warm_pct = 10.0;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--codec=", 8) == 0) codec = argv[i] + 8;
    else if (std::strncmp(argv[i], "--isa=", 6) == 0) isa = argv[i] + 6;
    else if (std::strncmp(argv[i], "--block=", 8) == 0)
      block = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    else if (std::strncmp(argv[i], "--streams=", 10) == 0)
      streams = std::atol(argv[i] + 10);
    else if (std::strncmp(argv[i], "--coder=", 8) == 0)
      coder = argv[i] + 8;
    else if (std::strcmp(argv[i], "--verify-static") == 0)
      verify_static = true;
    else if (std::strcmp(argv[i], "--certify") == 0)
      certify = true;
    else if (std::strcmp(argv[i], "--aligned") == 0)
      aligned = 4096;
    else if (std::strncmp(argv[i], "--aligned=", 10) == 0)
      aligned = static_cast<std::uint32_t>(std::atoi(argv[i] + 10));
    else if (std::strncmp(argv[i], "--layout=", 9) == 0)
      layout_trace = argv[i] + 9;
    else if (std::strncmp(argv[i], "--hot-pct=", 10) == 0)
      hot_pct = std::atof(argv[i] + 10);
    else if (std::strncmp(argv[i], "--warm-pct=", 11) == 0)
      warm_pct = std::atof(argv[i] + 11);
  }
  if (!layout_trace.empty() && certify) {
    // The certificate engine bounds the inner codec's decode; hot/warm slots
    // bypass it, so a tiered image has no certified story yet.
    std::fprintf(stderr, "--certify does not support --layout images yet\n");
    return 1;
  }
  // Clamp-free: a nonsense count (0, negative, > 16) must reach the codec's
  // own validation and come back as a typed ConfigError, not be silently
  // "fixed" here. Negative values would wrap through unsigned, so map them
  // to 0, which the codec rejects with the same error.
  const unsigned streams_u = streams < 0 ? 0u : static_cast<unsigned>(streams);
  const auto code = read_file(argv[2]);
  const auto c = make_codec(codec, isa, block, streams_u, coder);
  core::CompressedImage image = [&] {
    if (layout_trace.empty()) return c->compress_verified(code);
    // Profile-guided build: distill the trace, cluster hot blocks, assign
    // tiers, and reassemble the payload in slot order (round trip proven
    // inside build_tiered_image).
    const std::vector<std::uint32_t> addresses = read_trace(layout_trace.c_str());
    const std::size_t blocks = (code.size() + block - 1) / block;
    const layout::AccessProfile profile =
        layout::AccessProfile::from_trace(addresses, block, blocks);
    layout::LayoutOptions lo;
    lo.hot_fraction = hot_pct / 100.0;
    lo.warm_fraction = warm_pct / 100.0;
    layout::PlacementPlan plan = layout::optimize_layout(profile, code.size(), block, lo);
    core::CompressedImage tiered = layout::build_tiered_image(*c, code, std::move(plan));
    const layout::PlacementPlan built = layout::plan_from_image(tiered);
    std::size_t hot = 0, warm = 0;
    for (const layout::Tier t : built.tiers) {
      hot += t == layout::Tier::kHot;
      warm += t == layout::Tier::kWarm;
    }
    std::printf("layout: %zu hot / %zu warm / %zu cold blocks, predictor k=%u\n", hot, warm,
                built.tiers.size() - hot - warm, built.predictor_k);
    return tiered;
  }();
  if (certify) {
    // Prove the worst-case decode bounds and embed the certificate in the
    // container; strict loaders can then demand it at load time.
    const analysis::DecodeCertificate cert = analysis::certify(image);
    std::printf("certificate: %s (%s, %u states, <=%u bits/byte, <=%llu model bytes/block)\n",
                std::string(analysis::verdict_name(cert.verdict)).c_str(),
                cert.exhaustive ? "exhaustive" : "widened", cert.explored_states,
                cert.max_bits_per_byte,
                static_cast<unsigned long long>(cert.model_block_bytes));
    for (const std::string& reason : cert.failures)
      std::printf("  certificate: %s\n", reason.c_str());
    if (!cert.certified()) return 1;
    ByteSink blob;
    cert.serialize(blob);
    image.attach_certificate(blob.take());
  }
  ByteSink sink;
  if (aligned != 0)
    core::serialize_aligned(image, sink, aligned);
  else
    image.serialize(sink);
  const auto bytes = sink.take();
  write_file(argv[3], bytes);
  const auto s = image.sizes();
  std::printf("%s: %zu -> %zu bytes (ratio %.3f; %.3f with LAT), verified\n", codec.c_str(),
              s.original, s.payload + s.tables, s.ratio(), s.ratio_with_lat());
  if (aligned != 0)
    std::printf("aligned container: %u-byte section alignment, %zu file bytes\n", aligned,
                bytes.size());
  if (verify_static) {
    verify::VerifyOptions opts;
    opts.original_code = code;
    const verify::VerifyReport report = verify::verify_serialized(bytes, opts);
    std::printf("static verify: %zu error(s), %zu warning(s), %zu info\n",
                report.count(verify::Severity::kError), report.count(verify::Severity::kWarn),
                report.count(verify::Severity::kInfo));
    if (!report.findings().empty()) std::fputs(report.to_string().c_str(), stdout);
    if (!report.ok()) return 1;
  }
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 4) return 1;
  bool require_mmap = false;
  for (int i = 4; i < argc; ++i)
    if (std::strcmp(argv[i], "--mmap") == 0) require_mmap = true;
  const LoadedContainer lc = load_container(argv[2], require_mmap);
  const core::CompressedImage& image = lc.image;
  const auto codec = codec_for_image(image);
  // Layout-aware: undoes the plan's permutation and per-slot tiers; plain
  // images take the inner codec's decompress path unchanged.
  const auto code = layout::decompress_image(*codec, image);
  write_file(argv[3], code);
  std::printf("decompressed %zu bytes%s\n", code.size(),
              lc.mapped ? " (from mapped aligned container)" : "");
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return 1;
  bool require_mmap = false;
  for (int i = 3; i < argc; ++i)
    if (std::strcmp(argv[i], "--mmap") == 0) require_mmap = true;
  const LoadedContainer lc = load_container(argv[2], require_mmap);
  const core::CompressedImage& image = lc.image;
  const auto s = image.sizes();
  std::printf("codec:      %s\n", codec_name(image.codec()));
  std::printf("isa:        %s\n", isa_name(image.isa()));
  std::printf("block size: %u bytes%s\n", image.block_size(),
              image.has_variable_blocks() ? " (instruction-aligned, variable)" : "");
  std::printf("blocks:     %zu\n", image.block_count());
  std::printf("original:   %zu bytes\n", s.original);
  std::printf("payload:    %zu bytes\n", s.payload);
  std::printf("tables:     %zu bytes\n", s.tables);
  std::printf("LAT:        %zu bytes\n", s.lat);
  std::printf("ratio:      %.4f (%.4f with LAT)\n", s.ratio(), s.ratio_with_lat());
  if (lc.mapped) {
    std::printf("container:  aligned v3.1, %u-byte sections, %s-backed\n", lc.mapped->alignment(),
                lc.mapped->backed_by_mmap() ? "mmap" : "heap");
    for (const core::MappedImage::Section& sec : lc.mapped->sections())
      std::printf("  section %-7s offset %8llu  size %8llu  %s\n", section_name(sec.id),
                  static_cast<unsigned long long>(sec.offset),
                  static_cast<unsigned long long>(sec.size),
                  sec.offset % lc.mapped->alignment() == 0 ? "aligned" : "MISALIGNED");
  } else {
    std::printf("container:  classic stream (v3)\n");
  }
  if (image.has_layout()) {
    const layout::PlacementPlan plan = layout::plan_from_image(image);
    std::size_t hot = 0, warm = 0;
    for (const layout::Tier t : plan.tiers) {
      hot += t == layout::Tier::kHot;
      warm += t == layout::Tier::kWarm;
    }
    bool permuted = false;
    for (std::uint32_t i = 0; i < plan.block_count; ++i) permuted |= plan.slot_of[i] != i;
    std::printf("layout:     %zu hot / %zu warm / %zu cold blocks (%zu plan bytes, %s)\n", hot,
                warm, plan.tiers.size() - hot - warm, s.layout,
                permuted ? "clustered permutation" : "identity permutation");
    std::printf("predictor:  %s (k=%u)\n",
                plan.predictor_k == 0 ? "none" : "first-order, trace-trained", plan.predictor_k);
    // Per-slot tier map, one letter per block (h/w/c), 64 slots per row.
    std::string row;
    for (std::size_t slot = 0; slot < plan.tiers.size(); ++slot) {
      row.push_back(plan.tiers[slot] == layout::Tier::kHot    ? 'h'
                    : plan.tiers[slot] == layout::Tier::kWarm ? 'w'
                                                              : 'c');
      if (row.size() == 64 || slot + 1 == plan.tiers.size()) {
        std::printf("tier map:   %s\n", row.c_str());
        row.clear();
      }
    }
  } else {
    std::printf("layout:     none\n");
  }
  if (image.has_certificate()) {
    ByteSource cert_src(image.certificate());
    const analysis::DecodeCertificate cert = analysis::DecodeCertificate::deserialize(cert_src);
    std::printf("certified:  %s (<=%u bits/byte, <=%llu bits/block, depth %u)\n",
                std::string(analysis::verdict_name(cert.verdict)).c_str(),
                cert.max_bits_per_byte,
                static_cast<unsigned long long>(cert.max_bits_per_block),
                cert.max_decode_depth);
  } else {
    std::printf("certified:  no certificate section\n");
  }
  return 0;
}

int cmd_asm(int argc, char** argv) {
  if (argc < 4) return 1;
  const auto source = read_file(argv[2]);
  const std::string text(source.begin(), source.end());
  const auto words = mips::assemble(text);
  write_file(argv[3], mips::words_to_bytes(words));
  std::printf("assembled %zu instructions\n", words.size());
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 3) return 1;
  const auto bytes = read_file(argv[2]);
  const auto words = mips::bytes_to_words(bytes);
  std::fputs(mips::disassemble_program(words, 0x00400000).c_str(), stdout);
  return 0;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s <command> [args] [options]\n"
      "\n"
      "commands:\n"
      "  compress   <in> <out.ccmp> [--codec=samc|sadc|samc-split|huffman]\n"
      "                             [--isa=mips|x86|bytes] [--block=N]\n"
      "                             [--streams=K]  SAMC codecs: split each\n"
      "                             block into K independent entropy streams\n"
      "                             (1..16; K>1 enables interleaved decode)\n"
      "                             [--coder=range|rans]  SAMC entropy coder\n"
      "                             [--verify-static]  run the image linter\n"
      "                             on the result; nonzero exit on errors\n"
      "                             [--certify]  prove worst-case decode\n"
      "                             bounds and embed the certificate in the\n"
      "                             container; nonzero exit when uncertified\n"
      "                             [--layout=<trace>]  profile-guided build:\n"
      "                             cluster hot blocks, tier the payload, and\n"
      "                             train the prefetch predictor from a trace\n"
      "                             of little-endian u32 byte addresses\n"
      "                             [--hot-pct=N]   hottest N%% stored raw (5)\n"
      "                             [--warm-pct=N]  next N%% under the shared\n"
      "                             byte-Huffman fast path (10)\n"
      "                             [--aligned[=N]]  write the mmap-ready\n"
      "                             aligned container (v3.1): every section\n"
      "                             starts on an N-byte boundary (4096)\n"
      "  decompress <in.ccmp> <out> [--mmap]  aligned containers are mapped\n"
      "                             and decoded zero-copy (auto-detected;\n"
      "                             --mmap makes a classic container an error)\n"
      "  info       <in.ccmp> [--mmap]  prints the per-section table and\n"
      "                             alignment for aligned containers\n"
      "  asm        <in.s> <out.bin>   assemble MIPS source\n"
      "  disasm     <in.bin>           disassemble MIPS binary\n"
      "\n"
      "global options:\n"
      "  --threads=N  worker threads for parallel block encoding, decoding,\n"
      "               and round-trip verification (default: hardware\n"
      "               concurrency, %zu here; CCOMP_THREADS overrides the\n"
      "               default). Output is byte-identical at any setting.\n"
      "  --metrics=F  write the telemetry registry at exit: Prometheus text,\n"
      "               or a JSON snapshot when F ends in .json\n"
      "  --trace=F    record tracing spans; write chrome://tracing JSON to F\n"
      "               (open via chrome://tracing or https://ui.perfetto.dev)\n"
      "  --help       this message\n",
      prog, ccomp::par::hardware_threads());
}

// Strips --threads=N (applying it) and --help from argv; returns the new argc.
int handle_global_flags(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      ccomp::par::set_thread_count(static_cast<std::size_t>(std::atoi(argv[i] + 10)));
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0]);
      std::exit(0);
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  examples::ObsFlags obs_flags;
  argc = examples::strip_obs_flags(argc, argv, obs_flags);
  argc = handle_global_flags(argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s compress|decompress|info|asm|disasm ... (--help for details)\n",
                 argv[0]);
    return 1;
  }
  int rc = 1;
  try {
    const std::string cmd = argv[1];
    if (cmd == "compress") rc = cmd_compress(argc, argv);
    else if (cmd == "decompress") rc = cmd_decompress(argc, argv);
    else if (cmd == "info") rc = cmd_info(argc, argv);
    else if (cmd == "asm") rc = cmd_asm(argc, argv);
    else if (cmd == "disasm") rc = cmd_disasm(argc, argv);
    else std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  } catch (const ccomp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  return examples::finish_obs(obs_flags, rc);
}
