// Small reporting helpers shared by the benchmark harnesses so every
// figure/table prints in a consistent, diffable format.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace ccomp::core {

/// A ratio table: one row per benchmark, one column per scheme.
class RatioTable {
 public:
  RatioTable(std::string title, std::vector<std::string> columns);

  void add_row(const std::string& name, std::span<const double> values);

  /// Column-wise arithmetic means of all rows added so far.
  std::vector<double> column_means() const;

  /// Print to stdout: header, rows, mean row.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace ccomp::core
