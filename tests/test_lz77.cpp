#include "coding/lz77.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"

namespace ccomp::coding {
namespace {

void round_trip(std::span<const std::uint8_t> data, const Lz77Options& opt = {}) {
  const auto compressed = lz77_compress(data, opt);
  const auto restored = lz77_decompress(compressed);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_TRUE(std::equal(restored.begin(), restored.end(), data.begin()));
}

TEST(Lz77, EmptyInput) { round_trip({}); }

TEST(Lz77, TinyInputsAreLiterals) {
  const std::uint8_t data[] = {1, 2};
  round_trip(data);
}

TEST(Lz77, OverlappingMatchReplication) {
  // dist < length forces byte-wise replication (RLE-style match).
  std::vector<std::uint8_t> data(5000, 0x5A);
  round_trip(data);
  const auto compressed = lz77_compress(data);
  EXPECT_LT(compressed.size(), 120u);
}

TEST(Lz77, LongRangeRepeatsAreFound) {
  // A 2 KiB chunk repeated 16 times: gzip-like must exploit it.
  Rng rng(21);
  std::vector<std::uint8_t> chunk;
  for (int i = 0; i < 2048; ++i) chunk.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  std::vector<std::uint8_t> data;
  for (int r = 0; r < 16; ++r) data.insert(data.end(), chunk.begin(), chunk.end());
  const auto compressed = lz77_compress(data);
  EXPECT_LT(static_cast<double>(compressed.size()) / static_cast<double>(data.size()), 0.15);
  round_trip(data);
}

TEST(Lz77, IncompressibleRandomDataSurvives) {
  Rng rng(22);
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 60000; ++i) data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  round_trip(data);
}

TEST(Lz77, MatchesBeyondWindowAreNotUsed) {
  // Two identical chunks separated by more than the window: must still
  // round-trip (the second chunk simply re-compresses fresh).
  Lz77Options opt;
  opt.window_bits = 8;  // 256-byte window
  Rng rng(23);
  std::vector<std::uint8_t> chunk;
  for (int i = 0; i < 128; ++i) chunk.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  std::vector<std::uint8_t> data = chunk;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  data.insert(data.end(), chunk.begin(), chunk.end());
  round_trip(data, opt);
}

TEST(Lz77, MaxMatchLengthBoundary) {
  // Runs exactly at and around the 258-byte match cap.
  for (const std::size_t n : {257u, 258u, 259u, 516u, 1033u}) {
    std::vector<std::uint8_t> data(n, 0x11);
    data.push_back(0x22);
    round_trip(data);
  }
}

TEST(Lz77, LazyMatchingStillRoundTrips) {
  // Construct data where a longer match starts one byte later.
  std::vector<std::uint8_t> data;
  const std::uint8_t a[] = {'x', 'a', 'b', 'c', 'd', 'e'};
  const std::uint8_t b[] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  data.insert(data.end(), std::begin(a), std::end(a));
  data.insert(data.end(), std::begin(b), std::end(b));
  data.push_back('x');
  data.insert(data.end(), std::begin(b), std::end(b));  // longer match at +1
  round_trip(data);
}

TEST(Lz77, CodeLikeDataBeatsByteEntropy) {
  // Instruction-like structured data with cloned functions: LZ77 should do
  // substantially better than 1x.
  Rng rng(24);
  std::vector<std::uint8_t> function;
  for (int i = 0; i < 400; ++i)
    function.push_back(static_cast<std::uint8_t>(rng.pick_skewed(64, 0.8)));
  std::vector<std::uint8_t> data;
  for (int f = 0; f < 50; ++f) {
    data.insert(data.end(), function.begin(), function.end());
    for (int i = 0; i < 100; ++i)
      data.push_back(static_cast<std::uint8_t>(rng.pick_skewed(64, 0.8)));
  }
  const auto compressed = lz77_compress(data);
  EXPECT_LT(static_cast<double>(compressed.size()) / static_cast<double>(data.size()), 0.45);
  round_trip(data);
}

TEST(Lz77, CorruptPayloadThrows) {
  std::vector<std::uint8_t> data(1000, 7);
  auto compressed = lz77_compress(data);
  compressed.resize(compressed.size() - 3);
  EXPECT_THROW(lz77_decompress(compressed), CorruptDataError);
}

TEST(Lz77, BadWindowBitsThrow) {
  Lz77Options opt;
  opt.window_bits = 20;
  EXPECT_THROW(lz77_compress(std::vector<std::uint8_t>{1}, opt), ConfigError);
}

class Lz77Sweep : public ::testing::TestWithParam<std::tuple<unsigned, bool, std::size_t>> {};

TEST_P(Lz77Sweep, RoundTrips) {
  const auto [window_bits, lazy, size] = GetParam();
  Lz77Options opt;
  opt.window_bits = window_bits;
  opt.lazy_matching = lazy;
  Rng rng(window_bits * 31 + size);
  std::vector<std::uint8_t> data;
  for (std::size_t i = 0; i < size; ++i)
    data.push_back(static_cast<std::uint8_t>(rng.pick_skewed(48, 0.85)));
  round_trip(data, opt);
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndModes, Lz77Sweep,
    ::testing::Combine(::testing::Values(8u, 12u, 15u), ::testing::Bool(),
                       ::testing::Values(std::size_t{100}, std::size_t{10000},
                                         std::size_t{80000})));

}  // namespace
}  // namespace ccomp::coding
