#include "samc/samc_x86split.h"

#include <algorithm>

#include "coding/markovplan.h"
#include "coding/rangecoder.h"
#include "core/streams.h"
#include "isa/x86/x86.h"
#include "support/error.h"

namespace ccomp::samc {
namespace {

using coding::MarkovConfig;
using coding::MarkovCursor;
using coding::MarkovDecodePlan;
using coding::MarkovModel;
using coding::RangeDecoder;
using coding::RangeEncoder;

constexpr unsigned kMaxBlockInstrs = 200;

struct SplitInstr {
  std::vector<std::uint8_t> opcode;  // prefixes + opcode byte(s)
  std::vector<std::uint8_t> modrm;   // modrm [+ sib]
  std::vector<std::uint8_t> tail;    // disp + imm
  std::size_t total() const { return opcode.size() + modrm.size() + tail.size(); }
};

MarkovConfig stream_model_config(unsigned context_bits) {
  MarkovConfig config;
  config.division = coding::StreamDivision::single(8);
  config.context_bits = context_bits;
  config.connect_across_words = true;  // byte-to-byte memory within a stream
  return config;
}

void encode_byte(RangeEncoder& encoder, MarkovCursor& cursor, std::uint8_t byte) {
  for (int b = 7; b >= 0; --b) {
    const unsigned bit = (byte >> b) & 1u;
    encoder.encode_bit(bit, cursor.prob());
    cursor.advance(bit);
  }
}

std::uint8_t decode_byte(RangeDecoder& decoder, MarkovCursor& cursor) {
  std::uint8_t byte = 0;
  for (int b = 7; b >= 0; --b) {
    const unsigned bit = decoder.decode_bit(cursor.prob());
    cursor.advance(bit);
    byte = static_cast<std::uint8_t>((byte << 1) | bit);
  }
  return byte;
}

class SplitDecompressor final : public core::BlockDecompressor {
 public:
  SplitDecompressor(const core::CompressedImage& image, MarkovModel opcode_model,
                    MarkovModel modrm_model, MarkovModel imm_model, unsigned streams)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        opcode_model_(std::move(opcode_model)),
        modrm_model_(std::move(modrm_model)),
        imm_model_(std::move(imm_model)),
        opcode_plan_(opcode_model_),
        modrm_plan_(modrm_model_),
        imm_plan_(imm_model_),
        streams_(streams),
        use_plan_(opcode_plan_.viable() && modrm_plan_.viable() && imm_plan_.viable()) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    core::DecodeScratch scratch;
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out, scratch);
    return out;
  }

  using BlockDecompressor::block_into;

  void block_into(std::size_t index, std::span<std::uint8_t> out,
                  core::DecodeScratch& scratch) const override {
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    // Chunk-serial over the K sub-streams: x86 instructions are variable
    // length, so a chunk's output offset is only known once the previous
    // chunks have decoded — the round-robin interleave that pays off for
    // the fixed-rate SAMC word loop would buy bookkeeping, not ILP, here
    // (see DESIGN.md). K independent streams still pay for themselves as
    // random-access attach points and in the equivalence/ratio sweeps.
    const core::StreamSpans spans =
        core::split_stream_block(image_->block_payload(index), streams_);
    std::size_t at = 0;
    for (unsigned k = 0; k < streams_; ++k) {
      if (use_plan_) {
        // One register-resident coder shared by all three streams, each
        // walking its own flattened plan (byte models connect across words,
        // so a stream's state simply persists across its bytes).
        PlanChannels ch{RangeDecoder::attach(spans[k]),
                       &opcode_plan_,
                       &modrm_plan_,
                       &imm_plan_,
                       MarkovDecodePlan::kStartState,
                       MarkovDecodePlan::kStartState,
                       MarkovDecodePlan::kStartState};
        decode_chunk(ch, out, at, scratch);
      } else {
        CursorChannels ch{RangeDecoder(spans[k]), MarkovCursor(opcode_model_),
                          MarkovCursor(modrm_model_), MarkovCursor(imm_model_)};
        decode_chunk(ch, out, at, scratch);
      }
    }
    if (at != out.size()) throw CorruptDataError("SAMC-split block size mismatch");
  }

 private:
  struct PlanChannels {
    RangeDecoder::Core rc;
    const MarkovDecodePlan* op_plan;
    const MarkovDecodePlan* mod_plan;
    const MarkovDecodePlan* imm_plan;
    std::uint32_t op_state, mod_state, imm_state;

    std::uint8_t step(const MarkovDecodePlan& plan, std::uint32_t& state) {
      unsigned byte = 0;
      for (int b = 0; b < 8; ++b) {
        const std::uint64_t pair = plan.next_pair(state);
        if (rc.decode_bit(plan.prob0(state))) {
          byte = (byte << 1) | 1u;
          state = static_cast<std::uint32_t>(pair >> 32);
        } else {
          byte <<= 1;
          state = static_cast<std::uint32_t>(pair);
        }
      }
      return static_cast<std::uint8_t>(byte);
    }
    unsigned count_bit() { return rc.decode_bit(coding::kProbHalf); }
    std::uint8_t op_byte() { return step(*op_plan, op_state); }
    std::uint8_t mod_byte() { return step(*mod_plan, mod_state); }
    std::uint8_t imm_byte() { return step(*imm_plan, imm_state); }
  };

  struct CursorChannels {
    RangeDecoder decoder;
    MarkovCursor op_cursor;
    MarkovCursor mod_cursor;
    MarkovCursor imm_cursor;

    unsigned count_bit() { return decoder.decode_bit(coding::kProbHalf); }
    std::uint8_t op_byte() { return decode_byte(decoder, op_cursor); }
    std::uint8_t mod_byte() { return decode_byte(decoder, mod_cursor); }
    std::uint8_t imm_byte() { return decode_byte(decoder, imm_cursor); }
  };

  // Scratch use: bytes0 = concatenated opcode groups, bytes1 = concatenated
  // disp/imm tails, words0 = two packed words per instruction
  // (op_len | flags<<8 | modrm<<16 | sib<<24, then tail_len). No
  // per-instruction vectors, so steady-state refills never allocate.
  template <typename Channels>
  void decode_chunk(Channels& ch, std::span<std::uint8_t> out, std::size_t& at,
                    core::DecodeScratch& scratch) const {
    constexpr std::uint32_t kHasModrm = 1, kHasSib = 2;
    std::size_t instr_count = 0;
    for (int b = 0; b < 8; ++b) instr_count = (instr_count << 1) | ch.count_bit();

    // Phase A: opcode stream — re-parse prefix runs and 0F escapes to find
    // each instruction's opcode-group length (the decompressor-side
    // complexity the paper warned about).
    std::vector<std::uint8_t>& opcodes = scratch.bytes0;
    opcodes.clear();
    std::vector<std::uint32_t>& records = scratch.words0;
    records.assign(2 * instr_count, 0);
    for (std::size_t i = 0; i < instr_count; ++i) {
      unsigned prefix_run = 0;
      unsigned op_len = 0;
      for (;;) {
        const std::uint8_t byte = ch.op_byte();
        opcodes.push_back(byte);
        ++op_len;
        if (x86::is_prefix_byte(byte)) {
          if (++prefix_run > 8) throw CorruptDataError("prefix run too long");
          continue;
        }
        if (x86::is_escape_byte(byte)) {
          opcodes.push_back(ch.op_byte());
          ++op_len;
        }
        break;
      }
      records[2 * i] = op_len;
    }

    // Phase B: ModRM stream.
    std::size_t op_at = 0, tail_total = 0;
    for (std::size_t i = 0; i < instr_count; ++i) {
      const unsigned op_len = records[2 * i] & 0xFF;
      const auto cls = x86::classify_opcode(
          std::span<const std::uint8_t>(opcodes.data() + op_at, op_len));
      op_at += op_len;
      unsigned tail_len = cls.imm_bytes;
      if (cls.has_modrm) {
        std::uint32_t flags = kHasModrm;
        const std::uint8_t modrm = ch.mod_byte();
        std::uint8_t sib = 0;
        if (x86::modrm_has_sib(modrm)) {
          flags |= kHasSib;
          sib = ch.mod_byte();
        }
        tail_len += x86::modrm_disp_bytes(modrm, sib);
        if (cls.group3 && ((modrm >> 3) & 7) <= 1) tail_len += cls.group3_imm_bytes;
        records[2 * i] |= (flags << 8) | (std::uint32_t{modrm} << 16) |
                          (std::uint32_t{sib} << 24);
      }
      records[2 * i + 1] = tail_len;
      tail_total += tail_len;
    }

    // Phase C: displacement/immediate stream.
    std::vector<std::uint8_t>& tails = scratch.bytes1;
    tails.resize(tail_total);
    for (std::size_t k = 0; k < tail_total; ++k) tails[k] = ch.imm_byte();

    // Reassemble into the caller's span, guarding every write against the
    // block's recorded size (corrupt streams may disagree).
    std::size_t oo = 0, to = 0;
    auto put = [&](const std::uint8_t* data, std::size_t len) {
      if (len > out.size() - at) throw CorruptDataError("SAMC-split block size mismatch");
      std::copy(data, data + len, out.begin() + static_cast<std::ptrdiff_t>(at));
      at += len;
    };
    for (std::size_t i = 0; i < instr_count; ++i) {
      const std::uint32_t w0 = records[2 * i];
      const std::uint32_t tail_len = records[2 * i + 1];
      put(opcodes.data() + oo, w0 & 0xFF);
      oo += w0 & 0xFF;
      if (w0 & (kHasModrm << 8)) {
        const std::uint8_t modrm = static_cast<std::uint8_t>(w0 >> 16);
        put(&modrm, 1);
      }
      if (w0 & (kHasSib << 8)) {
        const std::uint8_t sib = static_cast<std::uint8_t>(w0 >> 24);
        put(&sib, 1);
      }
      put(tails.data() + to, tail_len);
      to += tail_len;
    }
  }

  const core::CompressedImage* image_;
  MarkovModel opcode_model_;
  MarkovModel modrm_model_;
  MarkovModel imm_model_;
  MarkovDecodePlan opcode_plan_;
  MarkovDecodePlan modrm_plan_;
  MarkovDecodePlan imm_plan_;
  unsigned streams_;
  bool use_plan_;
};

}  // namespace

SamcX86SplitCodec::SamcX86SplitCodec(SamcX86SplitOptions options) : options_(options) {
  if (options_.block_size == 0 || options_.block_size > 200)
    throw ConfigError("SAMC-split block size must be in [1,200]");
  if (options_.context_bits > 8) throw ConfigError("context_bits must be <= 8");
  if (options_.entropy_streams < 1 || options_.entropy_streams > core::kMaxEntropyStreams)
    throw ConfigError("entropy stream count must be in [1, 16]");
}

core::CompressedImage SamcX86SplitCodec::compress(std::span<const std::uint8_t> code) const {
  // Tokenize into the three streams.
  const std::vector<x86::InstrLayout> layouts = x86::decode_all(code);
  std::vector<SplitInstr> instrs;
  instrs.reserve(layouts.size());
  {
    std::size_t pos = 0;
    for (const x86::InstrLayout& l : layouts) {
      SplitInstr in;
      const std::size_t op_len = static_cast<std::size_t>(l.prefix_len) + l.opcode_len;
      auto at = [&](std::size_t o) { return code.begin() + static_cast<std::ptrdiff_t>(o); };
      in.opcode.assign(at(pos), at(pos + op_len));
      in.modrm.assign(at(pos + op_len), at(pos + op_len + l.modrm_len));
      in.tail.assign(at(pos + op_len + l.modrm_len), at(pos + l.total));
      instrs.push_back(std::move(in));
      pos += l.total;
    }
  }

  // Instruction-aligned blocks of ~block_size original bytes.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [first, last) instr
  std::vector<std::uint32_t> block_sizes;
  {
    std::size_t first = 0;
    std::uint32_t bytes = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      bytes += static_cast<std::uint32_t>(instrs[i].total());
      const bool full = bytes >= options_.block_size || (i - first + 1) >= kMaxBlockInstrs;
      if (full) {
        blocks.emplace_back(first, i + 1);
        block_sizes.push_back(bytes);
        first = i + 1;
        bytes = 0;
      }
    }
    if (first < instrs.size()) {
      blocks.emplace_back(first, instrs.size());
      block_sizes.push_back(bytes);
    }
  }

  // Train one byte model per stream. Training runs over the whole stream
  // without block resets (a block's segment boundaries vary); the coder
  // still resets per block, so this only slightly blurs the statistics.
  const MarkovConfig config = stream_model_config(options_.context_bits);
  auto train_stream = [&](auto member) {
    std::vector<std::uint32_t> bytes;
    for (const SplitInstr& in : instrs)
      for (const std::uint8_t b : in.*member) bytes.push_back(b);
    return MarkovModel::train(config, bytes);
  };
  const MarkovModel opcode_model = train_stream(&SplitInstr::opcode);
  const MarkovModel modrm_model = train_stream(&SplitInstr::modrm);
  const MarkovModel imm_model = train_stream(&SplitInstr::tail);

  // Encode blocks. Each block's instructions are partitioned into K
  // contiguous chunks; every chunk is a self-contained mini-stream (its own
  // 8-bit instruction count, then the three phases over its instructions,
  // all from one fresh coder + cursor set), framed by pack_stream_block.
  // Unlike the fixed-rate SAMC encoder, empty chunks still carry their
  // count byte — the decoder cannot derive a chunk's instruction count any
  // other way.
  const unsigned n_streams = options_.entropy_streams;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  for (const auto& [first, last] : blocks) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    const std::size_t block_instrs = last - first;
    std::vector<std::vector<std::uint8_t>> streams(n_streams);
    for (unsigned k = 0; k < n_streams; ++k) {
      const std::size_t chunk = core::chunk_size(block_instrs, n_streams, k);
      const std::size_t cf = first + core::chunk_begin(block_instrs, n_streams, k);
      RangeEncoder encoder;
      MarkovCursor op_cursor(opcode_model);
      MarkovCursor mod_cursor(modrm_model);
      MarkovCursor imm_cursor(imm_model);
      for (int b = 7; b >= 0; --b)
        encoder.encode_bit(static_cast<unsigned>((chunk >> b) & 1), coding::kProbHalf);
      for (std::size_t i = cf; i < cf + chunk; ++i)
        for (const std::uint8_t b : instrs[i].opcode) encode_byte(encoder, op_cursor, b);
      for (std::size_t i = cf; i < cf + chunk; ++i)
        for (const std::uint8_t b : instrs[i].modrm) encode_byte(encoder, mod_cursor, b);
      for (std::size_t i = cf; i < cf + chunk; ++i)
        for (const std::uint8_t b : instrs[i].tail) encode_byte(encoder, imm_cursor, b);
      encoder.finish();
      streams[k] = encoder.take();
    }
    const std::vector<std::uint8_t> block_bytes = core::pack_stream_block(streams);
    payload.insert(payload.end(), block_bytes.begin(), block_bytes.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));

  ByteSink tables;
  // Layout: [u8 entropy streams][opcode model][modrm model][imm model].
  tables.u8(static_cast<std::uint8_t>(n_streams));
  opcode_model.serialize(tables);
  modrm_model.serialize(tables);
  imm_model.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSamcX86Split, core::IsaKind::kX86,
                               options_.block_size, code.size(), tables.take(),
                               std::move(offsets), std::move(payload),
                               std::move(block_sizes));
}

std::unique_ptr<core::BlockDecompressor> SamcX86SplitCodec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kSamcX86Split)
    throw ConfigError("image was not produced by SAMC-split");
  ByteSource src(image.tables());
  const unsigned streams = src.u8();
  if (streams < 1 || streams > core::kMaxEntropyStreams)
    throw CorruptDataError("SAMC-split entropy stream count out of range");
  MarkovModel opcode_model = MarkovModel::deserialize(src);
  MarkovModel modrm_model = MarkovModel::deserialize(src);
  MarkovModel imm_model = MarkovModel::deserialize(src);
  return std::make_unique<SplitDecompressor>(image, std::move(opcode_model),
                                             std::move(modrm_model), std::move(imm_model),
                                             streams);
}

}  // namespace ccomp::samc
