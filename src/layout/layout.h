// Profile-guided block layout and tiering.
//
// The paper's SAMC compresses every block with one model, but instruction
// fetch is wildly skewed (Ozturk/Saputra/Kandemir, "Access Pattern-Based
// Code Compression"): a few hot blocks absorb most refills. This subsystem
// closes the loop from an execution trace back into the container:
//
//   1. Hot/cold clustering — a greedy affinity pass over the trace's
//      block-transition graph reorders blocks so hot blocks are neighbours,
//      which packs them into the same group-anchored LAT groups and CLB
//      entries (the CLB caches the LAT at 8-block granularity, so adjacency
//      is a real hit-rate win at *identical* image size).
//   2. Tiered compression — the hottest blocks are stored raw (tier kHot)
//      or under a shared byte-Huffman code (tier kWarm, the bytehuff-lite
//      fast path) so their refills skip the bit-serial Markov walk; cold
//      blocks keep the inner codec's max-ratio encoding (tier kCold).
//   3. A trace-trained next-block predictor — a first-order transition
//      table (top-K successors per block) that drives the ImageServer's
//      speculative prefetch and the self-heal scrubber's hot-first sweep.
//
// All three artifacts live in one PlacementPlan, serialized into the
// container's optional layout section (header flag bit 3). Indexing
// convention: the *image* (LAT, payload, ECC, memsys store) lives entirely
// in PHYSICAL slot space; the plan records the original->slot permutation,
// and `tiers` / `successors` are indexed by slot so the refill path never
// translates twice. Only the address->block mapping at the edge of the
// memory system remaps original block indices to slots.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "coding/huffman.h"
#include "core/codec.h"
#include "core/image.h"
#include "support/serialize.h"

namespace ccomp::layout {

/// Per-block storage tier. The numeric values are the serialized form.
enum class Tier : std::uint8_t {
  kCold = 0,  // inner codec (SAMC/SADC/...) max-ratio encoding
  kHot = 1,   // raw bytes, zero decode cost
  kWarm = 2,  // shared canonical byte-Huffman code (bytehuff-lite)
};

/// Short human name ("cold", "hot", "warm") for CLI output.
const char* tier_name(Tier tier);

/// The layout section's payload: permutation + tier map + predictor.
struct PlacementPlan {
  /// Sentinel successor meaning "no prediction".
  static constexpr std::uint32_t kNoSuccessor = 0xFFFFFFFFu;

  std::uint32_t block_count = 0;
  /// Original block index -> physical slot. Must be a bijection on
  /// [0, block_count) — the verifier's LAY002 check.
  std::vector<std::uint32_t> slot_of;
  /// Storage tier per physical SLOT (size block_count).
  std::vector<Tier> tiers;
  /// Predictor arity: top-K successors per block. 0 disables prediction.
  std::uint32_t predictor_k = 0;
  /// Flattened block_count x predictor_k table, indexed by physical SLOT:
  /// successors[slot * predictor_k + j] is the j-th most likely next slot
  /// (kNoSuccessor when fewer than K successors were observed).
  std::vector<std::uint32_t> successors;
  /// Canonical Huffman code lengths (256 entries) for the warm tier; empty
  /// when no block uses kWarm.
  std::vector<std::uint8_t> warm_lengths;

  /// Inverse permutation: physical slot -> original block index.
  /// Requires a valid bijection (call validate() first on untrusted plans).
  std::vector<std::uint32_t> orig_of() const;

  /// Predicted successors of `slot` (drops kNoSuccessor entries).
  std::vector<std::uint32_t> predicted(std::uint32_t slot) const;

  /// Structural serialization. deserialize() bounds-checks counts and field
  /// ranges (truncation and garbage are typed CorruptDataError, never UB)
  /// but does NOT prove the permutation a bijection — that is validate(),
  /// kept separate so the static verifier can report LAY002/LAY004
  /// distinctly from a parse failure (LAY001).
  void serialize(ByteSink& sink) const;
  static PlacementPlan deserialize(ByteSource& src);
  std::vector<std::uint8_t> to_blob() const;
  static PlacementPlan from_blob(std::span<const std::uint8_t> blob);

  /// Deep validation: slot_of is a bijection, successors are in range or
  /// sentinel, warm table present iff a warm block exists. Throws
  /// CorruptDataError. Every runtime loader calls this before trusting the
  /// plan (the verifier instead reports per-check findings).
  void validate() const;
};

/// Parse + validate the plan carried by `image`. Throws ConfigError when
/// the image has no layout section, CorruptDataError when it is invalid.
PlacementPlan plan_from_image(const core::CompressedImage& image);

/// Per-block access statistics distilled from an execution trace.
struct AccessProfile {
  /// Refill-weighted access count per ORIGINAL block.
  std::vector<std::uint64_t> counts;
  /// Directed block-transition weights: key = (from << 32) | to, from != to.
  std::unordered_map<std::uint64_t, std::uint64_t> edges;

  /// Distill a word-aligned byte-address trace (workload::generate_trace
  /// form) into per-block counts and transition weights. Addresses outside
  /// [base_address, base_address + block_count * block_size) are ignored.
  static AccessProfile from_trace(std::span<const std::uint32_t> addresses,
                                  std::uint32_t block_size, std::size_t block_count,
                                  std::uint32_t base_address = 0);
};

struct LayoutOptions {
  /// Fraction of blocks (hottest first) stored raw. 0 disables the tier.
  double hot_fraction = 0.05;
  /// Fraction of blocks (next-hottest) stored under the warm Huffman code.
  double warm_fraction = 0.10;
  /// Top-K successors kept per block. 0 disables the predictor.
  std::uint32_t predictor_k = 2;
  /// When false, keep the identity permutation (tiering/predictor only).
  bool cluster = true;
};

/// Build a PlacementPlan from a profile: greedy affinity clustering over the
/// transition graph (hot chains first), tier assignment by access-count
/// quantile (never-executed blocks are always cold), and the top-K
/// predictor table. A short final block is pinned to the last slot so the
/// uniform-block geometry survives the permutation. warm_lengths is left
/// empty — build_tiered_image() fills it from the actual warm-block bytes.
PlacementPlan optimize_layout(const AccessProfile& profile, std::uint64_t original_size,
                              std::uint32_t block_size, const LayoutOptions& options);

/// Compress `code` with `codec`, then reassemble the payload according to
/// `plan`: slot order is the plan's permutation and each slot's bytes come
/// from its tier (raw / warm Huffman / the inner codec's block). The plan
/// (with warm_lengths filled in) is attached as the image's layout section.
/// The round trip is verified internally — a mismatch throws
/// CorruptDataError. Uniform-block images only (ConfigError otherwise).
core::CompressedImage build_tiered_image(const core::BlockCodec& codec,
                                         std::span<const std::uint8_t> code, PlacementPlan plan);

/// Physical (slot-indexed) decompressor: dispatches each slot to its tier —
/// raw copy, warm Huffman, or the inner codec's decompressor. This is what
/// the memory systems and the server run on; an image without a layout
/// section gets the inner decompressor unchanged.
std::unique_ptr<core::BlockDecompressor> make_tier_decompressor(
    const core::BlockCodec& codec, const core::CompressedImage& image);

/// Logical (original-indexed) decompressor: block(i) returns the bytes of
/// ORIGINAL block i by decoding slot plan.slot_of[i]. decompress_all on it
/// reproduces the original code byte-identically. Images without a layout
/// section get the inner decompressor unchanged.
std::unique_ptr<core::BlockDecompressor> make_logical_decompressor(
    const core::BlockCodec& codec, const core::CompressedImage& image);

/// Decompress the whole image back to original byte order (the layout-aware
/// replacement for BlockCodec::decompress_all).
std::vector<std::uint8_t> decompress_image(const core::BlockCodec& codec,
                                           const core::CompressedImage& image);

/// Original-block-index -> slot remap table for address-indexed consumers
/// (identity when the image carries no layout section).
std::vector<std::uint32_t> remap_table(const core::CompressedImage& image);

/// Slots ordered hottest-first for the self-heal scrubber: hot tier, then
/// warm, then cold, preserving slot order within a tier (hot chains come
/// first in slot space already). Identity order without a layout section.
std::vector<std::uint32_t> scrub_order(const core::CompressedImage& image);

}  // namespace ccomp::layout
