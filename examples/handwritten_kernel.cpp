// Hand-written kernel: assemble a small, real MIPS routine (a saxpy-style
// loop plus callers) with the library's two-pass assembler, compress it
// with both codecs, and decompress the block containing the loop to show
// the refill engine reproducing it bit-exactly.
#include <cstdio>

#include "isa/mips/asm.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"

namespace {

constexpr const char* kSource = R"(
# saxpy: y[i] = a*x[i] + y[i] over n elements
# a0 = n, a1 = &x, a2 = &y, a3 = a
saxpy:
    addiu $sp, $sp, -24
    sw    $ra, 20($sp)
    sw    $s0, 16($sp)
    move  $s0, $zero          # i = 0
loop:
    slt   $at, $s0, $a0
    beq   $at, $zero, done
    nop
    lw    $t0, 0($a1)         # x[i]
    lw    $t1, 0($a2)         # y[i]
    mult  $t0, $a3
    mflo  $t2
    addu  $t2, $t2, $t1
    sw    $t2, 0($a2)
    addiu $a1, $a1, 4
    addiu $a2, $a2, 4
    addiu $s0, $s0, 1
    b     loop
    nop
done:
    lw    $s0, 16($sp)
    lw    $ra, 20($sp)
    addiu $sp, $sp, 24
    jr    $ra
    nop

# trivial caller that invokes saxpy twice
main:
    addiu $sp, $sp, -8
    sw    $ra, 4($sp)
    li    $a0, 64
    jal   saxpy
    nop
    li    $a0, 128
    jal   saxpy
    nop
    lw    $ra, 4($sp)
    addiu $sp, $sp, 8
    jr    $ra
    nop
)";

}  // namespace

int main() {
  using namespace ccomp;
  const std::vector<std::uint32_t> words = mips::assemble(kSource);
  // Pad to a whole number of 32-byte blocks with nops so the image covers
  // complete cache lines.
  std::vector<std::uint32_t> padded = words;
  while (padded.size() % 8 != 0) padded.push_back(0);
  const auto code = mips::words_to_bytes(padded);

  std::printf("assembled %zu instructions (%zu bytes)\n\n", words.size(), code.size());
  std::printf("%s\n", mips::disassemble_program(words, 0x00400000).c_str());

  const samc::SamcCodec samc_codec(samc::mips_defaults());
  const sadc::SadcMipsCodec sadc_codec;
  const auto samc_image = samc_codec.compress_verified(code);
  const auto sadc_image = sadc_codec.compress_verified(code);
  std::printf("SAMC: %zu -> %zu payload bytes (tables %zu)\n", code.size(),
              samc_image.sizes().payload, samc_image.sizes().tables);
  std::printf("SADC: %zu -> %zu payload bytes (tables %zu)\n", code.size(),
              sadc_image.sizes().payload, sadc_image.sizes().tables);
  std::printf("(tiny programs amortize tables poorly — the figure benches use\n"
              " realistic text sizes; this example shows the mechanics.)\n\n");

  // Decompress the block holding the loop body.
  const auto decompressor = sadc_codec.make_decompressor(sadc_image);
  const auto block = decompressor->block(1);
  std::printf("refill of block 1 (the loop body):\n%s",
              mips::disassemble_program(mips::bytes_to_words(block),
                                        0x00400000 + 32).c_str());
  return 0;
}
