// Table T-SERVER: throughput and coalescing of the concurrent image server.
// Three rows of numbers: the latency of a hot (cached) lookup — the cost the
// sharded cache and epoch bookkeeping add over a raw block-cache probe —
// lookup throughput as reader threads scale, and the thundering-herd
// coalescing ratio (misses joined per decode actually run) with a synthetic
// decode delay holding the leader in the decoder.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "server/server.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_server", argc, argv);
  std::printf("Table T-SERVER: concurrent image-server lookups (scale=%.2f)\n\n", scale);

  const workload::Profile p = bench::scaled_profile(*workload::find_profile("go"), scale);
  const auto code = mips::words_to_bytes(workload::generate_mips(p));
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);
  const auto blocks = static_cast<std::uint32_t>(image.block_count());

  server::ImageServer srv;
  srv.load("img", codec, image);
  std::printf("benchmark go: %zu KB text, %u blocks of %u B\n\n", code.size() / 1024, blocks,
              image.block_size());

  // Hot lookup: every block resident after one warming pass.
  for (std::uint32_t b = 0; b < blocks; ++b) (void)srv.fetch("img", b);
  const std::size_t rounds = 50;
  const double hot_ns = bench::time_total_ns(rounds, [&](std::size_t) {
                          for (std::uint32_t b = 0; b < blocks; ++b) (void)srv.fetch("img", b);
                        }) /
                        static_cast<double>(rounds * blocks);
  std::printf("%-26s %10.0f ns\n", "hot lookup (cached)", hot_ns);
  json.add("hot_lookup", "latency", hot_ns, "ns");

  // Throughput as reader threads scale (single shared server, hot cache).
  std::printf("\n%-26s %14s\n", "readers", "lookups/sec");
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const std::size_t per_thread = 20000;
    const double total_ns = bench::time_total_ns(1, [&](std::size_t) {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t i = 0; i < per_thread; ++i)
            (void)srv.fetch("img", static_cast<std::uint32_t>((i + t) % blocks));
        });
      }
      for (std::thread& th : pool) th.join();
    });
    const double per_sec = static_cast<double>(threads) * static_cast<double>(per_thread) /
                           (total_ns / 1e9);
    std::printf("%-26u %14.0f\n", threads, per_sec);
    json.add("threads_" + std::to_string(threads), "lookups_per_sec", per_sec, "1/s");
  }

  // Thundering herd: 8 threads racing to the same cold block, with a decode
  // delay wide enough that followers arrive while the leader is decoding.
  const std::uint32_t herd_threads = 8;
  const std::size_t herd_rounds = 16;
  srv.set_decode_delay(std::chrono::milliseconds(1));
  const std::uint64_t decodes0 = srv.stats().decodes;
  const std::uint64_t joined0 = srv.cache_stats().coalesced + srv.cache_stats().hits;
  for (std::size_t round = 0; round < herd_rounds; ++round) {
    srv.flush_cache();
    const auto block = static_cast<std::uint32_t>(round % blocks);
    std::atomic<std::uint32_t> ready{0};
    std::vector<std::thread> pool;
    pool.reserve(herd_threads);
    for (std::uint32_t t = 0; t < herd_threads; ++t) {
      pool.emplace_back([&] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < herd_threads) std::this_thread::yield();
        (void)srv.fetch("img", block);
      });
    }
    for (std::thread& th : pool) th.join();
  }
  srv.set_decode_delay(std::chrono::microseconds(0));
  const std::uint64_t decodes = srv.stats().decodes - decodes0;
  const std::uint64_t joined = srv.cache_stats().coalesced + srv.cache_stats().hits - joined0;
  const double ratio =
      decodes == 0 ? 0.0 : static_cast<double>(joined) / static_cast<double>(decodes);
  std::printf("\nherd (8 threads x %zu rounds): %llu decode(s), %llu joined, ratio %.2f\n",
              herd_rounds, static_cast<unsigned long long>(decodes),
              static_cast<unsigned long long>(joined), ratio);
  json.add("herd", "coalescing_ratio", ratio, "joins/decode");
  return 0;
}
