#include "analysis/certificate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "coding/huffman.h"
#include "coding/markov.h"
#include "core/streams.h"
#include "obs/obs.h"
#include "sadc/symbols.h"
#include "support/error.h"

namespace ccomp::analysis {

std::string_view verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kCertified:
      return "certified";
    case Verdict::kFailed:
      return "failed";
    case Verdict::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Certificate blob (de)serialization.

namespace {
constexpr std::uint8_t kCertVersion = 1;
constexpr std::uint8_t kCertFlagExhaustive = 0x01;
constexpr std::uint8_t kCertFlagTerminates = 0x02;
}  // namespace

void DecodeCertificate::serialize(ByteSink& sink) const {
  sink.u8(kCertVersion);
  sink.u8(static_cast<std::uint8_t>(verdict));
  std::uint8_t flags = 0;
  if (exhaustive) flags |= kCertFlagExhaustive;
  if (terminates) flags |= kCertFlagTerminates;
  sink.u8(flags);
  sink.u32(explored_states);
  sink.u32(max_fanout);
  sink.u32(max_decode_depth);
  sink.u32(max_phase1_fuel);
  sink.u32(max_bits_per_byte);
  sink.u64(max_bits_per_block);
  sink.u64(model_block_bytes);
  sink.u32(max_block_payload_bytes);
  sink.u32(block_size);
  sink.varint(failures.size());
  for (const std::string& reason : failures) {
    sink.sized_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(reason.data()), reason.size()));
  }
}

DecodeCertificate DecodeCertificate::deserialize(ByteSource& src) {
  if (src.u8() != kCertVersion) throw CorruptDataError("unknown certificate version");
  DecodeCertificate cert;
  const std::uint8_t verdict = src.u8();
  if (verdict > static_cast<std::uint8_t>(Verdict::kUnbounded))
    throw CorruptDataError("unknown certificate verdict");
  cert.verdict = static_cast<Verdict>(verdict);
  const std::uint8_t flags = src.u8();
  if ((flags & ~(kCertFlagExhaustive | kCertFlagTerminates)) != 0)
    throw CorruptDataError("unknown certificate flags");
  cert.exhaustive = (flags & kCertFlagExhaustive) != 0;
  cert.terminates = (flags & kCertFlagTerminates) != 0;
  cert.explored_states = src.u32();
  cert.max_fanout = src.u32();
  cert.max_decode_depth = src.u32();
  cert.max_phase1_fuel = src.u32();
  cert.max_bits_per_byte = src.u32();
  cert.max_bits_per_block = src.u64();
  cert.model_block_bytes = src.u64();
  cert.max_block_payload_bytes = src.u32();
  cert.block_size = src.u32();
  const std::uint64_t reasons = src.varint();
  if (reasons > 256) throw CorruptDataError("implausible certificate failure count");
  cert.failures.reserve(static_cast<std::size_t>(reasons));
  for (std::uint64_t i = 0; i < reasons; ++i) {
    const std::span<const std::uint8_t> bytes = src.sized_bytes_view();
    cert.failures.emplace_back(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  return cert;
}

std::uint64_t certified_block_cycles(const DecodeCertificate& cert,
                                     std::uint32_t memory_latency, std::uint32_t cycles_per_byte,
                                     std::uint32_t decode_startup,
                                     std::uint32_t decode_bits_per_cycle) {
  if (!cert.certified()) return 0;
  const std::uint64_t output_bits = std::uint64_t{8} * cert.block_size;
  const std::uint64_t bits_per_cycle = decode_bits_per_cycle == 0 ? 1 : decode_bits_per_cycle;
  return std::uint64_t{memory_latency} +
         std::uint64_t{cycles_per_byte} * cert.max_block_payload_bytes +
         std::uint64_t{decode_startup} + (output_bits + bits_per_cycle - 1) / bits_per_cycle;
}

namespace {

// ---------------------------------------------------------------------------
// Transition cost model.
//
// Costs are in 1/256-bit fixed point. A decode step taking the branch with
// effective probability p (out of 2^16) consumes -log2(p / 2^16) bits of
// coder state, plus the coder's integer-truncation loss: both backends keep
// range/state >= 2^24 before a step, so the midpoint (range >> 16) * p
// understates the exact product by < 2^-8 relatively, costing at most
// -log2(1 - 2^-8) ~= 0.0057 extra bits per step — covered by 2/256 of
// slack. Renormalization is byte-granular from a 4-byte attach with the
// live register always in [2^24, 2^32), so total bytes consumed over a
// chunk of S content bits is at most attach(4) + ceil(S/8) + 1; one more
// byte of margin absorbs the encoder's flush tail rounding.

constexpr std::uint64_t kUnitsPerBit = 256;
constexpr std::uint64_t kUnitsPerByte = 8 * kUnitsPerBit;
constexpr std::uint32_t kSlackUnits = 2;
constexpr std::uint64_t kCoderAttachBytes = 4;
constexpr std::uint64_t kCoderMarginBytes = 2;
constexpr std::uint32_t kProbOne = 0x10000u;  // p == 2^16: the branch is certain

/// Cost units of one decode step whose taken branch has effective
/// probability `p_eff` in (0, 2^16].
std::uint32_t step_cost_units(std::uint32_t p_eff) {
  if (p_eff >= kProbOne) return kSlackUnits;  // certain branch: zero coder bits
  const double bits = std::log2(static_cast<double>(kProbOne) / static_cast<double>(p_eff));
  return static_cast<std::uint32_t>(std::ceil(bits * static_cast<double>(kUnitsPerBit))) +
         kSlackUnits;
}

std::uint64_t units_to_bits_ceil(std::uint64_t units) {
  return (units + kUnitsPerBit - 1) / kUnitsPerBit;
}

/// Model-bound payload bytes for one coder chunk holding `units` of content.
std::uint64_t chunk_payload_bytes(std::uint64_t units) {
  return kCoderAttachBytes + (units + kUnitsPerByte - 1) / kUnitsPerByte + kCoderMarginBytes;
}

// ---------------------------------------------------------------------------
// Tolerant Markov model re-parse.
//
// Mirrors coding::MarkovModel::deserialize byte for byte but keeps the
// pathological values the production parser rejects — zero probabilities
// (unquantized p == 0) and zero quantized shifts (p == 0 or p == 2^16) —
// because proving their consequence (a zero-bit decode cycle) is exactly
// this engine's job. Structural damage (bad division, tree size mismatch,
// truncation) still throws CorruptDataError.

struct TolerantModel {
  coding::StreamDivision division;
  unsigned context_bits = 0;
  bool connect_across_words = false;
  std::vector<std::size_t> tree_nodes;          // per stream: 2^width - 1
  std::vector<std::vector<std::uint32_t>> trees;  // p0 in [0, 2^16], ctx-major

  std::size_t context_count() const { return std::size_t{1} << context_bits; }
};

TolerantModel parse_tolerant_model(ByteSource& src) {
  TolerantModel m;
  m.division = coding::StreamDivision::deserialize(src);
  m.context_bits = src.u8();
  const std::uint8_t flags = src.u8();
  const bool quantized = (flags & 1) != 0;
  m.connect_across_words = (flags & 2) != 0;
  (void)src.u8();  // max_shift: a quantization-quality property, not a cost one
  if (m.context_bits > 8) throw CorruptDataError("context_bits out of range");
  const std::size_t stream_count = m.division.stream_count();
  const std::size_t ctx_count = m.context_count();
  m.tree_nodes.resize(stream_count);
  m.trees.resize(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    m.tree_nodes[s] = (std::size_t{1} << m.division.streams[s].size()) - 1;
    const std::uint64_t n = src.varint();
    if (n != ctx_count * m.tree_nodes[s]) throw CorruptDataError("Markov tree size mismatch");
    m.trees[s].resize(static_cast<std::size_t>(n));
    for (std::uint32_t& p : m.trees[s]) {
      if (quantized) {
        const std::uint8_t packed = src.u8();
        const unsigned shift = packed & 0x0F;
        const std::uint32_t lps = kProbOne >> shift;  // shift 0 => LPS "probability" 1
        p = (packed & 0x80) ? lps : kProbOne - lps;
      } else {
        p = src.u16();
      }
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Flattened model graph (the MarkovDecodePlan construction, tolerantly).

constexpr std::uint32_t kNoEdge = 0xFFFFFFFFu;

struct ModelGraph {
  std::size_t states = 0;
  std::vector<std::uint32_t> p0;    // per state, in [0, 2^16]
  std::vector<std::uint32_t> next;  // 2 per state; kNoEdge when the branch is untakeable
  unsigned word_bits = 0;

  bool edge(std::size_t s, unsigned bit) const { return next[2 * s + bit] != kNoEdge; }
  /// Effective probability of taking `bit` from state `s`.
  std::uint32_t p_eff(std::size_t s, unsigned bit) const {
    return bit == 0 ? p0[s] : kProbOne - p0[s];
  }
};

/// Flatten `m` into the (stream, ctx, node) state machine, exactly as
/// MarkovDecodePlan does, but keeping certain/impossible branches: a branch
/// with effective probability 0 can never be taken by the coder (its decode
/// midpoint is empty) and is recorded as absent.
ModelGraph build_graph(const TolerantModel& m) {
  ModelGraph g;
  g.word_bits = m.division.word_bits;
  const std::size_t stream_count = m.division.stream_count();
  const std::size_t ctx_count = m.context_count();
  const std::uint32_t ctx_mask = static_cast<std::uint32_t>(ctx_count - 1);
  std::vector<std::size_t> stream_base(stream_count + 1, 0);
  for (std::size_t s = 0; s < stream_count; ++s)
    stream_base[s + 1] = stream_base[s] + ctx_count * m.tree_nodes[s];
  g.states = stream_base[stream_count];
  g.p0.resize(g.states);
  g.next.assign(2 * g.states, kNoEdge);
  for (std::size_t s = 0; s < stream_count; ++s) {
    const std::size_t width = m.division.streams[s].size();
    const std::size_t tree_nodes = m.tree_nodes[s];
    const std::size_t next_stream = s + 1 == stream_count ? 0 : s + 1;
    const std::size_t next_tree_nodes = m.tree_nodes[next_stream];
    for (std::size_t c = 0; c < ctx_count; ++c) {
      for (std::size_t n = 0; n < tree_nodes; ++n) {
        const std::size_t state = stream_base[s] + c * tree_nodes + n;
        const unsigned depth = static_cast<unsigned>(std::bit_width(n + 1)) - 1u;
        g.p0[state] = m.trees[s][c * tree_nodes + n];
        for (unsigned bit = 0; bit < 2; ++bit) {
          const std::uint32_t p_eff = bit == 0 ? g.p0[state] : kProbOne - g.p0[state];
          if (p_eff == 0) continue;  // untakeable branch
          const std::size_t child = 2 * n + 1 + bit;
          std::size_t succ;
          if (child < tree_nodes) {
            succ = stream_base[s] + c * tree_nodes + child;
          } else {
            const std::uint32_t path = static_cast<std::uint32_t>(n) - ((1u << depth) - 1);
            const std::uint32_t v = (path << 1) | bit;
            std::uint32_t ctx_next =
                m.context_bits == 0
                    ? 0
                    : ((static_cast<std::uint32_t>(c) << width) | v) & ctx_mask;
            if (next_stream == 0 && !m.connect_across_words) ctx_next = 0;
            succ = stream_base[next_stream] + ctx_next * next_tree_nodes;
          }
          g.next[2 * state + bit] = static_cast<std::uint32_t>(succ);
        }
      }
    }
  }
  return g;
}

std::vector<bool> reachable_states(const ModelGraph& g) {
  std::vector<bool> seen(g.states, false);
  std::vector<std::uint32_t> work = {0};
  seen[0] = true;
  while (!work.empty()) {
    const std::uint32_t s = work.back();
    work.pop_back();
    for (unsigned bit = 0; bit < 2; ++bit) {
      if (!g.edge(s, bit)) continue;
      const std::uint32_t succ = g.next[2 * s + bit];
      if (!seen[succ]) {
        seen[succ] = true;
        work.push_back(succ);
      }
    }
  }
  return seen;
}

/// True when the reachable part of `g` contains a cycle every edge of which
/// consumes zero coder bits (effective probability 2^16). Such a decoder
/// state can recur without consuming input — the non-termination witness.
bool has_zero_bit_cycle(const ModelGraph& g, const std::vector<bool>& reachable) {
  // Work only on states with an outgoing zero-cost edge; iteratively remove
  // those whose zero-cost successors have all been removed. A non-empty
  // fixpoint is exactly a zero-cost cycle (plus its zero-cost ancestors).
  std::vector<std::uint32_t> candidates;
  std::vector<bool> alive(g.states, false);
  for (std::size_t s = 0; s < g.states; ++s) {
    if (!reachable[s]) continue;
    for (unsigned bit = 0; bit < 2; ++bit) {
      if (g.edge(s, bit) && g.p_eff(s, static_cast<unsigned>(bit)) >= kProbOne) {
        candidates.push_back(static_cast<std::uint32_t>(s));
        alive[s] = true;
        break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t s : candidates) {
      if (!alive[s]) continue;
      bool keeps_zero_succ = false;
      for (unsigned bit = 0; bit < 2; ++bit) {
        if (g.edge(s, bit) && g.p_eff(s, bit) >= kProbOne && alive[g.next[2 * s + bit]]) {
          keeps_zero_succ = true;
          break;
        }
      }
      if (!keeps_zero_succ) {
        alive[s] = false;
        changed = true;
      }
    }
  }
  return std::any_of(candidates.begin(), candidates.end(),
                     [&](std::uint32_t s) { return alive[s]; });
}

/// Worst-case decode cost analysis of one Markov model graph.
struct ModelCost {
  bool widened = false;
  bool terminates = false;
  std::size_t states = 0;
  std::uint32_t max_fanout = 0;
  std::uint32_t max_step_units = 0;  // worst single reachable transition
  std::uint64_t word_units = 0;      // worst word_bits consecutive steps
  /// series[t] = worst cost of t steps from the start-of-chunk state;
  /// series.size() == max_steps + 1. Empty when widened (use max_step_units
  /// * steps instead).
  std::vector<std::uint64_t> series;

  std::uint64_t chunk_units(std::size_t steps) const {
    if (!series.empty()) return series[steps];
    return static_cast<std::uint64_t>(max_step_units) * steps;
  }
};

/// Exhaustive backward DP over the model graph:
///   g_{t+1}[s] = max over takeable bits of cost(s, bit) + g_t[next(s, bit)]
/// g_t[s] is the worst coder cost of decoding t bits starting in state s.
/// `max_steps` is the longest chunk the image can ask for (chunk words x
/// word_bits).
ModelCost analyze_model_exhaustive(const ModelGraph& g, std::size_t max_steps) {
  ModelCost cost;
  cost.states = g.states;
  const std::vector<bool> reachable = reachable_states(g);
  cost.terminates = !has_zero_bit_cycle(g, reachable);
  for (std::size_t s = 0; s < g.states; ++s) {
    if (!reachable[s]) continue;
    std::uint32_t fanout = 0;
    for (unsigned bit = 0; bit < 2; ++bit) {
      if (!g.edge(s, bit)) continue;
      ++fanout;
      cost.max_step_units = std::max(cost.max_step_units, step_cost_units(g.p_eff(s, bit)));
    }
    cost.max_fanout = std::max(cost.max_fanout, fanout);
  }
  std::vector<std::uint64_t> prev(g.states, 0);
  std::vector<std::uint64_t> cur(g.states, 0);
  cost.series.assign(max_steps + 1, 0);
  for (std::size_t t = 1; t <= max_steps; ++t) {
    for (std::size_t s = 0; s < g.states; ++s) {
      std::uint64_t best = 0;
      for (unsigned bit = 0; bit < 2; ++bit) {
        if (!g.edge(s, bit)) continue;
        const std::uint64_t c = step_cost_units(g.p_eff(s, bit)) + prev[g.next[2 * s + bit]];
        best = std::max(best, c);
      }
      cur[s] = best;
    }
    std::swap(prev, cur);
    cost.series[t] = prev[0];  // start-of-chunk state is always state 0
    if (t == g.word_bits) {
      std::uint64_t worst = 0;
      for (std::size_t s = 0; s < g.states; ++s)
        if (reachable[s]) worst = std::max(worst, prev[s]);
      cost.word_units = worst;
    }
  }
  if (max_steps < g.word_bits)
    cost.word_units = static_cast<std::uint64_t>(cost.max_step_units) * g.word_bits;
  return cost;
}

/// Widened analysis: per-transition worst cost x path length. Sound for any
/// model, but termination can only be proved when no certain branch exists
/// at all (a certain branch somewhere *might* close a zero-bit cycle).
ModelCost analyze_model_widened(const TolerantModel& m) {
  ModelCost cost;
  cost.widened = true;
  cost.max_fanout = 2;
  bool any_certain = false;
  for (const auto& tree : m.trees) {
    for (const std::uint32_t p0 : tree) {
      for (unsigned bit = 0; bit < 2; ++bit) {
        const std::uint32_t p_eff = bit == 0 ? p0 : kProbOne - p0;
        if (p_eff == 0) continue;
        if (p_eff >= kProbOne) any_certain = true;
        cost.max_step_units = std::max(cost.max_step_units, step_cost_units(p_eff));
      }
    }
  }
  cost.terminates = !any_certain;
  cost.word_units = static_cast<std::uint64_t>(cost.max_step_units) * m.division.word_bits;
  return cost;
}

ModelCost analyze_model(const TolerantModel& m, std::size_t max_steps,
                        const CertifyOptions& opts) {
  std::size_t states = 0;
  const std::size_t ctx_count = m.context_count();
  for (const std::size_t nodes : m.tree_nodes) states += ctx_count * nodes;
  if (states == 0) throw CorruptDataError("Markov model has no states");
  if (states > opts.state_cap) {
    ModelCost cost = analyze_model_widened(m);
    cost.states = states;
    return cost;
  }
  return analyze_model_exhaustive(build_graph(m), max_steps);
}

// ---------------------------------------------------------------------------
// Per-codec certification.

void fail(DecodeCertificate& cert, std::string reason) {
  cert.verdict = Verdict::kFailed;
  cert.failures.push_back(std::move(reason));
}

std::size_t max_block_original_bytes(const core::CompressedImage& image) {
  std::size_t worst = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b)
    worst = std::max(worst, image.block_original_size(b));
  return worst;
}

std::uint32_t max_payload_bytes(const core::CompressedImage& image) {
  std::size_t worst = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b)
    worst = std::max(worst, image.block_payload(b).size());
  return static_cast<std::uint32_t>(worst);
}

/// Static per-block frame + coder-attach checks shared by the SAMC codecs:
/// every block must slice into its K sub-streams, and (rANS) every non-empty
/// chunk must hold a 4-byte attachable state >= 2^24.
void check_stream_frames(const core::CompressedImage& image, unsigned streams, bool rans,
                         unsigned word_bytes, DecodeCertificate& cert) {
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    core::StreamSpans spans;
    try {
      spans = core::split_stream_block(image.block_payload(b), streams);
    } catch (const Error& e) {
      fail(cert, "block " + std::to_string(b) + ": " + e.what());
      return;  // one structural failure is enough evidence
    }
    if (!rans) continue;
    const std::size_t words =
        word_bytes == 0 ? 0 : (image.block_original_size(b) + word_bytes - 1) / word_bytes;
    for (unsigned k = 0; k < streams; ++k) {
      if (core::chunk_size(words, streams, k) == 0) continue;
      const std::span<const std::uint8_t> chunk = spans[k];
      if (chunk.size() < kCoderAttachBytes) {
        fail(cert, "block " + std::to_string(b) + " stream " + std::to_string(k) +
                       ": rANS chunk holds " + std::to_string(chunk.size()) +
                       " byte(s), the coder attach needs 4");
        return;
      }
      const std::uint32_t state = (std::uint32_t{chunk[0]} << 24) |
                                  (std::uint32_t{chunk[1]} << 16) |
                                  (std::uint32_t{chunk[2]} << 8) | std::uint32_t{chunk[3]};
      if (state < (1u << 24)) {
        fail(cert, "block " + std::to_string(b) + " stream " + std::to_string(k) +
                       ": rANS initial state " + std::to_string(state) + " is below 2^24");
        return;
      }
    }
  }
}

/// Fold one analyzed model's graph properties into the certificate.
void fold_model(const ModelCost& cost, unsigned word_bits, DecodeCertificate& cert) {
  cert.exhaustive = cert.exhaustive && !cost.widened;
  cert.terminates = cert.terminates && cost.terminates;
  cert.explored_states += static_cast<std::uint32_t>(cost.widened ? 0 : cost.states);
  cert.max_fanout = std::max(cert.max_fanout, cost.max_fanout);
  cert.max_decode_depth = std::max(cert.max_decode_depth, word_bits);
}

void certify_samc(const core::CompressedImage& image, const CertifyOptions& opts,
                  DecodeCertificate& cert) {
  ByteSource src(image.tables());
  const std::uint8_t mode = src.u8();
  if (mode > 2) {
    fail(cert, "unknown SAMC coder mode byte " + std::to_string(mode));
    return;
  }
  const std::uint8_t streams = src.u8();
  if (streams == 0 || streams > core::kMaxEntropyStreams) {
    fail(cert, "entropy stream count " + std::to_string(streams) + " outside [1, 16]");
    return;
  }
  const TolerantModel model = parse_tolerant_model(src);
  const unsigned word_bits = model.division.word_bits;
  if (word_bits == 0 || word_bits % 8 != 0 || image.block_size() % (word_bits / 8) != 0) {
    fail(cert, "model word width incompatible with the block size");
    return;
  }
  const unsigned word_bytes = word_bits / 8;
  const std::size_t words_per_block = image.block_size() / word_bytes;
  const std::size_t chunk_words = core::chunk_size(words_per_block, streams, 0);
  const std::size_t max_steps = chunk_words * word_bits;

  const ModelCost cost = analyze_model(model, max_steps, opts);
  fold_model(cost, word_bits, cert);
  // Max stream width is the deepest per-decision tree walk.
  std::size_t depth = 0;
  for (const auto& stream : model.division.streams) depth = std::max(depth, stream.size());
  cert.max_decode_depth = static_cast<std::uint32_t>(depth);

  // Per-byte bound: any 8 model steps cost at most 8x the worst reachable
  // single transition (output-byte bits are scattered across a word's
  // steps, so consecutive-window costs do not bound them).
  cert.max_bits_per_byte =
      static_cast<std::uint32_t>(units_to_bits_ceil(std::uint64_t{8} * cost.max_step_units));

  // Per-block bound: K chunks, each its own coder over its words' steps,
  // behind the 2(K-1)-byte stream frame.
  std::uint64_t block_units = 0;
  std::uint64_t block_bytes = streams > 1 ? 2u * (streams - 1u) : 0u;
  for (unsigned k = 0; k < streams; ++k) {
    const std::size_t steps = core::chunk_size(words_per_block, streams, k) * word_bits;
    const std::uint64_t units = cost.chunk_units(steps);
    block_units += units;
    block_bytes += chunk_payload_bytes(units);
  }
  cert.max_bits_per_block = units_to_bits_ceil(block_units);
  cert.model_block_bytes = block_bytes;

  check_stream_frames(image, streams, mode == 2, word_bytes, cert);
}

void certify_samc_split(const core::CompressedImage& image, const CertifyOptions& opts,
                        DecodeCertificate& cert) {
  ByteSource src(image.tables());
  const std::uint8_t streams = src.u8();
  if (streams == 0 || streams > core::kMaxEntropyStreams) {
    fail(cert, "entropy stream count " + std::to_string(streams) + " outside [1, 16]");
    return;
  }
  // Three byte-granular models: opcode, modrm, immediate/displacement.
  // Every original byte decodes as one 8-bit word through exactly one of
  // them, so the block bound is max-original-bytes x the worst per-word
  // cost among the three.
  std::uint64_t worst_word_units = 0;
  std::uint32_t worst_step_units = 0;
  for (const char* name : {"opcode model", "modrm model", "imm model"}) {
    TolerantModel model;
    try {
      model = parse_tolerant_model(src);
    } catch (const Error& e) {
      fail(cert, std::string(name) + ": " + e.what());
      return;
    }
    if (model.division.word_bits != 8) {
      fail(cert, std::string(name) + ": split-stream models must be byte-granular");
      return;
    }
    const ModelCost cost = analyze_model(model, 8, opts);
    fold_model(cost, 8, cert);
    worst_word_units = std::max(worst_word_units, cost.word_units);
    worst_step_units = std::max(worst_step_units, cost.max_step_units);
  }
  const std::uint64_t max_bytes = max_block_original_bytes(image);
  cert.max_bits_per_byte =
      static_cast<std::uint32_t>(units_to_bits_ceil(std::uint64_t{8} * worst_step_units));
  const std::uint64_t block_units = max_bytes * worst_word_units;
  cert.max_bits_per_block = units_to_bits_ceil(block_units);
  // The K chunks partition the block's instructions; bounding their content
  // jointly (sum of per-chunk ceilings <= total ceiling + K) keeps the
  // formula independent of where the instruction split lands.
  cert.model_block_bytes = (streams > 1 ? 2u * (streams - 1u) : 0u) +
                           std::uint64_t{streams} * (kCoderAttachBytes + kCoderMarginBytes) +
                           (block_units + kUnitsPerByte - 1) / kUnitsPerByte + streams;
  check_stream_frames(image, streams, /*rans=*/false, /*word_bytes=*/0, cert);
}

/// Max code length among symbols the code actually assigns (its used decode
/// depth); 0 for an empty code.
std::uint32_t used_depth(const coding::HuffmanCode& code) {
  std::uint32_t depth = 0;
  for (const std::uint8_t len : code.lengths()) depth = std::max(depth, std::uint32_t{len});
  return depth;
}

/// Largest number of phase-1 symbols that can expand to exactly
/// `instr_count` instructions, over the coded expansion lengths in `table`.
/// This is the fuel actually reachable: a subset-sum DP, exact because
/// instr_count is small (a cache block's instructions). Returns instr_count
/// (the decoder's structural cap) when a coded symbol expands to nothing —
/// such a symbol burns fuel without progress, so the cap is reachable.
std::uint32_t reachable_fuel(const sadc::SymbolTable& table, const coding::HuffmanCode& sym_code,
                             std::size_t instr_count) {
  if (instr_count == 0 || table.size() == 0) return 0;
  std::vector<std::size_t> lens;
  bool zero_expansion = false;
  for (std::size_t id = 0; id < table.size() && id < sym_code.alphabet_size(); ++id) {
    if (sym_code.length_of(id) == 0) continue;
    const std::size_t len = table.expanded_length(static_cast<std::uint16_t>(id));
    if (len == 0) zero_expansion = true;
    else if (len <= instr_count) lens.push_back(len);
  }
  if (zero_expansion) return static_cast<std::uint32_t>(instr_count);
  std::sort(lens.begin(), lens.end());
  lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
  constexpr int kUnreachable = -1;
  std::vector<int> best(instr_count + 1, kUnreachable);
  best[0] = 0;
  for (std::size_t j = 1; j <= instr_count; ++j) {
    for (const std::size_t len : lens) {
      if (len > j || best[j - len] == kUnreachable) continue;
      best[j] = std::max(best[j], best[j - len] + 1);
    }
  }
  // No exact cover means phase 1 cannot legally complete for this count;
  // the structural cap stays the sound bound for the failure path.
  return best[instr_count] == kUnreachable ? static_cast<std::uint32_t>(instr_count)
                                           : static_cast<std::uint32_t>(best[instr_count]);
}

void certify_sadc_mips(const core::CompressedImage& image, DecodeCertificate& cert) {
  ByteSource src(image.tables());
  const sadc::SymbolTable table = sadc::SymbolTable::deserialize(src);
  const coding::HuffmanCode sym_code = coding::HuffmanCode::deserialize(src);
  const coding::HuffmanCode reg_code = coding::HuffmanCode::deserialize(src);
  const coding::HuffmanCode imm_code = coding::HuffmanCode::deserialize(src);
  const std::size_t instr_count = image.block_size() / 4;
  const std::uint64_t sym_len = used_depth(sym_code);
  const std::uint64_t reg_len = used_depth(reg_code);
  const std::uint64_t imm_len = used_depth(imm_code);
  cert.exhaustive = true;
  // Every Huffman decode consumes at least one bit and the symbol loop is
  // fuel-bounded, so the dictionary walk terminates unconditionally.
  cert.terminates = true;
  cert.explored_states = static_cast<std::uint32_t>(table.size());
  cert.max_fanout = 2;
  cert.max_decode_depth = std::max({used_depth(sym_code), used_depth(reg_code),
                                    used_depth(imm_code)});
  cert.max_phase1_fuel = reachable_fuel(table, sym_code, instr_count);
  // Phase 2 decodes at most 4 register values and phase 3 at most 4
  // immediate bytes per instruction (the raw escape's full word).
  const std::uint64_t block_bits = cert.max_phase1_fuel * sym_len +
                                   static_cast<std::uint64_t>(instr_count) * 4 * reg_len +
                                   static_cast<std::uint64_t>(instr_count) * 4 * imm_len;
  cert.max_bits_per_byte =
      static_cast<std::uint32_t>((sym_len + 4 * reg_len + 4 * imm_len + 3) / 4);
  cert.max_bits_per_block = block_bits;
  cert.model_block_bytes = (block_bits + 7) / 8;
}

void certify_sadc_x86(const core::CompressedImage& image, DecodeCertificate& cert) {
  ByteSource src(image.tables());
  const sadc::SymbolTable table = sadc::SymbolTable::deserialize(src);
  // Opcode-string table (mirrors the reader in sadc_x86.cpp).
  const std::uint64_t count = src.varint();
  if (count > sadc::kMaxSymbols) {
    fail(cert, "opcode-string table claims " + std::to_string(count) + " entries");
    return;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t len = src.u8();
    (void)src.bytes(len);
  }
  const coding::HuffmanCode sym_code = coding::HuffmanCode::deserialize(src);
  const coding::HuffmanCode modrm_code = coding::HuffmanCode::deserialize(src);
  const coding::HuffmanCode imm_code = coding::HuffmanCode::deserialize(src);
  // The per-block instruction count travels as the first 8 bits of the
  // payload, MSB-first — i.e. its first byte, statically readable.
  std::size_t instr_count = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    const std::span<const std::uint8_t> payload = image.block_payload(b);
    if (!payload.empty()) instr_count = std::max(instr_count, std::size_t{payload[0]});
  }
  const std::uint64_t sym_len = used_depth(sym_code);
  const std::uint64_t modrm_len = used_depth(modrm_code);
  const std::uint64_t imm_len = used_depth(imm_code);
  const std::uint64_t byte_len = std::max(modrm_len, imm_len);
  const std::uint64_t max_bytes = max_block_original_bytes(image);
  cert.exhaustive = true;
  cert.terminates = true;
  cert.explored_states = static_cast<std::uint32_t>(table.size());
  cert.max_fanout = 2;
  cert.max_decode_depth = static_cast<std::uint32_t>(std::max({sym_len, modrm_len, imm_len}));
  cert.max_phase1_fuel = reachable_fuel(table, sym_code, instr_count);
  // Per instruction: at most two structural decodes through the modrm code
  // (escape length or ModRM, plus SIB); every further decode produces one
  // original byte, so the byte-wise decodes total at most the block's
  // original size.
  const std::uint64_t block_bits = 8 + cert.max_phase1_fuel * sym_len +
                                   static_cast<std::uint64_t>(instr_count) * 2 * modrm_len +
                                   max_bytes * byte_len;
  // Worst single output byte: a one-byte instruction paying the count
  // prefix, its symbol, both structural decodes, and its own byte code.
  cert.max_bits_per_byte = static_cast<std::uint32_t>(8 + sym_len + 2 * modrm_len + byte_len);
  cert.max_bits_per_block = block_bits;
  cert.model_block_bytes = (block_bits + 7) / 8;
}

void certify_byte_huffman(const core::CompressedImage& image, DecodeCertificate& cert) {
  ByteSource src(image.tables());
  const coding::HuffmanCode code = coding::HuffmanCode::deserialize(src);
  std::uint32_t coded = 0;
  for (const std::uint8_t len : code.lengths())
    if (len > 0) ++coded;
  const std::uint64_t depth = used_depth(code);
  cert.exhaustive = true;
  cert.terminates = true;  // every prefix-code decode consumes >= 1 bit
  cert.explored_states = coded;
  cert.max_fanout = 2;
  cert.max_decode_depth = static_cast<std::uint32_t>(depth);
  cert.max_bits_per_byte = static_cast<std::uint32_t>(depth);
  cert.max_bits_per_block = static_cast<std::uint64_t>(image.block_size()) * depth;
  cert.model_block_bytes = (cert.max_bits_per_block + 7) / 8;
}

}  // namespace

DecodeCertificate certify(const core::CompressedImage& image, const CertifyOptions& opts) {
  CCOMP_SPAN("analysis.certify");
  CCOMP_TIMER("analysis.certify_ns");
  CCOMP_COUNT("analysis.certify.images", 1);
  DecodeCertificate cert;
  cert.block_size = image.block_size();
  cert.exhaustive = true;
  cert.terminates = true;
  cert.verdict = Verdict::kCertified;
  try {
    cert.max_block_payload_bytes = max_payload_bytes(image);
    switch (image.codec()) {
      case core::CodecKind::kSamc:
        certify_samc(image, opts, cert);
        break;
      case core::CodecKind::kSamcX86Split:
        certify_samc_split(image, opts, cert);
        break;
      case core::CodecKind::kSadc:
        if (image.isa() == core::IsaKind::kMips) {
          certify_sadc_mips(image, cert);
        } else if (image.isa() == core::IsaKind::kX86) {
          certify_sadc_x86(image, cert);
        } else {
          fail(cert, "SADC image with an ISA the dictionary codec does not support");
        }
        break;
      case core::CodecKind::kByteHuffman:
        certify_byte_huffman(image, cert);
        break;
      default:
        fail(cert, "unknown codec id " +
                       std::to_string(static_cast<unsigned>(image.codec())));
        break;
    }
  } catch (const Error& e) {
    fail(cert, e.what());
  }
  if (cert.verdict == Verdict::kCertified && !cert.terminates) {
    cert.verdict = Verdict::kUnbounded;
    cert.failures.emplace_back(
        "a reachable model cycle consumes zero compressed bits (decode input does not advance)");
  }
  CCOMP_COUNT("analysis.certify.states", cert.explored_states);
  if (!cert.exhaustive) CCOMP_COUNT("analysis.certify.widened", 1);
  if (cert.verdict == Verdict::kFailed) CCOMP_COUNT("analysis.certify.failed", 1);
  if (cert.verdict == Verdict::kUnbounded) CCOMP_COUNT("analysis.certify.unbounded", 1);
  return cert;
}

}  // namespace ccomp::analysis
