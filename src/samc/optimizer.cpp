#include "samc/optimizer.h"

#include <algorithm>

#include "support/histogram.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ccomp::samc {

using coding::MarkovConfig;
using coding::MarkovModel;
using coding::StreamDivision;

double division_cost_bits(const StreamDivision& division, std::span<const std::uint32_t> words,
                          unsigned context_bits, std::size_t block_words) {
  MarkovConfig config;
  config.division = division;
  config.context_bits = context_bits;
  const MarkovModel model = MarkovModel::train(config, words, block_words);
  return model.estimate_bits(words, block_words) +
         8.0 * static_cast<double>(model.table_bytes());
}

StreamDivision optimize_division(std::span<const std::uint32_t> words,
                                 const OptimizerOptions& options) {
  if (options.stream_count == 0 || 32 % options.stream_count != 0)
    throw ConfigError("optimizer stream_count must divide 32");
  const unsigned width = 32 / options.stream_count;
  const std::span<const std::uint32_t> sample =
      words.subspan(0, std::min(words.size(), options.sample_words));

  // --- correlation-seeded initial grouping -----------------------------
  const std::vector<double> corr = bit_correlation_matrix(sample);
  std::vector<int> assigned(32, -1);
  StreamDivision division;
  division.word_bits = 32;
  division.streams.assign(options.stream_count, {});

  // Seed stream s with the highest unassigned bit position, then greedily
  // pull in the bits most correlated with the stream's current members.
  for (unsigned s = 0; s < options.stream_count; ++s) {
    int seed_bit = -1;
    for (int b = 31; b >= 0; --b)
      if (assigned[static_cast<std::size_t>(b)] < 0) {
        seed_bit = b;
        break;
      }
    assigned[static_cast<std::size_t>(seed_bit)] = static_cast<int>(s);
    division.streams[s].push_back(static_cast<std::uint8_t>(seed_bit));
    while (division.streams[s].size() < width) {
      int best = -1;
      double best_score = -1.0;
      for (int b = 0; b < 32; ++b) {
        if (assigned[static_cast<std::size_t>(b)] >= 0) continue;
        double score = 0.0;
        for (const std::uint8_t member : division.streams[s])
          score += corr[static_cast<std::size_t>(b) * 32 + member];
        if (score > best_score) {
          best_score = score;
          best = b;
        }
      }
      assigned[static_cast<std::size_t>(best)] = static_cast<int>(s);
      division.streams[s].push_back(static_cast<std::uint8_t>(best));
    }
    // Keep a deterministic MSB-first order inside the stream.
    std::sort(division.streams[s].begin(), division.streams[s].end(),
              std::greater<std::uint8_t>());
  }
  division.validate();

  // --- randomized exchange hill-climbing --------------------------------
  //
  // The serial algorithm draws one swap per iteration and accepts it when
  // the cost drops. Stream sizes never change (a swap exchanges one bit per
  // side), so every RNG bound is fixed after seeding and the full swap
  // sequence can be materialized up front from the single seed — identical
  // draws to the serial loop.
  struct Swap {
    std::size_t s1, s2, i1, i2;
  };
  std::vector<Swap> swaps;
  swaps.reserve(options.swap_attempts);
  Rng rng(options.seed);
  for (unsigned it = 0; it < options.swap_attempts; ++it) {
    const std::size_t s1 = rng.next_below(options.stream_count);
    std::size_t s2 = rng.next_below(options.stream_count);
    if (s1 == s2) s2 = (s2 + 1) % options.stream_count;
    swaps.push_back({s1, s2, rng.next_below(division.streams[s1].size()),
                     rng.next_below(division.streams[s2].size())});
  }
  const auto apply_swap = [](StreamDivision base, const Swap& sw) {
    auto& a = base.streams[sw.s1];
    auto& b = base.streams[sw.s2];
    std::swap(a[sw.i1], b[sw.i2]);
    std::sort(a.begin(), a.end(), std::greater<std::uint8_t>());
    std::sort(b.begin(), b.end(), std::greater<std::uint8_t>());
    return base;
  };

  // Speculative batch evaluation. In the serial loop, a run of rejected
  // swaps leaves the division untouched, so candidates it..it+B-1 are all
  // generated against the same division until one is accepted. A batch
  // evaluates those candidates concurrently, then an ordered scan accepts
  // the FIRST improving one and discards the (speculative) rest — the
  // accepted-swap sequence, and therefore the result, is bit-identical to
  // the serial algorithm at any thread count and any batch size.
  double best_cost =
      division_cost_bits(division, sample, options.context_bits, options.block_words);
  std::size_t it = 0;
  while (it < swaps.size()) {
    const std::size_t batch =
        std::min(swaps.size() - it, std::max<std::size_t>(2 * par::thread_count(), 4));
    const std::vector<double> costs = par::parallel_map(batch, [&](std::size_t k) {
      return division_cost_bits(apply_swap(division, swaps[it + k]), sample,
                                options.context_bits, options.block_words);
    });
    std::size_t accepted = batch;
    for (std::size_t k = 0; k < batch; ++k) {
      if (costs[k] < best_cost) {
        accepted = k;
        break;
      }
    }
    if (accepted == batch) {
      it += batch;
      continue;
    }
    best_cost = costs[accepted];
    division = apply_swap(std::move(division), swaps[it + accepted]);
    it += accepted + 1;
  }
  return division;
}

}  // namespace ccomp::samc
