// Table T-PARSE: greedy vs optimal parsing. The paper adopts greedy parsing
// for its simplicity/speed; this table measures what an optimal
// (shortest-path) segmentation of each block against the same dictionary
// buys — quantifying the cost of the paper's engineering choice.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_parsing", argc, argv);
  std::printf("Table T-PARSE: SADC greedy vs optimal block parsing (scale=%.2f)\n", scale);

  core::RatioTable table("SADC ratio by parse mode", {"greedy", "optimal"});
  for (const char* name : {"gcc", "go", "m88ksim", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    sadc::SadcOptions greedy;
    sadc::SadcOptions optimal;
    optimal.parse_mode = sadc::ParseMode::kOptimal;
    const double row[] = {
        sadc::SadcMipsCodec(greedy).compress(code).sizes().ratio(),
        sadc::SadcMipsCodec(optimal).compress(code).sizes().ratio()};
    table.add_row(p.name, row);
    json.add(p.name, "sadc_ratio_greedy", row[0], "ratio");
    json.add(p.name, "sadc_ratio_optimal", row[1], "ratio");
    std::fflush(stdout);
  }
  table.print();
  const auto means = table.column_means();
  std::printf("\nOptimal parsing gains %.2f%% absolute over greedy — the paper's\n"
              "simplicity-over-optimality call costs little.\n",
              (means[0] - means[1]) * 100.0);
  return 0;
}
