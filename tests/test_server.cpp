// Concurrent image-server tests: sharded cache + request coalescing,
// quarantine circuit breaker (fail-fast and golden-serve policies, probe
// recovery), epoch-based hot-swap with rollback, and multi-thread
// determinism of served bytes. The suite runs under TSan in CI — every
// assertion here is scheduling-independent (e.g. "exactly one decode" holds
// whether a follower thread joins the in-flight decode or hits the cache
// entry the leader published).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "isa/mips/mips.h"
#include "memsys/cache.h"
#include "obs/obs.h"
#include "samc/samc.h"
#include "server/server.h"
#include "support/error.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

std::vector<std::vector<std::uint8_t>> golden_blocks(const core::BlockCodec& codec,
                                                     const core::CompressedImage& image) {
  const auto dec = codec.make_decompressor(image);
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(image.block_count());
  for (std::size_t b = 0; b < image.block_count(); ++b) blocks.push_back(dec->block(b));
  return blocks;
}

std::uint64_t obs_counter(std::string_view name) {
  for (const auto& c : obs::Registry::instance().snapshot().counters)
    if (c.name == name) return c.value;
  return 0;
}

/// Offset of `block`'s first payload byte within store_payload(), and the
/// golden value of that byte — what a stuck-at fault needs to target.
struct StuckTarget {
  std::size_t offset = 0;
  std::uint8_t golden = 0;
};

StuckTarget stuck_target(server::ImageServer& srv, const std::string& name, std::size_t block) {
  StuckTarget t;
  srv.with_store(name, [&](memsys::SelfHealingMemorySystem& heal) {
    const auto payload = heal.store().payload();
    const auto view = heal.store().block_payload(block);
    t.offset = static_cast<std::size_t>(view.data() - payload.data());
    t.golden = view[0];
  });
  return t;
}

void wedge_block(server::ImageServer& srv, const std::string& name, std::size_t block) {
  const StuckTarget t = stuck_target(srv, name, block);
  srv.with_store(name, [&](memsys::SelfHealingMemorySystem& heal) {
    heal.set_stuck_bytes({{t.offset, 0x00, static_cast<std::uint8_t>(~t.golden)}});
  });
}

void repair_block(server::ImageServer& srv, const std::string& name) {
  srv.with_store(name, [](memsys::SelfHealingMemorySystem& heal) {
    heal.clear_stuck_bytes();
    heal.repair_all();
  });
}

class ServerTest : public ::testing::Test {
 protected:
  void build(server::ImageServer::Options options = {}, std::uint32_t kb = 2) {
    code_ = mips_code(kb);
    image_.emplace(codec_.compress(code_));
    golden_ = golden_blocks(codec_, *image_);
    server_ = std::make_unique<server::ImageServer>(options);
    server_->load("img", codec_, *image_);
  }

  samc::SamcCodec codec_{samc::mips_defaults()};
  std::vector<std::uint8_t> code_;
  std::optional<core::CompressedImage> image_;
  std::vector<std::vector<std::uint8_t>> golden_;
  std::unique_ptr<server::ImageServer> server_;
};

TEST_F(ServerTest, FetchMatchesGoldenAndCaches) {
  build();
  for (std::uint32_t b = 0; b < golden_.size(); ++b) {
    const server::FetchResult first = server_->fetch("img", b);
    EXPECT_EQ(first.source, server::FetchSource::kDecode);
    EXPECT_FALSE(first.degraded);
    EXPECT_EQ(*first.bytes, golden_[b]);
    const server::FetchResult again = server_->fetch("img", b);
    EXPECT_EQ(again.source, server::FetchSource::kCache);
    EXPECT_EQ(*again.bytes, golden_[b]);
  }
  EXPECT_EQ(server_->stats().decodes, golden_.size());
  EXPECT_EQ(server_->cache_stats().hits, golden_.size());
}

TEST_F(ServerTest, UnknownNamesAndBadBlocksAreTyped) {
  build();
  EXPECT_THROW(server_->fetch("nope", 0), ConfigError);
  EXPECT_THROW(server_->fetch("img", static_cast<std::uint32_t>(golden_.size())), ConfigError);
  EXPECT_THROW(server_->load("img", codec_, *image_), ConfigError);
}

TEST_F(ServerTest, ConcurrentMissesCoalesceIntoOneDecode) {
  build();
  constexpr unsigned kThreads = 8;
  // Synthetic decode latency keeps the leader inside the decode long enough
  // for followers to arrive even on a single-core host; the assertions below
  // hold regardless (a late follower simply hits the published entry).
  server_->set_decode_delay(std::chrono::milliseconds(2));
  const std::uint64_t decodes_before = obs_counter("server.decodes");
  std::atomic<unsigned> ready{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint8_t>> served(kThreads);
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      served[t] = *server_->fetch("img", 3).bytes;
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& bytes : served) EXPECT_EQ(bytes, golden_[3]);
  // Exactly one decode ran; the other K-1 fetches either joined the flight
  // or hit the cache entry it published.
  EXPECT_EQ(server_->stats().decodes, 1u);
  EXPECT_EQ(obs_counter("server.decodes") - decodes_before, 1u);
  EXPECT_EQ(server_->cache_stats().hits + server_->cache_stats().coalesced, kThreads - 1);
}

TEST_F(ServerTest, QuarantineTripsFailFast) {
  server::ImageServer::Options opts;
  opts.decode_retries = 0;
  opts.quarantine_threshold = 2;
  opts.probe_period = 0;  // breaker stays open until explicitly probed
  opts.degraded = server::DegradedPolicy::kFailFast;
  build(opts);
  wedge_block(*server_, "img", 0);
  server_->flush_cache();

  // Below the threshold the failure surfaces as the ladder's escalation.
  EXPECT_THROW(server_->fetch("img", 0), FaultEscalationError);
  EXPECT_EQ(server_->stats().quarantine_trips, 0u);
  // The second consecutive hard failure trips the breaker.
  EXPECT_THROW(server_->fetch("img", 0), server::QuarantinedError);
  EXPECT_EQ(server_->stats().quarantine_trips, 1u);
  EXPECT_EQ(server_->stats().hard_failures, 2u);
  // Open breaker: no more decodes are attempted, rejection is immediate.
  const std::uint64_t decodes = server_->stats().decodes;
  EXPECT_THROW(server_->fetch("img", 0), server::QuarantinedError);
  EXPECT_EQ(server_->stats().decodes, decodes);
  EXPECT_GE(server_->stats().failfast_rejections, 2u);
  // Healthy blocks keep serving.
  EXPECT_EQ(*server_->fetch("img", 1).bytes, golden_[1]);
}

TEST_F(ServerTest, QuarantineServesGoldenThenRecovers) {
  server::ImageServer::Options opts;
  opts.decode_retries = 0;
  opts.quarantine_threshold = 1;
  opts.probe_period = 2;
  opts.degraded = server::DegradedPolicy::kServeGolden;
  build(opts);
  wedge_block(*server_, "img", 0);
  server_->flush_cache();

  // First hard failure trips the breaker and falls back to golden bytes:
  // correct, flagged degraded, never cached.
  const server::FetchResult degraded = server_->fetch("img", 0);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.source, server::FetchSource::kGolden);
  EXPECT_EQ(*degraded.bytes, golden_[0]);
  EXPECT_EQ(server_->stats().quarantine_trips, 1u);

  // Degraded results bypass the cache, so the next fetch is a miss again.
  EXPECT_TRUE(server_->fetch("img", 0).degraded);

  // Field repair, then keep fetching: the next probe decodes cleanly and
  // lifts the quarantine.
  repair_block(*server_, "img");
  server::FetchResult result = server_->fetch("img", 0);
  for (int i = 0; i < 4 && result.degraded; ++i) result = server_->fetch("img", 0);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(*result.bytes, golden_[0]);
  EXPECT_EQ(server_->stats().quarantine_recoveries, 1u);
  // Recovered block is cacheable again.
  EXPECT_EQ(server_->fetch("img", 0).source, server::FetchSource::kCache);
}

TEST_F(ServerTest, HotSwapRejectsCorruptReplacementAndRollsBack) {
  build();
  const std::uint64_t epoch_before = server_->epoch("img");

  // Replacement with a non-monotone LAT: statically rejected by the verifier.
  core::CompressedImage corrupt = *image_;
  auto lat = corrupt.mutable_lat_bytes();
  ASSERT_GE(lat.size(), 4u);
  lat[0] = lat[1] = lat[2] = lat[3] = 0xFF;
  const server::ImageServer::SwapResult rejected = server_->swap("img", codec_, corrupt);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.error.empty());
  EXPECT_EQ(rejected.epoch, epoch_before);
  EXPECT_EQ(server_->epoch("img"), epoch_before);
  EXPECT_EQ(server_->stats().swaps_rejected, 1u);
  // Old epoch keeps serving correct bytes.
  EXPECT_EQ(*server_->fetch("img", 0).bytes, golden_[0]);

  // A clean replacement (different program) is accepted: new epoch, new
  // bytes, old cache entries unreachable.
  const std::vector<std::uint8_t> code2 = mips_code(4);
  const core::CompressedImage image2 = codec_.compress(code2);
  const auto golden2 = golden_blocks(codec_, image2);
  const server::ImageServer::SwapResult accepted = server_->swap("img", codec_, image2);
  EXPECT_TRUE(accepted.accepted);
  EXPECT_GT(accepted.epoch, epoch_before);
  EXPECT_EQ(server_->block_count("img"), golden2.size());
  for (std::uint32_t b = 0; b < golden2.size(); ++b)
    EXPECT_EQ(*server_->fetch("img", b).bytes, golden2[b]);
}

TEST_F(ServerTest, ServedBytesDeterministicAcrossThreadCounts) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    build();
    server_->start_scrubber(std::chrono::milliseconds(1), 4);
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Each thread sweeps every block from a different starting phase.
        const std::size_t blocks = golden_.size();
        for (std::size_t i = 0; i < 3 * blocks; ++i) {
          const auto b = static_cast<std::uint32_t>((i * (t + 1) + t) % blocks);
          if (*server_->fetch("img", b).bytes != golden_[b]) corrupt.store(true);
        }
      });
    }
    for (auto& w : workers) w.join();
    server_->stop_scrubber();
    EXPECT_FALSE(corrupt.load()) << threads << " threads";
  }
}

TEST_F(ServerTest, ScrubberCooperatesWithFaultsAndReaders) {
  build();
  server_->start_scrubber(std::chrono::milliseconds(1), 8);
  // Corrupt the store while the scrubber and a reader run: nothing wrong is
  // ever served (the ladder corrects or the scrubber refetches first).
  for (int round = 0; round < 20; ++round) {
    server_->with_store("img", [&](memsys::SelfHealingMemorySystem& heal) {
      auto payload = heal.store_payload();
      payload[static_cast<std::size_t>(round * 7) % payload.size()] ^= 0x10;
    });
    server_->flush_cache();
    for (std::uint32_t b = 0; b < golden_.size(); ++b)
      EXPECT_EQ(*server_->fetch("img", b).bytes, golden_[b]);
  }
  server_->stop_scrubber();
  // A synchronous sweep is deterministic (the background thread's cadence is
  // not, on a loaded single-core host).
  EXPECT_EQ(server_->scrub_once(golden_.size()), golden_.size());
  EXPECT_GT(server_->stats().scrub_sweeps, 0u);
}

// --- Lock-free fast-path stress tests -------------------------------------
// Everything below races readers against the writers the seqlock hit index
// must survive: LRU eviction, epoch invalidation from hot-swaps, cache
// flushes, and quarantine churn. Each assertion is a byte-exact golden
// comparison or an exact folded-counter count — scheduling-independent, so
// the suite doubles as the TSan workload for the lock-free path in CI.

TEST_F(ServerTest, HotHitStatsFoldStripedCounters) {
  build();
  (void)server_->fetch("img", 0);  // one decode warms the block
  const memsys::BlockCacheStats cache_before = server_->cache_stats();
  const server::ServerStats srv_before = server_->stats();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> corrupt{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const server::FetchResult r = server_->fetch("img", 0);
        if (*r.bytes != golden_[0] || r.source != server::FetchSource::kCache)
          corrupt.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(corrupt.load());
  // Every fetch was a hot hit: the striped lookup/hit counters must fold to
  // the exact total, and no new decode may have run. This is the stats
  // contract of the fast path — per-counter exact even though the counts
  // accumulate on per-thread cache-line stripes.
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  const memsys::BlockCacheStats cache_after = server_->cache_stats();
  EXPECT_EQ(cache_after.lookups - cache_before.lookups, kTotal);
  EXPECT_EQ(cache_after.hits - cache_before.hits, kTotal);
  EXPECT_EQ(cache_after.misses, cache_before.misses);
  const server::ServerStats srv_after = server_->stats();
  EXPECT_EQ(srv_after.lookups - srv_before.lookups, kTotal);
  EXPECT_EQ(srv_after.decodes, srv_before.decodes);
}

TEST_F(ServerTest, ReadersRaceEvictionPressure) {
  // A budget far below the image's decompressed size keeps the LRU evicting
  // (and the hit index retiring records through EBR) on every sweep, while
  // readers probe the same slots lock-free. Any dangling HitRecord read
  // shows up as a TSan race or a byte mismatch.
  server::ImageServer::Options opts;
  opts.cache.capacity_bytes = 512;  // a handful of blocks resident at once
  opts.cache.shards = 2;
  opts.cache.hit_slots = 32;
  build(opts);
  constexpr unsigned kThreads = 4;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t blocks = golden_.size();
      for (std::size_t i = 0; i < 4 * blocks; ++i) {
        const auto b = static_cast<std::uint32_t>((i * (2 * t + 1)) % blocks);
        if (*server_->fetch("img", b).bytes != golden_[b]) corrupt.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(server_->cache_stats().evictions, 0u);
}

TEST_F(ServerTest, ReadersRaceRepeatedHotSwaps) {
  build();
  const std::vector<std::vector<std::uint8_t>> golden_a = golden_;
  const std::vector<std::uint8_t> code_b = mips_code(4);
  const core::CompressedImage image_b = codec_.compress(code_b);
  const std::vector<std::vector<std::uint8_t>> golden_b = golden_blocks(codec_, image_b);
  const std::size_t safe_blocks = std::min(golden_a.size(), golden_b.size());
  ASSERT_GT(safe_blocks, 0u);

  std::atomic<bool> stop{false};
  std::atomic<bool> corrupt{false};
  constexpr unsigned kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto b = static_cast<std::uint32_t>(i++ % safe_blocks);
        const auto bytes = *server_->fetch("img", b).bytes;
        // The invariant across a swap: served bytes are exactly one image's
        // golden block — a reader racing the epoch flip may get the old
        // image's bytes, never a stale-epoch mix of the two.
        if (bytes != golden_a[b] && bytes != golden_b[b]) corrupt.store(true);
      }
    });
  }
  // Swap back and forth while the readers hammer; every swap re-verifies the
  // replacement and flips the serving epoch (old entries become unreachable).
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    const auto& next = (round % 2 == 0) ? image_b : *image_;
    const server::ImageServer::SwapResult r = server_->swap("img", codec_, next);
    EXPECT_TRUE(r.accepted) << r.error;
    if (!r.accepted) break;  // keep the join below reachable on failure
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_GE(server_->stats().swaps_accepted, static_cast<std::uint64_t>(kRounds));
  // Quiesced: the last swap landed on image A, so a full sweep serves
  // exactly A's bytes (kRounds is even).
  for (std::uint32_t b = 0; b < golden_a.size(); ++b)
    EXPECT_EQ(*server_->fetch("img", b).bytes, golden_a[b]);
}

TEST_F(ServerTest, ReadersRaceQuarantineTripAndRecovery) {
  server::ImageServer::Options opts;
  opts.decode_retries = 0;
  opts.quarantine_threshold = 1;
  opts.probe_period = 2;
  opts.degraded = server::DegradedPolicy::kServeGolden;
  build(opts);

  std::atomic<bool> stop{false};
  std::atomic<bool> corrupt{false};
  constexpr unsigned kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Degraded or not, block 0 must always serve its golden bytes —
        // under kServeGolden the quarantine path falls back, never throws.
        if (*server_->fetch("img", 0).bytes != golden_[0]) corrupt.store(true);
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    wedge_block(*server_, "img", 0);
    server_->flush_cache();  // force the readers off the cached copy
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    repair_block(*server_, "img");
    server_->flush_cache();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_GE(server_->stats().quarantine_trips, 1u);
  // The store is healthy now; probing lifts the quarantine within a few
  // fetches and the block becomes cacheable (non-degraded) again.
  server::FetchResult result = server_->fetch("img", 0);
  for (int i = 0; i < 8 && result.degraded; ++i) result = server_->fetch("img", 0);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(*result.bytes, golden_[0]);
  EXPECT_GE(server_->stats().quarantine_recoveries, 1u);
}

// The sharded cache in isolation: LRU eviction respects the byte budget.
TEST(ShardedCache, EvictsLeastRecentlyUsedPastBudget) {
  memsys::ShardedCacheConfig cfg;
  cfg.capacity_bytes = 256;
  cfg.shards = 1;
  memsys::ShardedBlockCache cache(cfg);
  auto insert = [&](std::uint32_t block) {
    const memsys::BlockKey key{1, block};
    auto ticket = cache.acquire(key);
    ASSERT_TRUE(ticket.leader);
    cache.publish(key, ticket.flight,
                  std::make_shared<std::vector<std::uint8_t>>(64, static_cast<std::uint8_t>(block)),
                  false, true);
  };
  for (std::uint32_t b = 0; b < 6; ++b) insert(b);
  EXPECT_LE(cache.resident_bytes(), 256u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // The most recent entries survive.
  EXPECT_TRUE(cache.acquire({1, 5}).bytes != nullptr);
  // The oldest was evicted; acquiring it starts a fresh flight.
  auto ticket = cache.acquire({1, 0});
  EXPECT_TRUE(ticket.leader);
  cache.fail({1, 0}, ticket.flight, nullptr);
}

TEST(ShardedCache, EpochInvalidationDropsOnlyThatEpoch) {
  memsys::ShardedBlockCache cache(memsys::ShardedCacheConfig{});
  for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
    const memsys::BlockKey key{epoch, 7};
    auto ticket = cache.acquire(key);
    ASSERT_TRUE(ticket.leader);
    cache.publish(key, ticket.flight, std::make_shared<std::vector<std::uint8_t>>(8, 0xAB), false,
                  true);
  }
  cache.invalidate_epoch(1);
  EXPECT_EQ(cache.acquire({1, 7}).bytes, nullptr);
  EXPECT_NE(cache.acquire({2, 7}).bytes, nullptr);
}

// try_get is the raw lock-free probe: best-effort (nullptr falls through to
// the authoritative mutexed path), and it must drop a key the moment its
// epoch is invalidated or the cache is flushed.
TEST(ShardedCache, TryGetTracksPublishInvalidateAndFlush) {
  memsys::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.hit_slots = 16;
  memsys::ShardedBlockCache cache(cfg);
  const memsys::BlockKey key{3, 9};
  EXPECT_EQ(cache.try_get(key), nullptr);

  auto ticket = cache.acquire(key);
  ASSERT_TRUE(ticket.leader);
  cache.publish(key, ticket.flight, std::make_shared<std::vector<std::uint8_t>>(16, 0x5A),
                false, true);
  const auto bytes = cache.try_get(key);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->size(), 16u);
  EXPECT_EQ((*bytes)[0], 0x5A);
  // A different block / epoch never aliases the published slot.
  EXPECT_EQ(cache.try_get({3, 10}), nullptr);
  EXPECT_EQ(cache.try_get({4, 9}), nullptr);

  cache.invalidate_epoch(3);
  EXPECT_EQ(cache.try_get(key), nullptr);

  auto again = cache.acquire(key);
  ASSERT_TRUE(again.leader);
  cache.publish(key, again.flight, std::make_shared<std::vector<std::uint8_t>>(16, 0xA5),
                false, true);
  ASSERT_NE(cache.try_get(key), nullptr);
  cache.flush();
  EXPECT_EQ(cache.try_get(key), nullptr);
}

// hit_slots = 0 turns the lock-free index off entirely: try_get always
// misses, but acquire()'s mutexed path keeps serving (the pre-v3.1 shape).
TEST(ShardedCache, DisabledHitIndexStillServesThroughLockedPath) {
  memsys::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.hit_slots = 0;
  memsys::ShardedBlockCache cache(cfg);
  const memsys::BlockKey key{1, 2};
  auto ticket = cache.acquire(key);
  ASSERT_TRUE(ticket.leader);
  cache.publish(key, ticket.flight, std::make_shared<std::vector<std::uint8_t>>(8, 0x11), false,
                true);
  EXPECT_EQ(cache.try_get(key), nullptr);
  const auto hit = cache.acquire(key);
  ASSERT_NE(hit.bytes, nullptr);
  EXPECT_EQ((*hit.bytes)[0], 0x11);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace ccomp
