#include "core/report.h"

#include <gtest/gtest.h>

namespace ccomp::core {
namespace {

TEST(RatioTable, PrintsHeaderRowsAndMeans) {
  RatioTable table("unit test table", {"alpha", "beta"});
  const double r1[] = {0.25, 0.75};
  const double r2[] = {0.35, 0.65};
  table.add_row("first", r1);
  table.add_row("second", r2);

  ::testing::internal::CaptureStdout();
  table.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("unit test table"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("0.250"), std::string::npos);
  EXPECT_NE(out.find("MEAN"), std::string::npos);
  EXPECT_NE(out.find("0.300"), std::string::npos);  // mean of alpha column
  EXPECT_NE(out.find("0.700"), std::string::npos);  // mean of beta column
}

TEST(RatioTable, EmptyTableMeansAreZero) {
  RatioTable table("empty", {"a"});
  const auto means = table.column_means();
  ASSERT_EQ(means.size(), 1u);
  EXPECT_DOUBLE_EQ(means[0], 0.0);
  ::testing::internal::CaptureStdout();
  table.print();  // must not crash with zero rows
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("MEAN"), std::string::npos);
}

}  // namespace
}  // namespace ccomp::core
