#include "support/bitio.h"

namespace ccomp {

void BitWriter::write_bits(std::uint64_t value, unsigned count) {
  if (count > 64) throw ConfigError("BitWriter::write_bits count > 64");
  if (count == 0) return;
  if (count < 64) value &= (std::uint64_t{1} << count) - 1;
  // Emit from the most significant of the `count` bits downward.
  unsigned remaining = count;
  while (remaining > 0) {
    if (pending_bits_ == 0) bytes_.push_back(0);
    const unsigned room = 8 - pending_bits_;
    const unsigned take = remaining < room ? remaining : room;
    const std::uint64_t chunk = (value >> (remaining - take)) & ((std::uint64_t{1} << take) - 1);
    bytes_.back() = static_cast<std::uint8_t>(bytes_.back() | (chunk << (room - take)));
    pending_bits_ = (pending_bits_ + take) & 7u;
    remaining -= take;
  }
  bit_count_ += count;
}

void BitWriter::align_to_byte() {
  if (pending_bits_ != 0) {
    bit_count_ += 8 - pending_bits_;
    pending_bits_ = 0;
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  align_to_byte();
  bit_count_ = 0;
  return std::move(bytes_);
}

std::uint64_t BitReader::read_bits(unsigned count) {
  if (count > 64) throw ConfigError("BitReader::read_bits count > 64");
  // Compare against bits_left() rather than bit_pos_ + count so a position
  // near UINT64_MAX (from a hostile seek offset) cannot wrap the check.
  if (count > bits_left()) throw CorruptDataError("bit stream truncated");
  std::uint64_t value = 0;
  unsigned remaining = count;
  while (remaining > 0) {
    const std::size_t byte_index = static_cast<std::size_t>(bit_pos_ >> 3);
    const unsigned bit_in_byte = static_cast<unsigned>(bit_pos_ & 7u);
    const unsigned avail = 8 - bit_in_byte;
    const unsigned take = remaining < avail ? remaining : avail;
    const unsigned shift = avail - take;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((data_[byte_index] >> shift) & ((1u << take) - 1u));
    value = (value << take) | chunk;
    bit_pos_ += take;
    remaining -= take;
  }
  return value;
}

std::uint64_t BitReader::peek_bits(unsigned count) const {
  if (count > 64) throw ConfigError("BitReader::peek_bits count > 64");
  std::uint64_t value = 0;
  std::uint64_t pos = bit_pos_;
  unsigned remaining = count;
  const std::uint64_t size = bit_size();
  while (remaining > 0) {
    if (pos >= size) {
      value <<= remaining;  // zero padding past the end
      break;
    }
    const std::size_t byte_index = static_cast<std::size_t>(pos >> 3);
    const unsigned bit_in_byte = static_cast<unsigned>(pos & 7u);
    const unsigned avail = 8 - bit_in_byte;
    const unsigned take = remaining < avail ? remaining : avail;
    const unsigned shift = avail - take;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((data_[byte_index] >> shift) & ((1u << take) - 1u));
    value = (value << take) | chunk;
    pos += take;
    remaining -= take;
  }
  return value;
}

void BitReader::align_to_byte() {
  bit_pos_ = (bit_pos_ + 7) & ~std::uint64_t{7};
  if (bit_pos_ > bit_size()) bit_pos_ = bit_size();
}

void BitReader::seek_bits(std::uint64_t bit_offset) {
  if (bit_offset > bit_size()) throw CorruptDataError("seek past end of bit stream");
  bit_pos_ = bit_offset;
}

}  // namespace ccomp
