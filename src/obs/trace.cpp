#include "obs/obs.h"

#include <atomic>
#include <mutex>

namespace ccomp::obs {
namespace {

std::atomic<bool> g_trace_enabled{false};

/// The span ring. `head` counts every recorded event forever; an event
/// lands at head % capacity, so the ring holds the most recent `capacity`
/// events and older ones are overwritten in place. Slot writes are plain
/// stores — each claimed index is written by exactly one thread — so a
/// drain must happen at a quiescent point (see obs.h).
struct Ring {
  std::vector<SpanEvent> slots;
  std::atomic<std::uint64_t> head{0};
};

Ring& ring() {
  static Ring* r = [] {
    auto* ring = new Ring;
    ring->slots.resize(65536);
    return ring;
  }();
  return *r;
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

namespace detail {

thread_local std::uint32_t t_span_depth = 0;

void record_span(const char* name, std::uint32_t depth, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  Ring& r = ring();
  const std::uint64_t index = r.head.fetch_add(1, std::memory_order_relaxed);
  SpanEvent& slot = r.slots[index % r.slots.size()];
  slot.name = name;
  slot.thread = thread_id();
  slot.depth = depth;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

void set_trace_capacity(std::size_t events) {
  Ring& r = ring();
  r.slots.assign(events == 0 ? 1 : events, SpanEvent{});
  r.head.store(0, std::memory_order_relaxed);
}

std::vector<SpanEvent> trace_events() {
  Ring& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::uint64_t capacity = r.slots.size();
  std::vector<SpanEvent> out;
  if (head <= capacity) {
    out.assign(r.slots.begin(), r.slots.begin() + static_cast<std::ptrdiff_t>(head));
    return out;
  }
  // Wrapped: the oldest surviving event sits at head % capacity.
  out.reserve(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i)
    out.push_back(r.slots[(head + i) % capacity]);
  return out;
}

void clear_trace() { ring().head.store(0, std::memory_order_relaxed); }

}  // namespace ccomp::obs
