#include "memsys/cache.h"

#include "obs/obs.h"

namespace ccomp::memsys {
namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ICache::ICache(const CacheConfig& config) : config_(config) {
  if (!is_pow2(config_.line_bytes) || config_.line_bytes < 4)
    throw ConfigError("cache line size must be a power of two >= 4");
  if (config_.associativity == 0) throw ConfigError("associativity must be nonzero");
  if (config_.size_bytes % (config_.line_bytes * config_.associativity) != 0)
    throw ConfigError("cache size must be divisible by line_bytes * associativity");
  sets_ = config_.size_bytes / (config_.line_bytes * config_.associativity);
  if (!is_pow2(sets_)) throw ConfigError("number of sets must be a power of two");
  ways_.assign(static_cast<std::size_t>(sets_) * config_.associativity, Way{});
}

bool ICache::access(std::uint32_t address) {
  stats_.accesses.fetch_add(1, std::memory_order_relaxed);
  ++clock_;
  const std::uint64_t line = address / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line) & (sets_ - 1);
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.associativity];
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      CCOMP_COUNT("memsys.cache.hits", 1);
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("memsys.cache.misses", 1);
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

void ICache::flush() {
  for (Way& way : ways_) way.valid = false;
}

// ---------------------------------------------------------------------------
// ShardedBlockCache
// ---------------------------------------------------------------------------

ShardedBlockCache::ShardedBlockCache(const ShardedCacheConfig& config) : config_(config) {
  if (config_.capacity_bytes == 0) throw ConfigError("block cache capacity must be nonzero");
  const std::size_t n = round_up_pow2(config_.shards == 0 ? 1 : config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
#if !defined(CCOMP_OBS_DISABLE)
    // Labelled per-shard series alongside the aggregate counters: the
    // Prometheus exporter renders the `|shard=N` suffix as a label, and the
    // per-shard values always sum to the unlabelled aggregate.
    const std::string suffix = "|shard=" + std::to_string(i);
    shard->obs_hits_id = obs::Registry::instance().counter("server.cache.hits" + suffix);
    shard->obs_misses_id = obs::Registry::instance().counter("server.cache.misses" + suffix);
#endif
    shards_.push_back(std::move(shard));
  }
  shard_capacity_ = config_.capacity_bytes / n;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
}

ShardedBlockCache::Shard& ShardedBlockCache::shard_for(const BlockKey& key) {
  return *shards_[BlockKeyHash{}(key) & (shards_.size() - 1)];
}

ShardedBlockCache::Ticket ShardedBlockCache::acquire(const BlockKey& key) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto hit = shard.index.find(key); hit != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.cache.hits", 1);
#if !defined(CCOMP_OBS_DISABLE)
    obs::Registry::instance().add(shard.obs_hits_id, 1);
#endif
    return Ticket{hit->second->bytes, nullptr, false};
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.cache.misses", 1);
#if !defined(CCOMP_OBS_DISABLE)
  obs::Registry::instance().add(shard.obs_misses_id, 1);
#endif
  if (auto flying = shard.in_flight.find(key); flying != shard.in_flight.end()) {
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.cache.coalesced", 1);
    return Ticket{nullptr, flying->second, false};
  }
  auto flight = std::make_shared<InFlight>();
  shard.in_flight.emplace(key, flight);
  return Ticket{nullptr, std::move(flight), true};
}

void ShardedBlockCache::insert_locked(Shard& shard, const BlockKey& key, const Bytes& bytes) {
  if (auto existing = shard.index.find(key); existing != shard.index.end()) {
    shard.bytes -= existing->second->bytes->size();
    shard.bytes += bytes->size();
    existing->second->bytes = bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, existing->second);
  } else {
    shard.lru.push_front(Entry{key, bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes->size();
    stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  }
  // Evict LRU tails past the shard budget, but never the entry just touched:
  // a single over-budget block must still be servable.
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes->size();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.cache.evictions", 1);
  }
}

void ShardedBlockCache::publish(const BlockKey& key, const Flight& flight, Bytes bytes,
                                bool degraded, bool cacheable) {
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->bytes = bytes;
    flight->degraded = degraded;
    flight->done = true;
  }
  flight->cv.notify_all();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto flying = shard.in_flight.find(key);
      flying != shard.in_flight.end() && flying->second == flight)
    shard.in_flight.erase(flying);
  if (cacheable && bytes) insert_locked(shard, key, bytes);
}

void ShardedBlockCache::fail(const BlockKey& key, const Flight& flight, std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->error = std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto flying = shard.in_flight.find(key);
      flying != shard.in_flight.end() && flying->second == flight)
    shard.in_flight.erase(flying);
}

ShardedBlockCache::Bytes ShardedBlockCache::wait(InFlight& flight) {
  std::unique_lock<std::mutex> lock(flight.mu);
  flight.cv.wait(lock, [&] { return flight.done; });
  if (flight.error) std::rethrow_exception(flight.error);
  return flight.bytes;
}

void ShardedBlockCache::invalidate_epoch(std::uint64_t epoch) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.epoch == epoch) {
        shard.bytes -= it->bytes->size();
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ShardedBlockCache::flush() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

std::size_t ShardedBlockCache::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace ccomp::memsys
