#!/usr/bin/env python3
"""Generate the verifier check-catalogue table into README.md and DESIGN.md.

The single source of truth for check IDs is the constexpr catalogue arrays in
src/verify/report.cpp (kCatalogue, kAnaCatalogue, kCfgCatalogue). This script
parses those entries and rewrites the markdown table between the

    <!-- check-table:begin -->
    <!-- check-table:end -->

markers in README.md and DESIGN.md, so the docs can never silently drift from
the code: CI runs `--check`, which exits 1 if a regeneration would change
either file (the fix is to run `--write` and commit).

Usage:
    tools/gen_check_table.py --write    # regenerate the tables in place
    tools/gen_check_table.py --check    # exit 1 if the tables are stale

Standard library only; run from the repository root.

Exit status: 0 on success / tables current, 1 on drift or parse failure.
"""

import argparse
import re
import sys

SOURCE = "src/verify/report.cpp"
BEGIN = "<!-- check-table:begin -->"
END = "<!-- check-table:end -->"

# One catalogue entry: {"SER001", Severity::kError, "summary text"}. The
# summary never contains escaped quotes today; the pattern rejects them so a
# future escape shows up as a parse failure instead of a truncated row.
ENTRY = re.compile(
    r'\{\s*"([A-Z]{3}\d{3})"\s*,\s*Severity::k(Error|Warn|Info)\s*,\s*"([^"\\]*)"\s*\}'
)

SEVERITY = {"Error": "error", "Warn": "warn", "Info": "info"}


def parse_catalogue(path):
    """Return [(id, severity, summary)] in source order; raise on nonsense."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    entries = [(m.group(1), SEVERITY[m.group(2)], m.group(3)) for m in ENTRY.finditer(text)]
    if len(entries) < 10:
        raise SystemExit(f"{path}: parsed only {len(entries)} catalogue entries — "
                         "did the array syntax change?")
    ids = [e[0] for e in entries]
    dupes = {i for i in ids if ids.count(i) > 1}
    if dupes:
        raise SystemExit(f"{path}: duplicate check ids {sorted(dupes)}")
    return entries


def render_table(entries, indent):
    lines = [f"{indent}| check | severity | invariant |",
             f"{indent}|-------|----------|-----------|"]
    for check_id, severity, summary in entries:
        lines.append(f"{indent}| `{check_id}` | {severity} | {summary} |")
    return lines


def splice(path, entries):
    """Return (old_text, new_text) for the file with the table regenerated."""
    with open(path, encoding="utf-8") as f:
        old = f.read()
    lines = old.split("\n")
    begin = [i for i, l in enumerate(lines) if l.strip() == BEGIN]
    end = [i for i, l in enumerate(lines) if l.strip() == END]
    if len(begin) != 1 or len(end) != 1 or end[0] <= begin[0]:
        raise SystemExit(f"{path}: expected exactly one {BEGIN} ... {END} marker pair")
    # The markers keep their own indentation (DESIGN.md nests the table
    # inside a numbered-list item); the table inherits it.
    indent = lines[begin[0]][: len(lines[begin[0]]) - len(lines[begin[0]].lstrip())]
    new_lines = lines[: begin[0] + 1] + render_table(entries, indent) + lines[end[0]:]
    return old, "\n".join(new_lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="regenerate tables in place")
    mode.add_argument("--check", action="store_true", help="exit 1 if tables are stale")
    ap.add_argument("--source", default=SOURCE, help="catalogue source file")
    ap.add_argument("--targets", nargs="*", default=["README.md", "DESIGN.md"],
                    help="markdown files carrying the marker pair")
    args = ap.parse_args()

    entries = parse_catalogue(args.source)
    stale = []
    for target in args.targets:
        old, new = splice(target, entries)
        if old == new:
            continue
        if args.write:
            with open(target, "w", encoding="utf-8") as f:
                f.write(new)
            print(f"{target}: regenerated ({len(entries)} checks)")
        else:
            stale.append(target)
    if args.check:
        if stale:
            print(f"stale check table in: {', '.join(stale)} — "
                  f"run tools/gen_check_table.py --write and commit", file=sys.stderr)
            return 1
        print(f"check tables current ({len(entries)} checks)")
    elif args.write and not stale:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
