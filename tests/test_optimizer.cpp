#include "samc/optimizer.h"

#include <gtest/gtest.h>

#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace ccomp::samc {
namespace {

TEST(Optimizer, ReturnsValidDivision) {
  Rng rng(61);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4000; ++i) words.push_back(rng.next_u32());
  OptimizerOptions opt;
  opt.swap_attempts = 20;
  const auto division = optimize_division(words, opt);
  division.validate();  // throws if not a partition
  EXPECT_EQ(division.stream_count(), 4u);
}

TEST(Optimizer, NeverWorseThanItsStartingPoint) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 24;
  const auto words = workload::generate_mips(p);
  OptimizerOptions opt;
  opt.swap_attempts = 60;
  opt.sample_words = 4096;
  const auto optimized = optimize_division(words, opt);
  const std::span<const std::uint32_t> sample(words.data(), opt.sample_words);
  const double cost_optimized =
      division_cost_bits(optimized, sample, opt.context_bits, opt.block_words);
  const double cost_contiguous = division_cost_bits(
      coding::StreamDivision::contiguous(32, 4), sample, opt.context_bits, opt.block_words);
  // Hill climbing accepts only improvements over its own start; it should
  // also not be dramatically worse than the paper's default division.
  EXPECT_LT(cost_optimized, cost_contiguous * 1.05);
}

TEST(Optimizer, FindsStructureInPlantedData) {
  // Plant structure: bits {0..7} copy bits {8..15}; an optimizer that groups
  // correlated bits should beat the contiguous division.
  Rng rng(62);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 8000; ++i) {
    const auto low = static_cast<std::uint32_t>(rng.next_below(256));
    const std::uint32_t rest = rng.next_u32() & 0xFFFF0000u;
    words.push_back(rest | (low << 8) | low);
  }
  OptimizerOptions opt;
  opt.swap_attempts = 120;
  opt.sample_words = 4096;
  opt.seed = 7;
  const auto optimized = optimize_division(words, opt);
  const std::span<const std::uint32_t> sample(words.data(), opt.sample_words);
  const double cost_optimized =
      division_cost_bits(optimized, sample, opt.context_bits, opt.block_words);
  const double cost_contiguous = division_cost_bits(
      coding::StreamDivision::contiguous(32, 4), sample, opt.context_bits, opt.block_words);
  EXPECT_LE(cost_optimized, cost_contiguous);
}

TEST(Optimizer, OptimizedDivisionRoundTripsInCodec) {
  workload::Profile p = *workload::find_profile("wave5");
  p.code_kb = 8;
  const auto words = workload::generate_mips(p);
  OptimizerOptions opt;
  opt.swap_attempts = 20;
  opt.sample_words = 2048;
  SamcOptions samc_opt = mips_defaults();
  samc_opt.markov.division = optimize_division(words, opt);
  const SamcCodec codec(samc_opt);
  codec.compress_verified(mips::words_to_bytes(words));
}

TEST(Optimizer, RejectsBadStreamCount) {
  std::vector<std::uint32_t> words(100, 0);
  OptimizerOptions opt;
  opt.stream_count = 5;
  EXPECT_THROW(optimize_division(words, opt), ConfigError);
}

TEST(Optimizer, DeterministicForFixedSeed) {
  Rng rng(63);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 2000; ++i) words.push_back(rng.next_u32() & 0x00FFFFFF);
  OptimizerOptions opt;
  opt.swap_attempts = 30;
  const auto a = optimize_division(words, opt);
  const auto b = optimize_division(words, opt);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ccomp::samc
