#include "coding/rangecoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"

namespace ccomp::coding {
namespace {

// Encode `bits` against `probs`, then decode and compare.
void round_trip(std::span<const unsigned> bits, std::span<const Prob> probs) {
  ASSERT_EQ(bits.size(), probs.size());
  RangeEncoder enc;
  for (std::size_t i = 0; i < bits.size(); ++i) enc.encode_bit(bits[i], probs[i]);
  enc.finish();
  const auto payload = enc.take();
  RangeDecoder dec(payload);
  for (std::size_t i = 0; i < bits.size(); ++i)
    ASSERT_EQ(dec.decode_bit(probs[i]), bits[i]) << "bit " << i;
}

TEST(RangeCoder, EmptyBlock) {
  RangeEncoder enc;
  enc.finish();
  const auto payload = enc.take();
  EXPECT_LE(payload.size(), 1u);
}

TEST(RangeCoder, SingleBits) {
  for (const unsigned bit : {0u, 1u}) {
    for (const Prob p : {Prob{1}, Prob{100}, kProbHalf, Prob{65000}, Prob{65535}}) {
      const unsigned bits[1] = {bit};
      const Prob probs[1] = {p};
      round_trip(bits, probs);
    }
  }
}

TEST(RangeCoder, RandomBitsRandomProbs) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<unsigned> bits;
    std::vector<Prob> probs;
    const std::size_t n = 1 + rng.next_below(4000);
    for (std::size_t i = 0; i < n; ++i) {
      bits.push_back(static_cast<unsigned>(rng.next_below(2)));
      probs.push_back(clamp_prob(1 + static_cast<std::uint32_t>(rng.next_below(65535))));
    }
    round_trip(bits, probs);
  }
}

TEST(RangeCoder, SkewedSourceCompressesNearEntropy) {
  // p(1) = 0.05: entropy = 0.286 bits/bit. 80k bits should land within a few
  // percent of 80k * H(0.05) / 8 bytes.
  Rng rng(78);
  const double p1 = 0.05;
  const Prob p0 = clamp_prob(static_cast<std::uint32_t>((1.0 - p1) * 65536.0));
  RangeEncoder enc;
  std::size_t n = 80000;
  std::vector<unsigned> bits;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.chance(p1) ? 1u : 0u);
  for (const unsigned b : bits) enc.encode_bit(b, p0);
  enc.finish();
  const auto payload = enc.take();
  const double entropy = -(p1 * std::log2(p1) + (1 - p1) * std::log2(1 - p1));
  const double ideal_bytes = entropy * static_cast<double>(n) / 8.0;
  EXPECT_LT(static_cast<double>(payload.size()), ideal_bytes * 1.05 + 16);
  // And it must still round-trip.
  RangeDecoder dec(payload);
  for (const unsigned b : bits) ASSERT_EQ(dec.decode_bit(p0), b);
}

TEST(RangeCoder, ExtremeProbabilityRuns) {
  // Long runs of the likely symbol followed by the unlikely one, at both
  // extremes — stresses renormalization and carry chains.
  for (const Prob p0 : {Prob{65535}, Prob{1}}) {
    std::vector<unsigned> bits(5000, p0 == 65535 ? 0u : 1u);
    bits.push_back(p0 == 65535 ? 1u : 0u);  // one surprise at the end
    std::vector<Prob> probs(bits.size(), p0);
    round_trip(bits, probs);
  }
}

TEST(RangeCoder, AlternatingCarryStress) {
  // Probabilities very close to 1/2 with alternating bits exercise the
  // 0xFF-pending byte chain.
  std::vector<unsigned> bits;
  std::vector<Prob> probs;
  for (int i = 0; i < 20000; ++i) {
    bits.push_back(static_cast<unsigned>(i & 1));
    probs.push_back(static_cast<Prob>(0x8000 + (i % 3) - 1));
  }
  round_trip(bits, probs);
}

TEST(RangeCoder, ResetIsolatesBlocks) {
  // Two blocks with the same encoder instance must decode independently.
  RangeEncoder enc;
  const Prob p = 0x4000;
  enc.encode_bit(1, p);
  enc.encode_bit(1, p);
  enc.finish();
  const auto block1 = enc.take();
  enc.encode_bit(0, p);
  enc.encode_bit(1, p);
  enc.finish();
  const auto block2 = enc.take();

  RangeDecoder d1(block1);
  EXPECT_EQ(d1.decode_bit(p), 1u);
  EXPECT_EQ(d1.decode_bit(p), 1u);
  RangeDecoder d2(block2);
  EXPECT_EQ(d2.decode_bit(p), 0u);
  EXPECT_EQ(d2.decode_bit(p), 1u);
}

TEST(QuantizeProb, ProducesPowersOfHalf) {
  for (const Prob p : {Prob{1}, Prob{1000}, Prob{20000}, kProbHalf, Prob{50000}, Prob{65535}}) {
    const Prob q = quantize_prob_pow2(p, 8);
    const std::uint32_t lps = q <= kProbHalf ? q : 0x10000u - q;
    // lps must be 2^(16-s) for s in [1,8].
    bool found = false;
    for (unsigned s = 1; s <= 8; ++s) found |= (lps == (0x10000u >> s));
    EXPECT_TRUE(found) << "p=" << p << " q=" << q;
  }
}

TEST(QuantizeProb, HalfStaysHalf) {
  EXPECT_EQ(quantize_prob_pow2(kProbHalf, 8), kProbHalf);
}

TEST(QuantizeProb, QuantizedStreamRoundTrips) {
  Rng rng(79);
  std::vector<unsigned> bits;
  std::vector<Prob> probs;
  for (int i = 0; i < 10000; ++i) {
    bits.push_back(static_cast<unsigned>(rng.next_below(2)));
    probs.push_back(quantize_prob_pow2(
        clamp_prob(1 + static_cast<std::uint32_t>(rng.next_below(65535))), 6));
  }
  round_trip(bits, probs);
}

TEST(QuantizeProb, EfficiencyLossIsBounded) {
  // Witten et al.: restricting the LPS to powers of 1/2 costs a bounded
  // fraction of coding efficiency. Check the redundancy at p0 = 0.8:
  // quantized to LPS=1/4 -> code 1s at 2 bits, 0s at log2(4/3).
  const double p0 = 0.8;
  const Prob q = quantize_prob_pow2(clamp_prob(static_cast<std::uint32_t>(p0 * 65536)), 8);
  const double q0 = q / 65536.0;
  const double cross_entropy = -(p0 * std::log2(q0) + (1 - p0) * std::log2(1 - q0));
  const double entropy = -(p0 * std::log2(p0) + (1 - p0) * std::log2(1 - p0));
  EXPECT_LT(cross_entropy / entropy, 1.10);
}

}  // namespace
}  // namespace ccomp::coding
