// ccomp_lint — static image verifier / decodability linter.
//
// Proves a serialized compressed image well-formed without running the
// decoder: container framing and integrity trailer, LAT monotonicity and
// coverage, Huffman/dictionary/Markov table soundness, and (given the
// original program) ISA-level control-flow checks — every branch target must
// land on a block the LAT maps.
//
//   ccomp_lint <image.ccmp> [--code=<original.bin>]   lint one image
//   ccomp_lint --suite [--kb=N]                       lint every image the
//       SAMC/SADC/SAMC-split codecs produce over the synthetic SPEC95 suite
//       (N kB per benchmark; 0 = each profile's full size; default 16)
//   ccomp_lint --checks[=ID,...]                      print the check catalogue
//       (optionally only the listed IDs; unknown IDs are rejected)
//   ccomp_lint --certify ...                          also run the decode-
//       certificate layer (ANA/WCB): prove worst-case decode bounds and
//       termination; kUnbounded and kFailed verdicts are errors
//
// Exit status: 0 = no error-severity findings, 1 = errors found, 2 = usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/mips/mips.h"
#include "layout/layout.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "support/error.h"
#include "support/parallel.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"
#include "workload/x86_gen.h"

namespace {

using namespace ccomp;

std::vector<std::uint8_t> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void print_report(const std::string& label, const verify::VerifyReport& report) {
  if (report.findings().empty()) {
    std::printf("%s: clean\n", label.c_str());
    return;
  }
  std::printf("%s: %zu error(s), %zu warning(s), %zu info\n", label.c_str(),
              report.count(verify::Severity::kError), report.count(verify::Severity::kWarn),
              report.count(verify::Severity::kInfo));
  std::fputs(report.to_string().c_str(), stdout);
}

/// Aggregate finding counts by check id and print one summary line — emitted
/// even when everything is clean, so CI logs always show what ran.
void print_check_summary(const std::map<std::string, std::size_t>& by_check) {
  std::printf("checks: %zu in catalogue,", verify::check_catalogue().size());
  if (by_check.empty()) {
    std::printf(" none triggered\n");
    return;
  }
  for (const auto& [check, count] : by_check) std::printf(" %s x%zu", check.c_str(), count);
  std::printf("\n");
}

void tally(const verify::VerifyReport& report, std::map<std::string, std::size_t>& by_check) {
  for (const verify::Finding& f : report.findings()) ++by_check[f.check];
}

/// Print the catalogue, optionally restricted to a comma-separated ID list.
/// An unknown ID is a typed ConfigError naming the valid IDs — silently
/// matching nothing would turn a typo into a false "nothing to report".
int cmd_checks(const char* filter) {
  std::vector<std::string> wanted;
  if (filter != nullptr && *filter != '\0') {
    std::string list(filter);
    std::size_t begin = 0;
    while (begin <= list.size()) {
      const std::size_t comma = list.find(',', begin);
      const std::string id =
          list.substr(begin, comma == std::string::npos ? std::string::npos : comma - begin);
      if (!id.empty()) {
        bool known = false;
        for (const verify::CheckInfo& info : verify::check_catalogue())
          if (id == info.id) {
            known = true;
            break;
          }
        if (!known) {
          std::string valid;
          for (const verify::CheckInfo& info : verify::check_catalogue()) {
            if (!valid.empty()) valid += ", ";
            valid += info.id;
          }
          throw ConfigError("unknown check id '" + id + "'; valid ids: " + valid);
        }
        wanted.push_back(id);
      }
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (wanted.empty()) throw ConfigError("--checks= needs at least one check id");
  }
  std::printf("%-8s %-6s %s\n", "check", "level", "invariant");
  for (const verify::CheckInfo& info : verify::check_catalogue()) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), info.id) == wanted.end())
      continue;
    std::printf("%-8s %-6s %s\n", info.id,
                std::string(verify::severity_name(info.severity)).c_str(), info.summary);
  }
  return 0;
}

int cmd_lint_file(const char* image_path, const char* code_path, bool certify) {
  const std::vector<std::uint8_t> bytes = read_file(image_path);
  std::vector<std::uint8_t> code;
  verify::VerifyOptions opts;
  opts.certify = certify;
  if (code_path != nullptr) {
    code = read_file(code_path);
    opts.original_code = code;
  }
  const verify::VerifyReport report = verify::verify_serialized(bytes, opts);
  print_report(image_path, report);
  std::map<std::string, std::size_t> by_check;
  tally(report, by_check);
  print_check_summary(by_check);
  return report.ok() ? 0 : 1;
}

std::vector<std::uint8_t> serialized(const core::CompressedImage& image) {
  ByteSink sink;
  image.serialize(sink);
  return sink.take();
}

/// Profile-guided tiered SAMC build for the suite: the layout section (and
/// its LAY checks) only exists on images built through ccomp::layout, so the
/// linter suite must produce one to exercise that verifier surface.
core::CompressedImage tiered_samc(const core::BlockCodec& codec, const workload::Profile& profile,
                                  const std::vector<std::uint8_t>& code) {
  const workload::MipsProgram prog = workload::generate_mips_program(profile);
  workload::TraceOptions topt;
  topt.length = 50'000;
  const auto trace =
      workload::generate_trace(profile, prog.function_starts, prog.words.size(), topt);
  const std::uint32_t block_size = samc::mips_defaults().block_size;
  const std::size_t blocks = (code.size() + block_size - 1) / block_size;
  const layout::AccessProfile access =
      layout::AccessProfile::from_trace(trace, block_size, blocks);
  return layout::build_tiered_image(
      codec, code,
      layout::optimize_layout(access, code.size(), block_size, layout::LayoutOptions{}));
}

int cmd_suite(std::uint32_t kb, bool certify) {
  std::size_t errors = 0;
  std::size_t images = 0;
  std::map<std::string, std::size_t> by_check;
  for (const workload::Profile& base : workload::spec95_profiles()) {
    workload::Profile profile = base;
    if (kb != 0) profile.code_kb = kb;

    const std::vector<std::uint8_t> mips_code =
        mips::words_to_bytes(workload::generate_mips(profile));
    const std::vector<std::uint8_t> x86_code = workload::generate_x86(profile);

    struct Job {
      const char* label;
      std::unique_ptr<core::BlockCodec> codec;
      const std::vector<std::uint8_t>* code;
      bool layout = false;  // build through ccomp::layout (LAY checks active)
    };
    std::vector<Job> jobs;
    jobs.push_back({"SAMC/mips", std::make_unique<samc::SamcCodec>(samc::mips_defaults()),
                    &mips_code});
    jobs.push_back({"SAMC/mips tiered",
                    std::make_unique<samc::SamcCodec>(samc::mips_defaults()), &mips_code, true});
    jobs.push_back({"SADC/mips", std::make_unique<sadc::SadcMipsCodec>(), &mips_code});
    jobs.push_back({"SAMC/x86", std::make_unique<samc::SamcCodec>(samc::x86_defaults()),
                    &x86_code});
    jobs.push_back({"SADC/x86", std::make_unique<sadc::SadcX86Codec>(), &x86_code});
    jobs.push_back({"SAMC-split/x86", std::make_unique<samc::SamcX86SplitCodec>(), &x86_code});

    for (const Job& job : jobs) {
      ++images;
      const std::string label = std::string(profile.name) + " " + job.label;
      // One job blowing up (a codec bug, a verifier crash) must not silence
      // the rest of the suite — count it as a failed image and continue.
      try {
        const core::CompressedImage image = job.layout
                                                ? tiered_samc(*job.codec, profile, *job.code)
                                                : job.codec->compress(*job.code);
        verify::VerifyOptions opts;
        opts.original_code = *job.code;
        opts.certify = certify;
        const verify::VerifyReport report = verify::verify_serialized(serialized(image), opts);
        tally(report, by_check);
        if (!report.ok()) ++errors;
        if (report.findings().empty()) {
          std::printf("%-28s clean\n", label.c_str());
        } else {
          print_report(label, report);
        }
      } catch (const ccomp::Error& e) {
        ++errors;
        std::printf("%-28s exception: %s\n", label.c_str(), e.what());
      }
    }
  }
  print_check_summary(by_check);
  std::printf("suite: %zu image(s), %zu with errors\n", images, errors);
  return errors == 0 ? 0 : 1;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s <image.ccmp> [--code=<original.bin>] [--certify]\n"
      "       %s --suite [--kb=N] [--certify]\n"
      "       %s --checks[=ID,...]\n",
      prog, prog, prog);
}

}  // namespace

int main(int argc, char** argv) {
  const char* image_path = nullptr;
  const char* code_path = nullptr;
  const char* checks_filter = nullptr;
  bool checks_mode = false;
  bool suite = false;
  bool certify = false;
  std::uint32_t kb = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checks") == 0) {
      checks_mode = true;
    } else if (std::strncmp(argv[i], "--checks=", 9) == 0) {
      checks_mode = true;
      checks_filter = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
    } else if (std::strcmp(argv[i], "--suite") == 0) {
      suite = true;
    } else if (std::strncmp(argv[i], "--kb=", 5) == 0) {
      kb = static_cast<std::uint32_t>(std::atoi(argv[i] + 5));
    } else if (std::strncmp(argv[i], "--code=", 7) == 0) {
      code_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      par::set_thread_count(static_cast<std::size_t>(std::atoi(argv[i] + 10)));
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0]);
      return 0;
    } else if (argv[i][0] != '-') {
      image_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  try {
    if (checks_mode) return cmd_checks(checks_filter);
    if (suite) return cmd_suite(kb, certify);
    if (image_path == nullptr) {
      print_help(argv[0]);
      return 2;
    }
    return cmd_lint_file(image_path, code_path, certify);
  } catch (const ccomp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
