// Static image verifier tests: clean images lint clean for every codec,
// single-bit corruptions are detected with a named check ID (the integrity
// trailer guarantees this even when the flip lands in a structurally valid
// value like a Markov probability), region-targeted tampering maps to the
// right check family, and — the loader contract — whenever the decoder
// would throw on a corrupted container, the verifier flags it first.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "baseline/bytehuff.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "support/crc32.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "verify/verify.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

std::vector<std::uint8_t> x86_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return workload::generate_x86(p);
}

std::vector<std::uint8_t> serialized_image(const core::BlockCodec& codec,
                                           std::span<const std::uint8_t> code) {
  const auto image = codec.compress(code);
  ByteSink sink;
  image.serialize(sink);
  return sink.take();
}

// Recompute the 4-byte little-endian CRC trailer after tampering, so tests
// can exercise the structural checks behind the integrity wall.
void refresh_crc(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(bytes).subspan(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
}

// Byte ranges of the container regions, recovered by re-parsing the framing.
struct Layout {
  std::size_t tables_begin = 0, tables_end = 0;
  std::size_t lat_begin = 0, lat_end = 0;
  std::size_t payload_begin = 0, payload_end = 0;
};

Layout parse_layout(std::span<const std::uint8_t> bytes) {
  ByteSource src(bytes);
  Layout l;
  src.u32();  // magic
  src.u8();   // codec
  src.u8();   // isa
  const bool variable = src.u8() != 0;
  src.u32();  // block size
  src.u64();  // original size
  const std::uint64_t tables_len = src.varint();
  l.tables_begin = src.position();
  src.bytes(static_cast<std::size_t>(tables_len));
  l.tables_end = l.lat_begin = src.position();
  const std::uint64_t offsets = src.varint();
  for (std::uint64_t i = 0; i < offsets; ++i) src.varint();
  if (variable)
    for (std::uint64_t i = 0; i + 1 < offsets; ++i) src.varint();
  l.lat_end = src.position();
  const std::uint64_t payload_len = src.varint();
  l.payload_begin = src.position();
  src.bytes(static_cast<std::size_t>(payload_len));
  l.payload_end = src.position();
  return l;
}

std::set<std::string> catalogue_ids() {
  std::set<std::string> ids;
  for (const verify::CheckInfo& info : verify::check_catalogue()) ids.insert(info.id);
  return ids;
}

// ---------------------------------------------------------------------------
// Clean images lint clean.

TEST(VerifyClean, SamcMips) {
  const auto code = mips_code(8);
  verify::VerifyOptions opts;
  opts.original_code = code;
  const auto report = verify::verify_serialized(
      serialized_image(samc::SamcCodec(samc::mips_defaults()), code), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, SadcMips) {
  const auto code = mips_code(8);
  verify::VerifyOptions opts;
  opts.original_code = code;
  const auto report =
      verify::verify_serialized(serialized_image(sadc::SadcMipsCodec(), code), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, SamcX86) {
  const auto code = x86_code(8);
  verify::VerifyOptions opts;
  opts.original_code = code;
  const auto report = verify::verify_serialized(
      serialized_image(samc::SamcCodec(samc::x86_defaults()), code), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, SadcX86) {
  const auto code = x86_code(8);
  verify::VerifyOptions opts;
  opts.original_code = code;
  const auto report =
      verify::verify_serialized(serialized_image(sadc::SadcX86Codec(), code), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, SamcX86Split) {
  const auto code = x86_code(8);
  verify::VerifyOptions opts;
  opts.original_code = code;
  const auto report =
      verify::verify_serialized(serialized_image(samc::SamcX86SplitCodec(), code), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, ByteHuffman) {
  const auto code = mips_code(8);
  const auto report =
      verify::verify_serialized(serialized_image(baseline::ByteHuffmanCodec(), code));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyClean, SamcNibbleMode) {
  samc::SamcOptions o = samc::mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const auto code = mips_code(8);
  const auto report = verify::verify_serialized(serialized_image(samc::SamcCodec(o), code));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Every finding the verifier can produce must use a catalogued ID.
TEST(VerifyCatalogue, IdsAreUniqueAndNamed) {
  std::set<std::string> seen;
  for (const verify::CheckInfo& info : verify::check_catalogue()) {
    EXPECT_TRUE(seen.insert(info.id).second) << "duplicate check ID " << info.id;
    EXPECT_NE(info.summary, nullptr);
    EXPECT_GT(std::string(info.id).size(), 0u);
  }
  EXPECT_GE(seen.size(), 30u);
}

// ---------------------------------------------------------------------------
// Detection rate: every single-bit flip anywhere in the container must be
// detected with a named check ID (the acceptance bar is >= 95%; the CRC
// trailer makes it 100%).

class VerifyDetection : public ::testing::Test {
 protected:
  void all_single_bit_flips(std::span<const std::uint8_t> good) {
    const std::set<std::string> known = catalogue_ids();
    std::size_t detected = 0;
    const std::size_t trials = good.size() * 8;
    for (std::size_t bit = 0; bit < trials; ++bit) {
      std::vector<std::uint8_t> bad(good.begin(), good.end());
      bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      const auto report = verify::verify_serialized(bad);
      if (!report.ok()) {
        ++detected;
        for (const verify::Finding& f : report.findings())
          ASSERT_TRUE(known.count(f.check)) << "uncatalogued check " << f.check;
      }
    }
    // >= 95% acceptance bar; the integrity trailer actually catches all.
    EXPECT_GE(detected * 100, trials * 95)
        << detected << " of " << trials << " single-bit flips detected";
    EXPECT_EQ(detected, trials);
  }
};

TEST_F(VerifyDetection, SamcMipsAllFlips) {
  all_single_bit_flips(serialized_image(samc::SamcCodec(samc::mips_defaults()), mips_code(1)));
}

TEST_F(VerifyDetection, SadcMipsAllFlips) {
  all_single_bit_flips(serialized_image(sadc::SadcMipsCodec(), mips_code(1)));
}

TEST_F(VerifyDetection, SadcX86SampledFlips) {
  // The SADC/x86 container is larger (opcode-string table); sample one bit
  // per byte instead of all eight.
  const auto good = serialized_image(sadc::SadcX86Codec(), x86_code(1));
  Rng rng(7);
  std::size_t detected = 0;
  for (std::size_t at = 0; at < good.size(); ++at) {
    auto bad = good;
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    if (!verify::verify_serialized(bad).ok()) ++detected;
  }
  EXPECT_EQ(detected, good.size());
}

// ---------------------------------------------------------------------------
// Region-targeted tampering maps to the right check IDs. The CRC is
// refreshed after each edit so the structural checks themselves (not the
// trailer) must catch the damage.

class VerifyRegion : public ::testing::Test {
 protected:
  void SetUp() override {
    code_ = mips_code(4);
    good_ = serialized_image(samc::SamcCodec(samc::mips_defaults()), code_);
  }
  std::vector<std::uint8_t> code_;
  std::vector<std::uint8_t> good_;
};

TEST_F(VerifyRegion, BadMagic) {
  auto bad = good_;
  bad[0] ^= 0xFF;
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER003")) << report.to_string();
}

TEST_F(VerifyRegion, BadCodecId) {
  auto bad = good_;
  bad[4] = 0xFF;
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("IMG001")) << report.to_string();
}

TEST_F(VerifyRegion, BadIsaId) {
  auto bad = good_;
  bad[5] = 0xFF;
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("IMG002")) << report.to_string();
}

TEST_F(VerifyRegion, ZeroBlockSize) {
  auto bad = good_;
  for (std::size_t i = 7; i < 11; ++i) bad[i] = 0;  // u32 block_size after magic+3 flags
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("IMG003")) << report.to_string();
}

TEST_F(VerifyRegion, WrongOriginalSize) {
  auto bad = good_;
  bad[11] ^= 0x01;  // low byte of u64 original_size
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  // Block count no longer matches the original size (IMG004), and the
  // control-flow layer is not involved since no code is supplied.
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("IMG004")) << report.to_string();
}

TEST_F(VerifyRegion, Truncation) {
  auto bad = good_;
  bad.resize(bad.size() / 2);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER001")) << report.to_string();
}

TEST_F(VerifyRegion, TrailingGarbage) {
  auto bad = good_;
  bad.insert(bad.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  const auto report = verify::verify_serialized(bad);
  // Warn, not error: the container itself is intact and decodable.
  EXPECT_TRUE(report.has("SER004")) << report.to_string();
}

TEST_F(VerifyRegion, FlippedCrcTrailer) {
  auto bad = good_;
  bad[bad.size() - 1] ^= 0x80;
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("SER002")) << report.to_string();
  // The container itself is intact, so the trailer must be the only error.
  EXPECT_EQ(report.error_count(), 1u) << report.to_string();
}

TEST_F(VerifyRegion, EmptyLat) {
  auto bad = good_;
  const Layout l = parse_layout(good_);
  bad[l.lat_begin] = 0;  // LAT count varint -> 0
  refresh_crc(bad);
  const auto report = verify::verify_serialized(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("LAT003")) << report.to_string();
}

TEST_F(VerifyRegion, MarkovProbZeroed) {
  // SAMC tables are a serialized Markov model; zeroing a pair of u16 prob
  // bytes mid-table produces either a zero probability (MKV001) or a parse
  // failure (TBL001) depending on alignment — both are table-family errors.
  const Layout l = parse_layout(good_);
  bool flagged = false;
  for (std::size_t at = l.tables_end - 8; at >= l.tables_end - 16; --at) {
    auto bad = good_;
    bad[at] = 0;
    bad[at + 1] = 0;
    refresh_crc(bad);
    const auto report = verify::verify_serialized(bad);
    for (const verify::Finding& f : report.findings())
      if (f.check.rfind("MKV", 0) == 0 || f.check.rfind("TBL", 0) == 0) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST_F(VerifyRegion, HuffmanTableTampered) {
  // Overwrite the head of the SADC table blob (symbol-table / code-length
  // area) and expect a table-family finding (HUF/DIC/TBL).
  const auto code = mips_code(4);
  const auto good = serialized_image(sadc::SadcMipsCodec(), code);
  const Layout l = parse_layout(good);
  bool flagged = false;
  Rng rng(11);
  for (int trial = 0; trial < 64 && !flagged; ++trial) {
    auto bad = good;
    const std::size_t at =
        l.tables_begin + rng.next_below(l.tables_end - l.tables_begin);
    bad[at] = static_cast<std::uint8_t>(0xFF);
    refresh_crc(bad);
    const auto report = verify::verify_serialized(bad);
    for (const verify::Finding& f : report.findings())
      if (f.check.rfind("HUF", 0) == 0 || f.check.rfind("DIC", 0) == 0 ||
          f.check.rfind("TBL", 0) == 0 || f.check.rfind("SER", 0) == 0)
        flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST_F(VerifyRegion, ControlFlowSizeMismatch) {
  verify::VerifyOptions opts;
  const std::vector<std::uint8_t> wrong(code_.size() + 4, 0);
  opts.original_code = wrong;
  const auto report = verify::verify_serialized(good_, opts);
  EXPECT_TRUE(report.has("CFG005")) << report.to_string();
}

// ---------------------------------------------------------------------------
// Loader contract: whenever deserialize+decode would throw, the verifier
// should have reported an error first. With the CRC deliberately refreshed
// after each flip (an adversarial, self-consistent tamper — the raw-flip
// case is covered exactly by test_corruption via SER002), the only
// escapes are content-preserving table edits whose sole effect is a wrong
// decoded length, which no static pass can see. Those are rare; require a
// >= 75% catch rate on everything the decoder rejects.

class VerifyBeforeDecode : public ::testing::Test {
 protected:
  void contract(const core::BlockCodec& codec, std::span<const std::uint8_t> code,
                std::uint64_t seed) {
    const auto good = serialized_image(codec, code);
    const Layout l = parse_layout(good);
    Rng rng(seed);
    int decoder_throws = 0;
    int flagged = 0;
    for (int trial = 0; trial < 120; ++trial) {
      auto bad = good;
      // Structural prefix only: [0, payload_begin). Payload decodability is
      // a dynamic property the static pass deliberately does not model.
      const std::size_t at = rng.next_below(l.payload_begin);
      bad[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      refresh_crc(bad);

      bool threw = false;
      try {
        ByteSource src(bad);
        const auto image = core::CompressedImage::deserialize(src);
        const auto decompressor = codec.make_decompressor(image);
        for (std::size_t b = 0; b < image.block_count(); ++b) (void)decompressor->block(b);
      } catch (const Error&) {
        threw = true;
      }
      if (!threw) continue;
      ++decoder_throws;
      if (verify::verify_serialized(bad).error_count() >= 1) ++flagged;
    }
    EXPECT_GE(decoder_throws, 1);
    EXPECT_GE(flagged * 4, decoder_throws * 3)
        << flagged << " of " << decoder_throws << " decoder-rejected corruptions flagged";
  }
};

TEST_F(VerifyBeforeDecode, SamcMips) {
  contract(samc::SamcCodec(samc::mips_defaults()), mips_code(4), 21);
}

TEST_F(VerifyBeforeDecode, SadcMips) { contract(sadc::SadcMipsCodec(), mips_code(4), 22); }

TEST_F(VerifyBeforeDecode, SadcX86) { contract(sadc::SadcX86Codec(), x86_code(4), 23); }

TEST_F(VerifyBeforeDecode, ByteHuffman) {
  contract(baseline::ByteHuffmanCodec(), mips_code(4), 24);
}

// ---------------------------------------------------------------------------
// STR003: adversarial multi-stream length tables are rejected statically.

class VerifyStreamFrame : public ::testing::Test {
 protected:
  core::CompressedImage build(unsigned streams) {
    samc::SamcOptions o = samc::mips_defaults();
    o.entropy_streams = streams;
    return samc::SamcCodec(o).compress(mips_code(1));
  }

  /// Mutable view of block 0's payload bytes (the u16 length table lives at
  /// its front).
  static std::span<std::uint8_t> block0(core::CompressedImage& image) {
    const auto view = image.block_payload(0);
    const auto offset = static_cast<std::size_t>(view.data() - image.payload().data());
    return image.mutable_payload().subspan(offset, view.size());
  }
};

TEST_F(VerifyStreamFrame, CleanMultiStreamImageLintsClean) {
  auto image = build(4);
  const auto report = verify::verify_image(image);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(VerifyStreamFrame, LengthSumOverrunIsStr003) {
  auto image = build(4);
  auto payload = block0(image);
  ASSERT_GE(payload.size(), 2u);
  payload[0] = 0xFF;  // first sub-stream claims 65535 bytes
  payload[1] = 0xFF;
  const auto report = verify::verify_image(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("STR003")) << report.to_string();
}

TEST_F(VerifyStreamFrame, StarvedLiveStreamIsStr003) {
  auto image = build(4);
  auto payload = block0(image);
  ASSERT_GE(payload.size(), 2u);
  // Sub-stream 0's chunk owns a quarter of the block's words, yet its
  // recorded length says zero bytes — only a tampered table can do that
  // (every entropy backend flushes at least its coder state).
  payload[0] = 0;
  payload[1] = 0;
  const auto report = verify::verify_image(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("STR003")) << report.to_string();
}

}  // namespace
}  // namespace ccomp
