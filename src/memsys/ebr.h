// Epoch-based reclamation (EBR) for the serving layer's lock-free readers.
//
// The lock-free cache-hit path and the server's RCU image map hand raw
// pointers to readers without any lock. Writers that unlink an object
// (cache eviction, epoch invalidation, image hot-swap) cannot free it
// immediately — a reader that loaded the pointer a nanosecond earlier may
// still be dereferencing it. EBR defers the free:
//
//   * Readers *pin* the global epoch for the duration of one lookup
//     (`Guard`, a cheap RAII: one store + one fence + one recheck on a
//     thread-owned cache line — no shared-line RMW, so readers never
//     contend with each other).
//   * Writers *retire* unlinked objects (`retire()`): the object goes on
//     a deferred-free list stamped with the current epoch, and the epoch
//     is advanced. An object is freed only once every reader slot has
//     been observed unpinned or pinned at a later epoch — any reader that
//     could have seen the pointer is gone.
//
// Why EBR and not hazard pointers: a hazard-pointer reader must publish
// (and fence) every individual pointer it traverses, which puts a store +
// seq_cst fence *per probed slot* on the hit path; EBR pays one pin per
// lookup regardless of how many probes the lookup makes, and this
// workload's readers are short (a bounded probe window, no unbounded
// traversal), so the reclamation delay EBR trades for that speed is a few
// lookups, not unbounded. See DESIGN.md §4.20.
//
// Invariants callers must keep:
//   * unlink-before-retire: once retire(p) is called, no new reader can
//     reach p through the data structure. Only readers pinned before the
//     retire may still hold it.
//   * Retire is a slow-path operation (writers already hold a shard or
//     image mutex); it takes a global mutex. Pinning never does.
//   * Guards are re-entrant (a pinned thread may pin again) but must not
//     be held across blocking calls.
//
// Threads beyond kMaxReaders concurrent *distinct threads* get an
// inactive Guard (`active() == false`); callers must then take their
// normal locked path instead of touching lock-free state.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ccomp::memsys::ebr {

/// Upper bound on threads that can hold reader slots at once. Slots are
/// claimed per *thread* (released at thread exit), not per guard.
inline constexpr std::size_t kMaxReaders = 256;

namespace detail {

struct alignas(64) ReaderSlot {
  /// 0 = unpinned; otherwise the epoch this thread pinned at.
  std::atomic<std::uint64_t> epoch{0};
  /// Claim flag, CASed by the first pin on each thread.
  std::atomic<bool> claimed{false};
};

struct Registry;
Registry& registry();

/// This thread's claimed slot, or nullptr when kMaxReaders threads
/// already hold one. First call claims; the slot is released when the
/// thread exits.
ReaderSlot* this_thread_slot();

std::uint64_t pin(ReaderSlot& slot);
void unpin(ReaderSlot& slot);

}  // namespace detail

/// RAII epoch pin. Re-entrant: nested guards on one thread share the
/// outermost pin. Pinning is wait-free and touches only the thread's own
/// slot line plus one load of the global epoch.
class Guard {
 public:
  Guard();
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// False when no reader slot was available; the caller must not rely on
  /// deferred reclamation and should take its locked slow path.
  bool active() const { return slot_ != nullptr; }

 private:
  /// Per-thread guard nesting depth; only the depth-0 guard pins/unpins.
  static int& depth_ref();
  detail::ReaderSlot* slot_ = nullptr;
  bool outermost_ = false;
};

/// Defer `delete`/custom destruction of an unlinked object until every
/// reader that could hold it has unpinned. `deleter(p)` runs at most once,
/// possibly on another thread (whichever retire/synchronize call reclaims
/// it). Takes a global mutex — slow path only.
void retire(void* p, void (*deleter)(void*));

/// Typed convenience: retire with `delete static_cast<T*>(p)`.
template <typename T>
void retire(T* p) {
  retire(static_cast<void*>(p), [](void* q) { delete static_cast<T*>(q); });
}

/// Wait until every reader slot has been observed unpinned (or pinned
/// past the current epoch) once, then free the entire deferred list.
/// Call from destructors of structures that retired objects, after their
/// readers are gone; spins, so never call it while a reader of the
/// calling structure can still be pinned indefinitely.
void synchronize();

/// Counters for tests and the obs bridge.
struct Telemetry {
  std::uint64_t retired = 0;    // objects handed to retire()
  std::uint64_t reclaimed = 0;  // deferred frees actually run
  std::uint64_t pending = 0;    // retired - reclaimed right now
};
Telemetry telemetry();

// --------------------------------------------------------------------------
// StripedCounter
// --------------------------------------------------------------------------

/// A relaxed counter striped over per-thread cache lines, for hot-path
/// statistics that must not put a shared RMW next to lock-free read state
/// (BlockCacheStats/ServerStats hit counters). add() is one relaxed
/// fetch_add on a stripe chosen per thread; load() sums the stripes —
/// exact for quiescent reads, a live snapshot may miss in-flight adds.
/// reset() zeroes stripes non-atomically as a whole: like the stats
/// structs it feeds, call it only while writers are quiescent.
class StripedCounter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }
  operator std::uint64_t() const { return load(); }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t stripe_index();
  std::array<Cell, kStripes> cells_;
};

}  // namespace ccomp::memsys::ebr
