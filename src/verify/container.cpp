// Container-layer checks: an independent re-parse of the serialized image.
//
// CompressedImage::deserialize throws at the first malformed field; this
// parser instead scans the whole container, recording a finding per violated
// invariant with the region named, so a corrupted LAT reads as a LAT finding
// rather than a generic parse failure. It mirrors the serialize() layout in
// core/image.cpp — any format change must be reflected here (test_verify
// locks the two together).
#include <algorithm>
#include <string>

#include "core/mapped.h"
#include "obs/obs.h"
#include "support/crc32.h"
#include "support/ecc.h"
#include "support/error.h"
#include "support/serialize.h"
#include "verify/internal.h"
#include "verify/verify.h"

namespace ccomp::verify {
namespace {

using detail::emit;

constexpr std::uint32_t kMagic = 0x43434D50u;  // 'CCMP'

/// Scan the container framing, emitting SER/IMG/LAT findings. Returns true
/// when the framing parsed far enough that deserialize() is worth trying.
bool scan_container(std::span<const std::uint8_t> bytes, VerifyReport& report) {
  ByteSource src(bytes);
  const char* region = "header";
  try {
    if (src.u32() != kMagic) {
      emit(report, "SER003", "container magic is not 'CCMP'");
      return false;
    }
    const std::uint8_t codec = src.u8();
    const std::uint8_t isa = src.u8();
    const std::uint8_t flags = src.u8();
    const bool variable = (flags & 0x01) != 0;
    const bool has_ecc = (flags & 0x02) != 0;
    const bool has_certificate = (flags & 0x04) != 0;
    const bool has_layout = (flags & 0x08) != 0;
    const std::uint32_t block_size = src.u32();
    const std::uint64_t original_size = src.u64();
    if (codec < 1 || codec > 4)
      emit(report, "IMG001", "codec id " + std::to_string(codec) + " is not a known codec");
    if (isa < 1 || isa > 3)
      emit(report, "IMG002", "ISA id " + std::to_string(isa) + " is not a known ISA");
    if (block_size == 0) emit(report, "IMG003", "header block size is zero");
    if ((flags & ~0x0F) != 0)
      emit(report, "IMG006",
           "header flags byte has unknown bits set (value " + std::to_string(flags) + ")");

    region = "codec tables";
    const std::vector<std::uint8_t> tables = src.sized_bytes();

    region = "line address table";
    const std::uint64_t offset_count = src.varint();
    if (offset_count == 0) {
      emit(report, "LAT003", "LAT entry count is zero (no sentinel)");
      return false;
    }
    if (offset_count > src.remaining()) {
      emit(report, "LAT003",
           "LAT claims " + std::to_string(offset_count) + " entries but only " +
               std::to_string(src.remaining()) + " container bytes remain");
      return false;
    }
    std::uint64_t acc = 0;
    std::uint64_t sentinel = 0;
    bool lat_ok = true;
    std::vector<std::uint32_t> block_starts;
    block_starts.reserve(static_cast<std::size_t>(offset_count));
    for (std::uint64_t i = 0; i < offset_count; ++i) {
      acc += src.varint();
      if (acc > 0xFFFFFFFFull) {
        emit(report, "LAT001",
             "LAT offset " + std::to_string(i) + " overflows 32 bits (" + std::to_string(acc) +
                 ")");
        lat_ok = false;
        break;
      }
      sentinel = acc;
      block_starts.push_back(static_cast<std::uint32_t>(acc));
    }
    if (!lat_ok) return false;

    region = "per-block sizes";
    std::uint64_t variable_sum = 0;
    if (variable) {
      for (std::uint64_t i = 0; i + 1 < offset_count; ++i) {
        const std::uint64_t s = src.varint();
        if (s > 0xFFFFFFFFull) {
          emit(report, "IMG005",
               "per-block original size " + std::to_string(i) + " overflows 32 bits");
          return false;
        }
        variable_sum += s;
      }
      if (variable_sum != original_size)
        emit(report, "IMG005",
             "per-block original sizes sum to " + std::to_string(variable_sum) +
                 ", header says " + std::to_string(original_size));
    } else if (block_size != 0) {
      const std::uint64_t expected_blocks = (original_size + block_size - 1) / block_size;
      if (offset_count != expected_blocks + 1)
        emit(report, "IMG004",
             "LAT has " + std::to_string(offset_count - 1) + " blocks, original size " +
                 std::to_string(original_size) + " needs " + std::to_string(expected_blocks));
    }

    region = "payload";
    const std::span<const std::uint8_t> payload = src.sized_bytes_view();
    const std::size_t payload_len = payload.size();
    if (sentinel != payload_len)
      emit(report, "LAT002",
           "LAT sentinel " + std::to_string(sentinel) + " != payload size " +
               std::to_string(payload_len));

    region = "ECC section";
    if (has_ecc) {
      const std::span<const std::uint8_t> ecc_bytes = src.sized_bytes_view();
      std::size_t expected_ecc = 0;
      for (std::size_t i = 0; i + 1 < block_starts.size(); ++i)
        expected_ecc += ecc::ecc_bytes_for(block_starts[i + 1] - block_starts[i]);
      if (ecc_bytes.size() != expected_ecc) {
        emit(report, "ECC001",
             "ECC section holds " + std::to_string(ecc_bytes.size()) +
                 " check byte(s), block payload sizes need " + std::to_string(expected_ecc));
      } else if (sentinel == payload_len) {
        // Recompute each block's check bytes and compare: a mismatch means a
        // latent fault in the stored payload or ECC, already present at rest.
        std::size_t bad_blocks = 0;
        std::size_t ecc_off = 0;
        for (std::size_t i = 0; i + 1 < block_starts.size(); ++i) {
          const std::span<const std::uint8_t> body =
              payload.subspan(block_starts[i], block_starts[i + 1] - block_starts[i]);
          const std::size_t n = ecc::ecc_bytes_for(body.size());
          std::vector<std::uint8_t> fresh(n);
          ecc::encode_block(body, fresh);
          if (!std::equal(fresh.begin(), fresh.end(), ecc_bytes.begin() + ecc_off)) ++bad_blocks;
          ecc_off += n;
        }
        if (bad_blocks != 0)
          emit(report, "ECC002",
               std::to_string(bad_blocks) +
                   " block(s) whose stored SECDED check bytes do not match the payload");
      }
    }

    region = "certificate section";
    if (has_certificate) {
      const std::span<const std::uint8_t> cert_bytes = src.sized_bytes_view();
      if (cert_bytes.empty())
        emit(report, "ANA003", "certificate flag set but the section is empty");
    }

    region = "layout section";
    if (has_layout) {
      const std::span<const std::uint8_t> layout_bytes = src.sized_bytes_view();
      if (layout_bytes.empty())
        emit(report, "LAY001", "layout flag set but the section is empty");
    }

    region = "checksum trailer";
    const std::size_t body_end = src.position();
    const std::uint32_t stored = src.u32();
    const std::uint32_t computed = crc32(src.window(0, body_end));
    if (stored != computed)
      emit(report, "SER002", "stored CRC-32 does not match the container contents");

    if (!src.at_end())
      emit(report, "SER004",
           std::to_string(src.remaining()) + " byte(s) follow the container trailer");
  } catch (const Error&) {
    emit(report, "SER001", std::string("container truncated in ") + region);
    // The framing is gone, so the trailer position is unknown — fall back to
    // the loader convention that the last 4 bytes checksum the rest.
    if (bytes.size() >= 8) {
      ByteSource tail(bytes.subspan(bytes.size() - 4));
      if (tail.u32() != crc32(bytes.subspan(0, bytes.size() - 4)))
        emit(report, "SER002", "trailing CRC-32 does not match the container contents");
    }
    return false;
  }
  return report.count(Severity::kError) == 0;
}

/// Read a little-endian u32/u64 without a ByteSource (the aligned container
/// is random-access, not a stream).
std::uint32_t rd_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t rd_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(rd_u32(p)) | (static_cast<std::uint64_t>(rd_u32(p + 4)) << 32);
}

/// Scan of the aligned (mmap-ready, v3.1) container framing: header fields,
/// section table shape (SER005), alignment discipline (SER006), header CRC
/// (SER002) and every section CRC (SER007). Mirrors MappedImage::parse in
/// core/mapped.cpp but records a finding per violation instead of throwing
/// at the first one. Returns true when the framing held together well enough
/// that building a MappedImage view is worth trying.
bool scan_aligned_container(std::span<const std::uint8_t> bytes, VerifyReport& report) {
  constexpr std::size_t kHeaderBytes = 28;
  constexpr std::size_t kEntryBytes = 32;
  if (bytes.size() < kHeaderBytes + 4) {
    emit(report, "SER001", "aligned container truncated in header");
    return false;
  }
  const std::uint8_t* p = bytes.data();
  const std::uint8_t codec = p[4];
  const std::uint8_t isa = p[5];
  const std::uint8_t flags = p[6];
  const std::uint32_t block_size = rd_u32(p + 8);
  const std::uint32_t alignment = rd_u32(p + 20);
  const std::uint32_t count = rd_u32(p + 24);
  if (codec < 1 || codec > 4)
    emit(report, "IMG001", "codec id " + std::to_string(codec) + " is not a known codec");
  if (isa < 1 || isa > 3)
    emit(report, "IMG002", "ISA id " + std::to_string(isa) + " is not a known ISA");
  if (block_size == 0) emit(report, "IMG003", "header block size is zero");
  if ((flags & ~0x0F) != 0)
    emit(report, "IMG006",
         "header flags byte has unknown bits set (value " + std::to_string(flags) + ")");
  const bool alignment_ok =
      alignment >= 16 && alignment <= (1u << 20) && (alignment & (alignment - 1)) == 0;
  if (!alignment_ok)
    emit(report, "SER005",
         "alignment " + std::to_string(alignment) + " is not a power of two in [16, 1 MiB]");
  if (count == 0 || count > 64) {
    emit(report, "SER005", "section count " + std::to_string(count) + " out of range [1, 64]");
    return false;
  }
  const std::size_t header_total = kHeaderBytes + count * kEntryBytes + 4;
  if (bytes.size() < header_total) {
    emit(report, "SER001", "aligned container truncated in section table");
    return false;
  }
  if (rd_u32(p + header_total - 4) != crc32(bytes.first(header_total - 4))) {
    emit(report, "SER002", "aligned-container header CRC-32 does not match the header bytes");
    // A damaged table cannot be trusted to describe section extents.
    return false;
  }
  std::uint32_t prev_id = 0;
  std::uint64_t min_offset = header_total;
  bool table_ok = true;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* e = p + kHeaderBytes + i * kEntryBytes;
    const std::uint32_t id = rd_u32(e);
    const std::uint64_t offset = rd_u64(e + 8);
    const std::uint64_t size = rd_u64(e + 16);
    const std::uint32_t crc = rd_u32(e + 24);
    if (id <= prev_id || id > 7) {
      emit(report, "SER005",
           "section " + std::to_string(i) + " id " + std::to_string(id) +
               " is not unique, ascending, and known");
      table_ok = false;
    }
    prev_id = id;
    if (alignment_ok && offset % alignment != 0)
      emit(report, "SER006",
           "section " + std::to_string(id) + " offset " + std::to_string(offset) +
               " is not a multiple of the declared alignment " + std::to_string(alignment));
    if (offset < min_offset || size > bytes.size() || offset > bytes.size() - size) {
      emit(report, "SER005",
           "section " + std::to_string(id) + " extent [" + std::to_string(offset) + ", +" +
               std::to_string(size) + ") overlaps or leaves the container");
      table_ok = false;
      continue;
    }
    min_offset = offset + size;
    if (crc32(bytes.subspan(static_cast<std::size_t>(offset), static_cast<std::size_t>(size))) !=
        crc)
      emit(report, "SER007",
           "section " + std::to_string(id) + " CRC-32 does not match its " +
               std::to_string(size) + " stored byte(s)");
  }
  return table_ok && report.count(Severity::kError) == 0;
}

}  // namespace

namespace detail {

// Structure checks on a constructed image. The CompressedImage constructor
// already proves the hard LAT invariants (sentinel, monotonicity, block
// count), so what remains are the soft payload-shape properties a loader
// wants flagged but can survive.
void check_structure(const core::CompressedImage& image, VerifyReport& report) {
  const std::size_t blocks = image.block_count();
  // Worst-case per-block expansion: every codec's output is bounded by the
  // original bytes plus coder flush/count overhead; double-plus-slack is far
  // outside anything a sound encoder emits.
  const std::size_t expansion_bound = 2 * static_cast<std::size_t>(image.block_size()) + 16;
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t compressed = image.block_payload(i).size();
    const std::size_t original = image.block_original_size(i);
    if (compressed == 0 && original != 0)
      emit(report, "LAT004",
           "block " + std::to_string(i) + " has no compressed bytes but covers " +
               std::to_string(original) + " original bytes");
    if (compressed > expansion_bound)
      emit(report, "LAT005",
           "block " + std::to_string(i) + " holds " + std::to_string(compressed) +
               " compressed bytes, over the " + std::to_string(expansion_bound) +
               "-byte worst-case bound");
  }
}

}  // namespace detail

VerifyReport verify_image(const core::CompressedImage& image, const VerifyOptions& opts) {
  CCOMP_SPAN("verify.image");
  CCOMP_TIMER("verify.image_ns");
  CCOMP_COUNT("verify.image_checks", 1);
  VerifyReport report;
  {
    CCOMP_SPAN("verify.structure");
    CCOMP_TIMER("verify.structure_ns");
    detail::check_structure(image, report);
  }
  {
    CCOMP_SPAN("verify.tables");
    CCOMP_TIMER("verify.tables_ns");
    detail::check_tables(image, report);
  }
  {
    CCOMP_SPAN("verify.layout");
    CCOMP_TIMER("verify.layout_ns");
    detail::check_layout(image, report);
  }
  if (opts.control_flow && !opts.original_code.empty()) {
    CCOMP_SPAN("verify.control_flow");
    CCOMP_TIMER("verify.control_flow_ns");
    detail::check_control_flow(image, opts, report);
  }
  if (opts.certify) {
    CCOMP_SPAN("verify.certificate");
    CCOMP_TIMER("verify.certificate_ns");
    detail::check_certificate(image, opts, report);
  }
  return report;
}

VerifyReport verify_serialized(std::span<const std::uint8_t> bytes, const VerifyOptions& opts) {
  CCOMP_SPAN("verify.serialized");
  CCOMP_TIMER("verify.serialized_ns");
  CCOMP_COUNT("verify.serialized_checks", 1);
  VerifyReport report;
  if (core::is_aligned_container(bytes)) {
    const bool framing_ok = scan_aligned_container(bytes, report);
    if (!framing_ok) return report;
    try {
      const core::MappedImage mapped(bytes);
      report.merge(verify_image(mapped.view_image(), opts));
    } catch (const Error& e) {
      // The scan accepted what MappedImage rejected — surface the stricter
      // parser's complaint so the report never claims a clean bill for an
      // unloadable image.
      if (report.ok())
        emit(report, "SER001", std::string("aligned image rejected at load: ") + e.what());
    }
    return report;
  }
  const bool framing_ok = scan_container(bytes, report);
  // Deep checks run best-effort even past a checksum mismatch (the flipped
  // bit may sit in a table the structural checks can still name), but only
  // when the framing itself held together.
  if (!framing_ok && report.error_count() > (report.has("SER002") ? 1u : 0u)) return report;
  try {
    ByteSource src(bytes);
    const core::CompressedImage image =
        core::CompressedImage::deserialize(src, /*verify_checksum=*/false);
    report.merge(verify_image(image, opts));
  } catch (const Error& e) {
    // The independent scan accepted what deserialize rejected — surface the
    // stricter parser's complaint so the report never claims a clean bill
    // for an unloadable image.
    if (report.ok()) emit(report, "SER001", std::string("image rejected at load: ") + e.what());
  }
  return report;
}

}  // namespace ccomp::verify
