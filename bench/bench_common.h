// Shared helpers for the figure/table harnesses.
//
// Every harness accepts an optional `--scale=<float>` argument that scales
// the generated benchmark sizes (default 1.0, the DESIGN.md sizes). Use
// smaller scales for quick smoke runs; the ratio *ordering* is stable under
// scaling, absolute ratios move slightly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/profile.h"

namespace ccomp::bench {

inline double parse_scale(int argc, char** argv, double fallback = 1.0) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) return std::atof(argv[i] + 8);
  }
  if (const char* env = std::getenv("CCOMP_BENCH_SCALE")) return std::atof(env);
  return fallback;
}

inline workload::Profile scaled_profile(const workload::Profile& p, double scale) {
  workload::Profile copy = p;
  const double kb = static_cast<double>(p.code_kb) * scale;
  copy.code_kb = kb < 8.0 ? 8u : static_cast<std::uint32_t>(kb);
  return copy;
}

}  // namespace ccomp::bench
