// Engineering micro-benchmarks (google-benchmark): compression and
// decompression throughput of every codec, plus the range coder and
// Huffman primitives. Not a paper artifact — used to keep the
// implementation honest about the decompressor's speed, which is the
// quantity the refill-engine latency model abstracts.
#include <benchmark/benchmark.h>

#include "baseline/bytehuff.h"
#include "baseline/filecodecs.h"
#include "coding/rangecoder.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"

namespace {

using namespace ccomp;

const std::vector<std::uint8_t>& test_code() {
  static const std::vector<std::uint8_t> code = [] {
    workload::Profile p = *workload::find_profile("go");
    p.code_kb = 64;
    return mips::words_to_bytes(workload::generate_mips(p));
  }();
  return code;
}

void BM_SamcCompress(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SamcCompress)->Unit(benchmark::kMillisecond);

void BM_SamcDecompressBlock(benchmark::State& state) {
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcDecompressBlock);

void BM_SamcNibbleDecompressBlock(benchmark::State& state) {
  samc::SamcOptions o = samc::mips_defaults();
  o.markov.quantized = true;
  o.parallel_nibble_mode = true;
  const samc::SamcCodec codec(o);
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SamcNibbleDecompressBlock);

void BM_SadcCompress(benchmark::State& state) {
  const sadc::SadcMipsCodec codec;
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_SadcCompress)->Unit(benchmark::kMillisecond);

void BM_SadcDecompressBlock(benchmark::State& state) {
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(test_code());
  const auto dec = codec.make_decompressor(image);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec->block(b));
    b = (b + 1) % image.block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 32));
}
BENCHMARK(BM_SadcDecompressBlock);

void BM_ByteHuffmanCompress(benchmark::State& state) {
  const baseline::ByteHuffmanCodec codec;
  for (auto _ : state) benchmark::DoNotOptimize(codec.compress(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_ByteHuffmanCompress)->Unit(benchmark::kMillisecond);

void BM_GzipLike(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(baseline::gzip_like_bytes(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_GzipLike)->Unit(benchmark::kMillisecond);

void BM_UnixCompress(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(baseline::unix_compress_bytes(test_code()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * test_code().size()));
}
BENCHMARK(BM_UnixCompress)->Unit(benchmark::kMillisecond);

void BM_RangeCoderEncodeBit(benchmark::State& state) {
  coding::RangeEncoder enc;
  std::uint32_t x = 123456789;
  for (auto _ : state) {
    x = x * 1664525 + 1013904223;
    enc.encode_bit(x >> 31, static_cast<coding::Prob>((x & 0x7FFF) + 0x4000));
    if (enc.size() > (1u << 20)) {
      enc.finish();
      benchmark::DoNotOptimize(enc.take());
    }
  }
}
BENCHMARK(BM_RangeCoderEncodeBit);

}  // namespace
