// Golden equivalence suite for the flattened decode engine: every
// MarkovConfig corner must decode byte-identically through the compiled
// MarkovDecodePlan (DecodeEngine::kPlan) and the original MarkovCursor walk
// (DecodeEngine::kCursor), and parallel decompress_all must be
// deterministic across thread counts. This is the proof obligation stated
// in coding/markovplan.h: the plan state (stream, ctx, node) is a
// sufficient statistic for the cursor, so the two engines are bit-exact.
#include "coding/markovplan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "support/parallel.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp::samc {
namespace {

std::vector<std::uint8_t> small_mips_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

std::vector<std::uint8_t> small_x86_code(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return workload::generate_x86(p);
}

// Compress `code`, then decode every block through all three engines and
// demand identical bytes — and demand they match the original program, so a
// shared bug in the engines cannot hide. With entropy_streams > 1 the kPlan
// engine runs the interleaved loop while kPlanSerial decodes the same
// chunks one after another, so this is also the interleaved-vs-serial
// byte-identity proof the tentpole requires.
void expect_plan_matches_cursor(const SamcCodec& codec, std::span<const std::uint8_t> code) {
  const auto image = codec.compress(code);
  const auto plan = codec.make_decompressor(image, DecodeEngine::kPlan);
  const auto serial = codec.make_decompressor(image, DecodeEngine::kPlanSerial);
  const auto cursor = codec.make_decompressor(image, DecodeEngine::kCursor);
  std::size_t at = 0;
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    const auto p = plan->block(b);
    const auto s = serial->block(b);
    const auto c = cursor->block(b);
    ASSERT_EQ(p, c) << "plan and cursor engines disagree at block " << b;
    ASSERT_EQ(p, s) << "interleaved and serial plan disagree at block " << b;
    ASSERT_LE(at + p.size(), code.size());
    ASSERT_TRUE(std::equal(p.begin(), p.end(), code.begin() + static_cast<long>(at)))
        << "all engines wrong at block " << b;
    at += p.size();
  }
  EXPECT_EQ(at, code.size());
}

TEST(DecodePlan, MatchesCursorAcrossContextDepths) {
  const auto code = small_mips_code("go", 8);
  for (unsigned context_bits : {0u, 1u, 2u, 3u, 4u}) {
    SamcOptions opt = mips_defaults();
    opt.markov.context_bits = context_bits;
    SCOPED_TRACE(context_bits);
    expect_plan_matches_cursor(SamcCodec(opt), code);
  }
}

TEST(DecodePlan, MatchesCursorWithQuantizedProbabilities) {
  const auto code = small_mips_code("gcc", 8);
  SamcOptions opt = mips_defaults();
  opt.markov.quantized = true;
  opt.markov.max_shift = 8;
  opt.markov.context_bits = 2;
  expect_plan_matches_cursor(SamcCodec(opt), code);
}

TEST(DecodePlan, MatchesCursorWithUnconnectedWords) {
  const auto code = small_mips_code("compress", 8);
  SamcOptions opt = mips_defaults();
  opt.markov.connect_across_words = false;
  expect_plan_matches_cursor(SamcCodec(opt), code);
}

TEST(DecodePlan, MatchesCursorOnUnevenStreamDivision) {
  // 12/8/7/5 split, MSB-first: exercises stream widths that are neither
  // equal nor nibble-aligned, so stream-boundary context carry hits every
  // alignment.
  coding::StreamDivision div;
  div.word_bits = 32;
  int bit = 31;
  for (unsigned width : {12u, 8u, 7u, 5u}) {
    std::vector<std::uint8_t> s;
    for (unsigned i = 0; i < width; ++i) s.push_back(static_cast<std::uint8_t>(bit--));
    div.streams.push_back(std::move(s));
  }
  div.validate();

  const auto code = small_mips_code("go", 8);
  SamcOptions opt = mips_defaults();
  opt.markov.division = div;
  opt.markov.context_bits = 3;
  expect_plan_matches_cursor(SamcCodec(opt), code);
}

TEST(DecodePlan, MatchesCursorInNibbleMode) {
  const auto code = small_mips_code("go", 8);
  SamcOptions opt = mips_defaults();
  opt.parallel_nibble_mode = true;
  opt.markov.quantized = true;
  opt.markov.max_shift = 8;
  expect_plan_matches_cursor(SamcCodec(opt), code);
}

TEST(DecodePlan, MatchesCursorOnX86ByteStream) {
  const auto code = small_x86_code("ijpeg", 8);
  expect_plan_matches_cursor(SamcCodec(x86_defaults()), code);
}

TEST(DecodePlan, OversizedModelIsRefusedAndCursorFallbackDecodes) {
  // Two 16-bit streams with 5 context bits: 2 streams x 32 contexts x
  // (2^17 - 1) nodes ~ 8.4M states, far over kMaxStates. The plan must
  // refuse to compile, and the codec must silently fall back to the cursor
  // and still round-trip.
  coding::StreamDivision div;
  div.word_bits = 32;
  div.streams.resize(2);
  for (int b = 31; b >= 16; --b) div.streams[0].push_back(static_cast<std::uint8_t>(b));
  for (int b = 15; b >= 0; --b) div.streams[1].push_back(static_cast<std::uint8_t>(b));
  div.validate();

  workload::Profile p = *workload::find_profile("go");
  p.code_kb = 4;
  const auto words = workload::generate_mips(p);
  const auto code = mips::words_to_bytes(words);

  coding::MarkovConfig cfg;
  cfg.division = div;
  cfg.context_bits = 5;
  const auto model = coding::MarkovModel::train(cfg, words, 8);
  EXPECT_FALSE(coding::MarkovDecodePlan(model).viable());

  SamcOptions opt = mips_defaults();
  opt.markov = cfg;
  const SamcCodec codec(opt);
  const auto image = codec.compress_verified(code);  // throws on mismatch
  // Both engine selections must behave identically (both run the cursor).
  expect_plan_matches_cursor(codec, code);
  EXPECT_EQ(image.original_size(), code.size());
}

TEST(DecodePlan, InterleavedMatchesSerialAcrossStreamsAndContexts) {
  // The tentpole equivalence sweep: every K x context-depth combination
  // must produce byte-identical output from the interleaved loop (kPlan),
  // the chunk-serial plan (kPlanSerial), and the cursor walk.
  const auto code = small_mips_code("go", 8);
  for (unsigned streams : {1u, 2u, 4u, 8u}) {
    for (unsigned context_bits : {0u, 1u, 2u, 3u, 4u}) {
      SamcOptions opt = mips_defaults();
      opt.entropy_streams = streams;
      opt.markov.context_bits = context_bits;
      SCOPED_TRACE(::testing::Message() << "K=" << streams << " ctx=" << context_bits);
      expect_plan_matches_cursor(SamcCodec(opt), code);
    }
  }
}

TEST(DecodePlan, InterleavedMatchesSerialWithRansBackend) {
  const auto code = small_mips_code("gcc", 8);
  for (unsigned streams : {1u, 2u, 4u, 8u}) {
    for (unsigned context_bits : {0u, 2u, 4u}) {
      SamcOptions opt = mips_defaults();
      opt.entropy_coder = EntropyCoder::kRans;
      opt.entropy_streams = streams;
      opt.markov.context_bits = context_bits;
      SCOPED_TRACE(::testing::Message() << "K=" << streams << " ctx=" << context_bits);
      expect_plan_matches_cursor(SamcCodec(opt), code);
    }
  }
}

TEST(DecodePlan, MultiStreamNibbleModeMatchesCursor) {
  const auto code = small_mips_code("go", 8);
  for (unsigned streams : {2u, 4u}) {
    SamcOptions opt = mips_defaults();
    opt.parallel_nibble_mode = true;
    opt.markov.quantized = true;
    opt.markov.max_shift = 8;
    opt.entropy_streams = streams;
    SCOPED_TRACE(streams);
    expect_plan_matches_cursor(SamcCodec(opt), code);
  }
}

TEST(DecodePlan, MultiStreamX86ByteStreamMatchesCursor) {
  const auto code = small_x86_code("ijpeg", 8);
  for (unsigned streams : {2u, 4u, 8u}) {
    SamcOptions opt = x86_defaults();
    opt.entropy_streams = streams;
    SCOPED_TRACE(streams);
    expect_plan_matches_cursor(SamcCodec(opt), code);
  }
}

TEST(DecodePlan, RuntimeStreamCountUsesGenericInterleaveBody) {
  // K values without a fixed-K template instantiation (3, 5) go through the
  // runtime-K interleave body; it must be just as bit-exact.
  const auto code = small_mips_code("compress", 8);
  for (unsigned streams : {3u, 5u}) {
    SamcOptions opt = mips_defaults();
    opt.entropy_streams = streams;
    SCOPED_TRACE(streams);
    expect_plan_matches_cursor(SamcCodec(opt), code);
  }
}

TEST(DecodePlan, X86SplitMultiStreamRoundTrips) {
  const auto code = small_x86_code("gcc", 8);
  for (unsigned streams : {1u, 2u, 4u, 8u}) {
    SamcX86SplitOptions opt;
    opt.entropy_streams = streams;
    const SamcX86SplitCodec codec(opt);
    SCOPED_TRACE(streams);
    const auto image = codec.compress_verified(code);  // throws on mismatch
    EXPECT_EQ(image.original_size(), code.size());
  }
}

TEST(DecodePlan, RejectsUnsupportedStreamCounts) {
  // Typed ConfigError, not an assert: the CLI surfaces these verbatim.
  {
    SamcOptions opt = mips_defaults();
    opt.entropy_streams = 0;
    EXPECT_THROW(SamcCodec{opt}, ConfigError);
  }
  {
    SamcOptions opt = mips_defaults();
    opt.entropy_streams = 17;
    EXPECT_THROW(SamcCodec{opt}, ConfigError);
  }
  {
    // 32-byte blocks of 4-byte words hold 8 words; K = 16 cannot give every
    // stream work.
    SamcOptions opt = mips_defaults();
    opt.entropy_streams = 16;
    EXPECT_THROW(SamcCodec{opt}, ConfigError);
  }
  {
    SamcOptions opt = mips_defaults();
    opt.parallel_nibble_mode = true;
    opt.markov.quantized = true;
    opt.markov.max_shift = 8;
    opt.entropy_coder = EntropyCoder::kRans;
    EXPECT_THROW(SamcCodec{opt}, ConfigError);
  }
  {
    SamcX86SplitOptions opt;
    opt.entropy_streams = 17;
    EXPECT_THROW(SamcX86SplitCodec{opt}, ConfigError);
  }
}

TEST(DecodePlan, MultiStreamFallsBackToCursorWhenPlanNotViable) {
  // Same oversized model as OversizedModelIsRefused... but with K = 4: the
  // non-viable plan must drop every engine to the chunk-serial cursor walk
  // and still round-trip each sub-stream.
  coding::StreamDivision div;
  div.word_bits = 32;
  div.streams.resize(2);
  for (int b = 31; b >= 16; --b) div.streams[0].push_back(static_cast<std::uint8_t>(b));
  for (int b = 15; b >= 0; --b) div.streams[1].push_back(static_cast<std::uint8_t>(b));
  div.validate();

  SamcOptions opt = mips_defaults();
  opt.markov.division = div;
  opt.markov.context_bits = 5;
  opt.entropy_streams = 4;
  const SamcCodec codec(opt);
  EXPECT_FALSE(coding::MarkovDecodePlan(codec.train_model(small_mips_code("go", 4))).viable());
  const auto code = small_mips_code("go", 4);
  codec.compress_verified(code);  // throws on mismatch
  expect_plan_matches_cursor(codec, code);
}

TEST(DecodePlan, DecompressAllIsDeterministicAcrossThreadCounts) {
  const auto code = small_mips_code("go", 16);
  const SamcCodec codec(mips_defaults());
  const auto image = codec.compress(code);

  const std::size_t restore = par::thread_count();
  std::vector<std::uint8_t> first;
  for (std::size_t threads : {1u, 2u, 8u}) {
    par::set_thread_count(threads);
    const auto out = codec.decompress_all(image);
    if (first.empty())
      first = out;
    else
      EXPECT_EQ(out, first) << "thread count " << threads;
  }
  par::set_thread_count(restore);
  EXPECT_EQ(first.size(), code.size());
  EXPECT_TRUE(std::equal(first.begin(), first.end(), code.begin()));
}

TEST(DecodePlan, X86SplitDecodesIdenticallyAcrossThreadCounts) {
  const auto code = small_x86_code("gcc", 16);
  const SamcX86SplitCodec codec;
  const auto image = codec.compress_verified(code);

  const std::size_t restore = par::thread_count();
  std::vector<std::uint8_t> first;
  for (std::size_t threads : {1u, 2u, 8u}) {
    par::set_thread_count(threads);
    const auto out = codec.decompress_all(image);
    if (first.empty())
      first = out;
    else
      EXPECT_EQ(out, first) << "thread count " << threads;
  }
  par::set_thread_count(restore);
  EXPECT_EQ(first.size(), code.size());
  EXPECT_TRUE(std::equal(first.begin(), first.end(), code.begin()));
}

}  // namespace
}  // namespace ccomp::samc
