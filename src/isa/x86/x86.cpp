#include "isa/x86/x86.h"

#include <array>

namespace ccomp::x86 {
namespace {

// Per-opcode attribute flags for the length decoder.
enum : std::uint8_t {
  kNone = 0,
  kModRM = 1 << 0,
  kImm8 = 1 << 1,   // ib / rel8
  kImmZ = 1 << 2,   // iz / relz: 4 bytes (2 with operand-size prefix)
  kImm16 = 1 << 3,  // iw
  kEscape = 1 << 4,  // 0F two-byte opcode
  kPrefix = 1 << 5,  // legacy prefix byte
  kGroup3 = 1 << 6,  // F6/F7: immediate present iff modrm.reg in {0,1}
  kInvalid = 1 << 7,
};

using Table = std::array<std::uint8_t, 256>;

constexpr Table build_one_byte_table() {
  Table t{};
  for (auto& e : t) e = kInvalid;
  // 0x00-0x3F: eight ALU groups of six encodings + two legacy slots.
  for (unsigned g = 0; g < 8; ++g) {
    const unsigned base = g * 8;
    t[base + 0] = kModRM;  // op r/m8, r8
    t[base + 1] = kModRM;  // op r/m32, r32
    t[base + 2] = kModRM;  // op r8, r/m8
    t[base + 3] = kModRM;  // op r32, r/m32
    t[base + 4] = kImm8;   // op al, ib
    t[base + 5] = kImmZ;   // op eax, iz
  }
  // Legacy push/pop seg and BCD slots.
  t[0x06] = kNone; t[0x07] = kNone; t[0x0E] = kNone; t[0x0F] = kEscape;
  t[0x16] = kNone; t[0x17] = kNone; t[0x1E] = kNone; t[0x1F] = kNone;
  t[0x26] = kPrefix; t[0x27] = kNone; t[0x2E] = kPrefix; t[0x2F] = kNone;
  t[0x36] = kPrefix; t[0x37] = kNone; t[0x3E] = kPrefix; t[0x3F] = kNone;
  for (unsigned i = 0x40; i <= 0x5F; ++i) t[i] = kNone;  // inc/dec/push/pop r32
  t[0x60] = kNone; t[0x61] = kNone;
  t[0x62] = kModRM;  // bound
  t[0x63] = kModRM;  // arpl
  t[0x64] = kPrefix; t[0x65] = kPrefix;  // fs/gs
  t[0x66] = kPrefix;                      // operand size
  t[0x67] = kInvalid;                     // address size: unsupported (16-bit forms)
  t[0x68] = kImmZ;                        // push iz
  t[0x69] = kModRM | kImmZ;               // imul r, r/m, iz
  t[0x6A] = kImm8;                        // push ib
  t[0x6B] = kModRM | kImm8;               // imul r, r/m, ib
  t[0x6C] = kNone; t[0x6D] = kNone; t[0x6E] = kNone; t[0x6F] = kNone;  // ins/outs
  for (unsigned i = 0x70; i <= 0x7F; ++i) t[i] = kImm8;  // jcc rel8
  t[0x80] = kModRM | kImm8;
  t[0x81] = kModRM | kImmZ;
  t[0x82] = kModRM | kImm8;
  t[0x83] = kModRM | kImm8;
  t[0x84] = kModRM; t[0x85] = kModRM;  // test
  t[0x86] = kModRM; t[0x87] = kModRM;  // xchg
  for (unsigned i = 0x88; i <= 0x8B; ++i) t[i] = kModRM;  // mov
  t[0x8C] = kModRM; t[0x8D] = kModRM; t[0x8E] = kModRM; t[0x8F] = kModRM;
  for (unsigned i = 0x90; i <= 0x99; ++i) t[i] = kNone;  // xchg/cwde/cdq
  t[0x9A] = kInvalid;  // call far ptr16:32 — not generated
  for (unsigned i = 0x9B; i <= 0x9F; ++i) t[i] = kNone;
  t[0xA0] = kImmZ; t[0xA1] = kImmZ; t[0xA2] = kImmZ; t[0xA3] = kImmZ;  // mov moffs (addr32)
  for (unsigned i = 0xA4; i <= 0xA7; ++i) t[i] = kNone;  // movs/cmps
  t[0xA8] = kImm8; t[0xA9] = kImmZ;  // test al/eax, imm
  for (unsigned i = 0xAA; i <= 0xAF; ++i) t[i] = kNone;  // stos/lods/scas
  for (unsigned i = 0xB0; i <= 0xB7; ++i) t[i] = kImm8;  // mov r8, ib
  for (unsigned i = 0xB8; i <= 0xBF; ++i) t[i] = kImmZ;  // mov r32, iz
  t[0xC0] = kModRM | kImm8; t[0xC1] = kModRM | kImm8;  // shift groups
  t[0xC2] = kImm16;  // ret iw
  t[0xC3] = kNone;
  t[0xC4] = kModRM; t[0xC5] = kModRM;  // les/lds
  t[0xC6] = kModRM | kImm8; t[0xC7] = kModRM | kImmZ;  // mov r/m, imm
  t[0xC8] = kImm16 | kImm8;  // enter iw, ib
  t[0xC9] = kNone;           // leave
  t[0xCA] = kImm16; t[0xCB] = kNone; t[0xCC] = kNone; t[0xCD] = kImm8;
  t[0xCE] = kNone; t[0xCF] = kNone;
  for (unsigned i = 0xD0; i <= 0xD3; ++i) t[i] = kModRM;  // shift by 1/cl
  t[0xD4] = kImm8; t[0xD5] = kImm8; t[0xD6] = kNone; t[0xD7] = kNone;
  for (unsigned i = 0xD8; i <= 0xDF; ++i) t[i] = kModRM;  // x87
  for (unsigned i = 0xE0; i <= 0xE3; ++i) t[i] = kImm8;  // loop/jecxz
  t[0xE4] = kImm8; t[0xE5] = kImm8; t[0xE6] = kImm8; t[0xE7] = kImm8;  // in/out
  t[0xE8] = kImmZ; t[0xE9] = kImmZ;  // call/jmp rel32
  t[0xEA] = kInvalid;  // jmp far
  t[0xEB] = kImm8;     // jmp rel8
  t[0xEC] = kNone; t[0xED] = kNone; t[0xEE] = kNone; t[0xEF] = kNone;
  t[0xF0] = kPrefix;   // lock
  t[0xF1] = kNone;
  t[0xF2] = kPrefix; t[0xF3] = kPrefix;  // repne/rep
  t[0xF4] = kNone; t[0xF5] = kNone;
  t[0xF6] = kModRM | kGroup3; t[0xF7] = kModRM | kGroup3;
  t[0xF8] = kNone; t[0xF9] = kNone; t[0xFA] = kNone; t[0xFB] = kNone;
  t[0xFC] = kNone; t[0xFD] = kNone;
  t[0xFE] = kModRM; t[0xFF] = kModRM;
  return t;
}

constexpr Table build_two_byte_table() {
  Table t{};
  for (auto& e : t) e = kInvalid;
  t[0x1F] = kModRM;  // long nop
  t[0x31] = kNone;   // rdtsc
  t[0xA2] = kNone;   // cpuid
  for (unsigned i = 0x40; i <= 0x4F; ++i) t[i] = kModRM;  // cmovcc
  for (unsigned i = 0x80; i <= 0x8F; ++i) t[i] = kImmZ;   // jcc rel32
  for (unsigned i = 0x90; i <= 0x9F; ++i) t[i] = kModRM;  // setcc
  t[0xA3] = kModRM;                  // bt
  t[0xA4] = kModRM | kImm8;          // shld ib
  t[0xA5] = kModRM;                  // shld cl
  t[0xAB] = kModRM;                  // bts
  t[0xAC] = kModRM | kImm8;          // shrd ib
  t[0xAD] = kModRM;                  // shrd cl
  t[0xAF] = kModRM;                  // imul r, r/m
  t[0xB3] = kModRM;                  // btr
  t[0xB6] = kModRM; t[0xB7] = kModRM;  // movzx
  t[0xBA] = kModRM | kImm8;          // bt group, imm8
  t[0xBB] = kModRM;                  // btc
  t[0xBC] = kModRM; t[0xBD] = kModRM;  // bsf/bsr
  t[0xBE] = kModRM; t[0xBF] = kModRM;  // movsx
  t[0xC8 + 0] = kNone;               // bswap eax..edi
  t[0xC9] = kNone; t[0xCA] = kNone; t[0xCB] = kNone;
  t[0xCC] = kNone; t[0xCD] = kNone; t[0xCE] = kNone; t[0xCF] = kNone;
  return t;
}

const Table kOneByte = build_one_byte_table();
const Table kTwoByte = build_two_byte_table();

}  // namespace

InstrLayout decode_layout(std::span<const std::uint8_t> data) {
  InstrLayout layout;
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > data.size()) throw DecodeError("x86 instruction truncated");
  };

  // Legacy prefixes (at most 4 in real code; we allow up to 8 defensively).
  bool operand_size_16 = false;
  while (true) {
    need(1);
    const std::uint8_t b = data[pos];
    if (!(kOneByte[b] & kPrefix)) break;
    if (b == 0x66) operand_size_16 = true;
    ++pos;
    ++layout.prefix_len;
    if (layout.prefix_len > 8) throw DecodeError("x86 prefix run too long");
  }

  need(1);
  std::uint8_t opcode = data[pos++];
  std::uint8_t attrs;
  if (kOneByte[opcode] & kEscape) {
    need(1);
    opcode = data[pos++];
    attrs = kTwoByte[opcode];
    layout.opcode_len = 2;
  } else {
    attrs = kOneByte[opcode];
    layout.opcode_len = 1;
  }
  if (attrs & kInvalid) throw DecodeError("unsupported x86 opcode");

  std::uint8_t modrm = 0;
  if (attrs & kModRM) {
    need(1);
    modrm = data[pos++];
    layout.modrm_len = 1;
    const std::uint8_t mod = modrm >> 6;
    const std::uint8_t rm = modrm & 7;
    if (mod != 3) {
      std::uint8_t sib_base = 0xFF;
      if (rm == 4) {  // SIB follows
        need(1);
        sib_base = data[pos++] & 7;
        layout.modrm_len = 2;
      }
      if (mod == 1) {
        layout.disp_len = 1;
      } else if (mod == 2) {
        layout.disp_len = 4;
      } else {  // mod == 0
        if (rm == 5 || (rm == 4 && sib_base == 5)) layout.disp_len = 4;
      }
    }
  }

  // Immediates.
  unsigned imm = 0;
  if (attrs & kGroup3) {
    // F6/F7 TEST forms (/0, /1) carry an immediate; the rest do not.
    const std::uint8_t reg = (modrm >> 3) & 7;
    if (reg <= 1) imm += (opcode == 0xF6) ? 1 : (operand_size_16 ? 2 : 4);
  }
  if (attrs & kImm16) imm += 2;
  if (attrs & kImm8) imm += 1;
  if (attrs & kImmZ) imm += operand_size_16 ? 2 : 4;
  layout.imm_len = static_cast<std::uint8_t>(imm);

  need(imm + layout.disp_len);
  layout.total = static_cast<std::uint8_t>(layout.prefix_len + layout.opcode_len +
                                           layout.modrm_len + layout.disp_len + layout.imm_len);
  return layout;
}

OpcodeClass classify_opcode(std::span<const std::uint8_t> opcode_bytes) {
  OpcodeClass cls;
  std::size_t pos = 0;
  bool operand_size_16 = false;
  while (pos < opcode_bytes.size() && (kOneByte[opcode_bytes[pos]] & kPrefix)) {
    if (opcode_bytes[pos] == 0x66) operand_size_16 = true;
    ++pos;
  }
  if (pos >= opcode_bytes.size()) throw DecodeError("opcode byte group has no opcode");
  std::uint8_t opcode = opcode_bytes[pos++];
  std::uint8_t attrs;
  if (kOneByte[opcode] & kEscape) {
    if (pos >= opcode_bytes.size()) throw DecodeError("truncated two-byte opcode");
    opcode = opcode_bytes[pos++];
    attrs = kTwoByte[opcode];
  } else {
    attrs = kOneByte[opcode];
  }
  if (attrs & kInvalid) throw DecodeError("unsupported x86 opcode");
  if (pos != opcode_bytes.size()) throw DecodeError("trailing bytes in opcode group");
  cls.has_modrm = (attrs & kModRM) != 0;
  cls.group3 = (attrs & kGroup3) != 0;
  if (attrs & kImm16) cls.imm_bytes += 2;
  if (attrs & kImm8) cls.imm_bytes += 1;
  if (attrs & kImmZ) cls.imm_bytes += operand_size_16 ? 2 : 4;
  if (cls.group3) cls.group3_imm_bytes = (opcode == 0xF6) ? 1 : (operand_size_16 ? 2 : 4);
  return cls;
}

bool is_prefix_byte(std::uint8_t byte) { return (kOneByte[byte] & kPrefix) != 0; }

bool modrm_has_sib(std::uint8_t modrm) {
  return (modrm >> 6) != 3 && (modrm & 7) == 4;
}

unsigned modrm_disp_bytes(std::uint8_t modrm, std::uint8_t sib) {
  const std::uint8_t mod = modrm >> 6;
  const std::uint8_t rm = modrm & 7;
  if (mod == 3) return 0;
  if (mod == 1) return 1;
  if (mod == 2) return 4;
  // mod == 0
  if (rm == 5) return 4;
  if (rm == 4 && (sib & 7) == 5) return 4;
  return 0;
}

std::vector<InstrLayout> decode_all(std::span<const std::uint8_t> code) {
  std::vector<InstrLayout> layouts;
  std::size_t pos = 0;
  while (pos < code.size()) {
    const InstrLayout l = decode_layout(code.subspan(pos));
    layouts.push_back(l);
    pos += l.total;
  }
  return layouts;
}

StreamSplit split_streams(std::span<const std::uint8_t> code) {
  StreamSplit split;
  split.layouts = decode_all(code);
  std::size_t pos = 0;
  for (const InstrLayout& l : split.layouts) {
    const std::size_t opcode_bytes = static_cast<std::size_t>(l.prefix_len) + l.opcode_len;
    for (std::size_t i = 0; i < opcode_bytes; ++i) split.opcode.push_back(code[pos + i]);
    for (std::size_t i = 0; i < l.modrm_len; ++i)
      split.modrm.push_back(code[pos + opcode_bytes + i]);
    const std::size_t tail = pos + opcode_bytes + l.modrm_len;
    for (std::size_t i = 0; i < static_cast<std::size_t>(l.disp_len) + l.imm_len; ++i)
      split.imm.push_back(code[tail + i]);
    pos += l.total;
  }
  return split;
}

std::vector<std::uint8_t> merge_streams(const StreamSplit& split) {
  std::vector<std::uint8_t> code;
  std::size_t op = 0, mo = 0, im = 0;
  for (const InstrLayout& l : split.layouts) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(l.prefix_len) + l.opcode_len; ++i)
      code.push_back(split.opcode.at(op++));
    for (std::size_t i = 0; i < l.modrm_len; ++i) code.push_back(split.modrm.at(mo++));
    for (std::size_t i = 0; i < static_cast<std::size_t>(l.disp_len) + l.imm_len; ++i)
      code.push_back(split.imm.at(im++));
  }
  if (op != split.opcode.size() || mo != split.modrm.size() || im != split.imm.size())
    throw CorruptDataError("x86 stream lengths inconsistent with layouts");
  return code;
}

}  // namespace ccomp::x86
