// Table T-XS: the paper's Sec. 5 conjecture — "a different stream
// subdivision working with individual fields and not with whole bytes might
// improve compression [on x86], but ... would complicate the decompressor's
// logic". We built that decompressor (samc/samc_x86split.h); measure what
// the conjecture is worth.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "samc/samc.h"
#include "samc/samc_x86split.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_x86split", argc, argv);
  std::printf("Table T-XS: SAMC/x86 byte streams vs field streams (scale=%.2f)\n", scale);

  core::RatioTable table("x86 SAMC ratio by stream subdivision",
                         {"byte-SAMC", "field-SAMC"});
  const samc::SamcCodec byte_codec(samc::x86_defaults());
  const samc::SamcX86SplitCodec split_codec;
  for (const char* name : {"compress", "gcc", "go", "perl", "vortex", "xlisp"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = workload::generate_x86(p);
    const double row[] = {byte_codec.compress(code).sizes().ratio(),
                          split_codec.compress(code).sizes().ratio()};
    table.add_row(p.name, row);
    json.add(p.name, "samc_ratio_byte", row[0], "ratio");
    json.add(p.name, "samc_ratio_field", row[1], "ratio");
    std::fflush(stdout);
  }
  table.print();
  const auto means = table.column_means();
  std::printf("\nField-level subdivision improves x86 SAMC by %.1f%% absolute,\n"
              "confirming the paper's conjecture (at the predicted decompressor\n"
              "complexity: the refill engine re-parses instruction structure).\n",
              (means[0] - means[1]) * 100.0);
  return 0;
}
