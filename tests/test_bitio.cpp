#include "support/bitio.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace ccomp {
namespace {

TEST(BitWriter, EmptyTakeYieldsNothing) {
  BitWriter w;
  EXPECT_TRUE(w.take().empty());
}

TEST(BitWriter, SingleBitsPackMsbFirst) {
  BitWriter w;
  w.write_bit(1);
  w.write_bit(0);
  w.write_bit(1);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitWriter, MultiBitValueSpansBytes) {
  BitWriter w;
  w.write_bits(0x1A5, 9);  // 1 1010 0101
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xD2);  // 11010010
  EXPECT_EQ(bytes[1], 0x80);  // 1.......
}

TEST(BitWriter, MasksHighBitsBeyondCount) {
  BitWriter w;
  w.write_bits(0xFFFF, 4);
  EXPECT_EQ(w.take()[0], 0xF0);
}

TEST(BitWriter, CountOver64Throws) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), ConfigError);
}

TEST(BitWriter, AlignToByteIsIdempotent) {
  BitWriter w;
  w.write_bit(1);
  w.align_to_byte();
  w.align_to_byte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.write_byte(0xAB);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitWriter, CompleteBytesExcludesPartialByte) {
  BitWriter w;
  w.write_bits(0xABC, 12);
  EXPECT_EQ(w.complete_bytes().size(), 1u);
  EXPECT_EQ(w.complete_bytes()[0], 0xAB);
  w.write_bits(0xD, 4);
  EXPECT_EQ(w.complete_bytes().size(), 2u);
}

TEST(BitReader, ReadsBackWhatWasWritten) {
  BitWriter w;
  w.write_bits(0x5, 3);
  w.write_bits(0x12345, 20);
  w.write_bits(1, 1);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0x5u);
  EXPECT_EQ(r.read_bits(20), 0x12345u);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitReader, ThrowsPastEnd) {
  const std::uint8_t data[1] = {0xFF};
  BitReader r(data);
  r.read_bits(8);
  EXPECT_THROW(r.read_bit(), CorruptDataError);
}

TEST(BitReader, SeekRepositionsAbsolutely) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  w.write_bits(0xCD, 8);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.seek_bits(8);
  EXPECT_EQ(r.read_bits(8), 0xCDu);
  r.seek_bits(0);
  EXPECT_EQ(r.read_bits(8), 0xABu);
}

TEST(BitReader, SeekPastEndThrows) {
  const std::uint8_t data[2] = {0, 0};
  BitReader r(data);
  EXPECT_THROW(r.seek_bits(17), CorruptDataError);
}

TEST(BitIo, RandomRoundTrip) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> chunks;
    for (int i = 0; i < 200; ++i) {
      const unsigned count = 1 + static_cast<unsigned>(rng.next_below(64));
      std::uint64_t value = rng.next_u64();
      if (count < 64) value &= (std::uint64_t{1} << count) - 1;
      chunks.emplace_back(value, count);
      w.write_bits(value, count);
    }
    const auto bytes = w.take();
    BitReader r(bytes);
    for (const auto& [value, count] : chunks) {
      EXPECT_EQ(r.read_bits(count), value);
    }
  }
}

TEST(BitReader, PeekDoesNotConsume) {
  BitWriter w;
  w.write_bits(0xABCD, 16);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.peek_bits(8), 0xABu);
  EXPECT_EQ(r.peek_bits(12), 0xABCu);
  EXPECT_EQ(r.bit_position(), 0u);
  EXPECT_EQ(r.read_bits(16), 0xABCDu);
}

TEST(BitReader, PeekPastEndPadsWithZeros) {
  const std::uint8_t data[1] = {0xFF};
  BitReader r(data);
  EXPECT_EQ(r.peek_bits(16), 0xFF00u);
  r.read_bits(8);
  EXPECT_EQ(r.peek_bits(4), 0u);
}

TEST(BitReader, PeekMatchesReadEverywhere) {
  Rng rng(4321);
  BitWriter w;
  for (int i = 0; i < 300; ++i) w.write_bits(rng.next_u64(), 13);
  const auto bytes = w.take();
  BitReader r(bytes);
  while (r.bits_left() >= 13) {
    const auto peeked = r.peek_bits(13);
    EXPECT_EQ(r.read_bits(13), peeked);
  }
}

TEST(BitReader, AlignToByteSkipsToBoundary) {
  BitWriter w;
  w.write_bits(0x3, 2);
  w.align_to_byte();
  w.write_byte(0x77);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.read_bits(2);
  r.align_to_byte();
  EXPECT_EQ(r.read_byte(), 0x77);
}

}  // namespace
}  // namespace ccomp
