// Cross-module integration tests: the full paper pipeline on several
// benchmarks, container serialization through codec decompression, and the
// relative ordering of schemes the figures depend on.
#include <gtest/gtest.h>

#include "baseline/bytehuff.h"
#include "baseline/filecodecs.h"
#include "isa/mips/mips.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp {
namespace {

workload::Profile scaled(const char* name, std::uint32_t kb) {
  workload::Profile p = *workload::find_profile(name);
  p.code_kb = kb;
  return p;
}

TEST(Integration, MipsPipelineOrderingMatchesPaper) {
  // On MIPS the paper's ordering is: gzip best, SADC next (4-6% better than
  // SAMC), SAMC ~ compress, byte-Huffman worst.
  const auto code = mips::words_to_bytes(workload::generate_mips(scaled("gcc", 96)));

  const double r_samc = samc::SamcCodec(samc::mips_defaults()).compress(code).sizes().ratio();
  const double r_sadc = sadc::SadcMipsCodec().compress(code).sizes().ratio();
  const double r_huff = baseline::ByteHuffmanCodec().compress(code).sizes().ratio();
  const double r_gzip = baseline::gzip_like(code).ratio();

  EXPECT_LT(r_sadc, r_samc);
  EXPECT_LT(r_samc, r_huff);
  EXPECT_LT(r_gzip, r_sadc);
}

TEST(Integration, SerializedImageDecompressesAfterReload) {
  const auto code = mips::words_to_bytes(workload::generate_mips(scaled("compress", 16)));
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(code);

  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto reloaded = core::CompressedImage::deserialize(src);
  EXPECT_EQ(codec.decompress_all(reloaded), code);
}

TEST(Integration, SadcImageSurvivesSerialization) {
  const auto code = mips::words_to_bytes(workload::generate_mips(scaled("xlisp", 16)));
  const sadc::SadcMipsCodec codec;
  const auto image = codec.compress(code);
  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto reloaded = core::CompressedImage::deserialize(src);
  EXPECT_EQ(codec.decompress_all(reloaded), code);
}

TEST(Integration, AllCodecsRoundTripSeveralBenchmarks) {
  for (const char* name : {"swim", "go", "m88ksim"}) {
    const auto code = mips::words_to_bytes(workload::generate_mips(scaled(name, 12)));
    samc::SamcCodec(samc::mips_defaults()).compress_verified(code);
    sadc::SadcMipsCodec().compress_verified(code);
    baseline::ByteHuffmanCodec().compress_verified(code);
  }
}

TEST(Integration, X86PipelineRoundTripsAndOrders) {
  const auto code = workload::generate_x86(scaled("perl", 48));
  const double r_samc = samc::SamcCodec(samc::x86_defaults()).compress_verified(code)
                            .sizes().ratio();
  const double r_sadc = sadc::SadcX86Codec().compress_verified(code).sizes().ratio();
  const double r_gzip = baseline::gzip_like(code).ratio();
  // The paper: on x86, file compressors clearly beat both; SADC beats SAMC.
  EXPECT_LT(r_gzip, r_samc);
  EXPECT_LT(r_gzip, r_sadc);
  EXPECT_LT(r_sadc, r_samc + 0.05);
}

TEST(Integration, FpAndIntBenchmarksBothWork) {
  for (const char* name : {"tomcatv", "vortex"}) {
    const auto code = mips::words_to_bytes(workload::generate_mips(scaled(name, 16)));
    const auto image = sadc::SadcMipsCodec().compress_verified(code);
    EXPECT_LT(image.sizes().ratio(), 0.85) << name;
  }
}

TEST(Integration, RatiosAreStableAcrossRuns) {
  const auto code = mips::words_to_bytes(workload::generate_mips(scaled("mgrid", 16)));
  const double a = samc::SamcCodec(samc::mips_defaults()).compress(code).sizes().ratio();
  const double b = samc::SamcCodec(samc::mips_defaults()).compress(code).sizes().ratio();
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ccomp
