#include "verify/verify.h"

#include <array>

#include "verify/internal.h"

namespace ccomp::verify {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void VerifyReport::add(std::string_view check, Severity severity, std::string message) {
  findings_.push_back({std::string(check), severity, std::move(message)});
}

void VerifyReport::merge(const VerifyReport& other) {
  findings_.insert(findings_.end(), other.findings_.begin(), other.findings_.end());
}

std::size_t VerifyReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& f : findings_)
    if (f.severity == severity) ++n;
  return n;
}

bool VerifyReport::has(std::string_view check) const {
  for (const Finding& f : findings_)
    if (f.check == check) return true;
  return false;
}

std::string VerifyReport::to_string() const {
  std::string out;
  for (const Finding& f : findings_) {
    out += f.check;
    out += " [";
    out += severity_name(f.severity);
    out += "] ";
    out += f.message;
    out += '\n';
  }
  return out;
}

namespace {

constexpr std::array<CheckInfo, 44> kCatalogue = {{
    // Container framing + integrity.
    {"SER001", Severity::kError, "container truncated or unparseable"},
    {"SER002", Severity::kError, "integrity checksum (CRC-32 trailer) mismatch"},
    {"SER003", Severity::kError, "bad container magic"},
    {"SER004", Severity::kWarn, "trailing bytes after the container"},
    // Aligned (mmap-ready, format v3.1) container framing.
    {"SER005", Severity::kError, "aligned-container section table malformed"},
    {"SER006", Severity::kError, "aligned-container section offset violates the alignment"},
    {"SER007", Severity::kError, "aligned-container section CRC-32 mismatch"},
    // Header cross-checks.
    {"IMG001", Severity::kError, "unknown codec id"},
    {"IMG002", Severity::kError, "unknown ISA id"},
    {"IMG003", Severity::kError, "block size is zero"},
    {"IMG004", Severity::kError, "block count inconsistent with original size"},
    {"IMG005", Severity::kError, "per-block original sizes inconsistent"},
    {"IMG006", Severity::kError, "header flags byte has unknown bits set"},
    // Per-block SECDED ECC section.
    {"ECC001", Severity::kError, "ECC section size inconsistent with block payload sizes"},
    {"ECC002", Severity::kError, "stored SECDED check bytes do not match the payload"},
    // Line address table.
    {"LAT001", Severity::kError, "LAT offset overflows or is non-monotone"},
    {"LAT002", Severity::kError, "LAT sentinel does not equal the payload size"},
    {"LAT003", Severity::kError, "LAT missing or empty"},
    {"LAT004", Severity::kWarn, "empty compressed block for a non-empty original block"},
    {"LAT005", Severity::kWarn, "compressed block exceeds the worst-case expansion bound"},
    // Codec side tables (generic).
    {"TBL001", Severity::kError, "codec table blob failed to parse"},
    {"TBL002", Severity::kError, "trailing bytes after the codec tables"},
    // Canonical Huffman codes.
    {"HUF001", Severity::kError, "Huffman code overfull (Kraft sum > 1): not prefix-free"},
    {"HUF002", Severity::kError, "Huffman code incomplete (Kraft sum < 1): undecodable prefixes"},
    {"HUF003", Severity::kError, "Huffman alphabet size does not match the stream it codes"},
    {"HUF004", Severity::kError, "Huffman code length exceeds the decoder limit"},
    // SADC dictionary.
    {"DIC001", Severity::kError, "dictionary empty for a non-empty payload"},
    {"DIC002", Severity::kError, "dictionary token beyond the ISA opcode table"},
    {"DIC003", Severity::kError, "register-specialised symbol operands malformed"},
    {"DIC004", Severity::kError, "immediate-specialised symbol on a token without imm16"},
    {"DIC005", Severity::kError, "duplicate dictionary entries"},
    {"DIC006", Severity::kWarn, "dictionary symbol expands beyond one block"},
    {"DIC007", Severity::kInfo, "dead dictionary symbol (no Huffman code assigned)"},
    {"DIC008", Severity::kError, "x86 opcode-string table malformed"},
    // Markov models.
    {"MKV001", Severity::kError, "Markov probability out of the encodable range"},
    {"MKV002", Severity::kError, "invalid stream division / model configuration"},
    {"MKV003", Severity::kError, "Markov tree size inconsistent with its stream width"},
    {"MKV004", Severity::kWarn, "quantized probability shift exceeds the model's max_shift"},
    {"MKV005", Severity::kInfo, "unreachable Markov tree copy (dead table bytes)"},
    {"MKV006", Severity::kError, "nibble-mode engine constraints violated"},
    {"MKV007", Severity::kError, "model word width incompatible with the block size"},
    // Multi-stream block frames (core/streams.h).
    {"STR001", Severity::kError, "entropy stream count out of range for the codec"},
    {"STR002", Severity::kError, "block payload inconsistent with its stream frame"},
    {"STR003", Severity::kError, "stream frame length sum overflows or disagrees with the block payload"},
}};

constexpr std::array<CheckInfo, 8> kAnaCatalogue = {{
    // Decode certificates (ccomp::analysis).
    {"ANA001", Severity::kError, "decode artifacts could not be certified (analysis failed)"},
    {"ANA002", Severity::kError, "no finite decode-cost bound exists (kUnbounded verdict)"},
    {"ANA003", Severity::kError, "embedded certificate section is malformed"},
    {"ANA004", Severity::kWarn, "embedded certificate understates the recomputed bounds"},
    {"ANA005", Severity::kInfo, "state space widened (bounds sound but not exhaustive)"},
    // Certified worst-case block decode (WCET feed).
    {"WCB001", Severity::kError, "block payload exceeds the certified model byte bound"},
    {"WCB002", Severity::kInfo, "certified worst-case block-decode bound summary"},
    {"WCB003", Severity::kError, "decode termination not proved; no certified WCET exists"},
}};

constexpr std::array<CheckInfo, 5> kLayCatalogue = {{
    // Placement plan / tiered layout (ccomp::layout).
    {"LAY001", Severity::kError, "layout section malformed or unparseable"},
    {"LAY002", Severity::kError, "layout permutation is not a bijection over the blocks"},
    {"LAY003", Severity::kError, "layout tier map inconsistent with the block payloads"},
    {"LAY004", Severity::kError, "layout predictor successor out of range"},
    {"LAY005", Severity::kError, "warm tier lacks a valid shared Huffman table"},
}};

constexpr std::array<CheckInfo, 6> kCfgCatalogue = {{
    {"CFG001", Severity::kError, "branch/jump target not instruction-aligned"},
    {"CFG002", Severity::kWarn, "branch/jump target outside the image"},
    {"CFG003", Severity::kError, "branch/jump target block not mapped by the LAT"},
    {"CFG004", Severity::kError, "x86 block boundary not on an instruction boundary"},
    {"CFG005", Severity::kError, "supplied original code does not match the image size"},
    {"CFG006", Severity::kWarn, "x86 branch target not an instruction start"},
}};

constexpr auto make_full_catalogue() {
  std::array<CheckInfo, kCatalogue.size() + kAnaCatalogue.size() + kLayCatalogue.size() +
                            kCfgCatalogue.size()>
      all{};
  std::size_t i = 0;
  for (const CheckInfo& c : kCatalogue) all[i++] = c;
  for (const CheckInfo& c : kAnaCatalogue) all[i++] = c;
  for (const CheckInfo& c : kLayCatalogue) all[i++] = c;
  for (const CheckInfo& c : kCfgCatalogue) all[i++] = c;
  return all;
}

constexpr auto kFullCatalogue = make_full_catalogue();

}  // namespace

std::span<const CheckInfo> check_catalogue() { return kFullCatalogue; }

namespace detail {

Severity severity_of(std::string_view check) {
  for (const CheckInfo& info : kFullCatalogue)
    if (check == info.id) return info.severity;
  return Severity::kError;
}

void emit(VerifyReport& report, std::string_view check, std::string message) {
  report.add(check, severity_of(check), std::move(message));
}

}  // namespace detail

}  // namespace ccomp::verify
