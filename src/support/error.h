// Error types shared across the ccomp library.
//
// The library throws on programmer errors (bad arguments, malformed input
// containers) and uses return values for expected conditions. All exception
// types derive from ccomp::Error so callers can catch library failures with
// one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace ccomp {

/// Base class for all errors thrown by the ccomp library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated compressed data / container.
class CorruptDataError : public Error {
 public:
  explicit CorruptDataError(const std::string& what) : Error("corrupt data: " + what) {}
};

/// Integrity trailer (CRC-32) of a serialized container does not match its
/// contents. A subclass of CorruptDataError so existing catch sites treat it
/// as corruption; callers that can retry without checksum verification (the
/// static verifier's best-effort deep checks) catch it specifically.
class ChecksumError : public CorruptDataError {
 public:
  explicit ChecksumError(const std::string& what) : CorruptDataError("checksum: " + what) {}
};

/// A decoder exhausted its fuel bound: malformed input would otherwise make
/// it loop, over-read, or over-produce. Every ccomp decoder charges fuel
/// against the block's declared output size, so decode time stays linear in
/// the output no matter what bytes arrive.
class FuelExhaustedError : public CorruptDataError {
 public:
  explicit FuelExhaustedError(const std::string& what)
      : CorruptDataError("decoder fuel exhausted: " + what) {}
};

/// The self-healing memory system exhausted its recovery ladder (CRC check,
/// ECC correction, bus retry, golden re-fetch) without producing a block
/// that passes integrity checks. The fault is *detected* — this error is the
/// escalation, carrying the refill that could not be served; wrong bytes are
/// never returned.
class FaultEscalationError : public Error {
 public:
  explicit FaultEscalationError(const std::string& what)
      : Error("uncorrectable memory fault: " + what) {}
};

/// Invalid argument or configuration (e.g. a stream division that does not
/// cover the instruction word, a block size that is not a multiple of the
/// instruction width).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("bad config: " + what) {}
};

/// Instruction bytes that the ISA layer cannot parse.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

}  // namespace ccomp
