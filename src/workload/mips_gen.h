// Synthetic MIPS program generator.
//
// Produces deterministic programs whose statistics mimic compiled SPEC95
// code: function prologue/epilogue idioms, skewed register usage, small
// stack-offset immediates, lui/ori constant pairs sharing high bits,
// loop/branch/call structure, FP blocks for the FP benchmarks, and — the
// property that separates gzip from the block-based codecs — a profile-
// controlled rate of near-clone functions (compilers emit heavily repeated
// sequences).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/profile.h"

namespace ccomp::workload {

struct MipsProgram {
  std::vector<std::uint32_t> words;
  /// Word index of each function entry, ascending. Used by the trace
  /// generator and by the jal targets inside the program itself.
  std::vector<std::uint32_t> function_starts;
};

/// Text base address used for jal targets (typical MIPS text segment).
inline constexpr std::uint32_t kMipsTextBase = 0x00400000u;

MipsProgram generate_mips_program(const Profile& profile);

/// Convenience: just the instruction words.
std::vector<std::uint32_t> generate_mips(const Profile& profile);

}  // namespace ccomp::workload
