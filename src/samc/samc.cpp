#include "samc/samc.h"

#include <algorithm>

#include "coding/markovplan.h"
#include "coding/nibblecoder.h"
#include "coding/rangecoder.h"
#include "obs/obs.h"
#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::samc {

using coding::MarkovCursor;
using coding::MarkovDecodePlan;
using coding::MarkovModel;
using coding::RangeDecoder;
using coding::RangeEncoder;
using coding::StreamDivision;

SamcOptions mips_defaults() {
  SamcOptions o;
  o.markov.division = StreamDivision::contiguous(32, 4);
  o.markov.context_bits = 1;
  o.markov.connect_across_words = true;
  o.block_size = 32;
  o.isa = core::IsaKind::kMips;
  return o;
}

SamcOptions x86_defaults() {
  SamcOptions o;
  o.markov.division = StreamDivision::single(8);
  o.markov.context_bits = 1;
  o.markov.connect_across_words = true;  // connect byte to byte
  o.block_size = 32;
  o.isa = core::IsaKind::kX86;
  return o;
}

SamcCodec::SamcCodec(SamcOptions options) : options_(std::move(options)) {
  options_.markov.division.validate();
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  if (options_.markov.division.word_bits % 8 != 0)
    throw ConfigError("SAMC word width must be a whole number of bytes");
  if (options_.block_size == 0 || options_.block_size % word_bytes != 0)
    throw ConfigError("block size must be a multiple of the word size");
  if (options_.parallel_nibble_mode) {
    if (!options_.markov.quantized || options_.markov.max_shift > 8)
      throw ConfigError("parallel nibble mode requires quantized probabilities (shift <= 8)");
    for (const auto& stream : options_.markov.division.streams)
      if (stream.size() % 4 != 0)
        throw ConfigError("parallel nibble mode requires stream widths divisible by 4");
  }
}

std::vector<std::uint32_t> SamcCodec::code_to_words(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  if (code.size() % word_bytes != 0)
    throw ConfigError("code size is not a multiple of the instruction word size");
  std::vector<std::uint32_t> words;
  words.reserve(code.size() / word_bytes);
  for (std::size_t i = 0; i < code.size(); i += word_bytes) {
    std::uint32_t w = 0;
    for (unsigned b = word_bytes; b-- > 0;) w = (w << 8) | code[i + b];  // little-endian
    words.push_back(w);
  }
  return words;
}

coding::MarkovModel SamcCodec::train_model(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  // Gather statistics exactly as the per-block coder will see them.
  return MarkovModel::train(options_.markov, words, options_.block_size / word_bytes);
}

core::CompressedImage SamcCodec::compress(std::span<const std::uint8_t> code) const {
  return compress_with_model(code, train_model(code));
}

core::CompressedImage SamcCodec::compress_with_model(std::span<const std::uint8_t> code,
                                                     const MarkovModel& model) const {
  CCOMP_SPAN("samc.compress");
  if (!(model.config().division == options_.markov.division))
    throw ConfigError("supplied model's stream division does not match the codec");
  if (options_.parallel_nibble_mode && !model.config().quantized)
    throw ConfigError("parallel nibble mode needs a quantized model");
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  const std::size_t words_per_block = options_.block_size / word_bytes;

  // Pass 2: arithmetic-code each block independently. The coder interval
  // and the Markov walk both reset at every block boundary (the paper's
  // random-access requirement), so blocks are encoded in parallel — each
  // task carries its own encoder and cursor over the shared frozen model —
  // and concatenated in index order, making the payload byte-identical to a
  // serial encode at any thread count.
  const std::size_t block_count =
      words.empty() ? 0 : (words.size() + words_per_block - 1) / words_per_block;
  auto encode_block = [&](std::size_t b, auto& encoder) {
    CCOMP_SPAN("samc.encode_block");
    CCOMP_TIMER("samc.encode.block_ns");
    const std::size_t begin = b * words_per_block;
    const std::size_t end = std::min(begin + words_per_block, words.size());
    CCOMP_COUNT("samc.encode.blocks", 1);
    CCOMP_COUNT("samc.encode.words", end - begin);
    MarkovCursor cursor(model);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t word = words[i];
      for (unsigned bit_no = 0; bit_no < options_.markov.division.word_bits; ++bit_no) {
        const unsigned bit = (word >> cursor.next_bit_position()) & 1u;
        encoder.encode_bit(bit, cursor.prob());
        cursor.advance(bit);
      }
    }
    encoder.finish();
    return encoder.take();
  };
  std::vector<std::vector<std::uint8_t>> blocks;
  if (options_.parallel_nibble_mode) {
    blocks = par::parallel_map(block_count, [&](std::size_t b) {
      coding::NibbleRangeEncoder encoder;
      return encode_block(b, encoder);
    });
  } else {
    blocks = par::parallel_map(block_count, [&](std::size_t b) {
      RangeEncoder encoder;
      return encode_block(b, encoder);
    });
  }

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(block_count + 1);
  for (const std::vector<std::uint8_t>& block : blocks) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    payload.insert(payload.end(), block.begin(), block.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));
  if (words.empty()) {
    // Degenerate empty program: single sentinel only.
    offsets.assign(1, 0);
  }

  ByteSink tables;
  tables.u8(options_.parallel_nibble_mode ? 1 : 0);  // engine flag
  model.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSamc, options_.isa, options_.block_size,
                               code.size(), tables.take(), std::move(offsets),
                               std::move(payload));
}

namespace {

// Serial decompressor: one range-decoder bit per Markov step. The Markov
// walk either runs on the flattened decode plan (one table row per decoded
// bit) or, when the plan is not viable or the cursor engine was requested,
// on the original MarkovCursor — both produce byte-identical output.
class SamcDecompressor final : public core::BlockDecompressor {
 public:
  SamcDecompressor(const core::CompressedImage& image, MarkovModel model, DecodeEngine engine)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        model_(std::move(model)),
        plan_(model_) {
    use_plan_ = engine == DecodeEngine::kPlan && plan_.viable();
    // The order bit positions are decoded in is a fixed property of the
    // stream division (streams in sequence, each MSB-to-LSB of its position
    // list), so the hot loop shifts every bit into a decode-order
    // accumulator and the scatter to word-bit positions happens once per
    // word, over maximal descending runs precomputed here. The default
    // contiguous divisions collapse to a single run (the accumulator *is*
    // the word); a pathological division degrades to one run per bit, which
    // still only costs what the old per-bit scatter did.
    std::vector<std::uint8_t> positions;
    for (const auto& stream : model_.config().division.streams)
      for (const std::uint8_t pos : stream) positions.push_back(pos);
    const unsigned word_bits = model_.config().division.word_bits;
    std::size_t i = 0;
    while (i < positions.size()) {
      std::size_t j = i + 1;
      while (j < positions.size() && positions[j] + 1 == positions[j - 1]) ++j;
      const unsigned width = static_cast<unsigned>(j - i);
      OutputRun run;
      run.rshift = static_cast<std::uint8_t>(word_bits - j);
      run.lshift = positions[j - 1];
      run.mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
      runs_.push_back(run);
      i = j;
    }
  }

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out);
    return out;
  }

  using BlockDecompressor::block_into;

  void block_into(std::size_t index, std::span<std::uint8_t> out) const override {
    CCOMP_SPAN("samc.decode_block");
    CCOMP_TIMER("samc.decode.block_ns");
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    const std::size_t word_count = out.size() / word_bytes;
    CCOMP_COUNT("samc.decode.blocks", 1);
    CCOMP_COUNT("samc.decode.words", word_count);

    std::size_t at = 0;
    if (use_plan_) {
      const MarkovDecodePlan& plan = plan_;
      const OutputRun* const runs = runs_.data();
      const std::size_t run_count = runs_.size();
      // Register-resident coder state attached straight to the payload: no
      // RangeDecoder object, so no out-of-line construct/flush per block
      // and nothing whose address could force the state out of registers
      // (see RangeDecoder::Core).
      coding::RangeDecoder::Core rc = RangeDecoder::attach(image_->block_payload(index));
      std::uint32_t state = MarkovDecodePlan::kStartState;
      for (std::size_t w = 0; w < word_count; ++w) {
        std::uint32_t acc = 0;
#pragma GCC unroll 8
        for (unsigned b = 0; b < word_bits; ++b) {
          // One 64-bit fetch loads both candidate successors before the bit
          // resolves, so the table access overlaps the coder's compare
          // instead of waiting on it (the walk is otherwise one long
          // dependency chain). Bits land in decode order; the scatter to
          // word positions runs once per word, below.
          const std::uint64_t pair = plan.next_pair(state);
          // Branch (not select) on the decoded bit: bits are predictable
          // (that is why they compress), so the predictor speculates the
          // state update and the next probability load instead of waiting
          // for the coder's compare to retire. After inlining this threads
          // straight onto decode_bit's own compare.
          if (rc.decode_bit(plan.prob0(state))) {
            acc = (acc << 1) | 1u;
            state = static_cast<std::uint32_t>(pair >> 32);
          } else {
            acc <<= 1;
            state = static_cast<std::uint32_t>(pair);
          }
        }
        std::uint32_t word = 0;
        for (std::size_t r = 0; r < run_count; ++r)
          word |= ((acc >> runs[r].rshift) & runs[r].mask) << runs[r].lshift;
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
      CCOMP_COUNT("coder.range.decode_renorms", rc.renorms);
      return;
    }
    RangeDecoder decoder(image_->block_payload(index));
    MarkovCursor cursor(model_);
    for (std::size_t w = 0; w < word_count; ++w) {
      std::uint32_t word = 0;
      for (unsigned b = 0; b < word_bits; ++b) {
        const unsigned pos = cursor.next_bit_position();
        const unsigned bit = decoder.decode_bit(cursor.prob());
        word |= static_cast<std::uint32_t>(bit) << pos;
        cursor.advance(bit);
      }
      for (unsigned b = 0; b < word_bytes; ++b)
        out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }

 private:
  /// One maximal descending run of the division's flattened bit-position
  /// sequence: decoded chunk `(acc >> rshift) & mask` lands at `<< lshift`.
  struct OutputRun {
    std::uint8_t rshift;
    std::uint8_t lshift;
    std::uint32_t mask;
  };

  const core::CompressedImage* image_;
  MarkovModel model_;
  MarkovDecodePlan plan_;
  bool use_plan_ = false;
  std::vector<OutputRun> runs_;
};

// Parallel (Fig. 5) decompressor: prefetches the 15 probabilities of the
// coming nibble's subtree and resolves 4 bits per decode_nibble call.
class NibbleSamcDecompressor final : public core::BlockDecompressor {
 public:
  NibbleSamcDecompressor(const core::CompressedImage& image, MarkovModel model,
                         DecodeEngine engine)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        model_(std::move(model)),
        plan_(model_) {
    use_plan_ = engine == DecodeEngine::kPlan && plan_.viable();
  }

  std::vector<std::uint8_t> block(std::size_t index) const override {
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out);
    return out;
  }

  using BlockDecompressor::block_into;

  void block_into(std::size_t index, std::span<std::uint8_t> out) const override {
    CCOMP_SPAN("samc.decode_block");
    CCOMP_TIMER("samc.decode.block_ns");
    const unsigned word_bits = model_.config().division.word_bits;
    const unsigned word_bytes = word_bits / 8;
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    const std::size_t word_count = out.size() / word_bytes;
    CCOMP_COUNT("samc.decode.blocks", 1);
    CCOMP_COUNT("samc.decode.words", word_count);

    coding::NibbleRangeDecoder decoder(image_->block_payload(index));
    std::size_t at = 0;
    if (use_plan_) {
      // The nibble-mode constraint (stream widths divisible by 4) means a
      // nibble never crosses a stream boundary, so the subtree gather can
      // walk the plan's next-pointers directly.
      const MarkovDecodePlan& plan = plan_;
      std::uint32_t state = MarkovDecodePlan::kStartState;
      for (std::size_t w = 0; w < word_count; ++w) {
        std::uint32_t word = 0;
        for (unsigned group = 0; group < word_bits / 4; ++group) {
          coding::Prob probs[15];
          plan.gather_nibble(state, probs);
          const unsigned nibble = decoder.decode_nibble(probs);
          for (int b = 3; b >= 0; --b) {
            const unsigned bit = (nibble >> b) & 1u;
            word |= static_cast<std::uint32_t>(bit) << plan.bit_pos(state);
            state = plan.next(state, bit);
          }
        }
        for (unsigned b = 0; b < word_bytes; ++b)
          out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
      }
      return;
    }
    MarkovCursor cursor(model_);
    for (std::size_t w = 0; w < word_count; ++w) {
      std::uint32_t word = 0;
      for (unsigned group = 0; group < word_bits / 4; ++group) {
        // Gather the probability subtree rooted at the cursor's node — this
        // is the "probability memory" fetch feeding the 15 midpoint units.
        coding::Prob probs[15];
        std::size_t tree_nodes[15];
        tree_nodes[0] = cursor.node();
        const std::size_t stream = cursor.stream();
        const std::size_t ctx = cursor.context();
        for (std::size_t i = 0; i < 7; ++i) {
          tree_nodes[2 * i + 1] = 2 * tree_nodes[i] + 1;
          tree_nodes[2 * i + 2] = 2 * tree_nodes[i] + 2;
        }
        for (std::size_t i = 0; i < 15; ++i)
          probs[i] = model_.prob0(stream, ctx, tree_nodes[i]);

        const unsigned nibble = decoder.decode_nibble(probs);
        for (int b = 3; b >= 0; --b) {
          const unsigned bit = (nibble >> b) & 1u;
          word |= static_cast<std::uint32_t>(bit) << cursor.next_bit_position();
          cursor.advance(bit);
        }
      }
      for (unsigned b = 0; b < word_bytes; ++b)
        out[at++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }

 private:
  const core::CompressedImage* image_;
  MarkovModel model_;
  MarkovDecodePlan plan_;
  bool use_plan_ = false;
};

}  // namespace

std::unique_ptr<core::BlockDecompressor> SamcCodec::make_decompressor(
    const core::CompressedImage& image) const {
  return make_decompressor(image, DecodeEngine::kPlan);
}

std::unique_ptr<core::BlockDecompressor> SamcCodec::make_decompressor(
    const core::CompressedImage& image, DecodeEngine engine) const {
  if (image.codec() != core::CodecKind::kSamc)
    throw ConfigError("image was not produced by SAMC");
  ByteSource src(image.tables());
  const bool nibble_mode = src.u8() != 0;
  MarkovModel model = MarkovModel::deserialize(src);
  if (nibble_mode)
    return std::make_unique<NibbleSamcDecompressor>(image, std::move(model), engine);
  return std::make_unique<SamcDecompressor>(image, std::move(model), engine);
}

double SamcCodec::estimate_payload_bits(std::span<const std::uint8_t> code) const {
  const unsigned word_bytes = options_.markov.division.word_bits / 8;
  const std::vector<std::uint32_t> words = code_to_words(code);
  const std::size_t words_per_block = options_.block_size / word_bytes;
  const MarkovModel model = MarkovModel::train(options_.markov, words, words_per_block);
  return model.estimate_bits(words, words_per_block);
}

std::size_t parallel_decode_units(unsigned bits_per_cycle) {
  if (bits_per_cycle == 0 || bits_per_cycle > 8)
    throw ConfigError("parallel decode width must be 1..8");
  return (std::size_t{1} << bits_per_cycle) - 1;
}

std::size_t samc_decode_cycles(std::uint32_t block_size, unsigned bits_per_cycle,
                               unsigned startup_cycles) {
  const std::size_t bits = static_cast<std::size_t>(block_size) * 8;
  return startup_cycles + (bits + bits_per_cycle - 1) / bits_per_cycle;
}

}  // namespace ccomp::samc
