#include "workload/x86_gen.h"

#include "isa/x86/x86.h"
#include "support/rng.h"

namespace ccomp::workload {
namespace {

using x86::Assembler;
using Reg = Assembler::Reg;
using Alu = Assembler::Alu;

class X86Generator {
 public:
  explicit X86Generator(const Profile& prof)
      : prof_(prof), rng_(prof.seed * 0x9E3779B97F4A7C15ull + 0x86C0DEu) {}

  X86Program run() {
    const std::size_t target = static_cast<std::size_t>(prof_.code_kb) * 1024;
    while (asm_.size() < target) emit_function();
    X86Program out;
    out.bytes = asm_.take();
    // Trim to target at an instruction boundary: easiest is to keep whole
    // functions; drop the excess by truncating at the last boundary we know.
    if (out.bytes.size() > target && starts_.size() > 1) {
      // Truncate at the start of the final function (all earlier bytes are
      // complete instructions).
      out.bytes.resize(last_function_start_);
      starts_.pop_back();
    }
    out.function_starts = std::move(starts_);
    return out;
  }

 private:
  // Register selection: eax/ecx/edx dominate (caller-saved scratch), then
  // esi/edi/ebx; esp/ebp are reserved for the frame.
  Reg scratch() {
    static constexpr Reg kOrder[] = {Reg::EAX, Reg::ECX, Reg::EDX,
                                     Reg::ESI, Reg::EDI, Reg::EBX};
    return kOrder[rng_.pick_skewed(6, prof_.reg_decay)];
  }

  std::int32_t frame_disp() {
    // [ebp - small offset], multiples of 4.
    return -static_cast<std::int32_t>(4 * (1 + rng_.pick_skewed(24, 0.82)));
  }

  std::int32_t imm_value() {
    if (rng_.chance(prof_.imm_small_bias)) {
      static constexpr std::int32_t kCommon[] = {1, 0, 4, 8, 2, 16, -1, 3, 255, 32};
      return kCommon[rng_.pick_skewed(10, 0.7)];
    }
    return static_cast<std::int32_t>(rng_.next_below(4096));
  }

  std::uint32_t address_constant() {
    // Data-segment addresses cluster: same high bytes, varied low bytes.
    static constexpr std::uint32_t kBases[] = {0x0804A000u, 0x0804B000u, 0x08050000u};
    return kBases[rng_.pick_skewed(3, 0.6)] + static_cast<std::uint32_t>(rng_.next_below(2048));
  }

  // --- idioms -----------------------------------------------------------
  void idiom_load_op_store() {
    const Reg r = scratch();
    asm_.mov_r_rm(r, Reg::EBP, frame_disp());
    switch (rng_.next_below(4)) {
      case 0: asm_.alu_r_r(Alu::ADD, r, scratch()); break;
      case 1: asm_.alu_r_imm(Alu::ADD, r, imm_value()); break;
      case 2: asm_.alu_r_r(Alu::AND, r, scratch()); break;
      default: asm_.alu_r_r(Alu::XOR, r, scratch()); break;
    }
    if (rng_.chance(0.7)) asm_.mov_rm_r(Reg::EBP, frame_disp(), r);
  }

  void idiom_alu_chain() {
    const unsigned n = 2 + static_cast<unsigned>(rng_.next_below(3));
    static constexpr Alu kOps[] = {Alu::ADD, Alu::SUB, Alu::AND, Alu::OR, Alu::XOR, Alu::CMP};
    for (unsigned i = 0; i < n; ++i) {
      if (rng_.chance(0.3)) {
        asm_.alu_r_imm(kOps[rng_.pick_skewed(6, 0.6)], scratch(), imm_value());
      } else {
        asm_.alu_r_r(kOps[rng_.pick_skewed(6, 0.6)], scratch(), scratch());
      }
    }
  }

  void idiom_const() { asm_.mov_r_imm32(scratch(), address_constant()); }

  void idiom_shift() {
    asm_.shift_r_imm(rng_.chance(0.5),
                     scratch(), static_cast<std::uint8_t>(1u << rng_.next_below(5)));
  }

  void idiom_byte_mem() {
    asm_.movzx_r_rm8(scratch(), Reg::EBP, frame_disp());
    if (rng_.chance(0.4)) asm_.setcc(static_cast<std::uint8_t>(rng_.next_below(16)), Reg::EAX);
  }

  void idiom_compare_branch() {
    const Reg r = scratch();
    if (rng_.chance(0.6)) {
      asm_.alu_r_imm(Alu::CMP, r, imm_value());
    } else {
      asm_.test_r_r(r, r);
    }
    static constexpr std::uint8_t kConds[] = {0x4, 0x5, 0xC, 0xE, 0xD, 0xF, 0x2, 0x7};
    asm_.jcc8(kConds[rng_.pick_skewed(8, 0.7)],
              static_cast<std::int8_t>(rng_.next_in_range(-48, 48)));
  }

  void idiom_call() {
    if (starts_.size() < 2) return;
    if (rng_.chance(0.5)) asm_.push_r(scratch());
    if (rng_.chance(0.3)) asm_.push_imm8(static_cast<std::int8_t>(rng_.next_below(16)));
    const std::size_t n = starts_.size() - 1;
    const std::size_t pick = n - 1 - rng_.pick_skewed(n, 0.9);
    // rel32 from the end of the 5-byte call instruction.
    const std::int64_t target = static_cast<std::int64_t>(starts_[pick]);
    const std::int64_t next_ip = static_cast<std::int64_t>(asm_.size()) + 5;
    asm_.call_rel32(static_cast<std::int32_t>(target - next_ip));
    if (rng_.chance(0.5)) asm_.alu_r_imm(Alu::ADD, Reg::ESP, 4);
    if (rng_.chance(0.4)) asm_.mov_r_r(scratch(), Reg::EAX);
  }

  void idiom_fp_like() {
    // Pentium Pro SPECfp code is x87-heavy: load, multiply/add against
    // memory, occasionally pop the stack, store the result.
    asm_.fld_mem(Reg::EBP, frame_disp());
    if (rng_.chance(0.5)) {
      asm_.fmul_mem(Reg::EBP, frame_disp());
    } else {
      asm_.fadd_mem(Reg::EBP, frame_disp());
    }
    if (rng_.chance(0.3)) {
      asm_.fld_mem(Reg::EBP, frame_disp());
      asm_.faddp();
    }
    asm_.fstp_mem(Reg::EBP, frame_disp());
  }

  void idiom_loop_counter() {
    asm_.inc_r(scratch());
    asm_.alu_r_imm(Alu::CMP, scratch(), imm_value());
    asm_.jcc8(0x2 /*jb*/, static_cast<std::int8_t>(-static_cast<int>(
        5 + rng_.next_below(40))));
  }

  void emit_function() {
    last_function_start_ = static_cast<std::uint32_t>(asm_.size());
    starts_.push_back(last_function_start_);

    if (starts_.size() > 2 && rng_.chance(prof_.clone_rate)) {
      emit_clone();
      return;
    }

    // Prologue: push ebp; mov ebp, esp; sub esp, frame.
    asm_.push_r(Reg::EBP);
    asm_.mov_r_r(Reg::EBP, Reg::ESP);
    asm_.alu_r_imm(Alu::SUB, Reg::ESP, static_cast<std::int32_t>(8 * (2 + rng_.next_below(14))));
    if (rng_.chance(0.5)) asm_.push_r(Reg::ESI);
    if (rng_.chance(0.3)) asm_.push_r(Reg::EDI);

    const unsigned blocks = 3 + static_cast<unsigned>(rng_.next_below(24));
    for (unsigned bi = 0; bi < blocks; ++bi) {
      const double weights[] = {
          2.0,                      // load-op-store
          1.6,                      // alu chain
          0.9,                      // const
          0.5,                      // shift
          0.6,                      // byte mem
          prof_.branch_density,     // compare-branch
          prof_.call_density,       // call
          prof_.fp_fraction * 4.0,  // fp-like
          0.7,                      // loop counter
      };
      switch (rng_.pick_weighted(weights)) {
        case 0: idiom_load_op_store(); break;
        case 1: idiom_alu_chain(); break;
        case 2: idiom_const(); break;
        case 3: idiom_shift(); break;
        case 4: idiom_byte_mem(); break;
        case 5: idiom_compare_branch(); break;
        case 6: idiom_call(); break;
        case 7: idiom_fp_like(); break;
        default: idiom_loop_counter(); break;
      }
    }

    if (rng_.chance(0.3)) asm_.pop_r(Reg::EDI);
    if (rng_.chance(0.5)) asm_.pop_r(Reg::ESI);
    asm_.leave();
    asm_.ret();
  }

  void emit_clone() {
    const std::size_t n = starts_.size() - 1;
    const std::size_t pick = rng_.next_below(n);
    const std::uint32_t begin = starts_[pick];
    const std::uint32_t end = pick + 1 < n ? starts_[pick + 1] : starts_[n];
    if (end <= begin) return;
    // Byte-exact clone: call rel32 values now point at shifted targets, which
    // is harmless for compression studies (they are still plausible bytes)
    // and mirrors how linkers duplicate template/inline bodies with
    // relocated call sites.
    const auto& code = asm_.code();
    const std::vector<std::uint8_t> copy(code.begin() + begin, code.begin() + end);
    asm_.db(copy);
  }

  const Profile& prof_;
  Rng rng_;
  Assembler asm_;
  std::vector<std::uint32_t> starts_;
  std::uint32_t last_function_start_ = 0;
};

}  // namespace

X86Program generate_x86_program(const Profile& profile) { return X86Generator(profile).run(); }

std::vector<std::uint8_t> generate_x86(const Profile& profile) {
  return generate_x86_program(profile).bytes;
}

}  // namespace ccomp::workload
