#include "coding/huffman.h"

#include <algorithm>
#include <queue>

namespace ccomp::coding {
namespace {

// Compute unrestricted Huffman code lengths from frequencies with a heap.
std::vector<std::uint8_t> huffman_lengths(std::span<const std::uint64_t> freq) {
  const std::size_t n = freq.size();
  std::vector<std::uint8_t> lengths(n, 0);

  struct Node {
    std::uint64_t weight;
    std::uint32_t serial;  // tie-break so the build is deterministic
    int left, right;       // -1 for leaves
    std::uint32_t symbol;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight != nodes[static_cast<std::size_t>(b)].weight)
      return nodes[static_cast<std::size_t>(a)].weight > nodes[static_cast<std::size_t>(b)].weight;
    return nodes[static_cast<std::size_t>(a)].serial > nodes[static_cast<std::size_t>(b)].serial;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  std::uint32_t serial = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back(Node{freq[s], serial++, -1, -1, static_cast<std::uint32_t>(s)});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[nodes[0].symbol] = 1;  // degenerate alphabet: give it a 1-bit code
    return lengths;
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back(Node{nodes[static_cast<std::size_t>(a)].weight +
                             nodes[static_cast<std::size_t>(b)].weight,
                         serial++, a, b, 0});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first assignment of depths to leaves.
  struct Frame {
    int node;
    unsigned depth;
  };
  std::vector<Frame> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(f.node)];
    if (node.left < 0) {
      lengths[node.symbol] = static_cast<std::uint8_t>(f.depth == 0 ? 1 : f.depth);
    } else {
      stack.push_back({node.left, f.depth + 1});
      stack.push_back({node.right, f.depth + 1});
    }
  }
  return lengths;
}

// Enforce `max_length` on a set of code lengths while keeping the Kraft sum
// exactly 1 (the zlib-style rebalancing trick): overlong codes are clamped,
// then the resulting Kraft overflow is paid back by lengthening the cheapest
// short codes, and finally any slack is reclaimed by shortening codes.
void limit_lengths(std::vector<std::uint8_t>& lengths, unsigned max_length) {
  bool overlong = false;
  for (auto l : lengths) overlong |= (l > max_length);
  if (!overlong) return;

  // Kraft sum in units of 2^-max_length.
  const std::uint64_t one = std::uint64_t{1} << max_length;
  std::uint64_t kraft = 0;
  for (auto& l : lengths) {
    if (l == 0) continue;
    if (l > max_length) l = static_cast<std::uint8_t>(max_length);
    kraft += one >> l;
  }
  // Pay back the overflow: demote symbols (increase their length) until the
  // Kraft inequality holds. Work from the longest valid codes downward.
  for (unsigned l = max_length - 1; kraft > one && l >= 1; --l) {
    for (std::size_t s = 0; s < lengths.size() && kraft > one; ++s) {
      if (lengths[s] == l) {
        lengths[s] = static_cast<std::uint8_t>(l + 1);
        kraft -= (one >> l) - (one >> (l + 1));
      }
    }
  }
  // Reclaim slack: promote symbols (shorten) where possible, longest first,
  // so the code stays close to optimal.
  for (unsigned l = max_length; kraft < one && l >= 2; --l) {
    for (std::size_t s = 0; s < lengths.size() && kraft < one; ++s) {
      if (lengths[s] == l && kraft + ((one >> (l - 1)) - (one >> l)) <= one) {
        lengths[s] = static_cast<std::uint8_t>(l - 1);
        kraft += (one >> (l - 1)) - (one >> l);
      }
    }
  }
}

}  // namespace

HuffmanCode HuffmanCode::from_frequencies(std::span<const std::uint64_t> freq,
                                          unsigned max_length) {
  if (max_length == 0 || max_length > kMaxCodeLength)
    throw ConfigError("Huffman max_length out of range");
  HuffmanCode code;
  code.lengths_ = huffman_lengths(freq);
  limit_lengths(code.lengths_, max_length);
  code.build_canonical();
  return code;
}

HuffmanCode HuffmanCode::from_lengths(std::vector<std::uint8_t> lengths) {
  HuffmanCode code;
  code.lengths_ = std::move(lengths);
  for (auto l : code.lengths_)
    if (l > kMaxCodeLength) throw CorruptDataError("Huffman length exceeds limit");
  code.build_canonical();
  return code;
}

void HuffmanCode::build_canonical() {
  const std::size_t n = lengths_.size();
  codes_.assign(n, 0);
  sorted_symbols_.clear();

  std::uint32_t length_count[kMaxCodeLength + 2] = {};
  for (auto l : lengths_)
    if (l > 0) ++length_count[l];

  // Verify the Kraft inequality so corrupt tables can't produce ambiguous
  // decodes.
  std::uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l)
    kraft += static_cast<std::uint64_t>(length_count[l]) << (kMaxCodeLength - l);
  if (kraft > (std::uint64_t{1} << kMaxCodeLength))
    throw CorruptDataError("Huffman lengths violate the Kraft inequality");

  // Canonical numbering: codes of each length are consecutive; the first code
  // of length L is (first_code[L-1] + count[L-1]) << 1.
  std::uint32_t next_code[kMaxCodeLength + 2] = {};
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + length_count[l - 1]) << 1;
    next_code[l] = code;
    first_code_[l] = code;
    first_index_[l] = index;
    index += length_count[l];
  }
  first_code_[kMaxCodeLength + 1] = 0;
  first_index_[kMaxCodeLength + 1] = index;

  // Assign codewords and the symbol table sorted by (length, symbol).
  sorted_symbols_.resize(index);
  std::uint32_t fill[kMaxCodeLength + 2];
  std::copy(std::begin(first_index_), std::end(first_index_), std::begin(fill));
  for (std::size_t s = 0; s < n; ++s) {
    const unsigned l = lengths_[s];
    if (l == 0) continue;
    codes_[s] = next_code[l]++;
    sorted_symbols_[fill[l]++] = static_cast<std::uint32_t>(s);
  }

  // Single-lookup acceleration for codes of <= kFastBits bits: every window
  // whose prefix is the codeword maps to (symbol, length).
  fast_.assign(std::size_t{1} << kFastBits, FastEntry{});
  for (std::size_t s = 0; s < n; ++s) {
    const unsigned l = lengths_[s];
    if (l == 0 || l > kFastBits) continue;
    const std::uint32_t base = codes_[s] << (kFastBits - l);
    const std::uint32_t span = 1u << (kFastBits - l);
    for (std::uint32_t w = 0; w < span; ++w)
      fast_[base + w] = FastEntry{static_cast<std::uint32_t>(s),
                                  static_cast<std::uint8_t>(l)};
  }

  // Multi-symbol acceleration: re-decode each window through the fast table,
  // packing as many complete codewords as fit. A symbol is only accepted
  // when its codeword lies entirely inside the window's known bits, so the
  // packing is exact regardless of what follows the window in the stream.
  multi_.clear();
  if (n <= 256) {
    multi_.assign(std::size_t{1} << kFastBits, MultiEntry{});
    for (std::uint32_t w = 0; w < (1u << kFastBits); ++w) {
      MultiEntry e;
      unsigned used = 0;
      while (e.count < 3) {
        const std::uint32_t idx = (w << used) & ((1u << kFastBits) - 1);
        const FastEntry f = fast_[idx];
        if (f.length == 0 || f.length > kFastBits - used) break;
        e.syms[e.count++] = static_cast<std::uint8_t>(f.symbol);
        used += f.length;
      }
      e.bits = static_cast<std::uint8_t>(used);
      multi_[w] = e;
    }
  }
}

void HuffmanCode::encode(BitWriter& out, std::size_t symbol) const {
  const unsigned l = lengths_.at(symbol);
  if (l == 0) throw ConfigError("encoding a symbol with no Huffman code");
  out.write_bits(codes_[symbol], l);
}

std::size_t HuffmanCode::decode(BitReader& in) const {
  const std::uint32_t window = static_cast<std::uint32_t>(in.peek_bits(kFastBits));
  const FastEntry entry = fast_[window];
  if (entry.length != 0 && entry.length <= in.bits_left()) {
    in.seek_bits(in.bit_position() + entry.length);
    return entry.symbol;
  }
  return decode_serial(in);
}

void HuffmanCode::decode_run(BitReader& in, std::uint8_t* out, std::size_t count) const {
  if (lengths_.size() > 256)
    throw ConfigError("decode_run requires an alphabet of at most 256 symbols");
  std::size_t done = 0;
  while (done < count) {
    if (in.bits_left() >= kFastBits) {
      const MultiEntry e =
          multi_[static_cast<std::uint32_t>(in.peek_bits(kFastBits))];
      // Take the packed symbols only when the run wants all of them; a
      // partial take would consume bits belonging to the next stream.
      if (e.count != 0 && e.count <= count - done) {
        out[done] = e.syms[0];
        if (e.count > 1) out[done + 1] = e.syms[1];
        if (e.count > 2) out[done + 2] = e.syms[2];
        done += e.count;
        in.seek_bits(in.bit_position() + e.bits);
        continue;
      }
    }
    out[done++] = static_cast<std::uint8_t>(decode(in));
  }
}

std::size_t HuffmanCode::decode_serial(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
    code = (code << 1) | in.read_bit();
    const std::uint32_t count = first_index_[l + 1] - first_index_[l];
    if (count != 0 && code < first_code_[l] + count) {
      return sorted_symbols_[first_index_[l] + (code - first_code_[l])];
    }
  }
  throw CorruptDataError("invalid Huffman prefix");
}

std::uint64_t HuffmanCode::encoded_bits(std::span<const std::uint64_t> freq) const {
  std::uint64_t bits = 0;
  const std::size_t n = freq.size() < lengths_.size() ? freq.size() : lengths_.size();
  for (std::size_t s = 0; s < n; ++s) bits += freq[s] * lengths_[s];
  return bits;
}

void HuffmanCode::serialize(ByteSink& sink) const {
  // Format: varint alphabet size, then tokens: 0x00 <varint run> = run of
  // zero lengths; 0x01..0x10 = literal length.
  sink.varint(lengths_.size());
  std::size_t i = 0;
  while (i < lengths_.size()) {
    if (lengths_[i] == 0) {
      std::size_t run = 0;
      while (i + run < lengths_.size() && lengths_[i + run] == 0) ++run;
      sink.u8(0);
      sink.varint(run);
      i += run;
    } else {
      sink.u8(lengths_[i]);
      ++i;
    }
  }
}

HuffmanCode HuffmanCode::deserialize(ByteSource& src) {
  const std::uint64_t n = src.varint();
  if (n > (1u << 24)) throw CorruptDataError("Huffman alphabet unreasonably large");
  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<std::size_t>(n));
  while (lengths.size() < n) {
    const std::uint8_t tok = src.u8();
    if (tok == 0) {
      const std::uint64_t run = src.varint();
      if (lengths.size() + run > n) throw CorruptDataError("Huffman zero-run overflows alphabet");
      lengths.insert(lengths.end(), static_cast<std::size_t>(run), 0);
    } else {
      lengths.push_back(tok);
    }
  }
  return from_lengths(std::move(lengths));
}

std::size_t HuffmanCode::table_bytes() const {
  ByteSink sink;
  serialize(sink);
  return sink.size();
}

}  // namespace ccomp::coding
