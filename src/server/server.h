// Fault-tolerant concurrent compressed-image server.
//
// The serving layer the ROADMAP's remaining items plug into: many loaded
// CompressedImages behind one sharded decompressed-block cache, serving any
// number of reader threads. The single-threaded robustness ladder (memsys/
// selfheal.h) is lifted to concurrency here:
//
//   - Sharded block cache + request coalescing: concurrent misses on the
//     same (epoch, block) join one in-flight decode instead of duplicating
//     it (memsys::ShardedBlockCache).
//   - Lock-free hot path: a cache *hit* resolves the image name through an
//     RCU'd map and probes the cache's seqlock hit index without taking
//     any mutex (epoch-based reclamation, memsys/ebr.h, keeps readers
//     racing evictions and hot-swaps safe), so hit throughput scales with
//     reader count instead of serializing on a shard lock (DESIGN.md
//     §4.20).
//   - Retry with bounded exponential backoff: a refill that escalates is
//     retried a configurable number of times — transient injector noise
//     often clears between attempts.
//   - Quarantine + circuit breaker: after N *consecutive* hard failures a
//     block stops being re-decoded from the store. Callers pick the
//     degraded policy: fail fast with a typed QuarantinedError, or serve
//     bytes decoded from the golden backing copy (correct, but flagged
//     degraded and never cached). Every probe_period-th quarantined fetch
//     re-probes the store copy; a clean decode lifts the quarantine.
//   - Epoch-based hot-swap with rollback: swap() verifies (and optionally
//     re-certifies) the replacement before it becomes visible; a rejected
//     replacement leaves the old epoch serving. Epochs key the cache, so a
//     swap can never serve stale bytes.
//   - Concurrent background scrubber: a thread sweeping every image's
//     self-healing store, serialized with readers per image.
//
// Invariant inherited from the recovery ladder: wrong bytes are never
// served. A fetch returns CRC-verified store bytes, golden bytes flagged
// degraded, or throws a typed error.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "core/image.h"
#include "core/mapped.h"
#include "layout/layout.h"
#include "memsys/cache.h"
#include "memsys/ebr.h"
#include "memsys/selfheal.h"
#include "support/error.h"

namespace ccomp::server {

/// Thrown (under DegradedPolicy::kFailFast) when a fetch hits a quarantined
/// block: the store copy is known-bad, the circuit breaker is open, and the
/// caller asked not to fall back to golden bytes.
class QuarantinedError : public Error {
 public:
  using Error::Error;
};

/// What a fetch does when its block is quarantined.
enum class DegradedPolicy {
  kFailFast,     // throw QuarantinedError
  kServeGolden,  // decode from the pristine golden copy; result is flagged degraded
};

/// Where a fetch's bytes came from.
enum class FetchSource {
  kCache,      // sharded-cache hit
  kCoalesced,  // joined another thread's in-flight decode
  kDecode,     // this thread decoded from the self-healing store
  kGolden,     // degraded: decoded from the golden backing copy
};

struct FetchResult {
  memsys::ShardedBlockCache::Bytes bytes;
  FetchSource source = FetchSource::kCache;
  /// True when bytes came from the golden fallback while the store copy is
  /// quarantined. The bytes are still correct — degraded marks reduced
  /// fault-tolerance (the store copy is not self-healing right now), and
  /// degraded results are never inserted into the cache.
  bool degraded = false;
};

/// Server-side counters. Same atomicity contract as memsys::CacheStats:
/// individual counters are exact, cross-counter snapshots are not a
/// consistent cut, reset() only while quiescent. The hot `lookups` counter
/// is maintained internally on striped per-thread cache lines (one relaxed
/// add, no line shared with the lock-free lookup state) and folded into
/// this struct by ImageServer::stats(); like the stripes backing it,
/// reset() is quiescent-only — a racing reader can fold a half-zeroed sum.
struct ServerStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> decodes{0};        // leader decode rounds run
  std::atomic<std::uint64_t> retries{0};        // extra ladder attempts after a hard failure
  std::atomic<std::uint64_t> hard_failures{0};  // decode rounds that exhausted retries
  std::atomic<std::uint64_t> quarantine_trips{0};
  std::atomic<std::uint64_t> quarantine_recoveries{0};
  std::atomic<std::uint64_t> failfast_rejections{0};  // QuarantinedError thrown
  std::atomic<std::uint64_t> golden_serves{0};
  std::atomic<std::uint64_t> swaps_accepted{0};
  std::atomic<std::uint64_t> swaps_rejected{0};
  std::atomic<std::uint64_t> scrub_sweeps{0};
  std::atomic<std::uint64_t> prefetch_issued{0};  // speculative decodes started
  std::atomic<std::uint64_t> prefetch_hits{0};    // demand fetches served by a prefetch
  std::atomic<std::uint64_t> prefetch_waste{0};   // prefetched blocks never consumed

  ServerStats() = default;
  ServerStats(const ServerStats& other) { *this = other; }
  ServerStats& operator=(const ServerStats& other) {
    lookups.store(other.lookups.load(std::memory_order_relaxed), std::memory_order_relaxed);
    decodes.store(other.decodes.load(std::memory_order_relaxed), std::memory_order_relaxed);
    retries.store(other.retries.load(std::memory_order_relaxed), std::memory_order_relaxed);
    hard_failures.store(other.hard_failures.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    quarantine_trips.store(other.quarantine_trips.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    quarantine_recoveries.store(other.quarantine_recoveries.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    failfast_rejections.store(other.failfast_rejections.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    golden_serves.store(other.golden_serves.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    swaps_accepted.store(other.swaps_accepted.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    swaps_rejected.store(other.swaps_rejected.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    scrub_sweeps.store(other.scrub_sweeps.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    prefetch_issued.store(other.prefetch_issued.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    prefetch_hits.store(other.prefetch_hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    prefetch_waste.store(other.prefetch_waste.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }
  void reset() {
    lookups.store(0, std::memory_order_relaxed);
    decodes.store(0, std::memory_order_relaxed);
    retries.store(0, std::memory_order_relaxed);
    hard_failures.store(0, std::memory_order_relaxed);
    quarantine_trips.store(0, std::memory_order_relaxed);
    quarantine_recoveries.store(0, std::memory_order_relaxed);
    failfast_rejections.store(0, std::memory_order_relaxed);
    golden_serves.store(0, std::memory_order_relaxed);
    swaps_accepted.store(0, std::memory_order_relaxed);
    swaps_rejected.store(0, std::memory_order_relaxed);
    scrub_sweeps.store(0, std::memory_order_relaxed);
    prefetch_issued.store(0, std::memory_order_relaxed);
    prefetch_hits.store(0, std::memory_order_relaxed);
    prefetch_waste.store(0, std::memory_order_relaxed);
  }
};

class ImageServer {
 public:
  struct Options {
    memsys::ShardedCacheConfig cache;
    /// Extra ladder rounds after the first hard failure (0 = one attempt).
    std::uint32_t decode_retries = 2;
    /// Exponential backoff between retry rounds: base * 2^round, capped.
    std::chrono::microseconds backoff_base{50};
    std::chrono::microseconds backoff_cap{2000};
    /// Consecutive hard failures that trip a block's circuit breaker.
    std::uint32_t quarantine_threshold = 3;
    /// Every probe_period-th fetch of a quarantined block re-probes the
    /// store copy; a clean decode lifts the quarantine (0 disables probes —
    /// only a successful probe, never time, closes the breaker).
    std::uint32_t probe_period = 8;
    DegradedPolicy degraded = DegradedPolicy::kServeGolden;
    /// Per-image self-healing store knobs (memsys::SelfHealingMemorySystem).
    bool use_ecc = true;
    std::uint32_t clb_entries = 16;
    /// Audit images with verify::verify_image at load and swap time; a
    /// failing replacement is rejected and the old epoch keeps serving.
    bool verify_images = true;
    /// Additionally require an embedded decode certificate with a
    /// kCertified verdict (strict provenance, as in FunctionalMemorySystem).
    bool require_certificate = false;
    /// Speculative next-block prefetch, driven by the layout section's
    /// trace-trained predictor (images without a layout plan are never
    /// prefetched). After each fetch the predicted successors are enqueued
    /// to a background worker that decodes them into the cache; the demand
    /// path never blocks on a prefetch — a full queue drops the hint.
    bool prefetch = true;
    /// Bound on queued prefetch hints; beyond it new hints are dropped.
    std::size_t prefetch_queue = 64;
  };

  ImageServer();
  explicit ImageServer(Options options);
  ~ImageServer();

  ImageServer(const ImageServer&) = delete;
  ImageServer& operator=(const ImageServer&) = delete;

  /// Load a new image under `name` (rejects duplicates). The codec must
  /// outlive the server (it backs this image's decoders across swaps).
  /// Throws CorruptDataError when verification/certification fails.
  void load(const std::string& name, const core::BlockCodec& codec,
            const core::CompressedImage& image);

  /// Load from a v3.1 page-aligned container (core::MappedImage): the
  /// golden serving copy is a zero-copy view over the mapping (payload
  /// reads touch the mapped pages directly), while the self-healing store
  /// materializes an owned copy — it is the mutable fault surface. The
  /// server takes ownership of the mapping and keeps it alive across
  /// swaps of the same name for as long as any epoch still references it.
  void load(const std::string& name, const core::BlockCodec& codec, core::MappedImage mapped);

  struct SwapResult {
    bool accepted = false;
    std::uint64_t epoch = 0;  // serving epoch after the call
    std::string error;        // why the replacement was rejected
  };

  /// Epoch-based hot-swap: verify + build the replacement off to the side,
  /// then atomically switch the served epoch. A replacement that fails
  /// verification, certification, or construction is rejected — the old
  /// epoch keeps serving and the rejection reason is returned, not thrown.
  SwapResult swap(const std::string& name, const core::BlockCodec& codec,
                  const core::CompressedImage& image);

  /// Serve one decompressed block. Safe from any number of threads.
  FetchResult fetch(const std::string& name, std::uint32_t block);

  std::size_t block_count(const std::string& name) const;
  std::uint64_t epoch(const std::string& name) const;
  std::vector<std::string> image_names() const;

  /// Run `fn` against the named image's self-healing store, serialized
  /// against that image's decodes and scrubs — the campaign's fault-
  /// injection hook. Cached entries are not touched; pair with
  /// flush_cache() to force re-decodes over the faulted store.
  void with_store(const std::string& name,
                  const std::function<void(memsys::SelfHealingMemorySystem&)>& fn);

  /// One synchronous scrub sweep over every loaded image (up to
  /// `blocks_per_image` blocks each); returns total blocks visited.
  std::size_t scrub_once(std::size_t blocks_per_image);

  /// Background scrubber thread calling scrub_once(blocks_per_sweep) every
  /// `period`. Idempotent restart; the destructor stops it.
  void start_scrubber(std::chrono::milliseconds period, std::size_t blocks_per_sweep);
  void stop_scrubber();

  void flush_cache() { cache_.flush(); }

  /// Synthetic per-decode latency, applied before each leader decode round.
  /// Models slow decompression hardware; the campaign's thundering-herd
  /// phase uses it so coalescing joins happen even on few-core hosts.
  void set_decode_delay(std::chrono::microseconds delay) {
    decode_delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

  /// Folded snapshots (hot striped counters summed in); per-counter exact,
  /// not a consistent cross-counter cut while readers run.
  memsys::BlockCacheStats cache_stats() const { return cache_.stats(); }
  ServerStats stats() const {
    ServerStats s = stats_;
    s.lookups.store(lookup_count_.load(), std::memory_order_relaxed);
    return s;
  }
  /// Quiescent-only (see ServerStats::reset()).
  void reset_stats() {
    stats_.reset();
    lookup_count_.reset();
    cache_.reset_stats();
  }

 private:
  struct BlockState {
    std::uint32_t consecutive_failures = 0;
    std::uint32_t fetches_since_probe = 0;
    bool quarantined = false;
  };

  /// One serving epoch of one image. Immutable identity (epoch, golden,
  /// decoders); `mu` serializes the mutable parts (heal store, scratches,
  /// quarantine state) across readers, the scrubber, and with_store().
  struct LoadedImage {
    std::uint64_t epoch = 0;
    std::string name;
    const core::BlockCodec* codec = nullptr;
    core::CompressedImage golden;
    std::unique_ptr<memsys::SelfHealingMemorySystem> heal;
    std::unique_ptr<core::BlockDecompressor> golden_dec;
    core::DecodeScratch golden_scratch;
    std::mutex mu;
    std::vector<BlockState> state;
    std::size_t blocks = 0;
    /// Validated layout plan when the image carries one. The server's block
    /// indices are physical SLOTS, so the predictor table applies directly.
    std::optional<layout::PlacementPlan> plan;
    /// Per-slot flag: a prefetched copy of this block is in the cache and
    /// has not been consumed by a demand fetch yet. Drives the
    /// issued/hit/waste accounting; sized `blocks` when `plan` is set.
    std::unique_ptr<std::atomic<std::uint8_t>[]> prefetch_flag;
    /// Keeps the mmap backing alive when `golden` is a zero-copy view over
    /// a v3.1 container; null for ordinary owned images.
    std::shared_ptr<const core::MappedImage> mapping;

    explicit LoadedImage(core::CompressedImage img) : golden(std::move(img)) {}
  };
  using ImagePtr = std::shared_ptr<LoadedImage>;
  /// RCU'd name -> image map: readers load `images_root_` under an
  /// ebr::Guard and never lock; load()/swap() copy-modify-publish under
  /// `images_mu_` and retire the old map through EBR, so a pinned reader
  /// mid-lookup can still finish over the retired copy.
  using ImageMap = std::unordered_map<std::string, ImagePtr>;

  ImagePtr snapshot(const std::string& name) const;
  ImagePtr build_image(const std::string& name, const core::BlockCodec& codec,
                       const core::CompressedImage& image);
  /// Publish `img` under `name` (rejects duplicates). Copy-modify-publish
  /// of the RCU map.
  void publish_image(const std::string& name, ImagePtr img);
  FetchResult lead_decode(LoadedImage& img, const memsys::BlockKey& key,
                          const memsys::ShardedBlockCache::Flight& flight);
  /// One decode round against the self-healing store with retry + backoff.
  /// True on success (out holds verified bytes); false after retries are
  /// exhausted (a hard failure).
  bool decode_round(LoadedImage& img, std::uint32_t block, std::vector<std::uint8_t>& out);
  /// Golden fallback under kServeGolden; throws QuarantinedError under
  /// kFailFast. Caller holds img.mu.
  void serve_degraded(LoadedImage& img, std::uint32_t block, std::vector<std::uint8_t>& out);
  /// Enqueue the predictor's successors of `block` (no-op without a plan;
  /// never blocks — a full queue drops the hints).
  void maybe_prefetch(const ImagePtr& img, std::uint32_t block);
  /// Consume the prefetch flag on a demand fetch; counts a prefetch hit.
  void note_prefetch_hit(LoadedImage& img, std::uint32_t block);
  void prefetch_loop();
  void stop_prefetcher();

  Options options_;
  memsys::ShardedBlockCache cache_;
  /// Serializes map writers (load/swap) and backs the no-EBR-slot reader
  /// fallback; the fetch fast path never touches it.
  mutable std::mutex images_mu_;
  std::atomic<const ImageMap*> images_root_;
  std::atomic<std::uint64_t> next_epoch_{1};
  std::atomic<std::int64_t> decode_delay_us_{0};
  ServerStats stats_;
  memsys::ebr::StripedCounter lookup_count_;

  std::thread scrubber_;
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;

  struct PrefetchHint {
    ImagePtr img;
    std::uint32_t block = 0;
  };
  std::thread prefetcher_;
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  std::deque<PrefetchHint> prefetch_queue_;
  bool prefetch_stop_ = false;
};

}  // namespace ccomp::server
