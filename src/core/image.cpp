#include "core/image.h"

#include <string>

#include "support/crc32.h"
#include "support/ecc.h"
#include "support/error.h"

namespace ccomp::core {

namespace {

// Header flags byte (format v2; was the 0/1 "variable blocks" byte in v1,
// so bit 0 keeps the v1 meaning and v1 images parse unchanged).
constexpr std::uint8_t kFlagVariableBlocks = 0x01;
constexpr std::uint8_t kFlagHasEcc = 0x02;
constexpr std::uint8_t kFlagHasCertificate = 0x04;
constexpr std::uint8_t kFlagHasLayout = 0x08;
constexpr std::uint8_t kKnownFlags =
    kFlagVariableBlocks | kFlagHasEcc | kFlagHasCertificate | kFlagHasLayout;

}  // namespace

CompressedImage::CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                                 std::uint64_t original_size, std::vector<std::uint8_t> tables,
                                 std::vector<std::uint32_t> block_offsets,
                                 std::vector<std::uint8_t> payload)
    : CompressedImage(codec, isa, block_size, original_size, std::move(tables),
                      std::move(block_offsets), std::move(payload), {}) {}

CompressedImage::CompressedImage(CodecKind codec, IsaKind isa, std::uint32_t block_size,
                                 std::uint64_t original_size, std::vector<std::uint8_t> tables,
                                 std::vector<std::uint32_t> block_offsets,
                                 std::vector<std::uint8_t> payload,
                                 std::vector<std::uint32_t> block_original_sizes)
    : codec_(codec),
      isa_(isa),
      block_size_(block_size),
      original_size_(original_size),
      tables_(std::move(tables)),
      block_offsets_(std::move(block_offsets)),
      payload_(std::move(payload)),
      block_original_sizes_(std::move(block_original_sizes)) {
  validate_and_index();
}

void CompressedImage::validate_and_index() {
  if (block_size_ == 0) throw ConfigError("block_size must be nonzero");
  if (block_offsets_.empty() || block_offsets_.back() != this->payload().size())
    throw ConfigError("block offsets must end with a payload-size sentinel");
  for (std::size_t i = 1; i < block_offsets_.size(); ++i)
    if (block_offsets_[i] < block_offsets_[i - 1])
      throw ConfigError("block offsets must be non-decreasing");
  if (block_original_sizes_.empty()) {
    const std::size_t expected_blocks =
        static_cast<std::size_t>((original_size_ + block_size_ - 1) / block_size_);
    if (block_offsets_.size() != expected_blocks + 1)
      throw ConfigError("block count inconsistent with original size");
  } else {
    if (block_original_sizes_.size() + 1 != block_offsets_.size())
      throw ConfigError("per-block size list inconsistent with block count");
    block_original_offsets_.clear();
    block_original_offsets_.reserve(block_original_sizes_.size() + 1);
    std::uint64_t acc = 0;
    block_original_offsets_.push_back(0);
    for (const std::uint32_t s : block_original_sizes_) {
      acc += s;
      block_original_offsets_.push_back(acc);
    }
    if (acc != original_size_)
      throw ConfigError("per-block sizes do not sum to the original size");
  }
}

CompressedImage CompressedImage::make_view(CodecKind codec, IsaKind isa,
                                           std::uint32_t block_size, std::uint64_t original_size,
                                           std::span<const std::uint8_t> tables,
                                           std::vector<std::uint32_t> block_offsets,
                                           std::span<const std::uint8_t> payload,
                                           std::vector<std::uint32_t> block_original_sizes,
                                           std::span<const std::uint8_t> ecc,
                                           std::span<const std::uint8_t> certificate,
                                           std::span<const std::uint8_t> layout) {
  CompressedImage img;
  img.codec_ = codec;
  img.isa_ = isa;
  img.block_size_ = block_size;
  img.original_size_ = original_size;
  img.block_offsets_ = std::move(block_offsets);
  img.block_original_sizes_ = std::move(block_original_sizes);
  img.view_ = true;
  img.tables_view_ = tables;
  img.payload_view_ = payload;
  img.ecc_view_ = ecc;
  img.certificate_view_ = certificate;
  img.layout_view_ = layout;
  img.validate_and_index();
  if (!ecc.empty()) {
    // Index the ECC section exactly the way attach_ecc does for owned
    // images, so block_ecc works without copying the check bytes.
    const std::size_t blocks = img.block_count();
    img.ecc_offsets_.assign(1, 0);
    img.ecc_offsets_.reserve(blocks + 1);
    std::size_t total = 0;
    for (std::size_t i = 0; i < blocks; ++i) {
      total += ecc::ecc_bytes_for(img.block_offsets_[i + 1] - img.block_offsets_[i]);
      img.ecc_offsets_.push_back(static_cast<std::uint32_t>(total));
    }
    if (ecc.size() != total)
      throw CorruptDataError("ECC section size inconsistent with block payload sizes");
  }
  return img;
}

CompressedImage CompressedImage::to_owned() const {
  if (!view_) return *this;
  CompressedImage img(codec_, isa_, block_size_, original_size_,
                      std::vector<std::uint8_t>(tables_view_.begin(), tables_view_.end()),
                      block_offsets_,
                      std::vector<std::uint8_t>(payload_view_.begin(), payload_view_.end()),
                      block_original_sizes_);
  if (!ecc_view_.empty())
    img.attach_ecc(std::vector<std::uint8_t>(ecc_view_.begin(), ecc_view_.end()));
  if (!certificate_view_.empty())
    img.attach_certificate(
        std::vector<std::uint8_t>(certificate_view_.begin(), certificate_view_.end()));
  if (!layout_view_.empty())
    img.attach_layout(std::vector<std::uint8_t>(layout_view_.begin(), layout_view_.end()));
  return img;
}

std::span<const std::uint8_t> CompressedImage::block_payload(std::size_t index) const {
  if (index + 1 >= block_offsets_.size()) throw ConfigError("block index out of range");
  const std::uint32_t begin = block_offsets_[index];
  const std::uint32_t end = block_offsets_[index + 1];
  const std::span<const std::uint8_t> bytes = payload();
  // The constructor proves these invariants, but a runtime fault in the
  // stored LAT (mutable_lat_bytes) can break them afterwards — re-check so a
  // damaged offset is a typed error, never an out-of-bounds span.
  if (begin > end || end > bytes.size())
    throw CorruptDataError("LAT offset points outside the payload");
  return bytes.subspan(begin, end - begin);
}

std::size_t CompressedImage::block_original_size(std::size_t index) const {
  if (index + 1 >= block_offsets_.size()) throw ConfigError("block index out of range");
  if (!block_original_sizes_.empty()) return block_original_sizes_[index];
  const std::uint64_t begin = static_cast<std::uint64_t>(index) * block_size_;
  const std::uint64_t end = begin + block_size_ < original_size_ ? begin + block_size_
                                                                 : original_size_;
  return static_cast<std::size_t>(end - begin);
}

std::uint64_t CompressedImage::block_original_offset(std::size_t index) const {
  if (index >= block_offsets_.size()) throw ConfigError("block index out of range");
  if (!block_original_offsets_.empty()) return block_original_offsets_[index];
  return static_cast<std::uint64_t>(index) * block_size_;
}

namespace {
[[noreturn]] void throw_view_immutable(const char* op) {
  throw ConfigError(std::string("view image is immutable (") + op +
                    "): materialize with to_owned() first");
}
}  // namespace

void CompressedImage::attach_ecc() {
  if (view_) throw_view_immutable("attach_ecc");
  const std::size_t blocks = block_count();
  ecc_offsets_.assign(1, 0);
  ecc_offsets_.reserve(blocks + 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    total += ecc::ecc_bytes_for(block_offsets_[i + 1] - block_offsets_[i]);
    ecc_offsets_.push_back(static_cast<std::uint32_t>(total));
  }
  ecc_.assign(total, 0);
  for (std::size_t i = 0; i < blocks; ++i) {
    ecc::encode_block(block_payload(i),
                      std::span<std::uint8_t>(ecc_).subspan(
                          ecc_offsets_[i], ecc_offsets_[i + 1] - ecc_offsets_[i]));
  }
}

void CompressedImage::attach_ecc(std::vector<std::uint8_t> ecc) {
  if (view_) throw_view_immutable("attach_ecc");
  const std::size_t blocks = block_count();
  std::vector<std::uint32_t> offsets(1, 0);
  offsets.reserve(blocks + 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    total += ecc::ecc_bytes_for(block_offsets_[i + 1] - block_offsets_[i]);
    offsets.push_back(static_cast<std::uint32_t>(total));
  }
  if (ecc.size() != total)
    throw CorruptDataError("ECC section size inconsistent with block payload sizes");
  ecc_ = std::move(ecc);
  ecc_offsets_ = std::move(offsets);
}

void CompressedImage::attach_certificate(std::vector<std::uint8_t> blob) {
  if (view_) throw_view_immutable("attach_certificate");
  if (blob.empty()) throw ConfigError("certificate blob must be non-empty");
  certificate_ = std::move(blob);
}

void CompressedImage::attach_layout(std::vector<std::uint8_t> blob) {
  if (view_) throw_view_immutable("attach_layout");
  if (blob.empty()) throw ConfigError("layout blob must be non-empty");
  layout_ = std::move(blob);
}

void CompressedImage::drop_certificate() {
  if (view_) throw_view_immutable("drop_certificate");
  certificate_.clear();
}

void CompressedImage::drop_layout() {
  if (view_) throw_view_immutable("drop_layout");
  layout_.clear();
}

void CompressedImage::drop_ecc() {
  if (view_) throw_view_immutable("drop_ecc");
  ecc_.clear();
  ecc_offsets_.clear();
}

std::span<std::uint8_t> CompressedImage::mutable_payload() {
  if (view_) throw_view_immutable("mutable_payload");
  return payload_;
}

std::span<std::uint8_t> CompressedImage::mutable_tables() {
  if (view_) throw_view_immutable("mutable_tables");
  return tables_;
}

std::span<std::uint8_t> CompressedImage::mutable_ecc() {
  if (view_) throw_view_immutable("mutable_ecc");
  return ecc_;
}

std::span<const std::uint8_t> CompressedImage::block_ecc(std::size_t index) const {
  if (!has_ecc()) throw ConfigError("image has no ECC section");
  if (index + 1 >= ecc_offsets_.size()) throw ConfigError("block index out of range");
  return ecc().subspan(ecc_offsets_[index], ecc_offsets_[index + 1] - ecc_offsets_[index]);
}

std::size_t CompressedImage::lat_bytes() const {
  // Group-anchored LAT: a 4-byte absolute offset every 8 blocks, plus a
  // 1- or 2-byte length per block (2 when any block in the image exceeds
  // 255 compressed bytes). This is the standard way to keep the table small
  // while still allowing one-lookup refills. Variable-block images also
  // store each block's original length alongside (1 byte).
  const std::size_t blocks = block_count();
  if (blocks == 0) return 0;
  std::size_t len_bytes = 1;
  for (std::size_t i = 0; i < blocks; ++i)
    if (block_offsets_[i + 1] - block_offsets_[i] > 0xFF) {
      len_bytes = 2;
      break;
    }
  const std::size_t groups = (blocks + 7) / 8;
  const std::size_t variable_extra = block_original_sizes_.empty() ? 0 : blocks;
  return groups * 4 + blocks * len_bytes + variable_extra;
}

SizeBreakdown CompressedImage::sizes() const {
  SizeBreakdown s;
  s.original = static_cast<std::size_t>(original_size_);
  s.payload = payload().size();
  s.tables = tables().size();
  s.lat = lat_bytes();
  s.ecc = ecc().size();
  s.layout = layout().size();
  return s;
}

void CompressedImage::serialize(ByteSink& sink) const {
  const std::size_t start = sink.size();
  sink.u32(0x43434D50u);  // 'CCMP'
  sink.u8(static_cast<std::uint8_t>(codec_));
  sink.u8(static_cast<std::uint8_t>(isa_));
  std::uint8_t flags = 0;
  if (!block_original_sizes_.empty()) flags |= kFlagVariableBlocks;
  if (has_ecc()) flags |= kFlagHasEcc;
  if (has_certificate()) flags |= kFlagHasCertificate;
  if (has_layout()) flags |= kFlagHasLayout;
  sink.u8(flags);
  sink.u32(block_size_);
  sink.u64(original_size_);
  sink.sized_bytes(tables());
  sink.varint(block_offsets_.size());
  std::uint32_t prev = 0;
  for (const std::uint32_t off : block_offsets_) {
    sink.varint(off - prev);  // delta encoding
    prev = off;
  }
  if (!block_original_sizes_.empty()) {
    for (const std::uint32_t s : block_original_sizes_) sink.varint(s);
  }
  sink.sized_bytes(payload());
  if (has_ecc()) sink.sized_bytes(ecc());
  if (has_certificate()) sink.sized_bytes(certificate());
  if (has_layout()) sink.sized_bytes(layout());
  // Integrity trailer: a loader can reject a flipped bit anywhere in the
  // image before trusting any table or offset.
  sink.u32(crc32(sink.view().subspan(start)));
}

CompressedImage CompressedImage::deserialize(ByteSource& src, bool verify_checksum) {
  const std::size_t start = src.position();
  if (src.u32() != 0x43434D50u) throw CorruptDataError("bad image magic");
  const auto codec = static_cast<CodecKind>(src.u8());
  const auto isa = static_cast<IsaKind>(src.u8());
  const std::uint8_t flags = src.u8();
  if ((flags & ~kKnownFlags) != 0) throw CorruptDataError("unknown image header flags");
  const bool variable = (flags & kFlagVariableBlocks) != 0;
  const bool has_ecc = (flags & kFlagHasEcc) != 0;
  const bool has_certificate = (flags & kFlagHasCertificate) != 0;
  const bool has_layout = (flags & kFlagHasLayout) != 0;
  const std::uint32_t block_size = src.u32();
  const std::uint64_t original_size = src.u64();
  std::vector<std::uint8_t> tables = src.sized_bytes();
  const std::uint64_t offset_count = src.varint();
  // Each delta-encoded offset takes at least one byte, so the count can
  // never exceed the remaining container size — reject before allocating.
  if (offset_count == 0 || offset_count > src.remaining())
    throw CorruptDataError("bad LAT size");
  std::vector<std::uint32_t> offsets;
  offsets.reserve(static_cast<std::size_t>(offset_count));
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < offset_count; ++i) {
    acc += src.varint();
    if (acc > 0xFFFFFFFFull) throw CorruptDataError("LAT offset overflow");
    offsets.push_back(static_cast<std::uint32_t>(acc));
  }
  std::vector<std::uint32_t> original_sizes;
  if (variable) {
    original_sizes.reserve(static_cast<std::size_t>(offset_count - 1));
    for (std::uint64_t i = 0; i + 1 < offset_count; ++i) {
      const std::uint64_t s = src.varint();
      if (s > 0xFFFFFFFFull) throw CorruptDataError("block size overflow");
      original_sizes.push_back(static_cast<std::uint32_t>(s));
    }
  }
  std::vector<std::uint8_t> payload = src.sized_bytes();
  std::vector<std::uint8_t> ecc;
  if (has_ecc) ecc = src.sized_bytes();
  std::vector<std::uint8_t> certificate;
  if (has_certificate) {
    certificate = src.sized_bytes();
    if (certificate.empty()) throw CorruptDataError("empty certificate section");
  }
  std::vector<std::uint8_t> layout;
  if (has_layout) {
    layout = src.sized_bytes();
    if (layout.empty()) throw CorruptDataError("empty layout section");
  }
  const std::size_t end = src.position();
  const std::uint32_t stored_crc = src.u32();
  if (verify_checksum && stored_crc != crc32(src.window(start, end)))
    throw ChecksumError("image CRC mismatch");
  CompressedImage image(codec, isa, block_size, original_size, std::move(tables),
                        std::move(offsets), std::move(payload), std::move(original_sizes));
  if (has_ecc) image.attach_ecc(std::move(ecc));
  if (has_certificate) image.attach_certificate(std::move(certificate));
  if (has_layout) image.attach_layout(std::move(layout));
  return image;
}

}  // namespace ccomp::core
