// Shared --metrics/--trace handling for the example CLIs.
//
//   --metrics=<file>  (or --metrics <file>)  write a registry snapshot at
//                     exit: Prometheus text exposition, or the JSON snapshot
//                     when the path ends in ".json"
//   --trace=<file>    (or --trace <file>)    enable span recording and write
//                     chrome://tracing (trace_event) JSON at exit
//
// Usage in a main():
//
//   ccomp::examples::ObsFlags obs_flags;
//   argc = ccomp::examples::strip_obs_flags(argc, argv, obs_flags);
//   ...
//   return ccomp::examples::finish_obs(obs_flags, exit_code);
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/obs.h"

namespace ccomp::examples {

struct ObsFlags {
  std::string metrics_path;
  std::string trace_path;
};

/// Strip --metrics/--trace (either =value or space-separated form) from argv,
/// compacting it in place; returns the new argc. Enables span recording when
/// --trace is present so the run captures events from the start.
inline int strip_obs_flags(int argc, char** argv, ObsFlags& flags) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string* target = nullptr;
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      target = &flags.metrics_path;
      value = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      target = &flags.metrics_path;
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      target = &flags.trace_path;
      value = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      target = &flags.trace_path;
      value = argv[++i];
    }
    if (target != nullptr) {
      *target = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  if (!flags.trace_path.empty()) obs::set_trace_enabled(true);
  return out;
}

/// Write the requested exports. Returns `exit_code` unchanged on success so
/// callers can `return finish_obs(flags, rc);`; an unwritable output file
/// turns a zero exit code into 1.
inline int finish_obs(const ObsFlags& flags, int exit_code) {
  bool io_ok = true;
  if (!flags.metrics_path.empty()) {
    const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
    const bool json = flags.metrics_path.size() >= 5 &&
                      flags.metrics_path.compare(flags.metrics_path.size() - 5, 5, ".json") == 0;
    std::ofstream out(flags.metrics_path, std::ios::binary);
    out << (json ? obs::to_json(snapshot) : obs::to_prometheus(snapshot));
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n", flags.metrics_path.c_str());
      io_ok = false;
    }
  }
  if (!flags.trace_path.empty()) {
    // main() is a quiescent point: the pool workers are idle, so the ring
    // holds no in-flight writes.
    const std::vector<obs::SpanEvent> events = obs::trace_events();
    std::ofstream out(flags.trace_path, std::ios::binary);
    out << obs::to_chrome_trace(events);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to %s\n", flags.trace_path.c_str());
      io_ok = false;
    }
  }
  return exit_code == 0 && !io_ok ? 1 : exit_code;
}

}  // namespace ccomp::examples
