// Multi-stream block layout: K independent entropy streams per block.
//
// The serial decoders are branch-mispredict bound — one long dependency
// chain from the coder state through the model walk and back. The standard
// cure is to encode each block as K INDEPENDENT entropy streams and decode
// them round-robin in one loop, so the CPU overlaps K mispredict/load
// latencies instead of serializing on one. This header defines the two
// pieces every multi-stream codec shares:
//
//   * the contiguous near-even partition of a block's items (words,
//     instructions) into K chunks — chunk k owns items
//     [chunk_begin(n,K,k), chunk_begin(n,K,k+1)), sizes differing by at
//     most one with the larger chunks first, so "streams still active in
//     the final round" is always a prefix;
//
//   * the block payload frame: K-1 little-endian u16 sub-stream lengths
//     (stream K-1's length is implicit) followed by the concatenated
//     streams. K == 1 is frameless — byte-identical to the single-stream
//     format, so existing images and ratios are untouched.
//
// The frame is deliberately tiny (2*(K-1) bytes per block) because it is
// charged to the compression ratio; bench/tab_streams tracks that cost
// explicitly per K.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ccomp::core {

/// Hard cap on entropy streams per block: the interleaved decoders keep one
/// coder + model state per stream in registers/stack, and the u16 frame
/// stays negligible. Far above the ILP sweet spot (4-8 on current cores).
inline constexpr unsigned kMaxEntropyStreams = 16;

/// Number of items chunk `k` owns in a contiguous near-even K-way partition
/// of `total` items (first `total % k_streams` chunks take the extra item).
constexpr std::size_t chunk_size(std::size_t total, unsigned k_streams, unsigned k) {
  return total / k_streams + (k < total % k_streams ? 1 : 0);
}

/// First item of chunk `k` in the same partition.
constexpr std::size_t chunk_begin(std::size_t total, unsigned k_streams, unsigned k) {
  const std::size_t base = total / k_streams;
  const std::size_t extra = total % k_streams;
  return base * k + (k < extra ? k : extra);
}

/// Assemble a block payload from its per-stream encodings: K-1 u16 length
/// words, then the streams back to back. streams.size() must be in
/// [1, kMaxEntropyStreams]; throws ConfigError when a sub-stream overflows
/// the 16-bit length field (a block would have to compress to > 64 KiB).
std::vector<std::uint8_t> pack_stream_block(
    std::span<const std::vector<std::uint8_t>> streams);

/// Per-stream views into a block payload framed by pack_stream_block.
struct StreamSpans {
  unsigned count = 0;
  std::array<std::span<const std::uint8_t>, kMaxEntropyStreams> spans;

  std::span<const std::uint8_t> operator[](unsigned k) const { return spans[k]; }
};

/// Slice a block payload into its `streams` sub-stream spans. `streams` is a
/// table-level property (not per block), validated by the caller against
/// [1, kMaxEntropyStreams]. Throws CorruptDataError when the payload cannot
/// hold the frame or the recorded lengths overrun it — the typed error the
/// hardened-decoder contract requires for corrupt LAT/payload bytes.
StreamSpans split_stream_block(std::span<const std::uint8_t> payload, unsigned streams);

}  // namespace ccomp::core
