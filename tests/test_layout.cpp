// Layout & tiering subsystem tests: PlacementPlan serialization (round-trip,
// truncation, fuzzed corruption — always a typed error, never UB), tier
// construction byte-identity, functional-memsys equivalence through the slot
// permutation, the server's prefetch accounting invariant, and served-byte
// determinism across reader thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "isa/mips/mips.h"
#include "layout/layout.h"
#include "memsys/functional.h"
#include "obs/obs.h"
#include "samc/samc.h"
#include "server/server.h"
#include "support/error.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace ccomp {
namespace {

struct Corpus {
  std::vector<std::uint8_t> code;
  std::vector<std::uint32_t> trace;
  std::uint32_t block_size = 0;
  std::size_t blocks = 0;
};

Corpus make_corpus(std::uint32_t kb = 8) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  const workload::MipsProgram prog = workload::generate_mips_program(p);
  Corpus c;
  c.code = mips::words_to_bytes(prog.words);
  workload::TraceOptions topt;
  topt.length = 50'000;
  c.trace = workload::generate_trace(p, prog.function_starts, prog.words.size(), topt);
  c.block_size = samc::mips_defaults().block_size;
  c.blocks = (c.code.size() + c.block_size - 1) / c.block_size;
  return c;
}

layout::PlacementPlan make_plan(const Corpus& c, const layout::LayoutOptions& opt) {
  const layout::AccessProfile access =
      layout::AccessProfile::from_trace(c.trace, c.block_size, c.blocks);
  return layout::optimize_layout(access, c.code.size(), c.block_size, opt);
}

// --- serialization --------------------------------------------------------

TEST(PlacementPlan, SerializeRoundTrip) {
  const Corpus c = make_corpus();
  layout::LayoutOptions opt;
  opt.predictor_k = 3;
  layout::PlacementPlan plan = make_plan(c, opt);
  plan.warm_lengths.assign(256, 0);
  plan.warm_lengths[0x00] = 2;
  plan.warm_lengths[0x21] = 2;
  plan.warm_lengths[0x8c] = 2;
  plan.warm_lengths[0xff] = 2;

  const auto blob = plan.to_blob();
  const layout::PlacementPlan back = layout::PlacementPlan::from_blob(blob);
  EXPECT_EQ(back.block_count, plan.block_count);
  EXPECT_EQ(back.slot_of, plan.slot_of);
  EXPECT_EQ(back.tiers, plan.tiers);
  EXPECT_EQ(back.predictor_k, plan.predictor_k);
  EXPECT_EQ(back.successors, plan.successors);
  EXPECT_EQ(back.warm_lengths, plan.warm_lengths);
  EXPECT_NO_THROW(back.validate());
}

TEST(PlacementPlan, EveryTruncationIsTypedError) {
  const Corpus c = make_corpus(4);
  layout::PlacementPlan plan = make_plan(c, layout::LayoutOptions{});
  const auto blob = plan.to_blob();
  ASSERT_GT(blob.size(), 8u);
  // from_blob() rejects trailing bytes, so *every* strict prefix must fail
  // as a parse error — a typed CorruptDataError, never a crash or OOB read
  // (this loop runs under ASan/UBSan in CI).
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const std::span<const std::uint8_t> cut(blob.data(), len);
    EXPECT_THROW((void)layout::PlacementPlan::from_blob(cut), CorruptDataError)
        << "prefix of " << len << " bytes";
  }
}

TEST(PlacementPlan, ByteFlipsNeverEscapeTypedErrors) {
  const Corpus c = make_corpus(4);
  const auto blob = make_plan(c, layout::LayoutOptions{}).to_blob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::vector<std::uint8_t> mutated = blob;
    mutated[i] ^= 0xFF;
    // A flipped byte may still parse into a *valid* plan (e.g. a successor
    // swapped for another in-range slot); what it must never do is escape
    // the typed-error contract.
    try {
      layout::PlacementPlan::from_blob(mutated).validate();
    } catch (const CorruptDataError&) {
    }
  }
}

TEST(PlacementPlan, ValidateRejectsNonBijection) {
  const Corpus c = make_corpus(4);
  layout::PlacementPlan plan = make_plan(c, layout::LayoutOptions{});
  ASSERT_GE(plan.slot_of.size(), 2u);
  plan.slot_of[1] = plan.slot_of[0];
  EXPECT_THROW(plan.validate(), CorruptDataError);
}

TEST(PlacementPlan, ValidateRejectsOutOfRangeSuccessor) {
  const Corpus c = make_corpus(4);
  layout::LayoutOptions opt;
  opt.predictor_k = 2;
  layout::PlacementPlan plan = make_plan(c, opt);
  ASSERT_FALSE(plan.successors.empty());
  plan.successors[0] = plan.block_count;  // in-range is [0, block_count) or sentinel
  EXPECT_THROW(plan.validate(), CorruptDataError);
}

// --- tiered construction --------------------------------------------------

TEST(TieredImage, DecodesByteIdentical) {
  const Corpus c = make_corpus();
  const samc::SamcCodec codec(samc::mips_defaults());
  for (const double hot : {0.0, 0.05, 0.25}) {
    layout::LayoutOptions opt;
    opt.hot_fraction = hot;
    opt.warm_fraction = 0.10;
    const auto img = layout::build_tiered_image(codec, c.code, make_plan(c, opt));
    EXPECT_TRUE(img.has_layout());
    EXPECT_EQ(layout::decompress_image(codec, img), c.code) << "hot=" << hot;
  }
}

TEST(TieredImage, AllColdClusteredSizeEqualsMonolithic) {
  const Corpus c = make_corpus();
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto mono = codec.compress(c.code);
  layout::LayoutOptions opt;
  opt.hot_fraction = 0.0;
  opt.warm_fraction = 0.0;
  const auto clustered = layout::build_tiered_image(codec, c.code, make_plan(c, opt));
  // Same blocks in a new order: the ratio (which excludes optional section
  // overhead) must match the monolithic build exactly.
  EXPECT_DOUBLE_EQ(clustered.sizes().ratio(), mono.sizes().ratio());
}

TEST(TieredImage, FunctionalMemsysSeesOriginalProgram) {
  const Corpus c = make_corpus(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  layout::LayoutOptions opt;
  opt.hot_fraction = 0.10;
  opt.warm_fraction = 0.20;
  const auto img = layout::build_tiered_image(codec, c.code, make_plan(c, opt));
  // verify_on_load runs the static verifier (LAY checks included) first.
  memsys::FunctionalMemorySystem mem({1024, c.block_size, 2}, codec, img);
  for (std::uint32_t addr = 0; addr + 4 <= c.code.size(); addr += 4) {
    const std::uint32_t want = static_cast<std::uint32_t>(c.code[addr]) |
                               (static_cast<std::uint32_t>(c.code[addr + 1]) << 8) |
                               (static_cast<std::uint32_t>(c.code[addr + 2]) << 16) |
                               (static_cast<std::uint32_t>(c.code[addr + 3]) << 24);
    ASSERT_EQ(mem.fetch(addr), want) << "address " << addr;
  }
}

// --- server integration ---------------------------------------------------

std::vector<std::uint32_t> loop_trace(std::size_t loop_blocks, std::uint32_t block_size,
                                      int passes) {
  std::vector<std::uint32_t> loop;
  for (int pass = 0; pass < passes; ++pass)
    for (std::size_t b = 0; b < loop_blocks; ++b)
      loop.push_back(static_cast<std::uint32_t>(b) * block_size);
  return loop;
}

TEST(ServerPrefetch, CountersSatisfyAccountingInvariant) {
  const Corpus c = make_corpus(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  const std::size_t loop_blocks = c.blocks < 16 ? c.blocks : 16;
  const auto loop = loop_trace(loop_blocks, c.block_size, 6);
  const layout::AccessProfile access =
      layout::AccessProfile::from_trace(loop, c.block_size, c.blocks);
  layout::LayoutOptions opt;
  opt.predictor_k = 1;
  const layout::PlacementPlan plan =
      layout::optimize_layout(access, c.code.size(), c.block_size, opt);
  const std::vector<std::uint32_t> slot_of = plan.slot_of;
  const auto img = layout::build_tiered_image(codec, c.code, plan);

  server::ImageServer srv{server::ImageServer::Options{}};
  srv.load("loop", codec, img);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::size_t b = 0; b < loop_blocks; ++b) {
      (void)srv.fetch("loop", slot_of[b]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const std::uint64_t issued = srv.stats().prefetch_issued;
  const std::uint64_t hits = srv.stats().prefetch_hits;
  const std::uint64_t waste = srv.stats().prefetch_waste;
  // Every hit or waste consumes a flag that exactly one issue set; flags not
  // yet consumed are the only slack.
  EXPECT_GT(issued, 0u);
  EXPECT_GT(hits, 0u);
  EXPECT_LE(hits + waste, issued);
}

TEST(ServerPrefetch, DisabledServerServesIdenticalBytes) {
  const Corpus c = make_corpus(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  layout::LayoutOptions opt;
  opt.hot_fraction = 0.10;
  opt.warm_fraction = 0.10;
  const auto img = layout::build_tiered_image(codec, c.code, make_plan(c, opt));
  const auto golden = layout::make_tier_decompressor(codec, img);

  server::ImageServer::Options off;
  off.prefetch = false;
  for (server::ImageServer::Options options : {server::ImageServer::Options{}, off}) {
    server::ImageServer srv{options};
    srv.load("img", codec, img);
    for (std::uint32_t b = 0; b < img.block_count(); ++b)
      EXPECT_EQ(*srv.fetch("img", b).bytes, golden->block(b));
    if (!options.prefetch) {
      EXPECT_EQ(srv.stats().prefetch_issued, 0u);
    }
  }
}

TEST(ServerLayout, ServedBytesDeterministicAcross1_2_8Threads) {
  const Corpus c = make_corpus(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  layout::LayoutOptions opt;
  opt.hot_fraction = 0.05;
  opt.warm_fraction = 0.10;
  const auto img = layout::build_tiered_image(codec, c.code, make_plan(c, opt));
  const auto golden = layout::make_tier_decompressor(codec, img);
  const auto block_count = static_cast<std::uint32_t>(img.block_count());

  for (const unsigned threads : {1u, 2u, 8u}) {
    server::ImageServer srv{server::ImageServer::Options{}};
    srv.load("img", codec, img);
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        // Each thread walks the whole image from a different phase so the
        // interleavings differ; the bytes served must not.
        for (std::uint32_t i = 0; i < block_count * 3; ++i) {
          const std::uint32_t b = (i + t * 7) % block_count;
          if (*srv.fetch("img", b).bytes != golden->block(b))
            mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& th : pool) th.join();
    EXPECT_EQ(mismatches.load(), 0u) << threads << " thread(s)";
  }
}

// --- per-shard cache counters ---------------------------------------------

std::uint64_t counter_value(const obs::Snapshot& s, const std::string& name) {
  for (const obs::CounterValue& cv : s.counters)
    if (cv.name == name) return cv.value;
  return 0;
}

std::uint64_t shard_sum(const obs::Snapshot& s, const std::string& prefix) {
  std::uint64_t total = 0;
  for (const obs::CounterValue& cv : s.counters)
    if (cv.name.rfind(prefix, 0) == 0) total += cv.value;
  return total;
}

TEST(ServerCache, PerShardCountersSumToAggregate) {
  const Corpus c = make_corpus(4);
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto img = codec.compress(c.code);

  // Quiet server: no prefetcher, no scrubber — all cache traffic below is
  // from this thread, so the snapshot deltas are exact.
  server::ImageServer::Options options;
  options.prefetch = false;
  server::ImageServer srv{options};
  srv.load("img", codec, img);

  const obs::Snapshot before = obs::Registry::instance().snapshot();
  const auto block_count = static_cast<std::uint32_t>(img.block_count());
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint32_t b = 0; b < block_count; ++b) (void)srv.fetch("img", b);
  const obs::Snapshot after = obs::Registry::instance().snapshot();

  const std::uint64_t agg_hits =
      counter_value(after, "server.cache.hits") - counter_value(before, "server.cache.hits");
  const std::uint64_t agg_misses =
      counter_value(after, "server.cache.misses") - counter_value(before, "server.cache.misses");
  const std::uint64_t shard_hits = shard_sum(after, "server.cache.hits|shard=") -
                                   shard_sum(before, "server.cache.hits|shard=");
  const std::uint64_t shard_misses = shard_sum(after, "server.cache.misses|shard=") -
                                     shard_sum(before, "server.cache.misses|shard=");
  EXPECT_GT(agg_hits, 0u);
  EXPECT_GT(agg_misses, 0u);
  EXPECT_EQ(shard_hits, agg_hits);
  EXPECT_EQ(shard_misses, agg_misses);
}

TEST(ServerCache, ShardLabelsRenderAsPrometheusLabels) {
  // Force at least one labelled series to exist, then check the exposition
  // renders it as a label on the sanitized family name.
  server::ImageServer::Options options;
  options.prefetch = false;
  server::ImageServer srv{options};
  const std::string text = obs::to_prometheus(obs::Registry::instance().snapshot());
  EXPECT_NE(text.find("ccomp_server_cache_hits_total{shard=\"0\"}"), std::string::npos);
  EXPECT_EQ(text.find('|'), std::string::npos);
}

}  // namespace
}  // namespace ccomp
