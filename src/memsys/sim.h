// Trace-driven simulator for the compressed-code memory system.
//
// Models the fetch path of Fig. 1: I-cache hit = 1 cycle; miss = LAT lookup
// (free on CLB hit, a main-memory access on CLB miss) + transfer of the
// *compressed* block from memory + the decompression engine's cycles.
// An uncompressed baseline run (same cache, no LAT/CLB/decode, full-size
// block transfer) gives the slowdown the paper argues is governed by the
// I-cache hit ratio.
#pragma once

#include <cstdint>
#include <span>

#include "core/image.h"
#include "memsys/cache.h"
#include "memsys/clb.h"

namespace ccomp::memsys {

struct RefillModel {
  std::uint32_t memory_latency = 24;        // cycles to the first byte
  std::uint32_t cycles_per_byte = 1;        // bus transfer per byte
  std::uint32_t decode_startup = 4;         // decompressor per-block startup
  /// Decompressor throughput in output bits per cycle (SAMC Fig. 5 decodes
  /// 4 bits/cycle; SADC's dictionary path is table lookups, ~16 bits/cycle;
  /// plain Huffman ~8). This is a *hardware* constant: Fig. 5 resolves a
  /// full 4-bit group per cycle from dedicated midpoint units. Do not
  /// calibrate it from bench/tab_decodespeed's bits-per-cycle column —
  /// that measures this repo's software decoder, which spends a pipeline's
  /// worth of instructions per bit and lands ~20x lower (the table prints
  /// the same warning).
  std::uint32_t decode_bits_per_cycle = 4;
};

/// Per-event energy costs (nJ). The paper motivates code compression partly
/// by power: off-chip memory traffic dominates fetch energy, and compressed
/// refills move fewer bytes.
struct EnergyModel {
  double cache_hit_nj = 0.05;
  double memory_access_nj = 2.0;  // fixed cost per off-chip transaction
  double memory_byte_nj = 0.25;   // per byte transferred from memory
  double decode_byte_nj = 0.04;   // decompression logic per output byte
};

struct SimConfig {
  CacheConfig cache;
  ClbConfig clb;
  RefillModel refill;
  EnergyModel energy;
  bool use_clb = true;
};

struct SimResult {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t clb_lookups = 0;
  std::uint64_t clb_misses = 0;
  std::uint64_t fetch_cycles = 0;
  double fetch_energy_nj = 0.0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  double clb_hit_rate() const {
    return clb_lookups == 0
               ? 0.0
               : 1.0 - static_cast<double>(clb_misses) / static_cast<double>(clb_lookups);
  }
  /// Average fetch cycles per instruction.
  double cycles_per_fetch() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(fetch_cycles) / static_cast<double>(accesses);
  }
  /// Average fetch energy per instruction (nJ).
  double energy_per_fetch_nj() const {
    return accesses == 0 ? 0.0 : fetch_energy_nj / static_cast<double>(accesses);
  }
};

/// Run the trace against an uncompressed memory system (no LAT/CLB/decoder).
SimResult simulate_uncompressed(const SimConfig& config,
                                std::span<const std::uint32_t> trace);

/// Run the trace against a compressed memory system; per-block compressed
/// sizes come from `image` (its block_size must equal the cache line size).
SimResult simulate_compressed(const SimConfig& config, std::span<const std::uint32_t> trace,
                              const core::CompressedImage& image);

}  // namespace ccomp::memsys
