// SPEC95-like benchmark profiles.
//
// The paper measures compressibility of the 18 SPEC95 benchmarks compiled
// for MIPS and Pentium Pro. Those binaries are not redistributable, so each
// benchmark is modelled by a statistical profile: approximate text-segment
// size, integer/floating-point instruction mix, code-reuse (clone) rate —
// the property gzip exploits — register-usage skew and immediate
// distributions — the properties SAMC/SADC exploit — and loop behaviour for
// the cache studies. Program synthesis from a profile is fully
// deterministic (seeded), so every figure regenerates bit-identically.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace ccomp::workload {

struct Profile {
  const char* name;
  std::uint32_t code_kb;     // approximate generated text size
  double fp_fraction;        // fraction of FP idiom blocks
  double clone_rate;         // P(function is a near-clone of an earlier one)
  double reg_decay;          // geometric skew of register selection (0..1)
  double imm_small_bias;     // P(an ALU immediate is drawn from the tiny set)
  double branch_density;     // relative weight of branch idioms
  double call_density;       // relative weight of call idioms
  double loop_intensity;     // trace locality: higher = tighter loops
  std::uint64_t seed;
};

/// The 18 SPEC95 benchmarks in the order of the paper's figures.
std::span<const Profile> spec95_profiles();

/// Lookup by benchmark name; nullptr if unknown.
const Profile* find_profile(std::string_view name);

}  // namespace ccomp::workload
