#include "workload/profile.h"

#include <array>

namespace ccomp::workload {
namespace {

// Sizes are scaled-down stand-ins for the SPEC95 text segments (the paper
// never reports absolute sizes; ratios are what matter). FP benchmarks get
// high fp_fraction; gcc/perl/vortex get large size and high clone rates
// (big compiler-generated codebases repeat patterns heavily).
constexpr std::array<Profile, 18> kProfiles = {{
    //  name        kb   fp    clone  rdecay ismall brnch  call   loop   seed
    {"applu",      112, 0.75, 0.22,  0.72,  0.66,  0.8,   0.5,   0.92,  0xA1u},
    {"apsi",       160, 0.70, 0.20,  0.70,  0.62,  0.9,   0.6,   0.88,  0xA2u},
    {"compress",    24, 0.02, 0.12,  0.66,  0.72,  1.3,   0.7,   0.90,  0xA3u},
    {"fpppp",      224, 0.82, 0.30,  0.74,  0.60,  0.5,   0.4,   0.85,  0xA4u},
    {"gcc",        768, 0.03, 0.34,  0.64,  0.70,  1.4,   1.2,   0.70,  0xA5u},
    {"go",         288, 0.02, 0.26,  0.66,  0.74,  1.5,   0.9,   0.78,  0xA6u},
    {"hydro2d",    128, 0.72, 0.24,  0.72,  0.64,  0.7,   0.5,   0.93,  0xA7u},
    {"ijpeg",      160, 0.10, 0.22,  0.68,  0.70,  1.1,   0.8,   0.90,  0xA8u},
    {"m88ksim",    224, 0.04, 0.28,  0.66,  0.72,  1.3,   1.0,   0.82,  0xA9u},
    {"mgrid",       56, 0.80, 0.18,  0.74,  0.62,  0.6,   0.4,   0.95,  0xAAu},
    {"perl",       448, 0.03, 0.32,  0.64,  0.72,  1.4,   1.2,   0.75,  0xABu},
    {"su2cor",     128, 0.74, 0.22,  0.72,  0.63,  0.7,   0.5,   0.90,  0xACu},
    {"swim",        40, 0.82, 0.16,  0.75,  0.60,  0.5,   0.3,   0.96,  0xADu},
    {"tomcatv",     24, 0.80, 0.14,  0.75,  0.60,  0.6,   0.3,   0.96,  0xAEu},
    {"turb3d",     128, 0.70, 0.22,  0.71,  0.64,  0.8,   0.6,   0.89,  0xAFu},
    {"vortex",     512, 0.02, 0.36,  0.65,  0.71,  1.2,   1.3,   0.72,  0xB0u},
    {"wave5",      192, 0.73, 0.24,  0.72,  0.63,  0.7,   0.5,   0.90,  0xB1u},
    {"xlisp",       80, 0.02, 0.24,  0.66,  0.74,  1.5,   1.4,   0.80,  0xB2u},
}};

}  // namespace

std::span<const Profile> spec95_profiles() { return kProfiles; }

const Profile* find_profile(std::string_view name) {
  for (const Profile& p : kProfiles)
    if (name == p.name) return &p;
  return nullptr;
}

}  // namespace ccomp::workload
