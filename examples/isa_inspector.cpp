// ISA inspector: shows the substrate the codecs stand on — MIPS
// disassembly with the SADC stream split highlighted, and the x86
// instruction-length decoder carving a Pentium byte stream into the
// paper's three streams.
//
//   $ ./isa_inspector [n-instructions]
#include <cstdio>
#include <cstdlib>

#include "isa/mips/mips.h"
#include "isa/x86/x86.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;

  // --- MIPS ---------------------------------------------------------------
  workload::Profile p = *workload::find_profile("m88ksim");
  p.code_kb = 8;
  const auto words = workload::generate_mips(p);
  std::printf("MIPS view: instruction -> SADC streams (opcode | regs | imm)\n\n");
  for (std::size_t i = 0; i < n && i < words.size(); ++i) {
    const auto d = mips::decode(words[i]);
    std::printf("  %08x  %-28s", words[i], mips::disassemble(words[i]).c_str());
    if (d) {
      const auto& info = mips::opcode_table()[d->opcode];
      std::printf("op=%-8s regs=[", info.mnemonic);
      for (unsigned k = 0; k < info.reg_count; ++k)
        std::printf("%s%u", k ? "," : "", d->regs[k]);
      std::printf("]");
      if (info.has_imm16) std::printf(" imm16=0x%04x", d->imm16);
      if (info.has_imm26) std::printf(" imm26=0x%07x", d->imm26);
    }
    std::printf("\n");
  }

  // --- x86 ----------------------------------------------------------------
  workload::Profile px = *workload::find_profile("gcc");
  px.code_kb = 8;
  const auto code = workload::generate_x86(px);
  std::printf("\nx86 view: length decoder -> (prefix+opcode | modrm+sib | disp+imm)\n\n");
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n && pos < code.size(); ++i) {
    const auto l = x86::decode_layout(std::span<const std::uint8_t>(code).subspan(pos));
    std::printf("  ");
    std::size_t c = pos;
    int width = 0;
    for (unsigned b = 0; b < l.prefix_len + l.opcode_len; ++b, width += 2)
      std::printf("%02x", code[c++]);
    std::printf(" | ");
    for (unsigned b = 0; b < l.modrm_len; ++b, width += 2) std::printf("%02x", code[c++]);
    std::printf(" | ");
    for (unsigned b = 0; b < l.disp_len + l.imm_len; ++b, width += 2)
      std::printf("%02x", code[c++]);
    std::printf("%*s  %s\n", 24 - width, "",
                x86::disassemble(std::span<const std::uint8_t>(code).subspan(pos, l.total))
                    .c_str());
    pos += l.total;
  }

  const auto split = x86::split_streams(code);
  std::printf("\nwhole-program stream sizes: opcode %zu B, modrm %zu B, imm %zu B"
              " (total %zu B)\n",
              split.opcode.size(), split.modrm.size(), split.imm.size(), code.size());
  return 0;
}
