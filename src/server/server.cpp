#include "server/server.h"

#include <string>
#include <utility>

#include "analysis/certificate.h"
#include "obs/obs.h"
#include "support/serialize.h"
#include "verify/verify.h"

namespace ccomp::server {

namespace {

/// Image audit shared by load() and swap() — the same discipline as
/// FunctionalMemorySystem's strict mode: verification must come back clean,
/// and (when required) the embedded decode certificate must carry a
/// kCertified verdict. Throws CorruptDataError; swap() turns that into a
/// rejection with rollback.
void audit_image(const core::CompressedImage& image, bool verify_images, bool require_certificate,
                 const char* when) {
  if (require_certificate) {
    if (!image.has_certificate())
      throw CorruptDataError(std::string("image carries no decode certificate (") + when + ")");
    ByteSource src(image.certificate());
    const analysis::DecodeCertificate cert = analysis::DecodeCertificate::deserialize(src);
    if (!cert.certified())
      throw CorruptDataError(std::string("embedded certificate verdict is ") +
                             std::string(analysis::verdict_name(cert.verdict)) + " (" + when + ")");
  }
  if (verify_images || require_certificate) {
    verify::VerifyOptions opts;
    opts.certify = require_certificate;
    const verify::VerifyReport report = verify::verify_image(image, opts);
    if (!report.ok())
      throw CorruptDataError(std::string("image rejected at ") + when + " time:\n" +
                             report.to_string());
  }
}

/// The self-healing store's inner I-cache is unused by the server (blocks
/// are read through the ladder directly), but its config must still satisfy
/// the uniform-image line-size invariant.
memsys::CacheConfig heal_cache_config(const core::CompressedImage& image) {
  memsys::CacheConfig cfg;
  if (!image.has_variable_blocks()) {
    cfg.line_bytes = image.block_size();
    cfg.size_bytes = cfg.line_bytes * cfg.associativity * 16;
  }
  return cfg;
}

}  // namespace

ImageServer::ImageServer() : ImageServer(Options{}) {}

ImageServer::ImageServer(Options options) : options_(options), cache_(options.cache) {
  images_root_.store(new ImageMap(), std::memory_order_release);
  if (options_.prefetch) prefetcher_ = std::thread([this] { prefetch_loop(); });
}

ImageServer::~ImageServer() {
  stop_prefetcher();
  stop_scrubber();
  // Readers must be gone by now (destruction contract). Drop the map and
  // drain the deferred frees so retired maps/images do not outlive us.
  delete images_root_.exchange(nullptr, std::memory_order_acq_rel);
  memsys::ebr::synchronize();
}

ImageServer::ImagePtr ImageServer::build_image(const std::string& name,
                                               const core::BlockCodec& codec,
                                               const core::CompressedImage& image) {
  auto img = std::make_shared<LoadedImage>(image);
  img->epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  img->name = name;
  img->codec = &codec;
  memsys::SelfHealingMemorySystem::Options heal_opts;
  heal_opts.cache = heal_cache_config(img->golden);
  heal_opts.use_ecc = options_.use_ecc;
  heal_opts.clb_entries = options_.clb_entries;
  if (img->golden.is_view()) {
    // The self-healing store is the mutable fault surface; a zero-copy
    // view cannot back it, so materialize an owned copy for the store
    // while `golden` keeps serving straight from the mapping.
    const core::CompressedImage owned = img->golden.to_owned();
    img->heal = std::make_unique<memsys::SelfHealingMemorySystem>(heal_opts, codec, owned);
  } else {
    img->heal = std::make_unique<memsys::SelfHealingMemorySystem>(heal_opts, codec, img->golden);
  }
  // Tier-aware golden decoder: for a layout-bearing image the payload is
  // permuted and mixed-tier, so the degraded path must dispatch per slot
  // (identical to the inner decompressor for plain images).
  img->golden_dec = layout::make_tier_decompressor(codec, img->golden);
  img->blocks = img->golden.block_count();
  img->state.assign(img->blocks, BlockState{});
  if (img->golden.has_layout()) {
    img->plan.emplace(layout::plan_from_image(img->golden));
    // Hot blocks carry most of the fetch traffic, so a latent store fault
    // there is the most likely to be *seen* — scrub them first.
    img->heal->set_scrub_order(layout::scrub_order(img->golden));
    img->prefetch_flag = std::make_unique<std::atomic<std::uint8_t>[]>(img->blocks);
    for (std::size_t i = 0; i < img->blocks; ++i)
      img->prefetch_flag[i].store(0, std::memory_order_relaxed);
  }
  return img;
}

void ImageServer::publish_image(const std::string& name, ImagePtr img) {
  std::lock_guard<std::mutex> lock(images_mu_);
  const ImageMap* cur = images_root_.load(std::memory_order_acquire);
  if (cur->contains(name)) throw ConfigError("image '" + name + "' is already loaded");
  auto* next = new ImageMap(*cur);
  next->emplace(name, std::move(img));
  const ImageMap* old = images_root_.exchange(next, std::memory_order_acq_rel);
  // A pinned reader may still be walking the old map; EBR frees it after
  // every such reader unpins.
  memsys::ebr::retire(const_cast<ImageMap*>(old));
}

void ImageServer::load(const std::string& name, const core::BlockCodec& codec,
                       const core::CompressedImage& image) {
  audit_image(image, options_.verify_images, options_.require_certificate, "load");
  publish_image(name, build_image(name, codec, image));
  CCOMP_COUNT("server.images_loaded", 1);
}

void ImageServer::load(const std::string& name, const core::BlockCodec& codec,
                       core::MappedImage mapped) {
  auto holder = std::make_shared<const core::MappedImage>(std::move(mapped));
  const core::CompressedImage view = holder->view_image();
  audit_image(view, options_.verify_images, options_.require_certificate, "load");
  ImagePtr img = build_image(name, codec, view);
  img->mapping = std::move(holder);
  publish_image(name, std::move(img));
  CCOMP_COUNT("server.images_loaded", 1);
  CCOMP_COUNT("server.images_mapped", 1);
}

ImageServer::SwapResult ImageServer::swap(const std::string& name, const core::BlockCodec& codec,
                                          const core::CompressedImage& image) {
  CCOMP_SPAN("server.swap");
  ImagePtr old = snapshot(name);  // throws ConfigError when the name is unknown
  ImagePtr fresh;
  try {
    audit_image(image, options_.verify_images, options_.require_certificate, "swap");
    fresh = build_image(name, codec, image);
  } catch (const Error& error) {
    // Rollback: nothing was published, the old epoch keeps serving.
    stats_.swaps_rejected.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.swaps_rejected", 1);
    return SwapResult{false, old->epoch, error.what()};
  }
  {
    std::lock_guard<std::mutex> lock(images_mu_);
    const ImageMap* cur = images_root_.load(std::memory_order_acquire);
    auto it = cur->find(name);
    if (it == cur->end()) throw ConfigError("image '" + name + "' is no longer loaded");
    old = it->second;
    auto* next = new ImageMap(*cur);
    (*next)[name] = fresh;
    const ImageMap* prev = images_root_.exchange(next, std::memory_order_acq_rel);
    memsys::ebr::retire(const_cast<ImageMap*>(prev));
  }
  // Old-epoch cache entries are unreachable (fetches now key on the new
  // epoch); drop them eagerly so the budget goes to live blocks.
  cache_.invalidate_epoch(old->epoch);
  stats_.swaps_accepted.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.swaps_accepted", 1);
  return SwapResult{true, fresh->epoch, {}};
}

ImageServer::ImagePtr ImageServer::snapshot(const std::string& name) const {
  memsys::ebr::Guard guard;
  if (guard.active()) {
    // The pin keeps the loaded map (and the shared_ptr cell we copy from)
    // alive; the returned strong ref outlives the pin.
    const ImageMap* map = images_root_.load(std::memory_order_acquire);
    auto it = map->find(name);
    if (it == map->end()) throw ConfigError("no image named '" + name + "' is loaded");
    return it->second;
  }
  std::lock_guard<std::mutex> lock(images_mu_);
  const ImageMap* map = images_root_.load(std::memory_order_acquire);
  auto it = map->find(name);
  if (it == map->end()) throw ConfigError("no image named '" + name + "' is loaded");
  return it->second;
}

std::size_t ImageServer::block_count(const std::string& name) const { return snapshot(name)->blocks; }

std::uint64_t ImageServer::epoch(const std::string& name) const { return snapshot(name)->epoch; }

std::vector<std::string> ImageServer::image_names() const {
  memsys::ebr::Guard guard;
  std::unique_lock<std::mutex> lock(images_mu_, std::defer_lock);
  if (!guard.active()) lock.lock();
  const ImageMap* map = images_root_.load(std::memory_order_acquire);
  std::vector<std::string> names;
  names.reserve(map->size());
  for (const auto& [name, img] : *map) names.push_back(name);
  return names;
}

bool ImageServer::decode_round(LoadedImage& img, std::uint32_t block,
                               std::vector<std::uint8_t>& out) {
  stats_.decodes.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.decodes", 1);
  const std::uint32_t attempts = options_.decode_retries + 1;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      CCOMP_COUNT("server.retries", 1);
      std::chrono::microseconds backoff = options_.backoff_base * (1u << (attempt - 1));
      if (backoff > options_.backoff_cap) backoff = options_.backoff_cap;
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
    try {
      img.heal->read_block_into(block, out);
      return true;
    } catch (const FaultEscalationError&) {
      // The ladder is exhausted for this attempt; transient injector noise
      // may clear before the next round.
    }
  }
  stats_.hard_failures.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.hard_failures", 1);
  return false;
}

void ImageServer::serve_degraded(LoadedImage& img, std::uint32_t block,
                                 std::vector<std::uint8_t>& out) {
  if (options_.degraded == DegradedPolicy::kFailFast) {
    stats_.failfast_rejections.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.failfast_rejections", 1);
    throw QuarantinedError("block " + std::to_string(block) + " of image '" + img.name +
                           "' is quarantined after repeated decode failures");
  }
  out.resize(img.golden.block_original_size(block));
  img.golden_dec->block_into(block, out, img.golden_scratch);
  stats_.golden_serves.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.golden_serves", 1);
}

FetchResult ImageServer::lead_decode(LoadedImage& img, const memsys::BlockKey& key,
                                                  const memsys::ShardedBlockCache::Flight& flight) {
  try {
    const std::int64_t delay_us = decode_delay_us_.load(std::memory_order_relaxed);
    if (delay_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    auto out = std::make_shared<std::vector<std::uint8_t>>();
    bool degraded = false;
    {
      std::lock_guard<std::mutex> lock(img.mu);
      BlockState& st = img.state[key.block];
      if (st.quarantined) {
        const bool probe =
            options_.probe_period > 0 && ++st.fetches_since_probe >= options_.probe_period;
        if (probe) st.fetches_since_probe = 0;
        if (probe && decode_round(img, key.block, *out)) {
          st.quarantined = false;
          st.consecutive_failures = 0;
          stats_.quarantine_recoveries.fetch_add(1, std::memory_order_relaxed);
          CCOMP_COUNT("server.quarantine_recoveries", 1);
        } else {
          serve_degraded(img, key.block, *out);
          degraded = true;
        }
      } else if (decode_round(img, key.block, *out)) {
        st.consecutive_failures = 0;
      } else if (++st.consecutive_failures >= options_.quarantine_threshold) {
        st.quarantined = true;
        st.fetches_since_probe = 0;
        stats_.quarantine_trips.fetch_add(1, std::memory_order_relaxed);
        CCOMP_COUNT("server.quarantine_trips", 1);
        serve_degraded(img, key.block, *out);
        degraded = true;
      } else {
        // Below the breaker threshold: the failure stays visible as the
        // ladder's typed escalation (the caller may repair and retry).
        throw FaultEscalationError("block " + std::to_string(key.block) + " of image '" +
                                   img.name + "' failed " +
                                   std::to_string(options_.decode_retries + 1) +
                                   " decode rounds");
      }
    }
    memsys::ShardedBlockCache::Bytes bytes(std::move(out));
    // Degraded bytes are correct but bypass the store; never cache them so a
    // recovered block is re-decoded (and re-verified) from the store.
    cache_.publish(key, flight, bytes, degraded, /*cacheable=*/!degraded);
    return FetchResult{std::move(bytes), degraded ? FetchSource::kGolden : FetchSource::kDecode,
                       degraded};
  } catch (...) {
    cache_.fail(key, flight, std::current_exception());
    throw;
  }
}

FetchResult ImageServer::fetch(const std::string& name, std::uint32_t block) {
  CCOMP_TIMER("server.lookup_ns");
  lookup_count_.add();
  // Hot path: resolve the name through the RCU map and probe the cache
  // while pinned — no mutex, no shared_ptr refcount traffic (the raw
  // LoadedImage* is only dereferenced under the pin; the map holding its
  // strong ref cannot be reclaimed until we unpin). The strong ref is
  // taken only when we leave the pinned region still needing the image
  // (miss paths and prefetch enqueue).
  memsys::ShardedBlockCache::Ticket ticket;
  ImagePtr strong;
  LoadedImage* img = nullptr;
  memsys::BlockKey key;
  {
    memsys::ebr::Guard guard;
    if (guard.active()) {
      const ImageMap* map = images_root_.load(std::memory_order_acquire);
      const auto it = map->find(name);
      if (it == map->end()) throw ConfigError("no image named '" + name + "' is loaded");
      img = it->second.get();
      if (block >= img->blocks)
        throw ConfigError("block " + std::to_string(block) + " out of range for image '" + name +
                          "'");
      key = memsys::BlockKey{img->epoch, block};
      ticket = cache_.acquire(key);
      if (ticket.bytes) {
        if (img->prefetch_flag) {
          // Only layout images reach here: the flag consume and the hint
          // enqueue need the image beyond bookkeeping, so take the ref.
          note_prefetch_hit(*img, block);
          strong = it->second;
          maybe_prefetch(strong, block);
        }
        return FetchResult{std::move(ticket.bytes), FetchSource::kCache, false};
      }
      strong = it->second;
    }
  }
  if (img == nullptr) {
    // No EBR reader slot for this thread: classic locked lookup.
    strong = snapshot(name);
    img = strong.get();
    if (block >= img->blocks)
      throw ConfigError("block " + std::to_string(block) + " out of range for image '" + name +
                        "'");
    key = memsys::BlockKey{img->epoch, block};
    ticket = cache_.acquire(key);
    if (ticket.bytes) {
      note_prefetch_hit(*img, block);
      maybe_prefetch(strong, block);
      return FetchResult{std::move(ticket.bytes), FetchSource::kCache, false};
    }
  }
  if (!ticket.leader) {
    memsys::ShardedBlockCache::Bytes bytes = memsys::ShardedBlockCache::wait(*ticket.flight);
    // Joining a flight the prefetcher leads still overlaps decode with the
    // demand stream, so it counts as a prefetch hit too.
    note_prefetch_hit(*img, block);
    maybe_prefetch(strong, block);
    return FetchResult{std::move(bytes), FetchSource::kCoalesced, ticket.flight->degraded};
  }
  // Demand decode of a block whose prefetched copy was evicted unconsumed:
  // that earlier speculative decode bought nothing.
  if (img->prefetch_flag &&
      img->prefetch_flag[block].exchange(0, std::memory_order_relaxed) != 0) {
    stats_.prefetch_waste.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.prefetch.waste", 1);
  }
  FetchResult result = lead_decode(*img, key, ticket.flight);
  maybe_prefetch(strong, block);
  return result;
}

void ImageServer::note_prefetch_hit(LoadedImage& img, std::uint32_t block) {
  if (!img.prefetch_flag) return;
  if (img.prefetch_flag[block].exchange(0, std::memory_order_relaxed) != 0) {
    stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.prefetch.hit", 1);
  }
}

void ImageServer::maybe_prefetch(const ImagePtr& img, std::uint32_t block) {
  if (!options_.prefetch || !img->plan || img->plan->predictor_k == 0) return;
  const std::vector<std::uint32_t> successors = img->plan->predicted(block);
  if (successors.empty()) return;
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    if (prefetch_stop_) return;
    for (const std::uint32_t succ : successors) {
      if (prefetch_queue_.size() >= options_.prefetch_queue) break;  // drop, never block
      prefetch_queue_.push_back(PrefetchHint{img, succ});
      enqueued = true;
    }
  }
  if (enqueued) prefetch_cv_.notify_one();
}

void ImageServer::prefetch_loop() {
  for (;;) {
    PrefetchHint hint;
    {
      std::unique_lock<std::mutex> lock(prefetch_mu_);
      prefetch_cv_.wait(lock, [this] { return prefetch_stop_ || !prefetch_queue_.empty(); });
      if (prefetch_stop_) return;
      hint = std::move(prefetch_queue_.front());
      prefetch_queue_.pop_front();
    }
    const memsys::BlockKey key{hint.img->epoch, hint.block};
    memsys::ShardedBlockCache::Ticket ticket = cache_.acquire(key);
    // Already cached, or another thread is decoding it (the abandoned
    // joiner ticket is harmless — the flight completes through its leader).
    if (ticket.bytes || !ticket.leader) continue;
    LoadedImage& img = *hint.img;
    // A still-set flag means the previous prefetch of this slot was evicted
    // before any demand fetch consumed it.
    if (img.prefetch_flag[hint.block].exchange(1, std::memory_order_relaxed) != 0) {
      stats_.prefetch_waste.fetch_add(1, std::memory_order_relaxed);
      CCOMP_COUNT("server.prefetch.waste", 1);
    }
    stats_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
    CCOMP_COUNT("server.prefetch.issued", 1);
    try {
      lead_decode(img, key, ticket.flight);
    } catch (...) {
      // Speculative work never surfaces failures; the demand path will
      // re-decode and report through the ladder's typed errors.
      img.prefetch_flag[hint.block].store(0, std::memory_order_relaxed);
      stats_.prefetch_waste.fetch_add(1, std::memory_order_relaxed);
      CCOMP_COUNT("server.prefetch.waste", 1);
    }
  }
}

void ImageServer::stop_prefetcher() {
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_stop_ = true;
    prefetch_queue_.clear();
  }
  prefetch_cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

void ImageServer::with_store(const std::string& name,
                             const std::function<void(memsys::SelfHealingMemorySystem&)>& fn) {
  const ImagePtr img = snapshot(name);
  std::lock_guard<std::mutex> lock(img->mu);
  fn(*img->heal);
}

std::size_t ImageServer::scrub_once(std::size_t blocks_per_image) {
  CCOMP_SPAN("server.scrub");
  std::vector<ImagePtr> imgs;
  {
    memsys::ebr::Guard guard;
    std::unique_lock<std::mutex> lock(images_mu_, std::defer_lock);
    if (!guard.active()) lock.lock();
    const ImageMap* map = images_root_.load(std::memory_order_acquire);
    imgs.reserve(map->size());
    for (const auto& [name, img] : *map) imgs.push_back(img);
  }
  std::size_t visited = 0;
  for (const ImagePtr& img : imgs) {
    std::lock_guard<std::mutex> lock(img->mu);
    visited += img->heal->scrub(blocks_per_image);
  }
  stats_.scrub_sweeps.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.scrub_sweeps", 1);
  return visited;
}

void ImageServer::start_scrubber(std::chrono::milliseconds period, std::size_t blocks_per_sweep) {
  stop_scrubber();
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = false;
  }
  scrubber_ = std::thread([this, period, blocks_per_sweep] {
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!scrub_stop_) {
      if (scrub_cv_.wait_for(lock, period, [this] { return scrub_stop_; })) break;
      lock.unlock();
      scrub_once(blocks_per_sweep);
      lock.lock();
    }
  });
}

void ImageServer::stop_scrubber() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrubber_.joinable()) scrubber_.join();
}

}  // namespace ccomp::server
