#include "sadc/symbols.h"

#include "support/error.h"

namespace ccomp::sadc {

std::uint16_t SymbolTable::add(Symbol symbol) {
  const std::uint16_t id = static_cast<std::uint16_t>(symbols_.size());
  if (symbol.kind == Symbol::Kind::kSeq) {
    if (symbol.components.size() < 2) throw ConfigError("sequence symbol needs >= 2 components");
    for (const std::uint16_t c : symbol.components)
      if (c >= id) throw ConfigError("sequence component must precede the sequence");
  }
  symbols_.push_back(std::move(symbol));
  leaves_.emplace_back();
  build_leaves(id);
  return id;
}

void SymbolTable::build_leaves(std::uint16_t id) {
  const Symbol& s = symbols_[id];
  std::vector<Leaf>& out = leaves_[id];
  switch (s.kind) {
    case Symbol::Kind::kBase: {
      Leaf leaf;
      leaf.token = s.token;
      out.push_back(leaf);
      break;
    }
    case Symbol::Kind::kRaw: {
      Leaf leaf;
      leaf.raw = true;
      out.push_back(leaf);
      break;
    }
    case Symbol::Kind::kRegSpec: {
      Leaf leaf;
      leaf.token = s.token;
      leaf.regs_absorbed = true;
      for (int i = 0; i < 4; ++i) leaf.absorbed_regs[i] = s.regs[i];
      out.push_back(leaf);
      break;
    }
    case Symbol::Kind::kImmSpec: {
      Leaf leaf;
      leaf.token = s.token;
      leaf.imm_absorbed = true;
      leaf.absorbed_imm16 = s.imm16;
      out.push_back(leaf);
      break;
    }
    case Symbol::Kind::kSeq: {
      for (const std::uint16_t c : s.components) {
        const std::vector<Leaf>& sub = leaves_[c];
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
    }
  }
}

std::size_t SymbolTable::expanded_length(std::uint16_t id) const { return leaves_.at(id).size(); }

const std::vector<Leaf>& SymbolTable::leaves(std::uint16_t id) const { return leaves_.at(id); }

void SymbolTable::serialize(ByteSink& sink) const {
  sink.varint(symbols_.size());
  for (const Symbol& s : symbols_) {
    sink.u8(static_cast<std::uint8_t>(s.kind));
    switch (s.kind) {
      case Symbol::Kind::kBase:
        sink.u16(s.token);
        break;
      case Symbol::Kind::kRaw:
        break;
      case Symbol::Kind::kSeq:
        sink.varint(s.components.size());
        for (const std::uint16_t c : s.components) sink.u8(static_cast<std::uint8_t>(c));
        break;
      case Symbol::Kind::kRegSpec:
        sink.u16(s.token);
        sink.u8(s.reg_count);
        for (unsigned i = 0; i < s.reg_count; ++i) sink.u8(s.regs[i]);
        break;
      case Symbol::Kind::kImmSpec:
        sink.u16(s.token);
        sink.u16(s.imm16);
        break;
    }
  }
}

SymbolTable SymbolTable::deserialize(ByteSource& src) {
  SymbolTable table;
  const std::uint64_t count = src.varint();
  if (count > kMaxSymbols) throw CorruptDataError("dictionary too large");
  for (std::uint64_t i = 0; i < count; ++i) {
    Symbol s;
    s.kind = static_cast<Symbol::Kind>(src.u8());
    switch (s.kind) {
      case Symbol::Kind::kBase:
        s.token = src.u16();
        break;
      case Symbol::Kind::kRaw:
        break;
      case Symbol::Kind::kSeq: {
        const std::uint64_t n = src.varint();
        if (n < 2 || n > kMaxSymbols) throw CorruptDataError("bad sequence length");
        for (std::uint64_t k = 0; k < n; ++k) s.components.push_back(src.u8());
        break;
      }
      case Symbol::Kind::kRegSpec:
        s.token = src.u16();
        s.reg_count = src.u8();
        if (s.reg_count > 4) throw CorruptDataError("bad absorbed register count");
        for (unsigned k = 0; k < s.reg_count; ++k) s.regs[k] = src.u8();
        break;
      case Symbol::Kind::kImmSpec:
        s.token = src.u16();
        s.imm16 = src.u16();
        break;
      default:
        throw CorruptDataError("unknown symbol kind");
    }
    // add() validates cross-symbol invariants and throws ConfigError, but in
    // this context a bad symbol means corrupt serialized input — re-type it
    // so loaders see every malformed-container failure as CorruptDataError.
    try {
      table.add(std::move(s));
    } catch (const ConfigError& e) {
      throw CorruptDataError(std::string("dictionary symbol rejected: ") + e.what());
    }
  }
  return table;
}

}  // namespace ccomp::sadc
