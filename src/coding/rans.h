// Binary static rANS coder — the interleaving-friendly sibling of the
// range coder (PAPERS.md: "RAS: A Bit-Exact rANS Accelerator").
//
// rANS (range asymmetric numeral systems) keeps the whole coder state in
// ONE integer: decoding is `slot = x mod M; x = freq * (x / M) + ...` with
// no carry propagation and no low/cache bookkeeping, which is why K
// independent rANS states round-robin so well in an interleaved decode
// loop — each step is a short, self-contained dependency chain.
//
// Configuration (fixed, bit-exact by construction):
//   * probabilities are the library-wide 16-bit fixed point (coding::Prob,
//     P(bit == 0) in [1, 65535]) so the Markov models drive this coder and
//     the range coder interchangeably;
//   * total M = 2^16, state interval I = [2^24, 2^32) (L = 256·M, so the
//     state carries 8 bits of slack over the probability resolution and
//     the redundancy vs the entropy bound is measured in hundredths of a
//     percent), renormalization one BYTE at a time (encode emits when x
//     would leave I, decode refills while x is below I) — classic b = 256
//     rANS with a 32-bit state;
//   * encoding runs BACKWARD over the bit sequence (the defining rANS
//     quirk: the last bit encoded is the first decoded), so the encoder
//     buffers (bit, prob) pairs and performs the reverse pass in finish().
//
// The decoder is strict: a state below the interval at attach time or a
// refill past the end of the payload throws CorruptDataError. A valid
// stream never triggers either — rANS decode consumes exactly the bytes
// encode produced — so the typed-error paths fire only on truncated or
// corrupted input (what the fault-injection framework expects).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/rangecoder.h"  // coding::Prob / kProbBits
#include "support/error.h"

namespace ccomp::coding {

/// Lower bound of the rANS state interval [2^24, 2^32).
inline constexpr std::uint32_t kRansLowerBound = 1u << 24;
/// Serialized size of a flushed final state (4 bytes, since x < 2^32).
inline constexpr std::size_t kRansFlushBytes = 4;

/// Encodes a bit sequence against per-bit probabilities. Drop-in interface
/// match for RangeEncoder (encode_bit / finish / take / reset) so SAMC's
/// block encoder is generic over the two.
class RansEncoder {
 public:
  RansEncoder() = default;

  /// Restart the coder (block boundary). Discards internal state but not
  /// previously taken output.
  void reset() { pending_.clear(); }

  /// Record one bit with probability `p0` that the bit is 0. Nothing is
  /// emitted yet — rANS encodes backward, so the pass happens in finish().
  void encode_bit(unsigned bit, Prob p0) {
    pending_.push_back(static_cast<std::uint32_t>(p0) | (bit ? 0x10000u : 0u));
  }

  /// Run the backward encoding pass; afterwards take() yields the complete
  /// stream (renorm bytes + 4-byte final state, in decode order).
  void finish();

  /// Return the encoded bytes and clear the buffer.
  std::vector<std::uint8_t> take();

  /// Bytes produced so far (valid after finish()).
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint32_t> pending_;  // p0 | bit << 16, in forward order
  std::vector<std::uint8_t> out_;
  std::uint64_t renorms_ = 0;  // batched into the obs registry at finish()
};

/// Decodes a bit sequence produced by RansEncoder, given the same
/// probability sequence.
class RansDecoder {
 public:
  /// Attach to one stream's payload. Throws CorruptDataError when the
  /// payload cannot even hold a flushed state (truncation).
  explicit RansDecoder(std::span<const std::uint8_t> data) { reset(data); }
  ~RansDecoder();
  RansDecoder(const RansDecoder&) = delete;
  RansDecoder& operator=(const RansDecoder&) = delete;

  /// Re-attach (block boundary).
  void reset(std::span<const std::uint8_t> data);

  /// Register-resident decoding state for hot loops — same contract as
  /// RangeDecoder::Core: a plain value whose address never escapes, so the
  /// whole coder lives in two registers across a block decode.
  struct Core {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos;
    std::uint32_t x;  // state in [2^24, 2^32)
    std::uint64_t renorms;

    /// Decode one bit given the probability `p0` that it is 0.
    unsigned decode_bit(Prob p0) {
      const std::uint32_t slot = x & 0xFFFFu;
      // Branch (not select) on the bit for the same reason the range coder
      // does: compressed bits are predictable, so the predictor speculates
      // through the state update instead of serializing on it.
      unsigned bit = 0;
      if (slot < p0) {
        x = p0 * (x >> kProbBits) + slot;
      } else {
        bit = 1;
        x = (0x10000u - p0) * (x >> kProbBits) + slot - p0;
      }
      // Byte refill: at most two iterations (the transform keeps
      // x >= freq * (x >> 16) >= 2^8, and two bytes lift that to 2^24).
      // A refill past the payload is impossible for a well-formed stream
      // (decode consumes exactly what encode emitted), so running out of
      // bytes here is corruption, not a boundary condition.
      while (x < kRansLowerBound) [[unlikely]] {
        if (pos >= size) throw CorruptDataError("rANS stream truncated mid-decode");
        x = (x << 8) | data[pos++];
        ++renorms;
      }
      return bit;
    }

    /// Branchless bit resolve. Serially this loses — it turns the
    /// predictor's speculation into a real data dependency — but in the
    /// K-way interleaved decoder the other lanes hide that latency, and
    /// what matters is that a coder mispredict no longer flushes K
    /// streams' worth of in-flight work. Mask arithmetic rather than
    /// ternaries on purpose: GCC's if-converter happily turns `bit ? a : b`
    /// back into the very branch this function exists to avoid.
    /// Bit-exact with decode_bit; only the refill check stays a branch.
    unsigned decode_bit_branchless(Prob p0) {
      const std::uint32_t slot = x & 0xFFFFu;
      const std::uint32_t bit = slot >= p0;
      // One unconditional multiply feeds BOTH candidate states:
      //   t  = p0 * (x >> 16)
      //   x0 = t + slot                       (freq p0, start 0)
      //   x1 = x - t - p0                     (freq 2^16 - p0, start p0:
      //        (2^16 - p0)(x >> 16) + slot - p0 = x - t - p0, since
      //        (x >> 16) << 16 + slot = x — mod-2^32 exact)
      // then a mask select the compiler cannot re-branch into the very
      // mispredict this function exists to avoid.
      const std::uint32_t t = p0 * (x >> kProbBits);
      const std::uint32_t x0 = t + slot;
      const std::uint32_t x1 = x - t - p0;
      x = x0 + ((0u - bit) & (x1 - x0));
      while (x < kRansLowerBound) [[unlikely]] {
        if (pos >= size) throw CorruptDataError("rANS stream truncated mid-decode");
        x = (x << 8) | data[pos++];
        ++renorms;
      }
      return bit;
    }
  };

  /// Build a Core directly attached to one stream's payload, bypassing the
  /// RansDecoder object (hot paths tracking their own metrics use this).
  static Core attach(std::span<const std::uint8_t> data) {
    if (data.size() < kRansFlushBytes)
      throw CorruptDataError("rANS stream shorter than a flushed state");
    Core c{data.data(), data.size(), kRansFlushBytes, 0, 0};
    c.x = (static_cast<std::uint32_t>(data[0]) << 24) |
          (static_cast<std::uint32_t>(data[1]) << 16) |
          (static_cast<std::uint32_t>(data[2]) << 8) | data[3];
    if (c.x < kRansLowerBound)
      throw CorruptDataError("rANS initial state below the coding interval");
    return c;
  }

  /// Snapshot the coder state for a register-resident decode loop.
  Core core() const { return {data_.data(), data_.size(), pos_, x_, renorms_}; }

  /// Write back a Core obtained from core().
  void adopt(const Core& c) {
    pos_ = c.pos;
    x_ = c.x;
    renorms_ = c.renorms;
  }

  /// Decode one bit given the probability `p0` that it is 0.
  unsigned decode_bit(Prob p0) {
    Core c = core();
    const unsigned bit = c.decode_bit(p0);
    adopt(c);
    return bit;
  }

  /// Bytes consumed from the input so far. A stream decoded to completion
  /// has consumed exactly its payload (tests assert this).
  std::size_t consumed() const { return pos_; }

 private:
  void flush_metrics();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t x_ = 0;
  std::uint64_t renorms_ = 0;  // batched into the obs registry per block
};

}  // namespace ccomp::coding
