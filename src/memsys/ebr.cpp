#include "memsys/ebr.h"

#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace ccomp::memsys::ebr {
namespace detail {

namespace {

struct RetiredObject {
  void* p = nullptr;
  void (*deleter)(void*) = nullptr;
  std::uint64_t epoch = 0;
};

}  // namespace

struct Registry {
  /// Monotonic global epoch. Starts at 1 so slot epoch 0 can mean
  /// "unpinned".
  std::atomic<std::uint64_t> epoch{1};
  std::array<ReaderSlot, kMaxReaders> slots;

  std::mutex retire_mu;
  std::vector<RetiredObject> retired;
  std::atomic<std::uint64_t> retired_total{0};
  std::atomic<std::uint64_t> reclaimed_total{0};

  /// Smallest epoch any reader is currently pinned at, or ~0 when no
  /// reader is pinned. A retired object is reclaimable once its stamp is
  /// below every pinned epoch: such an object was unlinked before any
  /// still-pinned reader pinned, so none of them can have reached it.
  std::uint64_t min_active_epoch() const {
    std::uint64_t min = ~std::uint64_t{0};
    for (const ReaderSlot& slot : slots) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) min = e;
    }
    return min;
  }

  /// Free everything stamped before the oldest pinned epoch. Caller holds
  /// retire_mu.
  void reclaim_locked() {
    const std::uint64_t min = min_active_epoch();
    std::size_t kept = 0;
    for (RetiredObject& obj : retired) {
      if (obj.epoch < min) {
        obj.deleter(obj.p);
        reclaimed_total.fetch_add(1, std::memory_order_relaxed);
      } else {
        retired[kept++] = obj;
      }
    }
    retired.resize(kept);
  }
};

Registry& registry() {
  // Leaked on purpose: reader slots are released from thread_local
  // destructors and retired objects may drain from any late destructor —
  // a static-destruction-ordered registry would be use-after-free bait.
  // The singleton stays reachable, so LeakSanitizer does not report it.
  static Registry* r = new Registry();
  return *r;
}

namespace {

/// Releases this thread's slot when the thread exits.
struct SlotHandle {
  ReaderSlot* slot = nullptr;
  ~SlotHandle() {
    if (slot == nullptr) return;
    slot->epoch.store(0, std::memory_order_release);
    slot->claimed.store(false, std::memory_order_release);
  }
};

}  // namespace

ReaderSlot* this_thread_slot() {
  thread_local SlotHandle handle = [] {
    SlotHandle h;
    Registry& reg = registry();
    for (ReaderSlot& slot : reg.slots) {
      bool expected = false;
      if (slot.claimed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        h.slot = &slot;
        break;
      }
    }
    return h;  // nullptr slot when all kMaxReaders are taken
  }();
  return handle.slot;
}

std::uint64_t pin(ReaderSlot& slot) {
  Registry& reg = registry();
  for (;;) {
    const std::uint64_t e = reg.epoch.load(std::memory_order_seq_cst);
    // seq_cst store + recheck: once this returns, any retire() that
    // advances the epoch past `e` is guaranteed to see this pin in its
    // min_active_epoch() scan — the store cannot be ordered after the
    // scan's loads.
    slot.epoch.store(e, std::memory_order_seq_cst);
    if (reg.epoch.load(std::memory_order_seq_cst) == e) return e;
    // The epoch moved between load and publish; re-pin at the new epoch
    // so a concurrent reclaimer never under-estimates us.
  }
}

void unpin(ReaderSlot& slot) { slot.epoch.store(0, std::memory_order_release); }

}  // namespace detail

int& Guard::depth_ref() {
  thread_local int depth = 0;
  return depth;
}

Guard::Guard() {
  slot_ = detail::this_thread_slot();
  if (slot_ == nullptr) return;
  if (depth_ref()++ == 0) {
    outermost_ = true;
    detail::pin(*slot_);
  }
}

Guard::~Guard() {
  if (slot_ == nullptr) return;
  if (outermost_) detail::unpin(*slot_);
  --depth_ref();
}

void retire(void* p, void (*deleter)(void*)) {
  detail::Registry& reg = detail::registry();
  // Stamp with the pre-advance epoch: readers pinned at or after the
  // *advanced* epoch pinned after p was unlinked and cannot hold it, so
  // reclaim requires min_active > stamp.
  const std::uint64_t stamp = reg.epoch.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(reg.retire_mu);
  reg.retired.push_back(detail::RetiredObject{p, deleter, stamp});
  reg.retired_total.fetch_add(1, std::memory_order_relaxed);
  CCOMP_COUNT("server.ebr.retired", 1);
  reg.reclaim_locked();
}

void synchronize() {
  detail::Registry& reg = detail::registry();
  const std::uint64_t barrier = reg.epoch.fetch_add(1, std::memory_order_seq_cst);
  // Wait for every slot to be observed unpinned or pinned past the
  // barrier once; after that no reader predating the barrier survives.
  for (detail::ReaderSlot& slot : reg.slots) {
    while (true) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e == 0 || e > barrier) break;
      std::this_thread::yield();
    }
  }
  std::lock_guard<std::mutex> lock(reg.retire_mu);
  reg.reclaim_locked();
}

Telemetry telemetry() {
  detail::Registry& reg = detail::registry();
  Telemetry t;
  t.retired = reg.retired_total.load(std::memory_order_relaxed);
  t.reclaimed = reg.reclaimed_total.load(std::memory_order_relaxed);
  t.pending = t.retired - t.reclaimed;
  return t;
}

std::size_t StripedCounter::stripe_index() {
  // Round-robin stripe assignment per thread: even spread without hashing,
  // and stable for the thread's lifetime.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace ccomp::memsys::ebr
