#include "memsys/clb.h"

namespace ccomp::memsys {

Clb::Clb(const ClbConfig& config) : config_(config) {
  if (config_.entries == 0 || config_.blocks_per_entry == 0)
    throw ConfigError("CLB needs nonzero entries and group size");
  entries_.assign(config_.entries, Entry{});
}

bool Clb::access(std::uint64_t block_index) {
  ++stats_.lookups;
  ++clock_;
  const std::uint64_t group = block_index / config_.blocks_per_entry;
  Entry* victim = &entries_[0];
  for (Entry& e : entries_) {
    if (e.valid && e.group == group) {
      e.last_use = clock_;
      return true;
    }
    if (!e.valid) {
      if (victim->valid) victim = &e;
    } else if (victim->valid && e.last_use < victim->last_use) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->group = group;
  victim->last_use = clock_;
  return false;
}

void Clb::flush() {
  for (Entry& e : entries_) e.valid = false;
}

}  // namespace ccomp::memsys
