// Table-soundness checks: Huffman codes, SADC dictionaries, Markov models.
//
// The table blob is re-parsed with the library's own deserializers (so the
// verifier and the decoder agree on the format by construction); a parse
// failure becomes a TBL001 finding naming the component, and every component
// that does parse gets its semantic invariants proved: Kraft discipline for
// the canonical Huffman codes, operand consistency for dictionary symbols,
// probability-range / reachability properties for the Markov state graphs.
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "coding/huffman.h"
#include "coding/markov.h"
#include "core/streams.h"
#include "layout/layout.h"
#include "isa/mips/mips.h"
#include "isa/x86/x86.h"
#include "sadc/symbols.h"
#include "support/error.h"
#include "support/serialize.h"
#include "verify/internal.h"
#include "verify/verify.h"

namespace ccomp::verify {
namespace {

using coding::HuffmanCode;
using coding::MarkovModel;
using detail::emit;
using sadc::Symbol;
using sadc::SymbolTable;

std::string describe(const char* which, const std::string& rest) {
  return std::string(which) + ": " + rest;
}

// ---------------------------------------------------------------------------
// Canonical Huffman: Kraft equality / prefix-freeness / alphabet agreement.

void check_huffman(const HuffmanCode& code, std::size_t expected_alphabet, const char* which,
                   VerifyReport& report) {
  if (code.alphabet_size() != expected_alphabet)
    emit(report, "HUF003",
         describe(which, "alphabet has " + std::to_string(code.alphabet_size()) +
                             " symbols, the stream it codes has " +
                             std::to_string(expected_alphabet)));
  // Kraft sum in units of 2^-kMaxCodeLength: equality with 2^kMaxCodeLength
  // is a complete prefix-free code; > is overfull (ambiguous prefixes), < is
  // decodable but leaves undecodable bit patterns.
  std::uint64_t kraft = 0;
  std::size_t coded = 0;
  for (const std::uint8_t len : code.lengths()) {
    if (len == 0) continue;
    ++coded;
    if (len > coding::kMaxCodeLength) {
      emit(report, "HUF004",
           describe(which, "code length " + std::to_string(len) + " exceeds the limit " +
                               std::to_string(coding::kMaxCodeLength)));
      return;
    }
    kraft += std::uint64_t{1} << (coding::kMaxCodeLength - len);
  }
  const std::uint64_t full = std::uint64_t{1} << coding::kMaxCodeLength;
  if (kraft > full) {
    emit(report, "HUF001", describe(which, "Kraft sum exceeds 1: code is not prefix-free"));
  } else if (kraft < full && coded >= 2) {
    // A single-symbol code legitimately uses one 1-bit codeword (half the
    // Kraft budget) so the stream stays self-delimiting — not a finding.
    emit(report, "HUF002",
         describe(which, "Kraft sum below 1: some prefixes decode to nothing"));
  }
}

// ---------------------------------------------------------------------------
// Markov models: configuration, probability range, state-graph reachability.

void check_markov(const MarkovModel& model, const char* which, std::uint32_t block_size,
                  VerifyReport& report) {
  const coding::MarkovConfig& cfg = model.config();
  try {
    cfg.division.validate();
  } catch (const Error& e) {
    emit(report, "MKV002", describe(which, e.what()));
    return;
  }
  if (cfg.context_bits > 8) {
    emit(report, "MKV002",
         describe(which, "context_bits " + std::to_string(cfg.context_bits) + " exceeds 8"));
    return;
  }

  // SAMC words map onto whole bytes of the program; a division that does not
  // tile the block leaves a partial word no block can contain.
  if (cfg.division.word_bits % 8 != 0) {
    emit(report, "MKV007",
         describe(which, "word width " + std::to_string(cfg.division.word_bits) +
                             " is not a whole number of bytes"));
  } else if (block_size % (cfg.division.word_bits / 8) != 0) {
    emit(report, "MKV007",
         describe(which, "block size " + std::to_string(block_size) +
                             " is not a multiple of the " +
                             std::to_string(cfg.division.word_bits / 8) + "-byte word"));
  }

  const std::size_t streams = cfg.division.stream_count();
  const std::size_t ctx_count = model.context_count();
  std::size_t bad_probs = 0;
  std::size_t overshift = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    for (std::size_t c = 0; c < ctx_count; ++c) {
      for (std::size_t n = 0; n < model.tree_node_count(s); ++n) {
        const coding::Prob p = model.prob0(s, c, n);
        if (p == 0) {
          ++bad_probs;
          continue;
        }
        if (!cfg.quantized) continue;
        const std::uint32_t lps = p <= coding::kProbHalf ? p : 0x10000u - p;
        if ((lps & (lps - 1)) != 0) {
          ++bad_probs;  // shift-only hardware cannot represent this midpoint
          continue;
        }
        unsigned shift = 0;
        for (std::uint32_t v = lps; v < 0x10000u; v <<= 1) ++shift;
        if (shift > cfg.max_shift) ++overshift;
      }
    }
  }
  if (bad_probs > 0)
    emit(report, "MKV001",
         describe(which, std::to_string(bad_probs) +
                             " probability value(s) outside the encodable range"));
  if (overshift > 0)
    emit(report, "MKV004",
         describe(which, std::to_string(overshift) + " quantized shift(s) exceed max_shift " +
                             std::to_string(cfg.max_shift)));

  // State-graph reachability from the start-of-block state (stream 0, zero
  // context). Tree copies no bit history can select are dead table bytes an
  // embedded image is paying ROM for. Every probability is nonzero, so an
  // edge exists for every bit value; after consuming a stream of width w the
  // next context is the trailing context_bits of the rolled bit history.
  if (ctx_count > 1 && bad_probs == 0) {
    std::vector<std::vector<bool>> reachable(streams, std::vector<bool>(ctx_count, false));
    std::vector<std::pair<std::size_t, std::size_t>> work = {{0, 0}};
    reachable[0][0] = true;
    const std::size_t ctx_mask = ctx_count - 1;
    while (!work.empty()) {
      const auto [s, c] = work.back();
      work.pop_back();
      const std::size_t width = cfg.division.streams[s].size();
      const bool wraps = s + 1 == streams;
      const std::size_t next = wraps ? 0 : s + 1;
      auto visit = [&](std::size_t ctx) {
        if (!reachable[next][ctx]) {
          reachable[next][ctx] = true;
          work.emplace_back(next, ctx);
        }
      };
      if (wraps && !cfg.connect_across_words) {
        visit(0);  // context resets at the word boundary
      } else if (width >= cfg.context_bits) {
        for (std::size_t v = 0; v < ctx_count; ++v) visit(v);
      } else {
        for (std::size_t v = 0; v < (std::size_t{1} << width); ++v)
          visit(((c << width) | v) & ctx_mask);
      }
    }
    std::size_t dead = 0;
    for (std::size_t s = 0; s < streams; ++s)
      for (std::size_t c = 0; c < ctx_count; ++c)
        if (!reachable[s][c]) ++dead;
    if (dead > 0)
      emit(report, "MKV005",
           describe(which, std::to_string(dead) + " of " + std::to_string(streams * ctx_count) +
                               " tree copies are unreachable from the block-start state"));
  }
}

// ---------------------------------------------------------------------------
// SADC dictionaries.

std::string symbol_key(const Symbol& s) {
  std::string key(1, static_cast<char>(s.kind));
  key += static_cast<char>(s.token & 0xFF);
  key += static_cast<char>(s.token >> 8);
  for (const std::uint16_t c : s.components) {
    key += static_cast<char>(c & 0xFF);
    key += static_cast<char>(c >> 8);
  }
  key.append(reinterpret_cast<const char*>(s.regs), s.reg_count);
  key += static_cast<char>(s.imm16 & 0xFF);
  key += static_cast<char>(s.imm16 >> 8);
  return key;
}

void check_dictionary_common(const SymbolTable& table, const HuffmanCode& sym_code,
                             bool payload_empty, std::size_t max_expansion, const char* unit,
                             VerifyReport& report) {
  if (table.size() == 0) {
    if (!payload_empty)
      emit(report, "DIC001", "dictionary is empty but the payload holds compressed blocks");
    return;
  }
  std::set<std::string> seen;
  std::size_t duplicates = 0;
  std::size_t dead = 0;
  for (std::size_t id = 0; id < table.size(); ++id) {
    const Symbol& s = table.at(id);
    if (!seen.insert(symbol_key(s)).second) ++duplicates;
    if (id < sym_code.alphabet_size() && sym_code.length_of(id) == 0) ++dead;
    const std::size_t expansion = table.expanded_length(static_cast<std::uint16_t>(id));
    if (expansion > max_expansion)
      emit(report, "DIC006",
           "symbol " + std::to_string(id) + " expands to " + std::to_string(expansion) + " " +
               unit + ", more than one block holds (" + std::to_string(max_expansion) + ")");
  }
  if (duplicates > 0)
    emit(report, "DIC005",
         std::to_string(duplicates) +
             " duplicate dictionary entries (the builder emits each encoding once)");
  if (dead > 0)
    emit(report, "DIC007",
         std::to_string(dead) + " dictionary symbol(s) have no Huffman code (dead entries)");
}

void check_dictionary_mips(const SymbolTable& table, VerifyReport& report) {
  for (std::size_t id = 0; id < table.size(); ++id) {
    const Symbol& s = table.at(id);
    const bool has_token = s.kind == Symbol::Kind::kBase || s.kind == Symbol::Kind::kRegSpec ||
                           s.kind == Symbol::Kind::kImmSpec;
    if (!has_token) continue;
    if (s.token >= mips::opcode_count()) {
      emit(report, "DIC002",
           "symbol " + std::to_string(id) + " names opcode token " + std::to_string(s.token) +
               ", table has " + std::to_string(mips::opcode_count()));
      continue;
    }
    const mips::OperandLengths lengths = mips::operand_lengths(s.token);
    if (s.kind == Symbol::Kind::kRegSpec) {
      if (s.reg_count != lengths.regs)
        emit(report, "DIC003",
             "symbol " + std::to_string(id) + " freezes " + std::to_string(s.reg_count) +
                 " registers, its opcode takes " + std::to_string(lengths.regs));
      for (unsigned r = 0; r < s.reg_count && r < 4; ++r)
        if (s.regs[r] >= 32)
          emit(report, "DIC003",
               "symbol " + std::to_string(id) + " freezes register value " +
                   std::to_string(s.regs[r]) + " (>= 32)");
    }
    if (s.kind == Symbol::Kind::kImmSpec && !lengths.imm16)
      emit(report, "DIC004",
           "symbol " + std::to_string(id) + " freezes an imm16 on an opcode without one");
  }
}

void check_dictionary_x86(const SymbolTable& table, const std::vector<std::string>& strings,
                          VerifyReport& report) {
  for (std::size_t t = 0; t < strings.size(); ++t) {
    if (strings[t].empty()) {
      emit(report, "DIC008", "opcode string " + std::to_string(t) + " is empty");
      continue;
    }
    try {
      x86::classify_opcode(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(strings[t].data()), strings[t].size()));
    } catch (const Error& e) {
      emit(report, "DIC008",
           "opcode string " + std::to_string(t) + " does not classify: " + e.what());
    }
  }
  for (std::size_t id = 0; id < table.size(); ++id) {
    const Symbol& s = table.at(id);
    if (s.kind == Symbol::Kind::kBase && s.token >= strings.size())
      emit(report, "DIC002",
           "symbol " + std::to_string(id) + " names opcode string " + std::to_string(s.token) +
               ", table has " + std::to_string(strings.size()));
  }
}

// Mirrors the (file-static) reader in sadc_x86.cpp.
std::vector<std::string> read_opcode_strings(ByteSource& src, VerifyReport& report) {
  const std::uint64_t count = src.varint();
  if (count > sadc::kMaxSymbols) {
    emit(report, "DIC008",
         "opcode-string table claims " + std::to_string(count) + " entries, limit is " +
             std::to_string(sadc::kMaxSymbols));
    throw CorruptDataError("too many opcode strings");
  }
  std::vector<std::string> strings;
  strings.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t len = src.u8();
    std::string s;
    for (unsigned k = 0; k < len; ++k) s.push_back(static_cast<char>(src.u8()));
    strings.push_back(std::move(s));
  }
  return strings;
}

// STR001/STR002/STR003: the multi-stream block frame (core/streams.h). The
// stream count is a table-level property; every block's payload must then be
// sliceable into that many sub-streams without the frame overrunning it.
// `items_per_block` bounds a sensible count for fixed-rate codecs (words
// per block); pass 0 when the per-block item count varies (x86 split).
void check_entropy_streams(std::uint8_t streams, const core::CompressedImage& image,
                           std::size_t items_per_block, VerifyReport& report) {
  if (streams < 1 || streams > core::kMaxEntropyStreams) {
    emit(report, "STR001",
         "entropy stream count " + std::to_string(streams) + " outside [1, 16]");
    return;
  }
  if (items_per_block != 0 && streams > items_per_block)
    emit(report, "STR001", "entropy stream count " + std::to_string(streams) +
                               " exceeds the block's " + std::to_string(items_per_block) +
                               " coding items");
  // Bytes per coding item, for the per-block item counts below (uniform
  // blocks only; the last block may cover fewer items than a full one).
  const std::size_t item_bytes =
      (items_per_block != 0 && !image.has_variable_blocks()) ? image.block_size() / items_per_block
                                                             : 0;
  // Tiered images: only cold slots hold the inner codec's stream frames.
  // Raw/warm slot payloads have their own shape discipline (LAY003); an
  // unparseable plan is LAY001's finding, not a stream-frame one.
  std::vector<layout::Tier> tier_of_slot;
  if (image.has_layout()) {
    try {
      tier_of_slot = layout::PlacementPlan::from_blob(image.layout()).tiers;
    } catch (const Error&) {
      return;
    }
    if (tier_of_slot.size() != image.block_count()) return;
  }
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    if (!tier_of_slot.empty() && tier_of_slot[b] != layout::Tier::kCold) continue;
    const std::span<const std::uint8_t> payload = image.block_payload(b);
    if (streams > 1) {
      // STR003: re-sum the u16 length table by hand (in 64-bit, so an
      // adversarial table cannot wrap) and reject a frame whose claimed
      // bytes overrun the block payload. split_stream_block would throw the
      // same way at decode time; surfacing it statically keeps the "reject
      // before the refill engine touches it" contract.
      const std::size_t header = 2u * (streams - 1u);
      if (payload.size() >= header) {
        std::uint64_t claimed = header;
        for (unsigned k = 0; k + 1u < streams; ++k)
          claimed += static_cast<std::uint64_t>(payload[2u * k]) |
                     (static_cast<std::uint64_t>(payload[2u * k + 1]) << 8);
        if (claimed > payload.size()) {
          emit(report, "STR003",
               "block " + std::to_string(b) + ": stream frame claims " + std::to_string(claimed) +
                   " bytes but the block payload holds " + std::to_string(payload.size()));
          return;  // one structural finding is enough; later blocks add noise
        }
      }
    }
    core::StreamSpans spans;
    try {
      spans = core::split_stream_block(payload, streams);
    } catch (const Error& e) {
      emit(report, "STR002", "block " + std::to_string(b) + ": " + e.what());
      return;
    }
    if (streams > 1 && item_bytes != 0) {
      // STR003 (length/items disagreement): a chunk that owns at least one
      // coding item cannot be backed by an empty sub-stream — every entropy
      // backend flushes its coder state, so a legitimate non-empty chunk
      // always emits bytes. An adversarial length table that starves a live
      // stream would otherwise only surface as a decoder throw.
      const std::size_t block_items =
          (image.block_original_size(b) + item_bytes - 1) / item_bytes;
      for (unsigned k = 0; k < streams; ++k) {
        if (core::chunk_size(block_items, streams, k) > 0 && spans[k].empty()) {
          emit(report, "STR003",
               "block " + std::to_string(b) + ": sub-stream " + std::to_string(k) +
                   " is empty but its chunk owns " +
                   std::to_string(core::chunk_size(block_items, streams, k)) + " coding items");
          return;
        }
      }
    }
  }
}

}  // namespace

namespace detail {

void check_tables(const core::CompressedImage& image, VerifyReport& report) {
  ByteSource src(image.tables());
  const bool payload_empty = image.payload().empty();
  const char* component = "codec tables";
  try {
    switch (image.codec()) {
      case core::CodecKind::kSamc: {
        component = "SAMC model";
        // Tables layout: [u8 coder mode][u8 entropy streams][model].
        const std::uint8_t engine = src.u8();
        if (engine > 2) emit(report, "TBL001", "unknown SAMC coder mode byte");
        const std::uint8_t streams = src.u8();
        const MarkovModel model = MarkovModel::deserialize(src);
        check_markov(model, component, image.block_size(), report);
        check_entropy_streams(
            streams, image,
            image.block_size() / (model.config().division.word_bits / 8), report);
        if (engine == 1) {
          // Nibble-parallel engine (Fig. 5): interval updates are shift-only
          // and renormalization is nibble-granular, so the model must honour
          // the hardware's constraints.
          const coding::MarkovConfig& cfg = model.config();
          if (!cfg.quantized || cfg.max_shift > 8)
            emit(report, "MKV006",
                 "nibble engine flag set but the model is not quantized to max_shift <= 8");
          for (const auto& stream : cfg.division.streams)
            if (stream.size() % 4 != 0) {
              emit(report, "MKV006",
                   "nibble engine flag set but a stream width is not a multiple of 4");
              break;
            }
        }
        break;
      }
      case core::CodecKind::kSamcX86Split: {
        component = "SAMC-split tables";
        // Layout: [u8 entropy streams][opcode model][modrm model][imm model].
        const std::uint8_t streams = src.u8();
        const char* names[3] = {"opcode model", "modrm model", "imm model"};
        for (const char* name : names) {
          component = name;
          const MarkovModel model = MarkovModel::deserialize(src);
          if (model.config().division.word_bits != 8)
            emit(report, "MKV007",
                 describe(name, "split-stream models must be byte-granular (word_bits == 8)"));
          else
            check_markov(model, name, image.block_size(), report);
        }
        // Instructions per block vary, so only the frame itself is checked.
        check_entropy_streams(streams, image, 0, report);
        break;
      }
      case core::CodecKind::kSadc: {
        if (image.isa() == core::IsaKind::kMips) {
          component = "SADC dictionary";
          const SymbolTable table = SymbolTable::deserialize(src);
          component = "symbol Huffman code";
          const HuffmanCode sym_code = HuffmanCode::deserialize(src);
          component = "register Huffman code";
          const HuffmanCode reg_code = HuffmanCode::deserialize(src);
          component = "immediate Huffman code";
          const HuffmanCode imm_code = HuffmanCode::deserialize(src);
          check_huffman(sym_code, table.size(), "symbol Huffman code", report);
          check_huffman(reg_code, 32, "register Huffman code", report);
          check_huffman(imm_code, 256, "immediate Huffman code", report);
          check_dictionary_common(table, sym_code, payload_empty,
                                  image.block_size() / 4, "instructions", report);
          check_dictionary_mips(table, report);
        } else if (image.isa() == core::IsaKind::kX86) {
          component = "SADC dictionary";
          const SymbolTable table = SymbolTable::deserialize(src);
          component = "opcode-string table";
          const std::vector<std::string> strings = read_opcode_strings(src, report);
          component = "symbol Huffman code";
          const HuffmanCode sym_code = HuffmanCode::deserialize(src);
          component = "modrm Huffman code";
          const HuffmanCode modrm_code = HuffmanCode::deserialize(src);
          component = "immediate Huffman code";
          const HuffmanCode imm_code = HuffmanCode::deserialize(src);
          check_huffman(sym_code, table.size(), "symbol Huffman code", report);
          check_huffman(modrm_code, 256, "modrm Huffman code", report);
          check_huffman(imm_code, 256, "immediate Huffman code", report);
          // An x86 block's instruction count travels in an 8-bit prefix, so
          // no symbol may expand past 255 instructions.
          check_dictionary_common(table, sym_code, payload_empty, 255, "instructions", report);
          check_dictionary_x86(table, strings, report);
        } else {
          emit(report, "TBL001", "SADC image with an ISA the dictionary codec does not support");
          return;
        }
        break;
      }
      case core::CodecKind::kByteHuffman: {
        component = "byte Huffman code";
        const HuffmanCode code = HuffmanCode::deserialize(src);
        check_huffman(code, 256, "byte Huffman code", report);
        break;
      }
    }
  } catch (const Error& e) {
    emit(report, "TBL001", describe(component, e.what()));
    return;
  }
  if (!src.at_end())
    emit(report, "TBL002",
         std::to_string(src.remaining()) + " trailing byte(s) after the codec tables");
}

}  // namespace detail
}  // namespace ccomp::verify
