#include "coding/markov.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace ccomp::coding {
namespace {

TEST(StreamDivision, ContiguousCoversWordMsbFirst) {
  const auto d = StreamDivision::contiguous(32, 4);
  ASSERT_EQ(d.stream_count(), 4u);
  EXPECT_EQ(d.streams[0].front(), 31);
  EXPECT_EQ(d.streams[0].back(), 24);
  EXPECT_EQ(d.streams[3].front(), 7);
  EXPECT_EQ(d.streams[3].back(), 0);
  d.validate();
}

TEST(StreamDivision, SingleStream) {
  const auto d = StreamDivision::single(8);
  ASSERT_EQ(d.stream_count(), 1u);
  EXPECT_EQ(d.streams[0].size(), 8u);
  d.validate();
}

TEST(StreamDivision, ValidationRejectsBadPartitions) {
  StreamDivision d;
  d.word_bits = 8;
  d.streams = {{7, 6, 5, 4}, {3, 2, 1, 1}};  // bit 1 twice, bit 0 missing
  EXPECT_THROW(d.validate(), ConfigError);
  d.streams = {{7, 6, 5, 4}, {3, 2, 1}};  // does not cover
  EXPECT_THROW(d.validate(), ConfigError);
  d.streams = {{7, 6, 5, 4, 3, 2, 1, 0}, {}};  // empty stream
  EXPECT_THROW(d.validate(), ConfigError);
  EXPECT_THROW(StreamDivision::contiguous(32, 5), ConfigError);
}

TEST(StreamDivision, SerializeRoundTrip) {
  const auto d = StreamDivision::contiguous(32, 8);
  ByteSink sink;
  d.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  EXPECT_EQ(StreamDivision::deserialize(src), d);
}

TEST(MarkovModel, LearnsDeterministicPattern) {
  // Words alternate 0x00 / 0xFF per 8-bit word; with connection across
  // words and 1 context bit, the model should become nearly certain.
  MarkovConfig cfg;
  cfg.division = StreamDivision::single(8);
  cfg.context_bits = 1;
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 2000; ++i) words.push_back(i % 2 ? 0xFFu : 0x00u);
  const auto model = MarkovModel::train(cfg, words);
  // Estimate must be far below 8 bits/word.
  const double bits = model.estimate_bits(words);
  EXPECT_LT(bits / static_cast<double>(words.size()), 1.0);
}

TEST(MarkovModel, UniformRandomCostsNearEightBitsPerByte) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::single(8);
  cfg.context_bits = 0;
  Rng rng(5);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 20000; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
  const auto model = MarkovModel::train(cfg, words);
  const double bits_per_word = model.estimate_bits(words) / static_cast<double>(words.size());
  EXPECT_GT(bits_per_word, 7.9);
  EXPECT_LT(bits_per_word, 8.2);
}

TEST(MarkovModel, SkewedBitsCompress) {
  // Top byte always zero, rest random: expect ~24 bits/word.
  MarkovConfig cfg;
  cfg.division = StreamDivision::contiguous(32, 4);
  cfg.context_bits = 1;
  Rng rng(6);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 10000; ++i) words.push_back(rng.next_u32() & 0x00FFFFFFu);
  const auto model = MarkovModel::train(cfg, words);
  const double bits_per_word = model.estimate_bits(words) / static_cast<double>(words.size());
  EXPECT_LT(bits_per_word, 24.6);
  EXPECT_GT(bits_per_word, 23.0);
}

TEST(MarkovModel, SerializeRoundTripPreservesProbs) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::contiguous(16, 2);
  cfg.context_bits = 2;
  Rng rng(8);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 3000; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_below(65536)));
  const auto model = MarkovModel::train(cfg, words);
  ByteSink sink;
  model.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto restored = MarkovModel::deserialize(src);
  ASSERT_EQ(restored.config().division, model.config().division);
  ASSERT_EQ(restored.config().context_bits, model.config().context_bits);
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t ctx = 0; ctx < 4; ++ctx)
      for (std::size_t node = 0; node < model.tree_node_count(s); ++node)
        EXPECT_EQ(restored.prob0(s, ctx, node), model.prob0(s, ctx, node));
}

TEST(MarkovModel, QuantizedProbsArePowersOfHalf) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::single(8);
  cfg.quantized = true;
  cfg.max_shift = 7;
  Rng rng(9);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4000; ++i) words.push_back(static_cast<std::uint32_t>(rng.pick_skewed(256, 0.8)));
  const auto model = MarkovModel::train(cfg, words);
  for (std::size_t ctx = 0; ctx < model.context_count(); ++ctx) {
    for (std::size_t node = 0; node < model.tree_node_count(0); ++node) {
      const Prob p = model.prob0(0, ctx, node);
      const std::uint32_t lps = p <= kProbHalf ? p : 0x10000u - p;
      bool pow2 = false;
      for (unsigned s = 1; s <= 7; ++s) pow2 |= (lps == (0x10000u >> s));
      EXPECT_TRUE(pow2);
    }
  }
}

TEST(MarkovModel, QuantizedSerializationIsOneBytePerProbAndExact) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::contiguous(16, 2);
  cfg.context_bits = 1;
  cfg.quantized = true;
  cfg.max_shift = 8;
  Rng rng(12);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4000; ++i) words.push_back(static_cast<std::uint32_t>(rng.pick_skewed(1024, 0.8)));
  const auto model = MarkovModel::train(cfg, words);

  ByteSink sink;
  model.serialize(sink);
  const auto bytes = sink.take();
  // 2 streams x 2 contexts x 255 nodes, one byte each, plus small headers.
  const std::size_t probs = 2 * 2 * 255;
  EXPECT_LE(bytes.size(), probs + 64);

  ByteSource src(bytes);
  const auto restored = MarkovModel::deserialize(src);
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t ctx = 0; ctx < 2; ++ctx)
      for (std::size_t node = 0; node < model.tree_node_count(s); ++node)
        EXPECT_EQ(restored.prob0(s, ctx, node), model.prob0(s, ctx, node));
}

TEST(MarkovModel, ConnectedTreesBeatIndependentOnCorrelatedStreams) {
  // Second byte equals first byte: context should capture some of it.
  Rng rng(10);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 8000; ++i) {
    const auto b = static_cast<std::uint32_t>(rng.pick_skewed(4, 0.5));  // tiny alphabet
    words.push_back((b << 8) | b);
  }
  MarkovConfig connected;
  connected.division = StreamDivision::contiguous(16, 2);
  connected.context_bits = 2;
  MarkovConfig independent = connected;
  independent.context_bits = 0;
  const double bits_connected =
      MarkovModel::train(connected, words).estimate_bits(words);
  const double bits_independent =
      MarkovModel::train(independent, words).estimate_bits(words);
  EXPECT_LT(bits_connected, bits_independent);
}

TEST(MarkovModel, TableBytesMatchesStructure) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::contiguous(32, 4);
  cfg.context_bits = 1;
  std::vector<std::uint32_t> words(100, 0);
  const auto model = MarkovModel::train(cfg, words);
  // 4 streams x 2 contexts x 255 probs x 2 bytes, plus small headers.
  const std::size_t probs_bytes = 4 * 2 * 255 * 2;
  EXPECT_GE(model.table_bytes(), probs_bytes);
  EXPECT_LE(model.table_bytes(), probs_bytes + 64);
}

TEST(MarkovCursor, BlockResetsMakeBlocksIdentical) {
  // Two identical blocks must produce identical probability walks when the
  // cursor resets (verified through estimate_bits linearity).
  MarkovConfig cfg;
  cfg.division = StreamDivision::single(8);
  cfg.context_bits = 1;
  Rng rng(11);
  std::vector<std::uint32_t> block;
  for (int i = 0; i < 32; ++i) block.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
  std::vector<std::uint32_t> doubled = block;
  doubled.insert(doubled.end(), block.begin(), block.end());
  const auto model = MarkovModel::train(cfg, doubled, block.size());
  const double one = model.estimate_bits(block, block.size());
  const double two = model.estimate_bits(doubled, block.size());
  EXPECT_NEAR(two, 2 * one, 1e-9);
}

TEST(MarkovModel, RejectsBadContextBits) {
  MarkovConfig cfg;
  cfg.division = StreamDivision::single(8);
  cfg.context_bits = 9;
  std::vector<std::uint32_t> words(10, 0);
  EXPECT_THROW(MarkovModel::train(cfg, words), ConfigError);
}

}  // namespace
}  // namespace ccomp::coding
