#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>

namespace ccomp::obs {
namespace {

// Fixed capacities: shards are plain arrays so the write path never
// allocates, resizes, or takes a lock. Exceeding either limit throws at
// registration time (a programming error, not a runtime condition).
constexpr std::size_t kMaxMetrics = 512;
constexpr std::size_t kMaxSlots = 8192;
constexpr std::size_t kMaxGauges = 128;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::uint32_t first_slot = 0;  // counters/histograms: shard slot range
  std::uint32_t slot_count = 0;  // histogram: buckets(+Inf incl.) + 1 sum slot
  std::uint32_t gauge_index = 0;
  std::vector<std::uint64_t> bounds;
};

constexpr std::uint64_t kDefaultLatencyBoundsNs[] = {
    250,        500,        1'000,      2'500,      5'000,      10'000,
    25'000,     50'000,     100'000,    250'000,    500'000,    1'000'000,
    2'500'000,  5'000'000,  10'000'000, 50'000'000,
};

}  // namespace

/// One thread's slice of every counter/histogram. Owned by a thread_local;
/// writers use relaxed atomic adds on slots nobody else writes, readers sum
/// concurrently. Attach/detach bracket the owning thread's lifetime.
struct Registry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
};

struct Registry::Impl {
  mutable std::mutex mutex;  // registration, shard list, snapshot
  std::array<MetricInfo, kMaxMetrics> metrics;
  std::atomic<std::uint32_t> metric_count{0};
  std::uint32_t next_slot = 0;
  std::uint32_t gauge_count = 0;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::vector<Shard*> shards;
  std::array<std::uint64_t, kMaxSlots> retired{};  // folded-in exited threads

  std::uint32_t find_locked(std::string_view name) const {
    const std::uint32_t n = metric_count.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i)
      if (metrics[i].name == name) return i;
    return kMaxMetrics;
  }
};

namespace {

Registry::Shard& local_shard() {
  // The owner struct (not the shard) is thread_local so the destructor can
  // fold this thread's totals into the retired accumulator exactly once.
  struct Owner {
    Registry::Shard shard;
    Owner() { Registry::instance().attach_(&shard); }
    ~Owner() { Registry::instance().detach_(&shard); }
  };
  thread_local Owner owner;
  return owner.shard;
}

}  // namespace

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  // Leaky: outlives every thread_local shard owner and atexit exporter.
  static Registry* registry = new Registry;
  return *registry;
}

std::uint32_t Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint32_t existing = impl_->find_locked(name);
  if (existing != kMaxMetrics) {
    if (impl_->metrics[existing].kind != Kind::kCounter)
      throw std::logic_error("obs: metric '" + std::string(name) + "' re-registered as counter");
    return existing;
  }
  const std::uint32_t id = impl_->metric_count.load(std::memory_order_relaxed);
  if (id >= kMaxMetrics || impl_->next_slot + 1 > kMaxSlots)
    throw std::logic_error("obs: metric capacity exhausted");
  MetricInfo& m = impl_->metrics[id];
  m.name = std::string(name);
  m.help = std::string(help);
  m.kind = Kind::kCounter;
  m.first_slot = impl_->next_slot;
  m.slot_count = 1;
  impl_->next_slot += 1;
  impl_->metric_count.store(id + 1, std::memory_order_release);
  return id;
}

std::uint32_t Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint32_t existing = impl_->find_locked(name);
  if (existing != kMaxMetrics) {
    if (impl_->metrics[existing].kind != Kind::kGauge)
      throw std::logic_error("obs: metric '" + std::string(name) + "' re-registered as gauge");
    return existing;
  }
  const std::uint32_t id = impl_->metric_count.load(std::memory_order_relaxed);
  if (id >= kMaxMetrics || impl_->gauge_count >= kMaxGauges)
    throw std::logic_error("obs: gauge capacity exhausted");
  MetricInfo& m = impl_->metrics[id];
  m.name = std::string(name);
  m.help = std::string(help);
  m.kind = Kind::kGauge;
  m.gauge_index = impl_->gauge_count++;
  impl_->metric_count.store(id + 1, std::memory_order_release);
  return id;
}

std::uint32_t Registry::histogram(std::string_view name, std::span<const std::uint64_t> bounds,
                                  std::string_view help) {
  if (bounds.empty()) bounds = default_latency_bounds_ns();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint32_t existing = impl_->find_locked(name);
  if (existing != kMaxMetrics) {
    if (impl_->metrics[existing].kind != Kind::kHistogram)
      throw std::logic_error("obs: metric '" + std::string(name) + "' re-registered as histogram");
    return existing;
  }
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
    throw std::logic_error("obs: histogram bounds must be strictly increasing");
  // bounds.size() finite buckets + one +Inf bucket + one sum slot.
  const std::uint32_t slots = static_cast<std::uint32_t>(bounds.size()) + 2;
  const std::uint32_t id = impl_->metric_count.load(std::memory_order_relaxed);
  if (id >= kMaxMetrics || impl_->next_slot + slots > kMaxSlots)
    throw std::logic_error("obs: metric capacity exhausted");
  MetricInfo& m = impl_->metrics[id];
  m.name = std::string(name);
  m.help = std::string(help);
  m.kind = Kind::kHistogram;
  m.first_slot = impl_->next_slot;
  m.slot_count = slots;
  m.bounds.assign(bounds.begin(), bounds.end());
  impl_->next_slot += slots;
  impl_->metric_count.store(id + 1, std::memory_order_release);
  return id;
}

void Registry::add(std::uint32_t counter_id, std::uint64_t n) {
  const MetricInfo& m = impl_->metrics[counter_id];
  local_shard().slots[m.first_slot].fetch_add(n, std::memory_order_relaxed);
}

void Registry::gauge_set(std::uint32_t gauge_id, std::int64_t value) {
  const MetricInfo& m = impl_->metrics[gauge_id];
  impl_->gauges[m.gauge_index].store(value, std::memory_order_relaxed);
}

void Registry::gauge_add(std::uint32_t gauge_id, std::int64_t delta) {
  const MetricInfo& m = impl_->metrics[gauge_id];
  impl_->gauges[m.gauge_index].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::record(std::uint32_t histogram_id, std::uint64_t value) {
  const MetricInfo& m = impl_->metrics[histogram_id];
  const auto it = std::lower_bound(m.bounds.begin(), m.bounds.end(), value);
  const std::uint32_t bucket = static_cast<std::uint32_t>(it - m.bounds.begin());
  Shard& shard = local_shard();
  shard.slots[m.first_slot + bucket].fetch_add(1, std::memory_order_relaxed);
  shard.slots[m.first_slot + m.slot_count - 1].fetch_add(value, std::memory_order_relaxed);
}

void Registry::attach_(Shard* shard) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->shards.push_back(shard);
}

void Registry::detach_(Shard* shard) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < kMaxSlots; ++i)
    impl_->retired[i] += shard->slots[i].load(std::memory_order_relaxed);
  impl_->shards.erase(std::remove(impl_->shards.begin(), impl_->shards.end(), shard),
                      impl_->shards.end());
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::array<std::uint64_t, kMaxSlots> totals = impl_->retired;
  for (const Shard* shard : impl_->shards)
    for (std::size_t i = 0; i < impl_->next_slot; ++i)
      totals[i] += shard->slots[i].load(std::memory_order_relaxed);

  Snapshot snap;
  const std::uint32_t n = impl_->metric_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const MetricInfo& m = impl_->metrics[i];
    switch (m.kind) {
      case Kind::kCounter:
        snap.counters.push_back({m.name, m.help, totals[m.first_slot]});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {m.name, m.help, impl_->gauges[m.gauge_index].load(std::memory_order_relaxed)});
        break;
      case Kind::kHistogram: {
        HistogramValue h;
        h.name = m.name;
        h.help = m.help;
        h.bounds = m.bounds;
        h.bucket_counts.assign(totals.begin() + m.first_slot,
                               totals.begin() + m.first_slot + m.slot_count - 1);
        for (const std::uint64_t c : h.bucket_counts) h.count += c;
        h.sum = totals[m.first_slot + m.slot_count - 1];
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->retired.fill(0);
  for (Shard* shard : impl_->shards)
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  for (auto& gauge : impl_->gauges) gauge.store(0, std::memory_order_relaxed);
}

std::span<const std::uint64_t> Registry::default_latency_bounds_ns() {
  return kDefaultLatencyBoundsNs;
}

}  // namespace ccomp::obs
