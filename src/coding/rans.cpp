#include "coding/rans.h"

#include <algorithm>

#include "obs/obs.h"

namespace ccomp::coding {

void RansEncoder::finish() {
  // Backward pass: the last bit recorded is the first one the decoder
  // resolves, so walk pending_ in reverse, emitting renorm bytes
  // little-end-first and reversing the whole buffer at the end.
  std::uint32_t x = kRansLowerBound;
  for (std::size_t i = pending_.size(); i-- > 0;) {
    const std::uint32_t rec = pending_[i];
    const Prob p0 = static_cast<Prob>(rec & 0xFFFFu);
    const unsigned bit = (rec >> 16) & 1u;
    const std::uint32_t freq = bit ? 0x10000u - p0 : p0;
    const std::uint32_t start = bit ? p0 : 0;
    // Emit while the transform would overflow the interval — the renorm
    // bound is (L/M)·b·freq = freq << 16 for I = [2^24, 2^32). The
    // decoder's refill loop replays these bytes in mirror order.
    while (x >= (freq << 16)) {
      out_.push_back(static_cast<std::uint8_t>(x));
      x >>= 8;
      ++renorms_;
    }
    x = ((x / freq) << kProbBits) + (x % freq) + start;
  }
  // Flush the final state (4 bytes: x < 2^32). After the reverse these are
  // the stream's first bytes, MSB first — what Core::attach reads.
  out_.push_back(static_cast<std::uint8_t>(x));
  out_.push_back(static_cast<std::uint8_t>(x >> 8));
  out_.push_back(static_cast<std::uint8_t>(x >> 16));
  out_.push_back(static_cast<std::uint8_t>(x >> 24));
  std::reverse(out_.begin(), out_.end());
  pending_.clear();
  CCOMP_COUNT("coder.rans.encode_renorms", renorms_);
  renorms_ = 0;
}

std::vector<std::uint8_t> RansEncoder::take() {
  auto bytes = std::move(out_);
  out_.clear();
  // Unlike the range coder there is nothing to strip: every byte of a rANS
  // stream is load-bearing (the decoder consumes all of them exactly).
  return bytes;
}

RansDecoder::~RansDecoder() { flush_metrics(); }

void RansDecoder::flush_metrics() {
  if (renorms_ == 0) return;
  CCOMP_COUNT("coder.rans.decode_renorms", renorms_);
  renorms_ = 0;
}

void RansDecoder::reset(std::span<const std::uint8_t> data) {
  flush_metrics();
  data_ = data;
  const Core c = attach(data);
  pos_ = c.pos;
  x_ = c.x;
}

}  // namespace ccomp::coding
