#include "isa/mips/mips.h"

#include <array>

namespace ccomp::mips {
namespace {

constexpr std::uint32_t kPrimaryMask = 0x3Fu << 26;
constexpr std::uint32_t kRsField = 0x1Fu << kShiftRs;
constexpr std::uint32_t kRtField = 0x1Fu << kShiftRt;
constexpr std::uint32_t kRdField = 0x1Fu << kShiftRd;
constexpr std::uint32_t kShamtField = 0x1Fu << kShiftShamt;
constexpr std::uint32_t kFunctField = 0x3Fu;

constexpr std::uint32_t special(unsigned funct) { return funct; }
constexpr std::uint32_t itype(unsigned primary) { return static_cast<std::uint32_t>(primary) << 26; }
constexpr std::uint32_t regimm(unsigned code) { return (1u << 26) | (code << kShiftRt); }
constexpr std::uint32_t cop1(unsigned fmt, unsigned funct) {
  return (0x11u << 26) | (fmt << kShiftRs) | funct;
}

// Operand-shift shorthands (assembly order matters for readable disassembly
// and for the SADC register stream layout; the round trip does not depend on
// the order as long as encode/decode agree).
constexpr std::uint8_t RS = kShiftRs, RT = kShiftRt, RD = kShiftRd, SA = kShiftShamt;

struct Row {
  const char* mnemonic;
  std::uint32_t match;
  std::uint32_t mask;
  std::uint8_t reg_count;
  std::uint8_t reg_shifts[4];
  bool imm16;
  bool imm26;
  bool branch;
  bool jump;
  bool mem = false;
};

constexpr Row R3(const char* m, unsigned funct) {  // op rd, rs, rt
  return {m, special(funct), kPrimaryMask | kShamtField | kFunctField, 3, {RD, RS, RT, 0},
          false, false, false, false};
}
constexpr Row SHIFT(const char* m, unsigned funct) {  // op rd, rt, shamt
  return {m, special(funct), kPrimaryMask | kRsField | kFunctField, 3, {RD, RT, SA, 0},
          false, false, false, false};
}
constexpr Row SHIFTV(const char* m, unsigned funct) {  // op rd, rt, rs
  return {m, special(funct), kPrimaryMask | kShamtField | kFunctField, 3, {RD, RT, RS, 0},
          false, false, false, false};
}
constexpr Row MULDIV(const char* m, unsigned funct) {  // op rs, rt
  return {m, special(funct), kPrimaryMask | kRdField | kShamtField | kFunctField, 2,
          {RS, RT, 0, 0}, false, false, false, false};
}
constexpr Row IMM(const char* m, unsigned primary) {  // op rt, rs, imm
  return {m, itype(primary), kPrimaryMask, 2, {RT, RS, 0, 0}, true, false, false, false};
}
constexpr Row MEM(const char* m, unsigned primary) {  // op rt, imm(rs)
  return {m, itype(primary), kPrimaryMask, 2, {RT, RS, 0, 0}, true, false, false, false, true};
}
constexpr Row BR2(const char* m, unsigned primary) {  // op rs, rt, off
  return {m, itype(primary), kPrimaryMask, 2, {RS, RT, 0, 0}, true, false, true, false};
}
constexpr Row BR1(const char* m, unsigned primary) {  // op rs, off (rt fixed 0)
  return {m, itype(primary), kPrimaryMask | kRtField, 1, {RS, 0, 0, 0}, true, false, true, false};
}
constexpr Row RI(const char* m, unsigned code) {  // regimm: op rs, off
  return {m, regimm(code), kPrimaryMask | kRtField, 1, {RS, 0, 0, 0}, true, false, true, false};
}
constexpr Row FP3(const char* m, unsigned fmt, unsigned funct) {  // op fd, fs, ft
  return {m, cop1(fmt, funct), kPrimaryMask | kRsField | kFunctField, 3, {SA, RD, RT, 0},
          false, false, false, false};
}
constexpr Row FP2(const char* m, unsigned fmt, unsigned funct) {  // op fd, fs (ft fixed)
  return {m, cop1(fmt, funct), kPrimaryMask | kRsField | kRtField | kFunctField, 2,
          {SA, RD, 0, 0}, false, false, false, false};
}
constexpr Row FPCMP(const char* m, unsigned fmt, unsigned funct) {  // op fs, ft (fd/cc fixed)
  return {m, cop1(fmt, funct), kPrimaryMask | kRsField | kShamtField | kFunctField, 2,
          {RD, RT, 0, 0}, false, false, false, false};
}

constexpr std::array<Row, 91> kTable = {{
    // --- SPECIAL (R-format) ---
    SHIFT("sll", 0x00),
    SHIFT("srl", 0x02),
    SHIFT("sra", 0x03),
    SHIFTV("sllv", 0x04),
    SHIFTV("srlv", 0x06),
    SHIFTV("srav", 0x07),
    {"jr", special(0x08), kPrimaryMask | kRtField | kRdField | kShamtField | kFunctField, 1,
     {RS, 0, 0, 0}, false, false, false, false},
    {"jalr", special(0x09), kPrimaryMask | kRtField | kShamtField | kFunctField, 2,
     {RD, RS, 0, 0}, false, false, false, false},
    {"syscall", special(0x0c), 0xFFFFFFFFu, 0, {0, 0, 0, 0}, false, false, false, false},
    {"break", special(0x0d), 0xFFFFFFFFu, 0, {0, 0, 0, 0}, false, false, false, false},
    {"mfhi", special(0x10), kPrimaryMask | kRsField | kRtField | kShamtField | kFunctField, 1,
     {RD, 0, 0, 0}, false, false, false, false},
    {"mthi", special(0x11), kPrimaryMask | kRtField | kRdField | kShamtField | kFunctField, 1,
     {RS, 0, 0, 0}, false, false, false, false},
    {"mflo", special(0x12), kPrimaryMask | kRsField | kRtField | kShamtField | kFunctField, 1,
     {RD, 0, 0, 0}, false, false, false, false},
    {"mtlo", special(0x13), kPrimaryMask | kRtField | kRdField | kShamtField | kFunctField, 1,
     {RS, 0, 0, 0}, false, false, false, false},
    MULDIV("mult", 0x18),
    MULDIV("multu", 0x19),
    MULDIV("div", 0x1a),
    MULDIV("divu", 0x1b),
    R3("add", 0x20),
    R3("addu", 0x21),
    R3("sub", 0x22),
    R3("subu", 0x23),
    R3("and", 0x24),
    R3("or", 0x25),
    R3("xor", 0x26),
    R3("nor", 0x27),
    R3("slt", 0x2a),
    R3("sltu", 0x2b),
    // --- REGIMM ---
    RI("bltz", 0x00),
    RI("bgez", 0x01),
    RI("bltzal", 0x10),
    RI("bgezal", 0x11),
    // --- J-format ---
    {"j", itype(0x02), kPrimaryMask, 0, {0, 0, 0, 0}, false, true, false, true},
    {"jal", itype(0x03), kPrimaryMask, 0, {0, 0, 0, 0}, false, true, false, true},
    // --- I-format branches ---
    BR2("beq", 0x04),
    BR2("bne", 0x05),
    BR1("blez", 0x06),
    BR1("bgtz", 0x07),
    // --- I-format ALU ---
    IMM("addi", 0x08),
    IMM("addiu", 0x09),
    IMM("slti", 0x0a),
    IMM("sltiu", 0x0b),
    IMM("andi", 0x0c),
    IMM("ori", 0x0d),
    IMM("xori", 0x0e),
    {"lui", itype(0x0f), kPrimaryMask | kRsField, 1, {RT, 0, 0, 0}, true, false, false, false},
    // --- loads/stores ---
    MEM("lb", 0x20),
    MEM("lh", 0x21),
    MEM("lwl", 0x22),
    MEM("lw", 0x23),
    MEM("lbu", 0x24),
    MEM("lhu", 0x25),
    MEM("lwr", 0x26),
    MEM("sb", 0x28),
    MEM("sh", 0x29),
    MEM("swl", 0x2a),
    MEM("sw", 0x2b),
    MEM("swr", 0x2e),
    MEM("lwc1", 0x31),
    MEM("ldc1", 0x35),
    MEM("swc1", 0x39),
    MEM("sdc1", 0x3d),
    // --- COP1 transfers/branches ---
    {"mfc1", cop1(0x00, 0), kPrimaryMask | kRsField | kShamtField | kFunctField, 2,
     {RT, RD, 0, 0}, false, false, false, false},
    {"mtc1", cop1(0x04, 0), kPrimaryMask | kRsField | kShamtField | kFunctField, 2,
     {RT, RD, 0, 0}, false, false, false, false},
    {"bc1f", (0x11u << 26) | (0x08u << kShiftRs) | (0x00u << kShiftRt), 0xFFFF0000u, 0,
     {0, 0, 0, 0}, true, false, true, false},
    {"bc1t", (0x11u << 26) | (0x08u << kShiftRs) | (0x01u << kShiftRt), 0xFFFF0000u, 0,
     {0, 0, 0, 0}, true, false, true, false},
    // --- COP1 single-precision arithmetic ---
    FP3("add.s", 0x10, 0x00),
    FP3("sub.s", 0x10, 0x01),
    FP3("mul.s", 0x10, 0x02),
    FP3("div.s", 0x10, 0x03),
    FP2("abs.s", 0x10, 0x05),
    FP2("mov.s", 0x10, 0x06),
    FP2("neg.s", 0x10, 0x07),
    FP2("cvt.w.s", 0x10, 0x24),
    FPCMP("c.eq.s", 0x10, 0x32),
    FPCMP("c.lt.s", 0x10, 0x3c),
    FPCMP("c.le.s", 0x10, 0x3e),
    // --- COP1 double-precision arithmetic ---
    FP3("add.d", 0x11, 0x00),
    FP3("sub.d", 0x11, 0x01),
    FP3("mul.d", 0x11, 0x02),
    FP3("div.d", 0x11, 0x03),
    FP2("abs.d", 0x11, 0x05),
    FP2("mov.d", 0x11, 0x06),
    FP2("neg.d", 0x11, 0x07),
    FP2("cvt.d.w", 0x14, 0x21),
    FP2("cvt.s.w", 0x14, 0x20),
    FP2("cvt.s.d", 0x11, 0x20),
    FP2("cvt.d.s", 0x10, 0x21),
    FPCMP("c.eq.d", 0x11, 0x32),
    FPCMP("c.lt.d", 0x11, 0x3c),
    FPCMP("c.le.d", 0x11, 0x3e),
}};

const std::array<Row, kTable.size()>& table() { return kTable; }

// Decode acceleration: rows grouped by primary opcode.
const std::array<std::vector<std::uint16_t>, 64>& rows_by_primary() {
  static const std::array<std::vector<std::uint16_t>, 64> index = [] {
    std::array<std::vector<std::uint16_t>, 64> idx;
    const auto& t = table();
    for (std::size_t i = 0; i < t.size(); ++i)
      idx[(t[i].match >> 26) & 0x3F].push_back(static_cast<std::uint16_t>(i));
    return idx;
  }();
  return index;
}

}  // namespace

std::span<const OpcodeInfo> opcode_table() {
  static const std::vector<OpcodeInfo> infos = [] {
    std::vector<OpcodeInfo> v;
    v.reserve(table().size());
    for (const Row& r : table()) {
      OpcodeInfo info{};
      info.mnemonic = r.mnemonic;
      info.match = r.match;
      info.mask = r.mask;
      info.reg_count = r.reg_count;
      for (int i = 0; i < 4; ++i) info.reg_shifts[i] = r.reg_shifts[i];
      info.has_imm16 = r.imm16;
      info.has_imm26 = r.imm26;
      info.is_branch = r.branch;
      info.is_jump = r.jump;
      info.is_mem = r.mem;
      v.push_back(info);
    }
    return v;
  }();
  return infos;
}

std::size_t opcode_count() { return opcode_table().size(); }

std::optional<Decoded> decode(std::uint32_t word) {
  const auto& rows = rows_by_primary()[(word >> 26) & 0x3F];
  const auto& t = table();
  for (const std::uint16_t i : rows) {
    const Row& r = t[i];
    if ((word & r.mask) != r.match) continue;
    Decoded d;
    d.opcode = i;
    for (unsigned k = 0; k < r.reg_count; ++k)
      d.regs[k] = static_cast<std::uint8_t>((word >> r.reg_shifts[k]) & 0x1F);
    if (r.imm16) d.imm16 = static_cast<std::uint16_t>(word & 0xFFFF);
    if (r.imm26) d.imm26 = word & 0x03FFFFFF;
    return d;
  }
  return std::nullopt;
}

std::uint32_t encode(const Decoded& d) {
  const auto& t = table();
  if (d.opcode >= t.size()) throw ConfigError("opcode token out of range");
  const Row& r = t[d.opcode];
  std::uint32_t word = r.match;
  for (unsigned k = 0; k < r.reg_count; ++k)
    word |= static_cast<std::uint32_t>(d.regs[k] & 0x1F) << r.reg_shifts[k];
  if (r.imm16) word |= d.imm16;
  if (r.imm26) word |= d.imm26 & 0x03FFFFFF;
  return word;
}

OperandLengths operand_lengths(std::uint16_t opcode) {
  const auto& t = table();
  if (opcode >= t.size()) throw ConfigError("opcode token out of range");
  const Row& r = t[opcode];
  return {r.reg_count, r.imm16, r.imm26};
}

std::vector<std::uint8_t> words_to_bytes(std::span<const std::uint32_t> words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (const std::uint32_t w : words)
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
  return bytes;
}

std::vector<std::uint32_t> bytes_to_words(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % 4 != 0) throw ConfigError("MIPS code size must be a multiple of 4");
  std::vector<std::uint32_t> words;
  words.reserve(bytes.size() / 4);
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    std::uint32_t w = 0;
    for (int k = 3; k >= 0; --k) w = (w << 8) | bytes[i + static_cast<std::size_t>(k)];
    words.push_back(w);
  }
  return words;
}

}  // namespace ccomp::mips
