// Ablation T-Q: power-of-1/2 probability quantization (Witten et al.). The
// paper adopts this constraint so the decoder's midpoint unit needs only
// shifts; Witten et al. bound the worst-case efficiency at ~95%. Measure
// the actual compression cost at several maximum shifts.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "isa/mips/mips.h"
#include "samc/samc.h"
#include "workload/mips_gen.h"

int main(int argc, char** argv) {
  using namespace ccomp;
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::JsonReporter json("tab_quant", argc, argv);
  std::printf("Table T-Q: SAMC probability quantization cost (scale=%.2f)\n", scale);

  core::RatioTable table("SAMC ratio: exact vs power-of-1/2 probabilities",
                         {"exact", "shift<=4", "shift<=6", "shift<=8"});

  for (const char* name : {"gcc", "go", "perl", "vortex"}) {
    const workload::Profile p =
        bench::scaled_profile(*workload::find_profile(name), scale);
    const auto code = mips::words_to_bytes(workload::generate_mips(p));
    std::vector<double> row;
    row.push_back(samc::SamcCodec(samc::mips_defaults()).compress(code).sizes().ratio());
    json.add(name, "samc_ratio_exact", row.back(), "ratio");
    for (const unsigned shift : {4u, 6u, 8u}) {
      samc::SamcOptions o = samc::mips_defaults();
      o.markov.quantized = true;
      o.markov.max_shift = shift;
      row.push_back(samc::SamcCodec(o).compress(code).sizes().ratio());
      json.add(name, "samc_ratio_shift" + std::to_string(shift), row.back(), "ratio");
    }
    table.add_row(name, row);
    std::fflush(stdout);
  }
  table.print();

  const auto means = table.column_means();
  std::printf("\nEfficiency at shift<=8: %.1f%% of exact (Witten et al. worst case ~95%%)\n",
              100.0 * means[0] / means[3]);
  return 0;
}
