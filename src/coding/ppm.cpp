#include "coding/ppm.h"

#include <cmath>

#include "coding/rangecoder.h"
#include "support/error.h"

namespace ccomp::coding {
namespace {

// Finite-context model bank with adaptive logistic mixing.
//
// PPM proper blends predictions of orders 0..N through escape symbols; the
// modern equivalent (and what we implement) mixes the per-order predictions
// in the logit domain with adaptively learned weights. Each order k keeps a
// hashed table of adaptive bit probabilities keyed by (last k bytes,
// bit-prefix of the current byte).
class ContextMixModel {
 public:
  explicit ContextMixModel(const PpmOptions& options) : options_(options) {
    if (options.order > 8) throw ConfigError("PPM order must be <= 8");
    if (options.hash_bits < 8 || options.hash_bits > 28)
      throw ConfigError("PPM hash_bits must be in [8,28]");
    if (options.adapt_shift == 0 || options.adapt_shift > 12)
      throw ConfigError("PPM adapt_shift must be in [1,12]");
    const std::size_t model_count = options.order + 1;
    tables_.assign(model_count,
                   std::vector<Prob>(std::size_t{1} << options.hash_bits, kProbHalf));
    weights_.assign(model_count, 0.3);
  }

  /// Mixed probability that the next bit is 0, given the byte history and
  /// the binary-tree node of the current byte. Also primes the state used
  /// by update().
  Prob predict(std::uint64_t history, unsigned node) {
    double t = 0.0;
    for (std::size_t k = 0; k < tables_.size(); ++k) {
      const std::uint64_t mask =
          k >= 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * k)) - 1);
      std::uint64_t h = (history & mask) * 0x9E3779B97F4A7C15ull;
      h ^= (static_cast<std::uint64_t>(node) + (k << 9)) * 0xC2B2AE3D27D4EB4Full;
      h ^= h >> 29;
      slots_[k] = &tables_[k][h & ((std::uint64_t{1} << options_.hash_bits) - 1)];
      const double p1 = 1.0 - static_cast<double>(*slots_[k]) / 65536.0;
      stretched_[k] = stretch(p1);
      t += weights_[k] * stretched_[k];
    }
    mixed_p1_ = squash(t);
    return clamp_prob(static_cast<std::uint32_t>((1.0 - mixed_p1_) * 65536.0 + 0.5));
  }

  /// Adapt every order's slot and the mixer weights toward the seen bit.
  /// Must follow the predict() for the same position.
  void update(unsigned bit) {
    const double err = static_cast<double>(bit) - mixed_p1_;
    for (std::size_t k = 0; k < tables_.size(); ++k) {
      weights_[k] += kLearningRate * err * stretched_[k];
      Prob& p = *slots_[k];
      if (bit == 0) {
        p = static_cast<Prob>(p + ((0x10000u - p) >> options_.adapt_shift));
      } else {
        p = static_cast<Prob>(p - (p >> options_.adapt_shift));
      }
      if (p == 0) p = 1;
    }
  }

  std::size_t model_count() const { return tables_.size(); }

 private:
  static constexpr double kLearningRate = 0.02;
  static double stretch(double p) {
    if (p < 1e-6) p = 1e-6;
    if (p > 1.0 - 1e-6) p = 1.0 - 1e-6;
    return std::log(p / (1.0 - p));
  }
  static double squash(double t) {
    if (t > 30.0) return 1.0 - 1e-9;
    if (t < -30.0) return 1e-9;
    return 1.0 / (1.0 + std::exp(-t));
  }

  PpmOptions options_;
  std::vector<std::vector<Prob>> tables_;  // one per order 0..order
  std::vector<double> weights_;
  Prob* slots_[9] = {};
  double stretched_[9] = {};
  double mixed_p1_ = 0.5;
};

}  // namespace

std::size_t ppm_model_bytes(const PpmOptions& options) {
  return (options.order + 1) * ((std::size_t{1} << options.hash_bits) * sizeof(Prob));
}

std::vector<std::uint8_t> ppm_compress(std::span<const std::uint8_t> input,
                                       const PpmOptions& options) {
  ContextMixModel model(options);
  RangeEncoder encoder;
  std::uint64_t history = 0;
  for (const std::uint8_t byte : input) {
    unsigned node = 1;
    for (int b = 7; b >= 0; --b) {
      const unsigned bit = (byte >> b) & 1u;
      encoder.encode_bit(bit, model.predict(history, node));
      model.update(bit);
      node = 2 * node + bit;
    }
    history = (history << 8) | byte;
  }
  encoder.finish();
  return encoder.take();
}

std::vector<std::uint8_t> ppm_decompress(std::span<const std::uint8_t> compressed,
                                         std::size_t original_size,
                                         const PpmOptions& options) {
  ContextMixModel model(options);
  RangeDecoder decoder(compressed);
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  std::uint64_t history = 0;
  for (std::size_t i = 0; i < original_size; ++i) {
    unsigned node = 1;
    for (int b = 7; b >= 0; --b) {
      const unsigned bit = decoder.decode_bit(model.predict(history, node));
      model.update(bit);
      node = 2 * node + bit;
    }
    const std::uint8_t byte = static_cast<std::uint8_t>(node & 0xFF);
    out.push_back(byte);
    history = (history << 8) | byte;
  }
  return out;
}

}  // namespace ccomp::coding
