#include "support/serialize.h"

namespace ccomp {

void ByteSink::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteSink::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteSink::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteSink::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteSink::bytes(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteSink::sized_bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  bytes(data);
}

std::uint8_t ByteSource::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteSource::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteSource::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteSource::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::uint64_t ByteSource::varint() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64) throw CorruptDataError("varint too long");
    // The 10th byte supplies bits 63.. — anything beyond bit 63 would be
    // silently dropped by the shift, so reject it as malformed.
    if (shift == 63 && (b & 0x7f) > 1) throw CorruptDataError("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::span<const std::uint8_t> ByteSource::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> ByteSource::sized_bytes() {
  const std::uint64_t n = varint();
  // Check against the 64-bit length before narrowing: on a 32-bit size_t the
  // cast could otherwise wrap a huge length into a small in-bounds read.
  if (n > remaining()) throw CorruptDataError("container truncated");
  auto view = bytes(static_cast<std::size_t>(n));
  return {view.begin(), view.end()};
}

std::span<const std::uint8_t> ByteSource::window(std::size_t begin, std::size_t end) const {
  if (begin > end || end > data_.size()) throw CorruptDataError("bad window bounds");
  return data_.subspan(begin, end - begin);
}

}  // namespace ccomp
