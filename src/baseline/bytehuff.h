// Byte-based Huffman coding of program text — the Kozuch & Wolfe baseline
// the paper compares against (Fig. 9). One canonical Huffman code over the
// byte alphabet is trained on the whole program; every cache block is then
// encoded independently (a prefix code is stateless, so block random access
// only needs the LAT). The paper reports ~0.73 on MIPS for this scheme and
// shows SAMC/SADC beating it because a single byte code ignores both the
// field structure inside instruction words and inter-instruction
// dependencies.
#pragma once

#include <memory>

#include "core/codec.h"

namespace ccomp::baseline {

struct ByteHuffmanOptions {
  std::uint32_t block_size = 32;
  core::IsaKind isa = core::IsaKind::kRawBytes;
};

class ByteHuffmanCodec final : public core::BlockCodec {
 public:
  explicit ByteHuffmanCodec(ByteHuffmanOptions options = {});

  std::string_view name() const override { return "Huffman"; }
  core::CompressedImage compress(std::span<const std::uint8_t> code) const override;
  std::unique_ptr<core::BlockDecompressor> make_decompressor(
      const core::CompressedImage& image) const override;

 private:
  ByteHuffmanOptions options_;
};

}  // namespace ccomp::baseline
