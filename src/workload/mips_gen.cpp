#include "workload/mips_gen.h"

#include <string_view>
#include <unordered_map>

#include "isa/mips/mips.h"
#include "support/rng.h"

namespace ccomp::workload {
namespace {

using mips::Decoded;

class OpcodeIndex {
 public:
  OpcodeIndex() {
    const auto table = mips::opcode_table();
    for (std::size_t i = 0; i < table.size(); ++i)
      map_.emplace(table[i].mnemonic, static_cast<std::uint16_t>(i));
  }
  std::uint16_t operator[](std::string_view mnemonic) const {
    const auto it = map_.find(mnemonic);
    if (it == map_.end()) throw ConfigError("unknown MIPS mnemonic in generator");
    return it->second;
  }

 private:
  std::unordered_map<std::string_view, std::uint16_t> map_;
};

const OpcodeIndex& ops() {
  static const OpcodeIndex index;
  return index;
}

class MipsGenerator {
 public:
  explicit MipsGenerator(const Profile& prof)
      : prof_(prof), rng_(prof.seed * 0x9E3779B97F4A7C15ull + 0xC0DEC0DEu) {}

  MipsProgram run() {
    const std::size_t target_words = static_cast<std::size_t>(prof_.code_kb) * 1024 / 4;
    while (out_.words.size() < target_words) emit_function();
    out_.words.resize(target_words);  // trim the final function's tail
    return std::move(out_);
  }

 private:
  // --- register pools -------------------------------------------------
  static constexpr std::uint8_t kTemps[10] = {8, 9, 10, 11, 12, 13, 14, 15, 24, 25};
  static constexpr std::uint8_t kSaved[8] = {16, 17, 18, 19, 20, 21, 22, 23};
  static constexpr std::uint8_t kArgs[4] = {4, 5, 6, 7};
  static constexpr std::uint8_t kSp = 29, kRa = 31, kZero = 0, kAt = 1, kV0 = 2;

  std::uint8_t temp() { return kTemps[rng_.pick_skewed(10, prof_.reg_decay)]; }
  std::uint8_t saved() { return kSaved[rng_.pick_skewed(8, prof_.reg_decay)]; }
  std::uint8_t arg() { return kArgs[rng_.pick_skewed(4, prof_.reg_decay)]; }
  std::uint8_t fpreg() { return static_cast<std::uint8_t>(2 * rng_.pick_skewed(16, prof_.reg_decay)); }
  std::uint8_t base_reg() {
    // Bases are mostly sp, then saved regs, then args/gp.
    const double r = rng_.next_double();
    if (r < 0.55) return kSp;
    if (r < 0.80) return saved();
    if (r < 0.92) return arg();
    return 28;  // gp
  }

  // --- immediates ------------------------------------------------------
  std::uint16_t stack_offset() {
    // Multiples of 4 within the frame; small offsets dominate.
    return static_cast<std::uint16_t>(4 * rng_.pick_skewed(frame_ / 4, 0.85));
  }
  std::uint16_t small_imm() {
    if (rng_.chance(prof_.imm_small_bias)) {
      static constexpr std::uint16_t kCommon[] = {0, 1, 2, 4, 8, 3, 16, 255, 0xFFFF, 32, 7, 12};
      return kCommon[rng_.pick_skewed(12, 0.7)];
    }
    return static_cast<std::uint16_t>(rng_.next_below(1024));
  }
  std::uint16_t lui_hi() {
    // Data-segment style constants: a handful of distinct high halves.
    static constexpr std::uint16_t kHis[] = {0x1000, 0x1001, 0x1002, 0x1004, 0x0FFF, 0x1008};
    return kHis[rng_.pick_skewed(6, 0.6)];
  }

  // --- emission helpers -------------------------------------------------
  void emit(std::uint16_t opcode, std::uint8_t r0 = 0, std::uint8_t r1 = 0, std::uint8_t r2 = 0,
            std::uint16_t imm16 = 0, std::uint32_t imm26 = 0) {
    Decoded d;
    d.opcode = opcode;
    d.regs[0] = r0;
    d.regs[1] = r1;
    d.regs[2] = r2;
    d.imm16 = imm16;
    d.imm26 = imm26;
    out_.words.push_back(mips::encode(d));
  }
  void emit(std::string_view mn, std::uint8_t r0 = 0, std::uint8_t r1 = 0, std::uint8_t r2 = 0,
            std::uint16_t imm16 = 0, std::uint32_t imm26 = 0) {
    emit(ops()[mn], r0, r1, r2, imm16, imm26);
  }

  std::uint16_t branch_offset(int max_mag = 24) {
    const int off = static_cast<int>(rng_.next_in_range(-max_mag, max_mag));
    return static_cast<std::uint16_t>(off == 0 ? 2 : off);
  }

  // --- idioms ------------------------------------------------------------
  void idiom_load_op_store() {
    const std::uint8_t t1 = temp(), t2 = temp(), b = base_reg();
    emit("lw", t1, b, 0, stack_offset());
    switch (rng_.next_below(4)) {
      case 0: emit("addu", t1, t1, t2); break;
      case 1: emit("addiu", t1, t1, 0, small_imm()); break;
      case 2: emit("and", t1, t1, t2); break;
      default: emit("or", t1, t1, t2); break;
    }
    if (rng_.chance(0.7)) emit("sw", t1, b, 0, stack_offset());
  }

  void idiom_alu_chain() {
    const unsigned n = 2 + static_cast<unsigned>(rng_.next_below(3));
    static constexpr const char* kOps[] = {"addu", "subu", "and", "or", "xor", "slt", "sltu"};
    for (unsigned i = 0; i < n; ++i)
      emit(kOps[rng_.pick_skewed(7, 0.6)], temp(), temp(), temp());
  }

  void idiom_const() {
    const std::uint8_t t = temp();
    emit("lui", t, 0, 0, lui_hi());
    if (rng_.chance(0.8)) emit("ori", t, t, 0, small_imm());
  }

  void idiom_shift() {
    // Shift amounts are overwhelmingly powers of two in compiled code.
    const auto shamt = static_cast<std::uint8_t>(1u << rng_.next_below(5));
    emit(rng_.chance(0.5) ? "sll" : "srl", temp(), temp(), shamt);
  }

  void idiom_byte_mem() {
    const std::uint8_t t = temp(), b = base_reg();
    emit(rng_.chance(0.6) ? "lbu" : "lb", t, b, 0, small_imm());
    if (rng_.chance(0.5)) emit("sb", t, b, 0, small_imm());
  }

  void idiom_compare_branch() {
    if (rng_.chance(0.5)) {
      emit("slt", kAt, temp(), temp());
      emit(rng_.chance(0.5) ? "bne" : "beq", kAt, kZero, 0, branch_offset());
    } else {
      emit(rng_.chance(0.5) ? "bne" : "beq", temp(), kZero, 0, branch_offset());
    }
    emit("sll", 0, 0, 0);  // delay slot nop
  }

  void idiom_call() {
    if (out_.function_starts.size() < 2) return;
    if (rng_.chance(0.5)) emit("addiu", arg(), kSp, 0, stack_offset());
    // Call a previously generated function, skewed toward recent ones.
    const std::size_t n = out_.function_starts.size() - 1;  // exclude current
    const std::size_t pick = n - 1 - rng_.pick_skewed(n, 0.9);
    const std::uint32_t addr = kMipsTextBase + out_.function_starts[pick] * 4;
    emit("jal", 0, 0, 0, 0, (addr >> 2) & 0x03FFFFFFu);
    emit("sll", 0, 0, 0);  // delay slot
    if (rng_.chance(0.4)) emit("addu", temp(), kV0, kZero);
  }

  void idiom_fp() {
    const std::uint8_t f1 = fpreg(), f2 = fpreg(), f3 = fpreg(), b = base_reg();
    const bool dbl = rng_.chance(0.5);
    if (dbl) {
      emit("ldc1", f1, b, 0, stack_offset());
      emit("ldc1", f2, b, 0, stack_offset());
      emit(rng_.chance(0.5) ? "mul.d" : "add.d", f3, f1, f2);
      if (rng_.chance(0.6)) emit("add.d", f3, f3, f1);
      emit("sdc1", f3, b, 0, stack_offset());
    } else {
      emit("lwc1", f1, b, 0, stack_offset());
      emit("lwc1", f2, b, 0, stack_offset());
      emit(rng_.chance(0.5) ? "mul.s" : "add.s", f3, f1, f2);
      if (rng_.chance(0.6)) emit("add.s", f3, f3, f1);
      emit("swc1", f3, b, 0, stack_offset());
    }
  }

  void idiom_loop_counter() {
    const std::uint8_t c = saved();
    emit("addiu", c, c, 0, 1);
    emit("slt", kAt, c, temp());
    emit("bne", kAt, kZero, 0, static_cast<std::uint16_t>(-static_cast<int>(
        3 + rng_.next_below(12))));
    emit("sll", 0, 0, 0);  // delay slot
  }

  // --- function structure ------------------------------------------------
  void emit_function() {
    out_.function_starts.push_back(static_cast<std::uint32_t>(out_.words.size()));

    // Near-clone of an earlier function (compilers repeat themselves).
    if (out_.function_starts.size() > 2 && rng_.chance(prof_.clone_rate)) {
      emit_clone();
      return;
    }

    frame_ = static_cast<std::uint16_t>(8 * (2 + rng_.next_below(14)));  // 16..120
    // Prologue.
    emit("addiu", kSp, kSp, 0, static_cast<std::uint16_t>(-frame_));
    emit("sw", kRa, kSp, 0, static_cast<std::uint16_t>(frame_ - 4));
    const unsigned saved_count = static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < saved_count; ++i)
      emit("sw", kSaved[i], kSp, 0, static_cast<std::uint16_t>(frame_ - 8 - 4 * i));

    // Body.
    const unsigned blocks = 3 + static_cast<unsigned>(rng_.next_below(24));
    for (unsigned bi = 0; bi < blocks; ++bi) {
      const double weights[] = {
          2.0,                       // load-op-store
          1.6,                       // alu chain
          0.9,                       // const
          0.5,                       // shift
          0.6,                       // byte mem
          prof_.branch_density,      // compare-branch
          prof_.call_density,        // call
          prof_.fp_fraction * 4.0,   // fp block
          0.7,                       // loop counter
      };
      switch (rng_.pick_weighted(weights)) {
        case 0: idiom_load_op_store(); break;
        case 1: idiom_alu_chain(); break;
        case 2: idiom_const(); break;
        case 3: idiom_shift(); break;
        case 4: idiom_byte_mem(); break;
        case 5: idiom_compare_branch(); break;
        case 6: idiom_call(); break;
        case 7: idiom_fp(); break;
        default: idiom_loop_counter(); break;
      }
    }

    // Epilogue.
    for (unsigned i = saved_count; i-- > 0;)
      emit("lw", kSaved[i], kSp, 0, static_cast<std::uint16_t>(frame_ - 8 - 4 * i));
    emit("lw", kRa, kSp, 0, static_cast<std::uint16_t>(frame_ - 4));
    emit("addiu", kSp, kSp, 0, frame_);
    emit("jr", kRa);
    emit("sll", 0, 0, 0);  // delay slot
  }

  void emit_clone() {
    // Copy an earlier function verbatim or with temp-register renaming.
    const std::size_t n = out_.function_starts.size() - 1;
    const std::size_t pick = rng_.next_below(n);
    const std::uint32_t begin = out_.function_starts[pick];
    const std::uint32_t end = pick + 1 < n ? out_.function_starts[pick + 1]
                                           : out_.function_starts[n];
    if (end <= begin) return;
    const bool rename = rng_.chance(0.5);
    std::uint8_t perm[32];
    for (unsigned i = 0; i < 32; ++i) perm[i] = static_cast<std::uint8_t>(i);
    if (rename) {
      // Rotate the temp pool by a random amount.
      const unsigned rot = 1 + static_cast<unsigned>(rng_.next_below(9));
      for (unsigned i = 0; i < 10; ++i) perm[kTemps[i]] = kTemps[(i + rot) % 10];
    }
    for (std::uint32_t w = begin; w < end; ++w) {
      std::uint32_t word = out_.words[w];
      if (rename) {
        if (auto d = mips::decode(word)) {
          const auto& info = mips::opcode_table()[d->opcode];
          for (unsigned k = 0; k < info.reg_count; ++k)
            if (info.reg_shifts[k] != 6)  // do not rename shift amounts
              d->regs[k] = perm[d->regs[k]];
          word = mips::encode(*d);
        }
      }
      out_.words.push_back(word);
    }
  }

  const Profile& prof_;
  Rng rng_;
  MipsProgram out_;
  std::uint16_t frame_ = 32;
};

}  // namespace

MipsProgram generate_mips_program(const Profile& profile) {
  return MipsGenerator(profile).run();
}

std::vector<std::uint32_t> generate_mips(const Profile& profile) {
  return generate_mips_program(profile).words;
}

}  // namespace ccomp::workload
