#include "baseline/filecodecs.h"

#include "coding/lz77.h"
#include "coding/lzw.h"

namespace ccomp::baseline {

FileCompressionResult unix_compress(std::span<const std::uint8_t> code) {
  const auto compressed = coding::lzw_compress(code);
  // compress(1) writes a 3-byte header (magic + flags); count it.
  return {code.size(), compressed.size() + 3};
}

std::vector<std::uint8_t> unix_compress_bytes(std::span<const std::uint8_t> code) {
  return coding::lzw_compress(code);
}

std::vector<std::uint8_t> unix_decompress_bytes(std::span<const std::uint8_t> compressed,
                                                std::size_t original_size) {
  return coding::lzw_decompress(compressed, original_size);
}

FileCompressionResult gzip_like(std::span<const std::uint8_t> code) {
  const auto compressed = coding::lz77_compress(code);
  // gzip writes a 10-byte header and an 8-byte trailer; count them.
  return {code.size(), compressed.size() + 18};
}

std::vector<std::uint8_t> gzip_like_bytes(std::span<const std::uint8_t> code) {
  return coding::lz77_compress(code);
}

std::vector<std::uint8_t> gzip_like_decompress(std::span<const std::uint8_t> compressed) {
  return coding::lz77_decompress(compressed);
}

}  // namespace ccomp::baseline
