// Fault-tolerance tests: SECDED ECC, the deterministic fault injector, the
// hardened (fuel-bounded) decoders, and the self-healing memory system's
// recovery ladder. The overarching contract under test: malformed or damaged
// input may cost time and may raise a typed ccomp::Error, but it must never
// crash, read or write out of bounds, or silently yield wrong bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/bytehuff.h"
#include "coding/huffman.h"
#include "coding/lzw.h"
#include "isa/mips/mips.h"
#include "memsys/selfheal.h"
#include "sadc/sadc.h"
#include "samc/samc.h"
#include "support/bitio.h"
#include "support/ecc.h"
#include "support/faultinject.h"
#include "support/rng.h"
#include "workload/mips_gen.h"
#include "workload/profile.h"
#include "workload/x86_gen.h"

namespace ccomp {
namespace {

std::vector<std::uint8_t> mips_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return mips::words_to_bytes(workload::generate_mips(p));
}

std::vector<std::uint8_t> x86_code(std::uint32_t kb) {
  workload::Profile p = *workload::find_profile("go");
  p.code_kb = kb;
  return workload::generate_x86(p);
}

// --- SECDED word level ------------------------------------------------------

TEST(Secded, CleanWordPassesThrough) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t data = rng.next_u64();
    std::uint64_t word = data;
    std::uint8_t check = ecc::secded_encode(word);
    EXPECT_EQ(ecc::secded_correct(word, check), ecc::Status::kClean);
    EXPECT_EQ(word, data);
  }
}

TEST(Secded, EverySingleBitFlipIsCorrected) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t data = rng.next_u64();
    const std::uint8_t good_check = ecc::secded_encode(data);
    // All 64 data bits.
    for (int bit = 0; bit < 64; ++bit) {
      std::uint64_t word = data ^ (std::uint64_t{1} << bit);
      std::uint8_t check = good_check;
      EXPECT_EQ(ecc::secded_correct(word, check), ecc::Status::kCorrected);
      EXPECT_EQ(word, data);
      EXPECT_EQ(check, good_check);
    }
    // All 8 check-byte bits (7 Hamming parity + overall parity).
    for (int bit = 0; bit < 8; ++bit) {
      std::uint64_t word = data;
      std::uint8_t check = static_cast<std::uint8_t>(good_check ^ (1u << bit));
      EXPECT_EQ(ecc::secded_correct(word, check), ecc::Status::kCorrected);
      EXPECT_EQ(word, data);
      EXPECT_EQ(check, good_check);
    }
  }
}

TEST(Secded, DoubleBitFlipsAreDetectedNotMiscorrected) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t data = rng.next_u64();
    const std::uint8_t good_check = ecc::secded_encode(data);
    // Two distinct flips across the full 72-bit codeword.
    const unsigned a = static_cast<unsigned>(rng.next_below(72));
    unsigned b = static_cast<unsigned>(rng.next_below(71));
    if (b >= a) ++b;
    std::uint64_t word = data;
    std::uint8_t check = good_check;
    const auto flip = [&](unsigned bit) {
      if (bit < 64)
        word ^= std::uint64_t{1} << bit;
      else
        check = static_cast<std::uint8_t>(check ^ (1u << (bit - 64)));
    };
    flip(a);
    flip(b);
    EXPECT_EQ(ecc::secded_correct(word, check), ecc::Status::kUncorrectable);
  }
}

// --- SECDED block level -----------------------------------------------------

TEST(SecdedBlock, RoundTripAndSingleBitHealing) {
  Rng rng(4);
  // Include a non-multiple-of-8 size to cover the zero-padded tail word.
  for (const std::size_t size : {8u, 32u, 29u, 1u, 257u}) {
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    const std::vector<std::uint8_t> original = data;
    std::vector<std::uint8_t> check(ecc::ecc_bytes_for(size));
    ecc::encode_block(data, check);

    EXPECT_TRUE(ecc::correct_block(data, check).clean());

    for (int trial = 0; trial < 64; ++trial) {
      const std::size_t byte = rng.next_below(size);
      data[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      const ecc::BlockResult result = ecc::correct_block(data, check);
      EXPECT_EQ(result.corrected_words, 1u);
      EXPECT_EQ(result.uncorrectable_words, 0u);
      EXPECT_EQ(data, original);
    }
  }
}

TEST(SecdedBlock, TailPaddingMiscorrectionIsRefused) {
  // A multi-bit fault whose syndrome points into the zero padding of a short
  // tail word must be reported uncorrectable, not "corrected" into a word
  // that disagrees with its own length.
  std::vector<std::uint8_t> data(5, 0xA5);
  std::vector<std::uint8_t> check(ecc::ecc_bytes_for(data.size()));
  ecc::encode_block(data, check);
  bool saw_uncorrectable = false;
  Rng rng(5);
  for (int trial = 0; trial < 2000 && !saw_uncorrectable; ++trial) {
    std::vector<std::uint8_t> bad = data;
    std::vector<std::uint8_t> bad_check = check;
    for (int k = 0; k < 3; ++k) bad[rng.next_below(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const ecc::BlockResult result = ecc::correct_block(bad, bad_check);
    if (result.uncorrectable_words > 0) saw_uncorrectable = true;
    // Whatever the verdict, the data span stays 5 bytes — padding is never
    // materialized.
    EXPECT_EQ(bad.size(), 5u);
  }
  EXPECT_TRUE(saw_uncorrectable);
}

TEST(SecdedBlock, MismatchedSpansRaiseTypedErrors) {
  std::vector<std::uint8_t> data(16, 0);
  std::vector<std::uint8_t> check(5, 0);  // should be 2
  EXPECT_THROW(ecc::encode_block(data, check), ConfigError);
  EXPECT_THROW(ecc::correct_block(data, check), CorruptDataError);
}

// --- Fault injector ---------------------------------------------------------

TEST(FaultInjector, DeterministicFromSeed) {
  std::vector<std::uint8_t> a(64, 0), b(64, 0);
  fault::FaultInjector ia(99), ib(99);
  fault::FaultSpec spec;
  for (const auto model : {fault::Model::kSingleBit, fault::Model::kMultiBit,
                           fault::Model::kBurst, fault::Model::kStuckAt1}) {
    spec.model = model;
    const auto ea = ia.inject(a, spec);
    const auto eb = ib.inject(b, spec);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].byte_offset, eb[i].byte_offset);
      EXPECT_EQ(ea[i].bit_mask, eb[i].bit_mask);
    }
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, RevertUndoesFlips) {
  std::vector<std::uint8_t> region(128);
  Rng rng(6);
  for (auto& b : region) b = static_cast<std::uint8_t>(rng.next_below(256));
  const std::vector<std::uint8_t> original = region;
  fault::FaultInjector injector(7);
  std::vector<fault::FaultEvent> events;
  fault::FaultSpec spec;
  spec.model = fault::Model::kMultiBit;
  spec.bits = 5;
  for (int k = 0; k < 10; ++k)
    for (const auto& e : injector.inject(region, spec)) events.push_back(e);
  EXPECT_NE(region, original);
  fault::FaultInjector::revert(region, events);
  EXPECT_EQ(region, original);
}

TEST(FaultInjector, StuckAtFaultsAreAbsorbedBySameValue) {
  std::vector<std::uint8_t> zeros(32, 0x00);
  std::vector<std::uint8_t> ones(32, 0xFF);
  fault::FaultInjector injector(8);
  fault::FaultSpec spec;
  spec.model = fault::Model::kStuckAt0;
  for (int k = 0; k < 20; ++k) EXPECT_TRUE(injector.inject(zeros, spec).empty());
  EXPECT_TRUE(std::all_of(zeros.begin(), zeros.end(), [](auto b) { return b == 0x00; }));
  spec.model = fault::Model::kStuckAt1;
  for (int k = 0; k < 20; ++k) EXPECT_TRUE(injector.inject(ones, spec).empty());
  EXPECT_TRUE(std::all_of(ones.begin(), ones.end(), [](auto b) { return b == 0xFF; }));
}

TEST(FaultInjector, ModelNamesParse) {
  fault::Model model;
  EXPECT_TRUE(fault::parse_model("single", model));
  EXPECT_EQ(model, fault::Model::kSingleBit);
  EXPECT_TRUE(fault::parse_model("burst", model));
  EXPECT_EQ(model, fault::Model::kBurst);
  EXPECT_FALSE(fault::parse_model("gamma-ray", model));
}

// --- BitReader bounds -------------------------------------------------------

TEST(BitReaderBounds, BitsRemainingAndTypedOverrun) {
  const std::vector<std::uint8_t> bytes = {0xDE, 0xAD};
  BitReader in(bytes);
  EXPECT_EQ(in.bits_remaining(), 16u);
  (void)in.read_bits(10);
  EXPECT_EQ(in.bits_remaining(), 6u);
  EXPECT_THROW(in.read_bits(7), CorruptDataError);  // typed error, not an assert
  (void)in.read_bits(6);
  EXPECT_EQ(in.bits_remaining(), 0u);
  EXPECT_THROW(in.read_bit(), CorruptDataError);
}

// --- Decoder fuzzing --------------------------------------------------------
// Contract: any input — random garbage, truncations, deep payload damage —
// either decodes or raises a ccomp::Error. Anything else (crash, OOB under
// ASan, std::bad_alloc from a runaway loop) fails the test.

std::vector<std::uint8_t> serialized_image(const core::BlockCodec& codec,
                                           std::span<const std::uint8_t> code) {
  const auto image = codec.compress(code);
  ByteSink sink;
  image.serialize(sink);
  return sink.take();
}

void expect_typed_failure_only(const core::BlockCodec& codec,
                               std::span<const std::uint8_t> bytes) {
  try {
    ByteSource src(bytes);
    const auto image = core::CompressedImage::deserialize(src);
    const auto dec = codec.make_decompressor(image);
    for (std::size_t b = 0; b < image.block_count(); ++b) (void)dec->block(b);
  } catch (const Error&) {
    // A typed rejection is the expected outcome for most inputs.
  }
}

void fuzz_codec(const core::BlockCodec& codec, std::span<const std::uint8_t> code,
                std::uint64_t seed) {
  Rng rng(seed);
  // 10k random byte strings straight into the loader.
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_typed_failure_only(codec, junk);
  }
  const auto good = serialized_image(codec, code);
  // Truncations at random byte positions.
  for (int trial = 0; trial < 300; ++trial) {
    auto bad = good;
    bad.resize(rng.next_below(bad.size()));
    expect_typed_failure_only(codec, bad);
  }
  // Deep payload damage on an otherwise valid in-memory image: exercises the
  // fuel-bounded decode loops rather than the container parser.
  for (int trial = 0; trial < 200; ++trial) {
    auto image = codec.compress(code);
    const auto payload = image.mutable_payload();
    if (payload.empty()) break;
    for (int k = 0; k < 8; ++k)
      payload[rng.next_below(payload.size())] =
          static_cast<std::uint8_t>(rng.next_below(256));
    try {
      const auto dec = codec.make_decompressor(image);
      for (std::size_t b = 0; b < image.block_count(); ++b) (void)dec->block(b);
    } catch (const Error&) {
    }
  }
}

TEST(DecoderFuzz, Samc) { fuzz_codec(samc::SamcCodec(samc::mips_defaults()), mips_code(4), 11); }

TEST(DecoderFuzz, SadcMips) { fuzz_codec(sadc::SadcMipsCodec(), mips_code(4), 12); }

TEST(DecoderFuzz, SadcX86) { fuzz_codec(sadc::SadcX86Codec(), x86_code(4), 13); }

TEST(DecoderFuzz, ByteHuffman) { fuzz_codec(baseline::ByteHuffmanCodec(), mips_code(4), 14); }

TEST(DecoderFuzz, CanonicalHuffmanRandomBitstreams) {
  // Build a sparse code (absent symbols create invalid prefixes), then decode
  // 10k random bitstreams: every symbol is in-alphabet and every failure is a
  // CorruptDataError.
  std::vector<std::uint64_t> freq(256, 0);
  Rng rng(15);
  for (int i = 0; i < 40; ++i) freq[rng.next_below(256)] = 1 + rng.next_below(1000);
  const auto code = coding::HuffmanCode::from_frequencies(freq);
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<std::uint8_t> junk(1 + rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    BitReader in(junk);
    try {
      while (in.bits_remaining() > 0) {
        const std::size_t sym = code.decode(in);
        ASSERT_LT(sym, code.alphabet_size());
        ASSERT_GT(code.length_of(sym), 0u);
      }
    } catch (const CorruptDataError&) {
    }
  }
}

TEST(DecoderFuzz, LzwRandomStreams) {
  Rng rng(16);
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      const auto out = coding::lzw_decompress(junk, 1024);
      EXPECT_LE(out.size(), 1024u);  // output bound always respected
    } catch (const Error&) {
    }
  }
  // Truncations of a real stream.
  const auto code = mips_code(4);
  const auto good = coding::lzw_compress(code);
  for (int trial = 0; trial < 300; ++trial) {
    auto bad = good;
    bad.resize(rng.next_below(bad.size()));
    try {
      const auto out = coding::lzw_decompress(bad, code.size());
      EXPECT_LE(out.size(), code.size());
    } catch (const Error&) {
    }
  }
}

// --- Recovery ladder --------------------------------------------------------

class SelfHealTest : public ::testing::Test {
 protected:
  void build(bool use_ecc = true) {
    code_ = mips_code(4);
    image_ = std::make_unique<core::CompressedImage>(codec_.compress(code_));
    memsys::SelfHealingMemorySystem::Options options;
    options.cache.line_bytes = image_->block_size();
    options.cache.size_bytes = image_->block_size() * 64;
    options.use_ecc = use_ecc;
    sys_ = std::make_unique<memsys::SelfHealingMemorySystem>(options, codec_, *image_);
    golden_.clear();
    const auto dec = codec_.make_decompressor(*image_);
    for (std::size_t b = 0; b < image_->block_count(); ++b) golden_.push_back(dec->block(b));
  }

  samc::SamcCodec codec_{samc::mips_defaults()};
  std::vector<std::uint8_t> code_;
  std::unique_ptr<core::CompressedImage> image_;
  std::unique_ptr<memsys::SelfHealingMemorySystem> sys_;
  std::vector<std::vector<std::uint8_t>> golden_;
};

TEST_F(SelfHealTest, CleanReadsMatchGoldenAndKeepCountersQuiet) {
  build();
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().faults_detected, 0u);
  EXPECT_EQ(sys_->stats().escalated, 0u);
  EXPECT_EQ(sys_->stats().refills, image_->block_count());
}

TEST_F(SelfHealTest, FetchThroughCacheMatchesOriginalCode) {
  build();
  for (std::uint32_t addr = 0; addr + 4 <= code_.size(); addr += 4) {
    const std::uint32_t expect = static_cast<std::uint32_t>(code_[addr]) |
                                 (static_cast<std::uint32_t>(code_[addr + 1]) << 8) |
                                 (static_cast<std::uint32_t>(code_[addr + 2]) << 16) |
                                 (static_cast<std::uint32_t>(code_[addr + 3]) << 24);
    EXPECT_EQ(sys_->fetch(addr), expect);
  }
}

TEST_F(SelfHealTest, SingleBitStoreFaultIsEccCorrectedInPlace) {
  build();
  fault::FaultInjector injector(20);
  const auto event = injector.flip_one(sys_->store_payload());
  (void)event;
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_GE(sys_->stats().faults_detected, 1u);
  EXPECT_GE(sys_->stats().ecc_corrected, 1u);
  EXPECT_EQ(sys_->stats().refetched, 0u);
  EXPECT_EQ(sys_->stats().escalated, 0u);
  // The correction was written back: a second sweep sees a clean store.
  const std::uint64_t detected_before = sys_->stats().faults_detected;
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().faults_detected, detected_before);
}

TEST_F(SelfHealTest, MultiBitDamageFallsThroughToRefetch) {
  build();
  // Saturate one byte — 8 flipped bits in a single ECC word is far beyond
  // SECDED, so the ladder must reach the golden refetch rung.
  sys_->store_payload()[3] ^= 0xFF;
  EXPECT_EQ(sys_->read_block(0), golden_[0]);
  EXPECT_GE(sys_->stats().refetched, 1u);
  EXPECT_EQ(sys_->stats().escalated, 0u);
}

TEST_F(SelfHealTest, LatFaultIsDetectedAndRefetched) {
  build();
  fault::FaultInjector injector(21);
  injector.flip_one(sys_->store_lat_bytes());
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().escalated, 0u);
}

TEST_F(SelfHealTest, TransientBusNoiseClearsOnRetry) {
  build();
  sys_->bus_buffer()[0] ^= 0x40;
  EXPECT_EQ(sys_->read_block(0), golden_[0]);
  EXPECT_GE(sys_->stats().bus_recovered, 1u);
  EXPECT_EQ(sys_->stats().ecc_corrected, 0u);  // the store itself was clean
  EXPECT_EQ(sys_->stats().refetched, 0u);
}

TEST_F(SelfHealTest, CorruptClbEntryIsCaughtByParityCrossCheck) {
  build();
  (void)sys_->read_block(2);  // populate a CLB entry
  fault::FaultInjector injector(22);
  fault::FaultSpec spec;
  spec.model = fault::Model::kMultiBit;
  spec.bits = 4;
  injector.inject(sys_->clb_bytes(), spec);
  // Every block still reads correctly; a damaged entry never redirects a
  // refill to the wrong offset.
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().escalated, 0u);
}

TEST_F(SelfHealTest, EccDisabledStillHealsViaRefetch) {
  build(/*use_ecc=*/false);
  fault::FaultInjector injector(23);
  injector.flip_one(sys_->store_payload());
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().ecc_corrected, 0u);
  EXPECT_GE(sys_->stats().faults_detected + sys_->stats().refetched, 1u);
  EXPECT_EQ(sys_->stats().escalated, 0u);
}

TEST_F(SelfHealTest, ScrubberHealsLatentFaultsBeforeTheyAreRead) {
  build();
  fault::FaultInjector injector(24);
  injector.flip_one(sys_->store_payload());
  const std::size_t visited = sys_->scrub(image_->block_count());
  EXPECT_EQ(visited, image_->block_count());
  EXPECT_GE(sys_->stats().scrub_corrected, 1u);
  // The store is clean again: reads detect nothing.
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().faults_detected, 0u);
}

TEST_F(SelfHealTest, RepairAllRestoresThePristineStore) {
  build();
  fault::FaultInjector injector(25);
  fault::FaultSpec spec;
  spec.model = fault::Model::kBurst;
  spec.burst_bits = 16;
  for (int k = 0; k < 10; ++k) injector.inject(sys_->store_payload(), spec);
  injector.inject(sys_->store_lat_bytes(), spec);
  sys_->repair_all();
  for (std::size_t b = 0; b < image_->block_count(); ++b)
    EXPECT_EQ(sys_->read_block(b), golden_[b]);
  EXPECT_EQ(sys_->stats().faults_detected, 0u);
}

// --- Mini campaign ----------------------------------------------------------
// The in-tree version of the acceptance criterion: seeded single-bit faults
// across the store are 100% detected, 100% ECC-corrected in place, and zero
// produce silently wrong bytes. (examples/fault_campaign.cpp scales this to
// 10k faults across five surfaces and three codecs.)

TEST_F(SelfHealTest, MiniCampaignSingleBitStoreFaults) {
  build();
  fault::FaultInjector injector(20260805);
  const int kTrials = 400;
  std::uint64_t corrected_before = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    injector.flip_one(sys_->store_payload());
    bool silent = false;
    for (std::size_t b = 0; b < image_->block_count(); ++b)
      if (sys_->read_block(b) != golden_[b]) silent = true;
    sys_->scrub(image_->block_count());
    EXPECT_FALSE(silent);
    // Every single-bit store fault is corrected in place by SECDED — either
    // at refill or by the scrubber — before the next trial begins.
    const std::uint64_t corrected =
        sys_->stats().ecc_corrected + sys_->stats().scrub_corrected;
    EXPECT_EQ(corrected, corrected_before + 1) << "trial " << trial;
    corrected_before = corrected;
  }
  EXPECT_EQ(sys_->stats().escalated, 0u);
  EXPECT_EQ(sys_->stats().refetched, 0u);
  EXPECT_TRUE(sys_->fault_log().empty());
}

// --- Scrub cursor clamping --------------------------------------------------

TEST_F(SelfHealTest, ScrubClampsBudgetToOneFullPass) {
  build();
  const std::size_t blocks = image_->block_count();
  // A budget far past the image visits each block exactly once, not
  // max_blocks times (the old unbounded-cursor idiom kept counting).
  EXPECT_EQ(sys_->scrub(blocks * 10), blocks);
  EXPECT_EQ(sys_->stats().scrubbed, blocks);
  // The cursor wrapped back to the start: the next partial sweep begins at
  // block 0 again. Corrupt only block 0 (ECC disabled would decode; with
  // ECC the sweep corrects) and confirm a 1-block sweep heals it.
  build(false);
  auto p0 = sys_->store_payload();
  p0[0] ^= 0xFF;
  EXPECT_EQ(sys_->scrub(1), 1u);
  EXPECT_EQ(sys_->stats().scrub_refetched, 1u);
  EXPECT_EQ(sys_->read_block(0), golden_[0]);
}

TEST_F(SelfHealTest, ScrubCursorSurvivesShortPartialSweeps) {
  build();
  const std::size_t blocks = image_->block_count();
  // Many partial sweeps whose total far exceeds the block count: every
  // sweep stays in range and the per-pass coverage is exact.
  std::size_t visited = 0;
  for (int i = 0; i < 7; ++i) visited += sys_->scrub(blocks / 3 + 1);
  EXPECT_EQ(sys_->stats().scrubbed, visited);
  // One more full-pass budget lands exactly one more pass.
  EXPECT_EQ(sys_->scrub(blocks + 1234), blocks);
}

// --- Stuck-at store cells ---------------------------------------------------
// The one fault class the ladder cannot heal: the broken cell re-asserts
// itself under ECC writeback and golden refetch alike, so the refill must
// escalate with a typed error — never serve wrong bytes.

TEST_F(SelfHealTest, StuckByteEscalatesDeterministically) {
  build();
  const auto view = image_->block_payload(0);
  const std::size_t offset =
      static_cast<std::size_t>(view.data() - image_->payload().data());
  const auto stuck_value = static_cast<std::uint8_t>(~view[0]);
  sys_->set_stuck_bytes({{offset, 0x00, stuck_value}});
  EXPECT_THROW(sys_->read_block(0), FaultEscalationError);
  EXPECT_GE(sys_->stats().escalated, 1u);
  EXPECT_FALSE(sys_->fault_log().empty());
  // Other blocks are unaffected.
  EXPECT_EQ(sys_->read_block(1), golden_[1]);
  // Lifting the stuck cell lets the ladder heal from golden again.
  sys_->clear_stuck_bytes();
  EXPECT_EQ(sys_->read_block(0), golden_[0]);
  EXPECT_EQ(sys_->read_block(0), golden_[0]);
}

// --- ECC in the image container ---------------------------------------------

TEST(ImageEcc, AttachSerializeRoundTrip) {
  const samc::SamcCodec codec(samc::mips_defaults());
  auto image = codec.compress(mips_code(4));
  EXPECT_FALSE(image.has_ecc());
  image.attach_ecc();
  ASSERT_TRUE(image.has_ecc());
  EXPECT_GT(image.ecc().size(), 0u);

  ByteSink sink;
  image.serialize(sink);
  const auto bytes = sink.take();
  ByteSource src(bytes);
  const auto loaded = core::CompressedImage::deserialize(src);
  ASSERT_TRUE(loaded.has_ecc());
  EXPECT_TRUE(std::equal(loaded.ecc().begin(), loaded.ecc().end(), image.ecc().begin()));
  // Per-block spans cover exactly ecc_bytes_for(payload size).
  for (std::size_t b = 0; b < loaded.block_count(); ++b)
    EXPECT_EQ(loaded.block_ecc(b).size(), ecc::ecc_bytes_for(loaded.block_payload(b).size()));
}

TEST(ImageEcc, UnknownHeaderFlagBitsAreRejected) {
  const samc::SamcCodec codec(samc::mips_defaults());
  const auto image = codec.compress(mips_code(4));
  ByteSink sink;
  image.serialize(sink);
  auto bytes = sink.take();
  bytes[6] |= 0x80;  // an undefined bit in the header flags byte
  ByteSource src(bytes);
  EXPECT_THROW(core::CompressedImage::deserialize(src), CorruptDataError);
}

}  // namespace
}  // namespace ccomp
