// Canonical, length-limited Huffman coding.
//
// Used by SADC's stream post-coder, the byte-based Huffman baseline
// (Kozuch & Wolfe), and the gzip-like file compressor. Codes are canonical
// so only the code lengths need to be stored; lengths are limited to
// kMaxCodeLength so the decoder tables stay small (the embedded-hardware
// constraint the paper cares about).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bitio.h"
#include "support/serialize.h"

namespace ccomp::coding {

inline constexpr unsigned kMaxCodeLength = 16;

/// A canonical Huffman code over the alphabet [0, lengths.size()).
/// Symbols with length 0 are absent from the code.
class HuffmanCode {
 public:
  /// Build a length-limited canonical code from symbol frequencies.
  /// Symbols with zero frequency get length 0. If fewer than two symbols
  /// occur, the occurring symbol gets a 1-bit code so the stream is
  /// self-delimiting.
  static HuffmanCode from_frequencies(std::span<const std::uint64_t> freq,
                                      unsigned max_length = kMaxCodeLength);

  /// Reconstruct from code lengths (the canonical-code contract).
  static HuffmanCode from_lengths(std::vector<std::uint8_t> lengths);

  /// Code length per symbol (0 = symbol not in code).
  std::span<const std::uint8_t> lengths() const { return lengths_; }

  /// Codeword for `symbol` (valid only if length > 0), MSB-first.
  std::uint32_t code_of(std::size_t symbol) const { return codes_.at(symbol); }
  unsigned length_of(std::size_t symbol) const { return lengths_.at(symbol); }

  std::size_t alphabet_size() const { return lengths_.size(); }

  /// Encode one symbol.
  void encode(BitWriter& out, std::size_t symbol) const;

  /// Decode one symbol. Throws CorruptDataError on an invalid prefix.
  /// Short codes (<= kFastBits) resolve through a one-lookup table — the
  /// software analogue of the table-driven decoders a refill engine uses —
  /// with a canonical bit-serial fallback for long codes and stream tails.
  std::size_t decode(BitReader& in) const;

  /// Decode `count` symbols into `out`. Requires an alphabet of at most 256
  /// symbols (SADC's streams all qualify: dictionary ids, registers, and
  /// byte-valued operands). One window lookup resolves up to three short
  /// symbols at a time — the multi-symbol analogue of the fast table, which
  /// is where SADC's refill path spends its time — falling back to decode()
  /// per symbol near the end of the run or on long codes.
  void decode_run(BitReader& in, std::uint8_t* out, std::size_t count) const;

  /// Exact encoded size in bits of a frequency-weighted message.
  std::uint64_t encoded_bits(std::span<const std::uint64_t> freq) const;

  /// Serialize the code lengths compactly (zero-run-length coded).
  void serialize(ByteSink& sink) const;
  static HuffmanCode deserialize(ByteSource& src);

  /// Serialized table size in bytes (what an embedded image would store).
  std::size_t table_bytes() const;

 private:
  static constexpr unsigned kFastBits = 10;

  HuffmanCode() = default;
  void build_canonical();  // fills codes_ and decode acceleration tables
  std::size_t decode_serial(BitReader& in) const;

  struct FastEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 = long code or invalid prefix: use serial path
  };

  /// Up to three whole symbols resolved from one kFastBits window (only
  /// built for alphabets of <= 256 symbols, so each fits a byte). count == 0
  /// means the window's first code is long or invalid: take the slow path.
  struct MultiEntry {
    std::uint8_t syms[3] = {};
    std::uint8_t count = 0;
    std::uint8_t bits = 0;  // total bits consumed by the `count` symbols
  };

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
  std::vector<FastEntry> fast_;    // 2^kFastBits entries
  std::vector<MultiEntry> multi_;  // 2^kFastBits entries; empty if alphabet > 256
  // Canonical decode tables: for each length L (1..kMaxCodeLength), the first
  // canonical code of that length and the index of its first symbol in
  // sorted_symbols_.
  std::uint32_t first_code_[kMaxCodeLength + 2] = {};
  std::uint32_t first_index_[kMaxCodeLength + 2] = {};
  std::vector<std::uint32_t> sorted_symbols_;
};

}  // namespace ccomp::coding
