#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "coding/huffman.h"
#include "isa/x86/x86.h"
#include "obs/obs.h"
#include "sadc/sadc.h"
#include "support/bitio.h"
#include "support/error.h"
#include "support/parallel.h"

namespace ccomp::sadc {
namespace {

using coding::HuffmanCode;

// One tokenized x86 instruction.
struct XInstr {
  std::uint16_t token = 0;     // index into the opcode-string table; kEscape = raw
  bool escape = false;
  std::vector<std::uint8_t> opcode_bytes;  // prefixes + opcode
  std::vector<std::uint8_t> modrm_bytes;   // modrm [+ sib]
  std::vector<std::uint8_t> imm_bytes;     // disp + imm
  std::vector<std::uint8_t> all_bytes;     // full encoding (escape path)
};

struct Item {
  std::uint16_t symbol;
  std::uint32_t first_instr;
  std::uint32_t length;
};

// Sequence-only dictionary growth (the paper's x86 SADC does no operand
// specialisation).
class SeqBuilder {
 public:
  SeqBuilder(const SadcOptions& options, SymbolTable table,
             std::vector<std::vector<Item>> blocks)
      : options_(options), table_(std::move(table)), blocks_(std::move(blocks)) {}

  void run() {
    for (unsigned cycle = 0; cycle < options_.max_cycles; ++cycle) {
      if (table_.size() >= options_.max_symbols) break;
      if (!step()) break;
    }
  }

  SymbolTable take_table() { return std::move(table_); }
  const std::vector<std::vector<Item>>& blocks() const { return blocks_; }

 private:
  bool step() {
    std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> pairs, triples;
    std::uint32_t pos = 0;
    for (const auto& block : blocks_) {
      for (std::size_t i = 0; i < block.size(); ++i, ++pos) {
        if (i + 1 < block.size()) {
          const std::uint64_t key = (std::uint64_t{block[i].symbol} << 16) | block[i + 1].symbol;
          auto& [count, next_free] = pairs[key];
          if (pos >= next_free) {
            ++count;
            next_free = pos + 2;
          }
        }
        if (options_.max_group >= 3 && i + 2 < block.size()) {
          const std::uint64_t key = (std::uint64_t{block[i].symbol} << 32) |
                                    (std::uint64_t{block[i + 1].symbol} << 16) |
                                    block[i + 2].symbol;
          auto& [count, next_free] = triples[key];
          if (pos >= next_free) {
            ++count;
            next_free = pos + 3;
          }
        }
      }
    }
    double best_gain = 0.0;
    std::uint64_t best_key = 0;
    unsigned best_n = 0;
    auto consider = [&](std::uint64_t key, std::uint32_t f, unsigned n) {
      if (f < 2) return;
      const double gain = 8.0 * (static_cast<double>(f) * (n - 1)) - (8.0 * n + 16.0);
      if (gain > best_gain) {
        best_gain = gain;
        best_key = key;
        best_n = n;
      }
    };
    for (const auto& [key, cf] : pairs) consider(key, cf.first, 2);
    for (const auto& [key, cf] : triples) consider(key, cf.first, 3);
    if (best_n == 0) return false;

    std::uint16_t syms[3];
    for (unsigned k = 0; k < best_n; ++k)
      syms[best_n - 1 - k] = static_cast<std::uint16_t>((best_key >> (16 * k)) & 0xFFFF);
    Symbol s;
    s.kind = Symbol::Kind::kSeq;
    s.components.assign(syms, syms + best_n);
    const std::uint16_t id = table_.add(std::move(s));
    for (auto& block : blocks_) {
      std::vector<Item> merged;
      merged.reserve(block.size());
      std::size_t i = 0;
      while (i < block.size()) {
        bool match = i + best_n <= block.size();
        for (unsigned k = 0; match && k < best_n; ++k) match = block[i + k].symbol == syms[k];
        if (match) {
          std::uint32_t len = 0;
          for (unsigned k = 0; k < best_n; ++k) len += block[i + k].length;
          merged.push_back({id, block[i].first_instr, len});
          i += best_n;
        } else {
          merged.push_back(block[i]);
          ++i;
        }
      }
      block = std::move(merged);
    }
    return true;
  }

  const SadcOptions& options_;
  SymbolTable table_;
  std::vector<std::vector<Item>> blocks_;
};

// Opcode byte-string table serialization.
void serialize_opcode_strings(ByteSink& sink, const std::vector<std::string>& strings) {
  sink.varint(strings.size());
  for (const std::string& s : strings) {
    sink.u8(static_cast<std::uint8_t>(s.size()));
    for (const char c : s) sink.u8(static_cast<std::uint8_t>(c));
  }
}

std::vector<std::string> deserialize_opcode_strings(ByteSource& src) {
  const std::uint64_t count = src.varint();
  if (count > kMaxSymbols) throw CorruptDataError("too many opcode strings");
  std::vector<std::string> strings;
  strings.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t len = src.u8();
    std::string s;
    for (unsigned k = 0; k < len; ++k) s.push_back(static_cast<char>(src.u8()));
    strings.push_back(std::move(s));
  }
  return strings;
}

class SadcX86Decompressor final : public core::BlockDecompressor {
 public:
  SadcX86Decompressor(const core::CompressedImage& image, SymbolTable table,
                      std::vector<std::string> opcode_strings, HuffmanCode sym_code,
                      HuffmanCode modrm_code, HuffmanCode imm_code)
      : BlockDecompressor(image.block_count()),
        image_(&image),
        table_(std::move(table)),
        opcode_strings_(std::move(opcode_strings)),
        sym_code_(std::move(sym_code)),
        modrm_code_(std::move(modrm_code)),
        imm_code_(std::move(imm_code)) {}

  std::vector<std::uint8_t> block(std::size_t index) const override {
    core::DecodeScratch scratch;
    std::vector<std::uint8_t> out(image_->block_original_size(index));
    block_into(index, out, scratch);
    return out;
  }

  using BlockDecompressor::block_into;

  // Scratch use: ptrs0 = dictionary leaf pointers (phase 1); words0 = two
  // packed words per instruction (flags | modrm<<8 | sib<<16 | tail_len<<24,
  // then token or raw length); bytes0 = escape instructions' literal bytes;
  // bytes1 = the displacement/immediate stream, decoded with one
  // multi-symbol run once phase 2 has fixed its length.
  void block_into(std::size_t index, std::span<std::uint8_t> out,
                  core::DecodeScratch& scratch) const override {
    CCOMP_SPAN("sadc.decode_block");
    CCOMP_TIMER("sadc.decode.block_ns");
    if (out.size() != image_->block_original_size(index))
      throw CorruptDataError("block_into destination does not match the block's original size");
    BitReader in(image_->block_payload(index));
    const std::size_t instr_count = static_cast<std::size_t>(in.read_bits(8));

    // Phase 1: opcode tokens.
    std::vector<const void*>& leaves = scratch.ptrs0;
    leaves.clear();
    leaves.reserve(instr_count);
    // Fuel bound mirroring the MIPS decoder: instr_count symbols suffice for
    // any well-formed stream, so malformed input runs out of fuel instead of
    // spinning on zero-expansion symbols.
    std::size_t fuel = instr_count;
    while (leaves.size() < instr_count) {
      if (fuel == 0)
        throw FuelExhaustedError("SADC opcode stream does not cover the block");
      --fuel;
      const std::uint16_t sym = static_cast<std::uint16_t>(sym_code_.decode(in));
      if (sym >= table_.size()) throw CorruptDataError("symbol id out of range");
      const auto& expansion = table_.leaves(sym);
      if (expansion.empty()) throw CorruptDataError("SADC symbol expands to no instructions");
      for (const Leaf& leaf : expansion) leaves.push_back(&leaf);
      if (leaves.size() > instr_count)
        throw CorruptDataError("SADC symbol overruns block boundary");
    }
    CCOMP_COUNT("sadc.decode.blocks", 1);
    CCOMP_COUNT("sadc.decode.symbols", instr_count - fuel);
    CCOMP_COUNT("sadc.decode.instructions", leaves.size());

    // Phase 2: ModRM stream (escape instructions travel here whole).
    constexpr std::uint32_t kRaw = 1, kHasModrm = 2, kHasSib = 4;
    std::vector<std::uint32_t>& records = scratch.words0;
    records.clear();
    records.reserve(2 * leaves.size());
    std::vector<std::uint8_t>& raw_bytes = scratch.bytes0;
    raw_bytes.clear();
    std::size_t tail_total = 0;
    for (const void* lp : leaves) {
      const Leaf* leaf = static_cast<const Leaf*>(lp);
      if (leaf->raw) {
        const std::size_t len = modrm_code_.decode(in);
        const std::size_t off = raw_bytes.size();
        raw_bytes.resize(off + len);
        modrm_code_.decode_run(in, raw_bytes.data() + off, len);
        records.push_back(kRaw);
        records.push_back(static_cast<std::uint32_t>(len));
        continue;
      }
      if (leaf->token >= opcode_strings_.size())
        throw CorruptDataError("opcode token beyond string table");
      const std::string& opcode = opcode_strings_[leaf->token];
      const auto cls = x86::classify_opcode(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(opcode.data()), opcode.size()));
      std::uint32_t flags = 0;
      std::uint8_t modrm = 0, sib = 0;
      unsigned tail_len = cls.imm_bytes;
      if (cls.has_modrm) {
        flags |= kHasModrm;
        modrm = static_cast<std::uint8_t>(modrm_code_.decode(in));
        if (x86::modrm_has_sib(modrm)) {
          flags |= kHasSib;
          sib = static_cast<std::uint8_t>(modrm_code_.decode(in));
        }
        tail_len += x86::modrm_disp_bytes(modrm, sib);
        if (cls.group3 && ((modrm >> 3) & 7) <= 1) tail_len += cls.group3_imm_bytes;
      }
      tail_total += tail_len;
      records.push_back(flags | (std::uint32_t{modrm} << 8) | (std::uint32_t{sib} << 16) |
                        (static_cast<std::uint32_t>(tail_len) << 24));
      records.push_back(leaf->token);
    }

    // Phase 3: displacement/immediate stream, one run for the whole block.
    std::vector<std::uint8_t>& tails = scratch.bytes1;
    tails.resize(tail_total);
    imm_code_.decode_run(in, tails.data(), tail_total);

    // Reassemble into the caller's span, guarding every write against the
    // block's recorded size (corrupt streams may disagree).
    std::size_t at = 0, ro = 0, to = 0;
    auto put = [&](const std::uint8_t* data, std::size_t len) {
      if (len > out.size() - at) throw CorruptDataError("SADC/x86 block size mismatch");
      std::copy(data, data + len, out.begin() + static_cast<std::ptrdiff_t>(at));
      at += len;
    };
    for (std::size_t i = 0; i < records.size(); i += 2) {
      const std::uint32_t w0 = records[i];
      const std::uint32_t w1 = records[i + 1];
      if (w0 & kRaw) {
        put(raw_bytes.data() + ro, w1);
        ro += w1;
        continue;
      }
      const std::string& opcode = opcode_strings_[w1];
      put(reinterpret_cast<const std::uint8_t*>(opcode.data()), opcode.size());
      if (w0 & kHasModrm) {
        const std::uint8_t modrm = static_cast<std::uint8_t>(w0 >> 8);
        put(&modrm, 1);
      }
      if (w0 & kHasSib) {
        const std::uint8_t sib = static_cast<std::uint8_t>(w0 >> 16);
        put(&sib, 1);
      }
      const std::size_t tail_len = w0 >> 24;
      put(tails.data() + to, tail_len);
      to += tail_len;
    }
    if (at != out.size()) throw CorruptDataError("SADC/x86 block size mismatch");
  }

 private:
  const core::CompressedImage* image_;
  SymbolTable table_;
  std::vector<std::string> opcode_strings_;
  HuffmanCode sym_code_;
  HuffmanCode modrm_code_;
  HuffmanCode imm_code_;
};

}  // namespace

SadcX86Codec::SadcX86Codec(SadcOptions options) : options_(options) {
  if (options_.block_size == 0 || options_.block_size > 200)
    throw ConfigError("SADC/x86 block size must be in [1,200] (count byte limit)");
  if (options_.max_symbols > kMaxSymbols)
    throw ConfigError("SADC dictionary limited to 256 symbols");
}

core::CompressedImage SadcX86Codec::compress(std::span<const std::uint8_t> code) const {
  CCOMP_SPAN("sadc.compress");
  // Tokenize.
  const std::vector<x86::InstrLayout> layouts = x86::decode_all(code);
  std::vector<XInstr> instrs;
  instrs.reserve(layouts.size());
  std::map<std::string, std::uint32_t> opcode_freq;
  {
    std::size_t pos = 0;
    for (const x86::InstrLayout& l : layouts) {
      XInstr in;
      const std::size_t op_len = static_cast<std::size_t>(l.prefix_len) + l.opcode_len;
      in.opcode_bytes.assign(code.begin() + static_cast<std::ptrdiff_t>(pos),
                             code.begin() + static_cast<std::ptrdiff_t>(pos + op_len));
      in.modrm_bytes.assign(
          code.begin() + static_cast<std::ptrdiff_t>(pos + op_len),
          code.begin() + static_cast<std::ptrdiff_t>(pos + op_len + l.modrm_len));
      in.imm_bytes.assign(
          code.begin() + static_cast<std::ptrdiff_t>(pos + op_len + l.modrm_len),
          code.begin() + static_cast<std::ptrdiff_t>(pos + l.total));
      in.all_bytes.assign(code.begin() + static_cast<std::ptrdiff_t>(pos),
                          code.begin() + static_cast<std::ptrdiff_t>(pos + l.total));
      ++opcode_freq[std::string(in.opcode_bytes.begin(), in.opcode_bytes.end())];
      instrs.push_back(std::move(in));
      pos += l.total;
    }
  }

  // Choose base tokens: the most frequent opcode strings, leaving room for
  // sequence entries. Rare strings fall back to the escape symbol.
  const std::size_t reserve_for_sequences = options_.max_symbols / 3;
  const std::size_t max_base =
      options_.max_symbols > reserve_for_sequences + 1
          ? options_.max_symbols - reserve_for_sequences - 1
          : 1;
  std::vector<std::pair<std::uint32_t, std::string>> by_freq;
  by_freq.reserve(opcode_freq.size());
  for (const auto& [s, f] : opcode_freq) by_freq.emplace_back(f, s);
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> opcode_strings;
  std::unordered_map<std::string, std::uint16_t> string_to_token;
  for (const auto& [f, s] : by_freq) {
    if (opcode_strings.size() >= max_base) break;
    string_to_token.emplace(s, static_cast<std::uint16_t>(opcode_strings.size()));
    opcode_strings.push_back(s);
  }

  // Initial symbol table: escape + one base per kept opcode string.
  SymbolTable table;
  std::uint16_t escape_symbol = 0xFFFF;
  std::vector<std::uint16_t> token_symbol(opcode_strings.size());
  for (std::size_t t = 0; t < opcode_strings.size(); ++t) {
    Symbol s;
    s.kind = Symbol::Kind::kBase;
    s.token = static_cast<std::uint16_t>(t);
    token_symbol[t] = table.add(std::move(s));
  }
  for (XInstr& in : instrs) {
    const std::string key(in.opcode_bytes.begin(), in.opcode_bytes.end());
    const auto it = string_to_token.find(key);
    if (it == string_to_token.end()) {
      in.escape = true;
      if (escape_symbol == 0xFFFF) {
        Symbol s;
        s.kind = Symbol::Kind::kRaw;
        escape_symbol = table.add(std::move(s));
      }
    } else {
      in.token = it->second;
    }
  }

  // Block the instructions: accumulate until >= block_size original bytes
  // (instruction-aligned blocks; the image records each block's true size).
  std::vector<std::vector<Item>> blocks;
  std::vector<std::uint32_t> block_sizes;
  {
    std::vector<Item> current;
    std::uint32_t current_bytes = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const std::uint16_t sym = instrs[i].escape ? escape_symbol : token_symbol[instrs[i].token];
      current.push_back({sym, static_cast<std::uint32_t>(i), 1});
      current_bytes += static_cast<std::uint32_t>(instrs[i].all_bytes.size());
      if (current_bytes >= options_.block_size || current.size() >= 200) {
        blocks.push_back(std::move(current));
        block_sizes.push_back(current_bytes);
        current.clear();
        current_bytes = 0;
      }
    }
    if (!current.empty()) {
      blocks.push_back(std::move(current));
      block_sizes.push_back(current_bytes);
    }
  }

  SeqBuilder builder(options_, std::move(table), std::move(blocks));
  builder.run();
  const auto& parsed = builder.blocks();
  SymbolTable final_table = builder.take_table();

  // Stream statistics.
  std::vector<std::uint64_t> sym_freq(final_table.size(), 0);
  std::vector<std::uint64_t> modrm_freq(256, 0);
  std::vector<std::uint64_t> imm_freq(256, 0);
  for (const auto& block : parsed) {
    for (const Item& item : block) {
      ++sym_freq[item.symbol];
      const auto& leaves = final_table.leaves(item.symbol);
      for (std::size_t j = 0; j < leaves.size(); ++j) {
        const XInstr& in = instrs[item.first_instr + j];
        if (leaves[j].raw || in.escape) {
          ++modrm_freq[in.all_bytes.size() & 0xFF];
          for (const std::uint8_t b : in.all_bytes) ++modrm_freq[b];
        } else {
          for (const std::uint8_t b : in.modrm_bytes) ++modrm_freq[b];
          for (const std::uint8_t b : in.imm_bytes) ++imm_freq[b];
        }
      }
    }
  }
  const HuffmanCode sym_code = HuffmanCode::from_frequencies(sym_freq);
  const HuffmanCode modrm_code = HuffmanCode::from_frequencies(modrm_freq);
  const HuffmanCode imm_code = HuffmanCode::from_frequencies(imm_freq);

  // Encode blocks in parallel (shared read-only dictionary + codes),
  // concatenating in index order for a thread-count-independent payload.
  const std::vector<std::vector<std::uint8_t>> encoded =
      par::parallel_map(parsed.size(), [&](std::size_t bi) {
        CCOMP_SPAN("sadc.encode_block");
        CCOMP_TIMER("sadc.encode.block_ns");
        const auto& block = parsed[bi];
        CCOMP_COUNT("sadc.encode.blocks", 1);
        CCOMP_COUNT("sadc.encode.symbols", block.size());
        BitWriter bits;
        std::size_t instr_total = 0;
        for (const Item& item : block) instr_total += item.length;
        bits.write_bits(instr_total, 8);
        for (const Item& item : block) sym_code.encode(bits, item.symbol);
        for (const Item& item : block) {
          const auto& leaves = final_table.leaves(item.symbol);
          for (std::size_t j = 0; j < leaves.size(); ++j) {
            const XInstr& in = instrs[item.first_instr + j];
            if (leaves[j].raw || in.escape) {
              modrm_code.encode(bits, in.all_bytes.size() & 0xFF);
              for (const std::uint8_t b : in.all_bytes) modrm_code.encode(bits, b);
            } else {
              for (const std::uint8_t b : in.modrm_bytes) modrm_code.encode(bits, b);
            }
          }
        }
        for (const Item& item : block) {
          const auto& leaves = final_table.leaves(item.symbol);
          for (std::size_t j = 0; j < leaves.size(); ++j) {
            const XInstr& in = instrs[item.first_instr + j];
            if (!leaves[j].raw && !in.escape)
              for (const std::uint8_t b : in.imm_bytes) imm_code.encode(bits, b);
          }
        }
        return bits.take();
      });
  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(encoded.size() + 1);
  for (const std::vector<std::uint8_t>& block_bytes : encoded) {
    offsets.push_back(static_cast<std::uint32_t>(payload.size()));
    payload.insert(payload.end(), block_bytes.begin(), block_bytes.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(payload.size()));

  ByteSink tables;
  final_table.serialize(tables);
  serialize_opcode_strings(tables, opcode_strings);
  sym_code.serialize(tables);
  modrm_code.serialize(tables);
  imm_code.serialize(tables);
  return core::CompressedImage(core::CodecKind::kSadc, core::IsaKind::kX86,
                               options_.block_size, code.size(), tables.take(),
                               std::move(offsets), std::move(payload), std::move(block_sizes));
}

std::unique_ptr<core::BlockDecompressor> SadcX86Codec::make_decompressor(
    const core::CompressedImage& image) const {
  if (image.codec() != core::CodecKind::kSadc || image.isa() != core::IsaKind::kX86)
    throw ConfigError("image was not produced by SADC/x86");
  ByteSource src(image.tables());
  SymbolTable table = SymbolTable::deserialize(src);
  std::vector<std::string> opcode_strings = deserialize_opcode_strings(src);
  HuffmanCode sym_code = HuffmanCode::deserialize(src);
  HuffmanCode modrm_code = HuffmanCode::deserialize(src);
  HuffmanCode imm_code = HuffmanCode::deserialize(src);
  return std::make_unique<SadcX86Decompressor>(image, std::move(table),
                                               std::move(opcode_strings), std::move(sym_code),
                                               std::move(modrm_code), std::move(imm_code));
}

}  // namespace ccomp::sadc
