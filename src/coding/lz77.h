// Deflate-shaped file compressor: LZ77 with a 32 KiB window, hash-chain
// match finding and lazy matching, followed by canonical Huffman coding of
// the literal/length and distance alphabets (the deflate alphabets).
//
// Stands in for gzip(1) in the paper's comparisons. Like gzip it requires
// sequential decompression from the start of the file — the pointer-based
// scheme the paper rules out for compressed-code memory systems — so it
// appears only as a file-oriented bound in the figures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccomp::coding {

struct Lz77Options {
  unsigned window_bits = 15;     // 32 KiB window, like deflate
  unsigned max_chain = 256;      // match-finder effort
  unsigned min_match = 3;
  unsigned max_match = 258;
  bool lazy_matching = true;
  unsigned good_enough = 32;     // accept immediately if a match reaches this
};

/// Compress a buffer into a self-contained payload (Huffman tables + bits).
std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input,
                                        const Lz77Options& options = {});

/// Decompress a lz77_compress() payload.
std::vector<std::uint8_t> lz77_decompress(std::span<const std::uint8_t> input);

}  // namespace ccomp::coding
