#include "core/codec.h"

#include <algorithm>

#include "support/error.h"

namespace ccomp::core {

std::vector<std::uint8_t> BlockCodec::decompress_all(const CompressedImage& image) const {
  const auto decompressor = make_decompressor(image);
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(image.original_size()));
  for (std::size_t b = 0; b < image.block_count(); ++b) {
    const std::vector<std::uint8_t> block = decompressor->block(b);
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

CompressedImage BlockCodec::compress_verified(std::span<const std::uint8_t> code) const {
  CompressedImage image = compress(code);
  // Forward order.
  const std::vector<std::uint8_t> round = decompress_all(image);
  if (round.size() != code.size() || !std::equal(round.begin(), round.end(), code.begin()))
    throw CorruptDataError("codec round trip failed (sequential order)");
  // Random access: decompress blocks back to front and spot-check.
  const auto decompressor = make_decompressor(image);
  for (std::size_t b = image.block_count(); b-- > 0;) {
    const std::vector<std::uint8_t> block = decompressor->block(b);
    const std::size_t begin = static_cast<std::size_t>(image.block_original_offset(b));
    if (block.size() != image.block_original_size(b) ||
        !std::equal(block.begin(), block.end(), code.begin() + static_cast<std::ptrdiff_t>(begin)))
      throw CorruptDataError("codec round trip failed (random access)");
  }
  return image;
}

}  // namespace ccomp::core
